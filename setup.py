"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 660 editable installs are unavailable; this file lets
``pip install -e .`` fall back to ``setup.py develop``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Implementing Mediators with Asynchronous Cheap "
        "Talk' (Abraham, Dolev, Geffner, Halpern; PODC 2019)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
