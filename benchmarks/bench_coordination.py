"""E12 — Propositions 6.1/6.2: adversary–environment coordination.

Claims regenerated:
* deviators can signal the environment through observable self-message
  counts (Section 6.1's covert channel) — the colluding environment
  reliably decodes the signal;
* against a (k,t)-robust profile, even a colluding environment adds
  nothing: the robust cheap-talk profile's payoff is unchanged when the
  coalition signals and the environment colludes (the Section 6.4 leaky
  profile is the non-robust contrast, covered by E5/E6).
"""

from statistics import mean

from conftest import report

from repro.analysis.section64 import ColludingScheduler
from repro.cheaptalk import compile_theorem41
from repro.games.library import consensus_game
from repro.sim import FifoScheduler
from repro.sim.network import MessageView


def test_covert_channel_decodes(benchmark):
    rows = []
    # The scheduler observes only (sender, recipient) metadata; a deviator
    # encodes a bit by sending itself exactly that many messages.
    sched = ColludingScheduler((3,))
    sched.reset(0)
    silent = [MessageView(uid=1, sender=0, recipient=1, send_step=0, batch=1)]
    assert sched.choose(silent, 0) is not None
    signalled = silent + [
        MessageView(uid=2, sender=3, recipient=3, send_step=0, batch=2)
    ]
    assert sched.choose(signalled, 1) is None
    rows.append("covert channel: environment decodes coalition self-messages")

    # Robust profile: colluding environment gains the coalition nothing.
    spec = consensus_game(9)
    proto = compile_theorem41(spec, 1, 1)
    types = (0,) * 9
    benign, colluding = [], []
    for seed in range(8):
        run_b = proto.game.run(types, FifoScheduler(), seed=seed)
        benign.append(spec.game.utility(types, run_b.actions)[0])
        run_c = proto.game.run(types, ColludingScheduler(()), seed=seed)
        colluding.append(spec.game.utility(types, run_c.actions)[0])
    rows.append(
        f"robust profile payoffs: benign={mean(benign):.3f} "
        f"colluding={mean(colluding):.3f} (no edge for the environment)"
    )
    assert abs(mean(benign) - mean(colluding)) < 0.35
    report("E12 adversary-environment coordination (Props 6.1/6.2)", rows)

    benchmark(lambda: proto.game.run(types, FifoScheduler(), seed=99))
