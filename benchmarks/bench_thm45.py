"""E4 — Theorem 4.5: ε + (2k+2t)-punishment at n > 2k + 3t.

Claims regenerated:
* the tightest bound of the paper (n > 2k+3t) runs on the statistical
  substrate with punishment wills;
* blocking coalitions are punished; honest runs reach equilibrium.
"""

from conftest import report

from repro.analysis.deviations import ct_stall_after
from repro.cheaptalk import compile_theorem45
from repro.games.library import BOT, section64_game
from repro.sim import FifoScheduler


def test_theorem45(benchmark):
    rows = []
    n, k, t = 7, 1, 0  # n > 2k+3t = 2; punishment strength 2 >= 2k+2t = 2
    spec = section64_game(n, k=2)
    proto = compile_theorem45(spec, k, t, epsilon=0.05)
    rows.append(proto.describe())

    run = proto.game.run((0,) * n, FifoScheduler(), seed=0)
    rows.append(f"honest: actions={run.actions} (coordinated)")
    assert len(set(run.actions)) == 1

    stall = {
        5: ct_stall_after(spec, limit=2),
        6: ct_stall_after(spec, limit=2),
    }
    punished = proto.game.run((0,) * n, FifoScheduler(), seed=1,
                              deviations=stall)
    rows.append(f"blocking coalition: actions={punished.actions}")
    assert all(a == BOT for a in punished.actions[:5])
    payoff = spec.game.utility(punished.types, punished.actions)[6]
    rows.append(f"staller payoff {payoff} < equilibrium 1.5")
    assert payoff < 1.5
    report("E4 Theorem 4.5 (n > 2k+3t, ε + punishment)", rows)

    benchmark(lambda: proto.game.run((0,) * n, FifoScheduler(), seed=2))
