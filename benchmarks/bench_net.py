"""E12 — Real-network substrate: sim vs in-memory net vs TCP throughput.

Claims regenerated:
* the asyncio substrate (in-memory transport) is record-equivalent to the
  simulated kernel on the netcheck reference cell (invariant 9), and its
  seeded-latency schedules are deterministic across repeats;
* every protocol message survives a real localhost TCP socket with the
  same payoffs and outcome taxonomy (timing fields relaxed);
* measured rows: wall-clock per substrate on the same Thm 4.1 cell.
"""

import time

from conftest import report

from repro.experiments import ExperimentRunner, get_scenario
from repro.net.conformance import conformance_diff


def run_leg(runner, spec):
    t0 = time.perf_counter()
    result = runner.run(spec)
    return result, time.perf_counter() - t0


def test_substrate_throughput(benchmark):
    net_spec = get_scenario("netcheck-thm41").replace(
        deviations=("honest",), seed_count=1
    )
    sim_spec = net_spec.replace(runtime="sim", latency="zero")
    tcp_spec = get_scenario("netcheck-tcp")

    rows = []
    with ExperimentRunner() as runner:
        runner.run(sim_spec)  # warm the artifact caches
        sim, sim_s = run_leg(runner, sim_spec)
        net, net_s = run_leg(runner, net_spec)
        repeat, _ = run_leg(runner, net_spec)
        tcp, tcp_s = run_leg(runner, tcp_spec)
        tcp_sim, _ = run_leg(
            runner, tcp_spec.replace(runtime="sim", latency="zero")
        )

        assert conformance_diff(sim.records, net.records) == []
        assert net.records == repeat.records, "net repeats diverged"
        assert conformance_diff(tcp_sim.records, tcp.records) == []

        rows.append(f"sim kernel        n=9: {sim_s * 1000:7.1f} ms")
        rows.append(
            f"net (memory)      n=9: {net_s * 1000:7.1f} ms "
            f"({net_spec.latency})"
        )
        rows.append(
            f"net-tcp localhost n=5: {tcp_s * 1000:7.1f} ms "
            f"({tcp_spec.latency})"
        )
        report("E12 substrate throughput (sim vs net vs TCP)", rows)

        benchmark(lambda: runner.run(net_spec))
