"""E9 — Message complexity O(nNc): scaling in n and in circuit size c.

Claims regenerated (Theorem 4.1's accounting):
* at fixed circuit, messages grow polynomially (≈ quadratically per
  opening times circuit size) in n — we print the measured series and the
  successive growth ratios;
* at fixed n, messages grow linearly in the number of multiplication
  gates c (each multiplication costs two public openings).
"""

from conftest import report

from repro.cheaptalk.game import CheapTalkGame
from repro.circuits import Circuit
from repro.field import GF, DEFAULT_PRIME
from repro.games.library import consensus_game
from repro.sim import FifoScheduler

F = GF(DEFAULT_PRIME)


def chained_circuit(n: int, muls: int) -> Circuit:
    """A coin followed by a chain of ``muls`` multiplications."""
    c = Circuit(F, f"chain({muls})")
    bit = c.randbit()
    acc = bit
    for _ in range(muls):
        acc = c.mul(acc, bit)
    for pid in range(n):
        c.output(acc, pid, f"act@{pid}")
    return c


def run_messages(n: int, muls: int, seed: int = 0) -> int:
    spec = consensus_game(n)
    game = CheapTalkGame(
        spec, 1, 1, mode="bcg", circuit=chained_circuit(n, muls)
    )
    run = game.run((0,) * n, FifoScheduler(), seed=seed)
    assert len(set(run.actions)) == 1
    return run.message_count()


def test_scaling_in_n(benchmark):
    rows = []
    series = []
    for n in (9, 11, 13):
        msgs = run_messages(n, muls=2)
        series.append((n, msgs))
        rows.append(f"c fixed (2 muls): n={n:>2} messages={msgs:>6}")
    for (n1, m1), (n2, m2) in zip(series, series[1:]):
        rows.append(
            f"growth n {n1}->{n2}: x{m2 / m1:.2f} "
            f"(n^2 ratio would be x{(n2 / n1) ** 2:.2f})"
        )

    mul_series = []
    for muls in (1, 4, 8, 16):
        msgs = run_messages(9, muls)
        mul_series.append((muls, msgs))
        rows.append(f"n fixed (9): c={muls:>2} muls messages={msgs:>6}")
    # Linear in c: per-mul increment roughly constant.
    increments = [
        (m2 - m1) / (c2 - c1)
        for (c1, m1), (c2, m2) in zip(mul_series, mul_series[1:])
    ]
    rows.append(
        "per-multiplication message cost: "
        + ", ".join(f"{inc:.0f}" for inc in increments)
    )
    spread = max(increments) - min(increments)
    assert spread <= 0.5 * max(increments)  # near-constant slope = linear

    report("E9 message complexity O(nNc)", rows)
    benchmark(lambda: run_messages(9, 2, seed=5))
