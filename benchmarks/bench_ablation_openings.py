"""E14 (ablation) — robust openings: Berlekamp–Welch vs naive t+1 trust.

DESIGN.md §6 calls out robust opening as a load-bearing design choice.
Claims regenerated:

* with error-corrected openings, a wrong-share adversary changes nothing —
  honest players agree on the mediator's coin;
* with naive first-t+1 interpolation, the same adversary corrupts openings:
  honest players decode garbage / disagree in a visible fraction of runs.
"""

from conftest import report

from repro.analysis.deviations import ct_lying_shares
from repro.cheaptalk.game import CheapTalkGame
from repro.games.library import consensus_game
from repro.sim import FifoScheduler


def run_variant(naive: bool, seeds, spec, liar):
    corrupted = 0
    for seed in seeds:
        game = CheapTalkGame(spec, 1, 0, mode="bcg")
        if naive:
            # Inject the ablation flag into every host's config.
            original = game.player_config

            def patched(setup, pid, own_type, _orig=original):
                config = _orig(setup, pid, own_type)
                config["naive_openings"] = True
                return config

            game.player_config = patched
        run = game.run(
            (0,) * spec.game.n, FifoScheduler(), seed=seed,
            deviations={liar: ct_lying_shares(spec)},
        )
        honest = list(range(liar + 1, spec.game.n))
        moved = [p for p in honest if p in run.result.outputs]
        decoded = [run.actions[p] for p in honest]
        if len(moved) != len(honest) or len(set(decoded)) != 1 \
                or decoded[0] not in (0, 1):
            corrupted += 1
    return corrupted


def test_robust_vs_naive_openings(benchmark):
    rows = []
    spec = consensus_game(5)
    liar = 0  # lowest pid: naive reconstruction trusts its share first
    seeds = range(12)

    robust_bad = run_variant(False, seeds, spec, liar)
    naive_bad = run_variant(True, seeds, spec, liar)
    rows.append(
        f"error-corrected openings: corrupted runs {robust_bad}/12 "
        f"(wrong shares decoded away)"
    )
    rows.append(
        f"naive first-t+1 openings: corrupted runs {naive_bad}/12 "
        f"(adversary's share poisons reconstruction)"
    )
    assert robust_bad == 0
    assert naive_bad > 0
    report("E14 ablation: robust vs naive openings", rows)

    game = CheapTalkGame(spec, 1, 0, mode="bcg")
    benchmark(lambda: game.run((0,) * 5, FifoScheduler(), seed=99))
