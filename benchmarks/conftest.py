"""Shared helpers for the experiment benchmarks.

Every module under ``benchmarks/`` regenerates one experiment from the
DESIGN.md per-experiment index (the paper has no numbered tables/figures;
each theorem/proposition/example is an experiment). Benchmarks print their
result rows through :func:`report`, which also appends them to
``benchmarks/results.txt`` so a ``--benchmark-only`` run leaves a record.
"""

from __future__ import annotations

import os

import pytest

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def report(experiment: str, rows: list[str]) -> None:
    """Print experiment rows and append them to the results file."""
    banner = f"== {experiment} =="
    lines = [banner] + [f"  {row}" for row in rows]
    text = "\n".join(lines)
    print("\n" + text)
    with open(RESULTS_PATH, "a") as fh:
        fh.write(text + "\n")


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    if os.path.exists(RESULTS_PATH):
        os.remove(RESULTS_PATH)
    yield
