"""E6 — Corollary 6.3: robust profiles are scheduler-proof.

Claims regenerated:
* the expected payoff of the (k,t)-robust cheap-talk profile does not
  depend on the environment strategy — the per-scheduler utility spread is
  sampling noise;
* a *non*-robust profile (the Section 6.4 leaky game under attack) shows a
  real, large spread between a benign and a colluding environment.
"""

from statistics import mean

from conftest import report

from repro.analysis.robustness import scheduler_proofness_spread
from repro.analysis.section64 import ColludingScheduler, leak_attack
from repro.cheaptalk import compile_theorem41
from repro.games.library import BOT, consensus_game, section64_game
from repro.mediator import LeakySection64Mediator, MediatorGame
from repro.sim import FifoScheduler, scheduler_zoo


def test_scheduler_proofness(benchmark):
    rows = []
    proto = compile_theorem41(consensus_game(9), 1, 1)
    result = scheduler_proofness_spread(
        proto.game,
        scheduler_zoo(seed=1, parties=range(9))[:4],
        samples_per_scheduler=6,
    )
    for name, utilities in result["per_scheduler"].items():
        rows.append(f"robust profile, scheduler {name:<14} u0={utilities[0]:.3f}")
    rows.append(f"robust profile spread: {result['spread']:.3f} (noise only)")
    assert result["spread"] < 0.5

    # Negative control: leaky game, attacking coalition, two environments.
    spec = section64_game(7, k=2)
    leaky = MediatorGame(
        spec, 2, 0, approach="ah", will=lambda pid, ty: BOT,
        mediator_factory=lambda: LeakySection64Mediator(spec, 2, 0),
    )
    deviations = leak_attack(spec, (0, 1))
    types = (0,) * 7
    benign, colluding = [], []
    for seed in range(24):
        run_b = leaky.run(types, FifoScheduler(), seed=seed,
                          deviations=deviations)
        benign.append(spec.game.utility(types, run_b.actions)[0])
        run_c = leaky.run(types, ColludingScheduler((0, 1)), seed=seed,
                          deviations=deviations)
        colluding.append(spec.game.utility(types, run_c.actions)[0])
    gap = abs(mean(colluding) - mean(benign))
    rows.append(
        f"non-robust profile: benign env u={mean(benign):.3f}, "
        f"colluding env u={mean(colluding):.3f}, gap={gap:.3f}"
    )
    report("E6 Corollary 6.3 (scheduler-proofness)", rows)

    benchmark(
        lambda: scheduler_proofness_spread(
            proto.game, scheduler_zoo(seed=2, parties=range(9))[:2],
            samples_per_scheduler=2,
        )
    )
