"""E3 — Theorem 4.4: punishment-in-wills at n > 3k + 4t (AH approach).

Claims regenerated:
* honest runs reach the 1.5-payoff equilibrium of the Section 6.4 game;
* a coalition large enough to stall the protocol triggers every honest
  will's ⊥ punishment and ends up at 1.1 < 1.5 — stalling is deterred;
* the weak-implementation message count is small and independent of ε.
"""

from conftest import report

from repro.analysis.deviations import ct_stall_after
from repro.cheaptalk import compile_theorem44
from repro.games.library import BOT, section64_game
from repro.sim import FifoScheduler


def test_theorem44_punishment(benchmark):
    rows = []
    spec = section64_game(4, k=1)
    proto = compile_theorem44(spec, 1, 0)

    honest_payoffs = []
    for seed in range(10):
        run = proto.game.run((0,) * 4, FifoScheduler(), seed=seed)
        honest_payoffs.append(spec.game.utility(run.types, run.actions)[3])
    honest_mean = sum(honest_payoffs) / len(honest_payoffs)
    rows.append(f"honest mean payoff: {honest_mean:.2f} (ideal 1.5)")

    stall = {
        2: ct_stall_after(spec, limit=2),
        3: ct_stall_after(spec, limit=2),
    }
    stalled_payoffs = []
    for seed in range(10):
        run = proto.game.run((0,) * 4, FifoScheduler(), seed=seed,
                             deviations=stall)
        assert run.actions == (BOT,) * 4
        stalled_payoffs.append(spec.game.utility(run.types, run.actions)[3])
    stalled_mean = sum(stalled_payoffs) / len(stalled_payoffs)
    rows.append(
        f"stalling-coalition payoff: {stalled_mean:.2f} "
        f"(punished: every will plays ⊥)"
    )
    assert stalled_mean < honest_mean

    for n, k in ((4, 1), (7, 2), (10, 3)):
        s = section64_game(n, k=k)
        p = compile_theorem44(s, k, 0)
        run = p.game.run((0,) * n, FifoScheduler(), seed=0)
        rows.append(
            f"n={n:>2} k={k} honest messages={run.message_count():>5} "
            f"(bounded, ε-independent)"
        )
    report("E3 Theorem 4.4 (n > 3k+4t, punishment in wills)", rows)

    benchmark(lambda: proto.game.run((0,) * 4, FifoScheduler(), seed=11))
