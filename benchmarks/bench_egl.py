"""E8 — EGL baseline: O(1/ε) messages vs bounded punishment-based count.

Claims regenerated (paper, Section 1):
* the Even–Goldreich–Lempel-style randomized exchange needs O(1/ε)
  messages in expectation — the measured series scales like 2/ε;
* the punishment-based protocol sends a bounded number of messages,
  independent of ε.
"""

from conftest import report

from repro.baselines import expected_messages, run_egl
from repro.cheaptalk import compile_theorem45
from repro.games.library import chicken_game, section64_game
from repro.sim import FifoScheduler


def test_egl_vs_punishment(benchmark):
    rows = []
    chicken = chicken_game()
    egl_series = []
    for epsilon in (0.5, 0.2, 0.1, 0.05, 0.02):
        msgs = expected_messages(chicken, epsilon, trials=60)
        egl_series.append((epsilon, msgs))
        rows.append(
            f"EGL ε={epsilon:<5} E[messages]={msgs:7.1f}   (≈ 2/ε = {2/epsilon:.0f})"
        )
    # The series must grow roughly like 1/ε.
    assert egl_series[-1][1] > 4 * egl_series[0][1]

    spec = section64_game(7, k=2)
    for epsilon in (0.1, 0.01):
        proto = compile_theorem45(spec, 1, 0, epsilon=epsilon)
        run = proto.game.run((0,) * 7, FifoScheduler(), seed=0)
        rows.append(
            f"punishment-based ε={epsilon:<5} messages={run.message_count()} "
            f"(bounded, ε-independent)"
        )
    report("E8 EGL O(1/ε) vs punishment-based bounded messages", rows)

    benchmark(lambda: run_egl(chicken, 0.2, seed=1))
