"""E10 — Solution concepts (Definitions 3.1–3.6) on the game library.

Claims regenerated:
* the exact checkers certify the library's intended equilibria
  (k-resilience / t-immunity / (k,t)-robustness and ideal-mediator
  robustness) and reject the intended counterexamples;
* checker cost is practical (the benchmark times the robustness check).
"""

from conftest import report

from repro.games import (
    ConstantStrategy,
    StrategyProfile,
    check_kt_robust,
    check_punishment_strategy,
)
from repro.games.library import chicken_game, consensus_game, section64_game
from repro.mediator import check_ideal_mediator_robustness
from repro.mediator.ideal import check_ideal_k_resilience


def test_solution_concepts(benchmark):
    rows = []

    spec = consensus_game(5)
    all_zero = StrategyProfile([ConstantStrategy(0)] * 5)
    rob = check_kt_robust(spec.game, all_zero, k=1, t=1)
    rows.append(f"consensus(5) all-0 underlying (1,1)-robust: {rob.holds} "
                f"({rob.checks} checks)")
    assert rob.holds

    ideal = check_ideal_mediator_robustness(spec, k=1, t=1)
    rows.append(f"consensus(5) ideal mediator (1,1)-robust: {ideal.holds} "
                f"({ideal.checks} checks)")
    assert ideal.holds

    s64 = section64_game(4, k=1)
    ok1 = check_ideal_k_resilience(s64, 1).holds
    ok2 = check_ideal_k_resilience(s64, 2).holds
    rows.append(f"section64(4) ideal 1-resilient: {ok1}; 2-resilient: {ok2}")
    assert ok1 and not ok2

    pun = check_punishment_strategy(
        s64.game, s64.punishment, m=1, equilibrium_payoff=lambda i, x: 1.5
    )
    rows.append(f"section64(4) all-⊥ is a 1-punishment: {pun.holds} "
                f"(margin {pun.margin:.2f})")
    assert pun.holds

    chick = chicken_game()
    ce = check_ideal_k_resilience(chick, 1)
    rows.append(f"chicken correlated equilibrium obedient: {ce.holds}")
    assert ce.holds

    report("E10 solution concepts (Defs 3.1-3.6)", rows)
    benchmark(lambda: check_kt_robust(spec.game, all_zero, k=1, t=1))
