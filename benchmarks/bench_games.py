"""E14 — the declarative game layer: construction and sweep throughput.

Claims regenerated (through the GameDef DSL and game families):

* every ``consensus@n`` family instance compiles from pure data to a
  ``GameSpec`` whose ideal-mediator sweep coordinates perfectly at every
  size — game-size scanning is one ``games``-axis grid, not n scripts;
* seeded random games (``random@n4s<seed>``) rebuild deterministically
  from their name alone and run through the ordinary experiment runner;
* construction cost stays negligible next to simulation cost (the DSL
  compiles declarative payoff expressions/tables once per build).

The benchmark payload is game construction plus the one-sweep
``consensus-scaling`` grid (n ∈ {3, 5, 7, 9}), which is what the CI smoke
step times and uploads as ``bench_games.json``.
"""

from conftest import report

from repro.experiments import ExperimentRunner, get_scenario
from repro.games.registry import make_game

SIZES = (3, 5, 7, 9)


def _construct_games() -> list:
    specs = [make_game(f"consensus@n{n}", 0) for n in SIZES]
    specs.extend(make_game(f"random@n4s{seed}", 0) for seed in range(4))
    return specs


def _one_sweep():
    return ExperimentRunner().run(get_scenario("consensus-scaling"))


def test_game_families(benchmark):
    rows = []

    for n in SIZES:
        spec = make_game(f"consensus@n{n}", 0)
        assert spec.game.n == n
        assert spec.definition is not None
        rows.append(
            f"consensus@n{n}: {len(spec.game.action_profiles())} action "
            f"profiles, GameDef JSON {len(spec.definition.to_json())} bytes"
        )

    result = _one_sweep()
    assert all(record.ok for record in result.records)
    for row in result.summary_rows():
        game, payoff = row[0], row[-1]
        assert payoff == "1.000"
        rows.append(f"scaling sweep {game}: mean payoff {payoff}")

    random_spec = make_game("random@n4s123", 0)
    rebuilt = make_game("random@n4s123", 0)
    assert random_spec.definition == rebuilt.definition
    rows.append(
        f"random@n4s123 rebuilds identically from its name "
        f"({len(random_spec.definition.to_json())} bytes of table data)"
    )

    report("E14 declarative game layer (construction + one-sweep)", rows)

    def payload():
        _construct_games()
        return _one_sweep()

    benchmark(payload)
