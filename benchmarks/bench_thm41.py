"""E1 — Theorem 4.1: errorless cheap talk at n > 4k + 4t.

Claims regenerated (through the declarative experiment API):
* the compiled protocol implements the mediator (common coordinated action,
  outcome distribution matching the mediator's);
* it tolerates k + t arbitrary deviators (crash / wrong shares);
* message complexity is O(nNc) — measured rows: messages vs n.
"""

from conftest import report

from repro.experiments import ExperimentRunner, get_scenario


def test_theorem41_honest_and_faulty(benchmark):
    runner = ExperimentRunner()
    rows = []
    base = get_scenario("thm41-honest").replace(
        schedulers=("fifo",), seed_count=1
    )
    for n in (9, 11, 13):
        result = runner.run(base.replace(n=n))
        record = result.records[0]
        assert record.agreed, record
        rows.append(
            f"n={n:>2} k=1 t=1 honest: agreed={record.agreed} "
            f"messages={record.messages_sent:>5}"
        )

    faulty = runner.run(
        get_scenario("thm41-crash-liar").replace(
            schedulers=("fifo",), deviations=("crash+liar",), seed_count=1
        )
    )
    record = faulty.records[0]
    # Deviators are the last two players; the honest 7 must still agree.
    honest_agreed = len(set(record.actions[:7])) == 1
    rows.append(
        f"n= 9 with crash+liar (k+t=2 deviators): honest agreed={honest_agreed}"
    )
    assert honest_agreed
    report("E1 Theorem 4.1 (n > 4k+4t, errorless)", rows)

    # Benchmark the run only (precompiled protocol), matching the other
    # benchmarks' run-only timing.
    from repro.cheaptalk import compile_theorem41
    from repro.games.registry import make_game
    from repro.sim import FifoScheduler

    proto9 = compile_theorem41(make_game("consensus", 9), 1, 1)
    benchmark(lambda: proto9.game.run((0,) * 9, FifoScheduler(), seed=3))
