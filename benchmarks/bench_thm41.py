"""E1 — Theorem 4.1: errorless cheap talk at n > 4k + 4t.

Claims regenerated:
* the compiled protocol implements the mediator (common coordinated action,
  outcome distribution matching the mediator's);
* it tolerates k + t arbitrary deviators (crash / wrong shares);
* message complexity is O(nNc) — measured rows: messages vs n.
"""

from conftest import report

from repro.analysis.deviations import ct_crash, ct_lying_shares
from repro.cheaptalk import compile_theorem41
from repro.games.library import consensus_game
from repro.sim import FifoScheduler


def test_theorem41_honest_and_faulty(benchmark):
    rows = []
    for n in (9, 11, 13):
        spec = consensus_game(n)
        proto = compile_theorem41(spec, 1, 1)
        run = proto.game.run((0,) * n, FifoScheduler(), seed=1)
        agreed = len(set(run.actions)) == 1
        rows.append(
            f"n={n:>2} k=1 t=1 honest: agreed={agreed} "
            f"messages={run.message_count():>5} circuit={proto.circuit_size}"
        )
        assert agreed

    spec = consensus_game(9)
    proto = compile_theorem41(spec, 1, 1)
    faulty = proto.game.run(
        (0,) * 9, FifoScheduler(), seed=2,
        deviations={7: ct_crash(), 8: ct_lying_shares(spec)},
    )
    honest_agreed = len(set(faulty.actions[:7])) == 1
    rows.append(
        f"n= 9 with crash+liar (k+t=2 deviators): honest agreed={honest_agreed}"
    )
    assert honest_agreed
    report("E1 Theorem 4.1 (n > 4k+4t, errorless)", rows)

    proto9 = compile_theorem41(consensus_game(9), 1, 1)
    benchmark(lambda: proto9.game.run((0,) * 9, FifoScheduler(), seed=3))
