"""E13 — Fault injection: masking verdicts and the injector's overhead.

Claims regenerated:
* the masking oracle's verdicts on the faultcheck scenarios — every
  within-budget crash plan is masked (honest records untouched), and the
  tightness plans (t+1 crashes, the Sec 6.4 mediator kill) all break;
* chaos is deterministic: the faulted grid repeats byte-identically;
* measured rows: wall-clock of the fault-free leg vs an active
  drop+dup plan vs a crash-restart plan on the same Thm 4.1 grid.
"""

import time

from conftest import report

from repro.experiments import ExperimentRunner, get_scenario
from repro.faults.masking import run_faultcheck


def run_leg(runner, spec):
    t0 = time.perf_counter()
    result = runner.run(spec)
    return result, time.perf_counter() - t0


def test_fault_injection_overhead(benchmark):
    base_spec = get_scenario("faultcheck-thm41").replace(
        seed_count=2, faults=("none",)
    )
    chatter_spec = base_spec.replace(faults=("drop-0.1+dup-0.05",))
    restart_spec = base_spec.replace(faults=("crash-restart@p2s6r40",))

    rows = []
    with ExperimentRunner() as runner:
        runner.run(base_spec)  # warm the artifact caches
        base, base_s = run_leg(runner, base_spec)
        chatter, chatter_s = run_leg(runner, chatter_spec)
        repeat, _ = run_leg(runner, chatter_spec)
        restart, restart_s = run_leg(runner, restart_spec)

        assert chatter.records == repeat.records, "chaos repeats diverged"
        assert all(r.ok for r in base.records)
        assert all(r.ok for r in restart.records)

        results = run_faultcheck(runner=runner)
        for result in results:
            assert result.ok, [r.describe() for r in result.reports]
        verdicts = sum(len(r.reports) for r in results)

        rows.append(f"fault-free leg    n=9: {base_s * 1000:7.1f} ms")
        rows.append(f"drop-0.1+dup-0.05 n=9: {chatter_s * 1000:7.1f} ms")
        rows.append(f"crash-restart     n=9: {restart_s * 1000:7.1f} ms")
        rows.append(
            f"masking oracle: {verdicts} plan verdicts behaved as claimed"
        )
        report("E13 fault injection (overhead + masking oracle)", rows)

        benchmark(lambda: runner.run(chatter_spec))
