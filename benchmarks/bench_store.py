"""E18 — the durable result store: dedup makes repeat experiments free.

Claims regenerated (through the store subsystem):
* an identical scenario submitted twice is answered from the store the
  second time — zero cells simulated, result document byte-identical;
* record-level dedup composes across specs: growing a grid re-simulates
  only the missing cells, and the merged grid equals a from-scratch run
  record for record;
* the benchmark itself: a store hit vs a cold simulation of the same
  spec (``repro bench`` tracks the same workload as ``store-hit``).
"""

import os

from conftest import report

from repro.experiments import ExperimentRunner, get_scenario
from repro.experiments.runner import expand_grid
from repro.store import ResultStore

SPEC = get_scenario("chicken-mediator").replace(seed_count=6)


def test_store_hit_vs_cold(benchmark, tmp_path):
    rows = []

    # Populate, then prove the dedup guarantee.
    with ResultStore(str(tmp_path / "store.sqlite")) as store:
        with ExperimentRunner(store=store) as runner:
            cold = store.get_or_run(SPEC, runner=runner)
            assert not cold.hit

            warm = store.get_or_run(SPEC, runner=runner)
            assert warm.hit
            assert warm.text == cold.text
            rows.append(
                f"result dedup: {len(warm.result.records)} cells answered "
                f"from the store, bytes identical to the first run"
            )

            # Growing the grid simulates only the missing cells.
            grown_spec = SPEC.replace(seed_count=SPEC.seed_count + 2)
            grown = runner.run(grown_spec, store=store)
            grid_small = len(expand_grid(SPEC))
            grid_big = len(expand_grid(grown_spec))
            assert grown.stats["store"]["hits"] == grid_small
            assert grown.stats["store"]["misses"] == grid_big - grid_small
            rows.append(
                f"grid growth: {grid_small} cells reused, "
                f"{grid_big - grid_small} new cells simulated"
            )
        with ExperimentRunner() as reference_runner:
            reference = reference_runner.run(grown_spec)
        assert grown.records == reference.records
        rows.append(
            "merged grid == from-scratch grid, record for record"
        )

        report("E18 durable result store (dedup-by-fingerprint)", rows)

        # Benchmark the hit path the way the job service drives it.
        outcome = benchmark(store.get_or_run, SPEC)
        assert outcome.hit


def test_store_cold_write(benchmark, tmp_path):
    """The miss path: simulate the grid and persist it into a fresh store."""
    counter = [0]

    def cold_run():
        counter[0] += 1
        path = str(tmp_path / f"cold-{counter[0]}.sqlite")
        with ResultStore(path) as store:
            outcome = store.get_or_run(SPEC)
        os.remove(path)
        return outcome

    outcome = benchmark(cold_run)
    assert not outcome.hit
    assert len(outcome.result.records) == len(expand_grid(SPEC))
