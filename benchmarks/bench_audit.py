"""E13 — the robustness-audit engine: search rediscovers Section 6.4.

Claims regenerated (through the audit subsystem):
* exhaustive compositional search over the generic deviation atoms — no
  profile named anywhere in the audit spec — rediscovers the Section 6.4
  covert-channel attack (odd-parity leak-pooling pair conditioned on b=0)
  with strictly positive coalition gain against the leaky mediator;
* the identical search against the minimally-informative transform finds
  no profitable deviation (Lemma 6.8);
* the Thm 4.1 audit frontier stays within ε = 0 (+ tolerance) on every
  (k, t) cell inside the paper's n > 4k + 4t bound.
"""

from conftest import report

from repro.audit import candidate_from_name, get_audit, run_audit, run_frontier


def test_audit_engine(benchmark):
    rows = []

    attack = run_audit(get_audit("sec64-leak").replace(seed_count=10))
    cell = attack.cells[0]
    best = candidate_from_name(cell.best.candidate)
    atoms = dict(best.atoms)
    rows.append(
        f"sec64 leaky mediator:   searched {cell.evaluated}/{cell.space_size} "
        f"deviations, max gain {cell.max_gain:+.3f} -> NOT robust "
        f"(found: {cell.best.label})"
    )
    assert cell.max_gain > 0 and not cell.robust
    assert {a.kind for a in atoms.values()} == {"leak-pool"}
    assert all(a.param("when") == 0 for a in atoms.values())

    defense = run_audit(get_audit("sec64-minimal-audit").replace(seed_count=10))
    cell = defense.cells[0]
    rows.append(
        f"sec64 minimal mediator: searched {cell.evaluated}/{cell.space_size} "
        f"deviations, max gain {cell.max_gain:+.3f} -> robust "
        f"(the identical search earns nothing)"
    )
    assert cell.max_gain <= cell.epsilon + cell.tolerance and cell.robust

    frontier = run_frontier(get_audit("thm41-audit").replace(budget=12))
    for cell in frontier.cells:
        rows.append(
            f"thm41 frontier (k={cell.k}, t={cell.t}): method={cell.method} "
            f"max gain {cell.max_gain:+.3f} <= eps+tol -> robust={cell.robust}"
        )
        assert cell.ok and cell.robust

    report("E13 robustness-audit engine (search, not spot checks)", rows)

    # Benchmark batch evaluation the way production drives it: one shared
    # runner across run_audit calls, so worker pool and artifact caches
    # stay warm between batches (repro bench tracks the same workload in
    # bench_suite.json as `audit-batch`).
    from repro.experiments import ExperimentRunner

    bench_spec = get_audit("sec64-leak").replace(seed_count=4, budget=32)
    with ExperimentRunner() as shared:
        run_audit(bench_spec, runner=shared)  # prime caches
        benchmark(lambda: run_audit(bench_spec, runner=shared))
