"""E13 (ablation) — the cost of asynchrony: R1 (sync) vs Theorem 4.1 (async).

Claims regenerated:
* the synchronous baseline implements the mediator already at
  n > 3k + 3t (R1), where the asynchronous compiler must refuse
  (Theorem 4.1 needs n > 4k + 4t) — the "extra k + t" the paper proves is
  the worst-case cost of asynchrony;
* at a common feasible n, the synchronous implementation also uses far
  fewer messages (no echo/ready amplification, no ABA, no ACS).
"""

import pytest
from conftest import report

from repro.cheaptalk import compile_theorem41
from repro.cheaptalk.sync import compile_r1
from repro.errors import CompilationError
from repro.games.library import consensus_game
from repro.sim import FifoScheduler


def test_sync_vs_async(benchmark):
    rows = []
    k = t = 1

    # n = 7: sync works, async compiler refuses.
    sync = compile_r1(consensus_game(7), k, t)
    actions, result = sync.run((0,) * 7, seed=1)
    rows.append(
        f"n=7 (3k+3t < n <= 4k+4t): sync OK actions={actions} "
        f"messages={result.messages_sent}"
    )
    assert len(set(actions)) == 1
    with pytest.raises(CompilationError):
        compile_theorem41(consensus_game(7), k, t)
    rows.append("n=7: async Theorem 4.1 compiler refuses (needs n > 4k+4t)")

    # n = 9: both work; compare message counts.
    sync9 = compile_r1(consensus_game(9), k, t)
    s_actions, s_result = sync9.run((0,) * 9, seed=2)
    async9 = compile_theorem41(consensus_game(9), k, t)
    a_run = async9.game.run((0,) * 9, FifoScheduler(), seed=2)
    rows.append(
        f"n=9: sync messages={s_result.messages_sent:>5} "
        f"(rounds={s_result.rounds}); async messages={a_run.message_count():>5}"
    )
    assert len(set(s_actions)) == 1
    assert len(set(a_run.actions)) == 1
    assert s_result.messages_sent < a_run.message_count()
    rows.append(
        "asynchrony cost: +k+t in the bound and the RBC/ABA/ACS message "
        "overhead"
    )
    report("E13 ablation: cost of asynchrony (R1 vs Theorem 4.1)", rows)

    benchmark(lambda: sync9.run((0,) * 9, seed=5))
