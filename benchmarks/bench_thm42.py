"""E2 — Theorem 4.2: ε-implementation at n > 3k + 3t.

Claims regenerated:
* the bound drops from 4k+4t to 3k+3t when ε error is allowed;
* ε is controlled by the MAC field size (forgery probability 2/p,
  union-bounded over the run's MAC checks);
* honest outcomes still coordinate; a liar is rejected by MACs.
"""

from conftest import report

from repro.analysis.deviations import ct_lying_shares
from repro.cheaptalk import compile_theorem42
from repro.field import GF
from repro.games.library import consensus_game
from repro.sim import FifoScheduler


def test_theorem42_epsilon_sweep(benchmark):
    rows = []
    n, k, t = 7, 1, 1
    spec = consensus_game(n)
    for epsilon in (0.5, 0.05, 1e-3, 1e-9):
        proto = compile_theorem42(spec, k, t, epsilon=epsilon)
        run = proto.game.run((0,) * n, FifoScheduler(), seed=1)
        agreed = len(set(run.actions)) == 1
        rows.append(
            f"requested ε={epsilon:<8.2g} field=GF({proto.game.field.p:<8}) "
            f"achieved ε={proto.epsilon_achieved:.3g} agreed={agreed}"
        )
        assert agreed

    proto = compile_theorem42(spec, k, t, epsilon=0.05)
    liar = proto.game.run(
        (0,) * n, FifoScheduler(), seed=2,
        deviations={6: ct_lying_shares(spec)},
    )
    rows.append(
        f"with MAC-rejected liar: honest agreed="
        f"{len(set(liar.actions[:6])) == 1}"
    )
    assert len(set(liar.actions[:6])) == 1
    report("E2 Theorem 4.2 (n > 3k+3t, ε error via field size)", rows)

    benchmark(lambda: proto.game.run((0,) * n, FifoScheduler(), seed=3))
