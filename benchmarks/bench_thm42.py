"""E2 — Theorem 4.2: ε-implementation at n > 3k + 3t.

Claims regenerated (through the declarative experiment API):
* the bound drops from 4k+4t to 3k+3t when ε error is allowed;
* ε is controlled by the MAC field size (forgery probability 2/p,
  union-bounded over the run's MAC checks);
* honest outcomes still coordinate; a liar is rejected by MACs.
"""

from conftest import report

from repro.cheaptalk import compile_theorem42
from repro.experiments import ExperimentRunner, get_scenario
from repro.games.registry import make_game
from repro.sim import FifoScheduler


def test_theorem42_epsilon_sweep(benchmark):
    rows = []
    base = get_scenario("thm42-epsilon")
    n, k, t = base.n, base.k, base.t
    spec = make_game(base.game, n)

    # The field/ε trade-off: one compile per requested ε, one run each
    # (every field size must still coordinate).
    protos = {
        epsilon: compile_theorem42(spec, k, t, epsilon=epsilon)
        for epsilon in (0.5, 0.05, 1e-3, 1e-9)
    }
    for epsilon, proto in protos.items():
        run = proto.game.run((0,) * n, FifoScheduler(), seed=1)
        agreed = len(set(run.actions)) == 1
        rows.append(
            f"requested ε={epsilon:<8.2g} field=GF({proto.game.field.p:<8}) "
            f"achieved ε={proto.epsilon_achieved:.3g} agreed={agreed}"
        )
        assert agreed

    # The canonical scenario grid: honest coordination + MAC-rejected liar.
    result = ExperimentRunner().run(
        base.replace(schedulers=("fifo",), seed_count=1)
    )
    honest = [r for r in result.records if r.deviation == "honest"]
    assert honest and all(r.agreed for r in honest)
    rows.append(f"honest grid agreed={all(r.agreed for r in honest)}")

    liar = [r for r in result.records if r.deviation == "lying-last"]
    honest_agreed = all(len(set(r.actions[: n - 1])) == 1 for r in liar)
    rows.append(f"with MAC-rejected liar: honest agreed={honest_agreed}")
    assert honest_agreed
    report("E2 Theorem 4.2 (n > 3k+3t, ε error via field size)", rows)

    # Benchmark the run only (precompiled protocol), run-only timing.
    proto = protos[0.05]
    benchmark(lambda: proto.game.run((0,) * n, FifoScheduler(), seed=3))
