"""E-timing — one kernel, pluggable timing models.

Claims regenerated:
* the Theorem 4.1 protocol reaches the same coordinated output profile
  under Asynchronous, LockStep, and BoundedDelay timing (the kernel
  unification claim);
* timing models cost little: the measured run is the LockStep leg, whose
  per-round tick machinery rides the same indexed in-transit pool as the
  asynchronous hot path.
"""

from conftest import report

from repro.cheaptalk import compile_theorem41
from repro.games.registry import make_game
from repro.sim import FifoScheduler, LockStep, timing_from_name


def test_timing_models_agree_and_time(benchmark):
    proto = compile_theorem41(make_game("consensus", 9), 1, 1)
    types = (0,) * 9
    rows = []
    profiles = {}
    for name in ("async", "lockstep", "bounded-8"):
        run = proto.game.run(
            types, FifoScheduler(), seed=3, timing=timing_from_name(name)
        )
        profiles[name] = run.actions
        rows.append(
            f"{name:>10}: actions={run.actions[0]}x9 "
            f"steps={run.result.steps:>5} "
            f"messages={run.result.messages_sent:>5}"
        )
        assert len(set(run.actions)) == 1, (name, run.actions)
    assert len(set(profiles.values())) == 1, profiles
    report("E-timing Thm 4.1 under pluggable timing models", rows)

    benchmark(
        lambda: proto.game.run(
            types, FifoScheduler(), seed=3, timing=LockStep()
        )
    )
