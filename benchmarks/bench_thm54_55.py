"""E7 — Theorems 5.4/5.5: cotermination, emulation, bisimulation.

Claims regenerated over a finite adversary/environment family:
* t-cotermination: in every run, either all honest players move or none;
* (ε,t)-emulation / bisimulation: cheap-talk outcome maps match the
  mediator game's under paired adversaries, within ε plus sampling noise.
"""

from conftest import report

from repro.analysis.deviations import crash, ct_crash, ct_stall_after
from repro.cheaptalk import (
    check_bisimulation,
    check_cotermination,
    check_emulation,
    compile_theorem41,
)
from repro.games.library import consensus_game
from repro.mediator import MediatorGame
from repro.sim import FifoScheduler, RandomScheduler


def test_properties(benchmark):
    rows = []
    spec = consensus_game(9)
    proto = compile_theorem41(spec, 1, 1)
    mediator = MediatorGame(spec, 1, 1)
    schedulers = [FifoScheduler(), RandomScheduler(5)]

    coterm = check_cotermination(
        proto.game,
        schedulers=schedulers,
        adversaries=[
            None,
            {8: ct_crash()},
            {7: ct_crash(), 8: ct_crash()},
            {8: ct_stall_after(spec, limit=5)},
        ],
        trials=2,
    )
    rows.append(f"t-cotermination over 4 adversaries x 2 envs: holds={coterm.holds}")
    assert coterm.holds

    pairs = [
        (None, None),
        ({8: ct_crash()}, {8: crash()}),
    ]
    emu = check_emulation(
        proto.game, mediator, schedulers, pairs, epsilon=0.0,
        samples_per_scheduler=6,
    )
    rows.append(
        f"(0,t)-emulation worst outcome distance: {emu.worst:.3f} "
        f"(tolerance-adjusted holds={emu.holds})"
    )
    assert emu.holds

    bisim = check_bisimulation(
        proto.game, mediator, schedulers, pairs, epsilon=0.0,
        samples_per_scheduler=6,
    )
    rows.append(
        f"(0,t)-bisimulation worst distance: {bisim.worst:.3f} "
        f"holds={bisim.holds}"
    )
    assert bisim.holds
    report("E7 Theorems 5.4/5.5 (cotermination, emulation, bisimulation)", rows)

    benchmark(
        lambda: check_cotermination(
            proto.game, schedulers=[FifoScheduler()], adversaries=[None],
            trials=1,
        )
    )
