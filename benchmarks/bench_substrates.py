"""E11 — Substrate scaling: RBC / ABA / ACS / AVSS message counts vs n.

Claims regenerated:
* all four substrate protocols complete under adversarial-but-fair
  environments at their design resilience (t < n/3; AVSS at t < n/4);
* per-instance message counts scale as expected (RBC ≈ O(n²),
  ABA ≈ O(n²) per round, ACS ≈ n parallel ABAs).
"""

from conftest import report

from repro.broadcast.aba import aba_sid
from repro.broadcast.acs import acs_sid
from repro.broadcast.rbc import rbc_sid
from repro.field import GF, DEFAULT_PRIME
from repro.mpc.avss import avss_sid
from repro.sim import FifoScheduler

import sys
import os

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))
from helpers import results_for, run_hosts  # noqa: E402

F = GF(DEFAULT_PRIME)


def rbc_messages(n, t):
    sid = rbc_sid(0, "x")

    def kick(host):
        if host.me == 0:
            host.open_session(sid).input("v")

    hosts, result = run_hosts(n, t, on_ready=kick)
    assert len(results_for(hosts, sid)) == n
    return result.messages_sent


def aba_messages(n, t):
    sid = aba_sid("vote")

    def kick(host):
        host.open_session(sid).propose(host.me % 2)

    hosts, result = run_hosts(n, t, on_ready=kick)
    decisions = results_for(hosts, sid)
    assert len(set(decisions.values())) == 1
    return result.messages_sent


def acs_messages(n, t):
    sid = acs_sid("round")

    def kick(host):
        acs = host.open_session(sid)
        for j in range(n):
            acs.provide_input(j)

    hosts, result = run_hosts(n, t, on_ready=kick)
    assert len(results_for(hosts, sid)) == n
    return result.messages_sent


def avss_messages(n, t):
    sid = avss_sid(0, "s")

    def kick(host):
        if host.me == 0:
            host.open_session(sid).input(17)

    hosts, result = run_hosts(n, t, on_ready=kick, config={"field": F})
    assert len(results_for(hosts, sid)) == n
    return result.messages_sent


def test_substrate_scaling(benchmark):
    rows = []
    for n, t in ((4, 1), (7, 2), (10, 3)):
        rbc = rbc_messages(n, t)
        aba = aba_messages(n, t)
        acs = acs_messages(n, t)
        rows.append(
            f"n={n:>2} t={t}: RBC={rbc:>4}  ABA={aba:>5}  ACS={acs:>6} messages"
        )
    for n, t in ((5, 1), (9, 2)):
        rows.append(f"n={n:>2} t={t}: AVSS={avss_messages(n, t):>5} messages")
    report("E11 substrate message scaling", rows)

    benchmark(lambda: rbc_messages(7, 2))
