"""E5 — Section 6.4 counterexample: leaky mediator broken, minimal fixed.

Claims regenerated (through the declarative experiment API):
* against the leaky mediator (which sends a + b·i), the odd-difference
  coalition converts every b=0 run into the 1.1 punishment outcome —
  outcome set {1.1, 2.0}, pointwise dominating honest play's {1.0, 2.0};
* against the minimally-informative transform f(σ_d), the identical attack
  machinery earns nothing — outcome set back to {1.0, 2.0} (Lemma 6.8).
"""

from statistics import mean

from conftest import report

from repro.experiments import ExperimentRunner, get_scenario


def _coalition_payoffs(result):
    # Player 0 is always a coalition member in the registered scenarios.
    return [record.payoffs[0] for record in result.records]


def test_section64_attack(benchmark):
    rows = []
    runner = ExperimentRunner()

    attack = runner.run(get_scenario("sec64-leak-attack").replace(seed_count=40))
    attacked = _coalition_payoffs(attack)
    rows.append(
        f"leaky mediator under attack:   outcomes={sorted(set(attacked))} "
        f"mean={mean(attacked):.3f}  (equilibrium 1.5 broken: 1.0 -> 1.1)"
    )
    assert set(attacked) == {1.1, 2.0}

    defense = runner.run(
        get_scenario("sec64-minimal-defense").replace(seed_count=40)
    )
    defended = _coalition_payoffs(defense)
    rows.append(
        f"minimal mediator under attack: outcomes={sorted(set(defended))} "
        f"mean={mean(defended):.3f}  (no leak, no conditioning, no profit)"
    )
    assert 1.1 not in defended

    report("E5 Section 6.4 (leaky vs minimally-informative mediator)", rows)
    bench_spec = get_scenario("sec64-leak-attack").replace(seed_count=5)
    benchmark(lambda: runner.run(bench_spec))
