"""E5 — Section 6.4 counterexample: leaky mediator broken, minimal fixed.

Claims regenerated:
* against the leaky mediator (which sends a + b·i), the odd-difference
  coalition converts every b=0 run into the 1.1 punishment outcome —
  outcome set {1.1, 2.0}, pointwise dominating honest play's {1.0, 2.0};
* against the minimally-informative transform f(σ_d), the identical attack
  machinery earns nothing — outcome set back to {1.0, 2.0} (Lemma 6.8).
"""

from statistics import mean

from conftest import report

from repro.analysis.section64 import run_attack
from repro.games.library import BOT, section64_game
from repro.mediator import LeakySection64Mediator, MediatorGame, minimally_informative
from repro.sim import FifoScheduler


def make_leaky(n=7, k=2):
    spec = section64_game(n, k=k)
    return MediatorGame(
        spec, k, 0, approach="ah",
        will=lambda pid, ty: BOT,
        mediator_factory=lambda: LeakySection64Mediator(spec, k, 0),
    )


def test_section64_attack(benchmark):
    rows = []
    leaky = make_leaky()

    attacked = run_attack(leaky, (0, 1), runs=40)
    rows.append(
        f"leaky mediator under attack:   outcomes={sorted(set(attacked))} "
        f"mean={mean(attacked):.3f}  (equilibrium 1.5 broken: 1.0 -> 1.1)"
    )
    assert set(attacked) == {1.1, 2.0}

    minimal = minimally_informative(leaky, rounds=2)
    defended = run_attack(minimal, (0, 1), runs=40)
    rows.append(
        f"minimal mediator under attack: outcomes={sorted(set(defended))} "
        f"mean={mean(defended):.3f}  (no leak, no conditioning, no profit)"
    )
    assert 1.1 not in defended

    report("E5 Section 6.4 (leaky vs minimally-informative mediator)", rows)
    benchmark(lambda: run_attack(leaky, (0, 1), runs=5))
