"""Tests for the MPC substrate: setup, wire algebra, engines, AVSS."""

import random

import pytest

from repro.circuits import Circuit
from repro.errors import ProtocolError
from repro.field import GF, SMALL_PRIME, DEFAULT_PRIME, lagrange_interpolate
from repro.mpc import MpcEngine, TrustedSetup, mpc_sid, x_of
from repro.mpc.avss import AsyncVerifiableSS, avss_sid, deal_symmetric_bivariate, row_polynomial
from repro.mpc.engine import WireShare
from repro.mpc.shamir import reconstruct, robust_reconstruct, share_secret
from repro.sim import (
    BatchRandomScheduler,
    EagerScheduler,
    FifoScheduler,
    LaggardScheduler,
    RandomScheduler,
)

from tests.helpers import CrashProcess, ScriptedByzantine, results_for, run_hosts

F = GF(DEFAULT_PRIME)

SCHEDULERS = [
    FifoScheduler(),
    RandomScheduler(17),
    EagerScheduler(),
    BatchRandomScheduler(9),
    LaggardScheduler([0]),
]


class TestShamir:
    def test_share_reconstruct_roundtrip(self):
        rng = random.Random(0)
        shares = share_secret(F, 42, 2, list(range(7)), rng)
        assert reconstruct(F, shares, 2) == F(42)

    def test_too_few_parties_rejected(self):
        with pytest.raises(ProtocolError):
            share_secret(F, 1, 3, [0, 1], random.Random(0))

    def test_reconstruct_needs_enough_shares(self):
        rng = random.Random(1)
        shares = share_secret(F, 5, 2, list(range(5)), rng)
        with pytest.raises(ProtocolError):
            reconstruct(F, {0: shares[0]}, 2)

    def test_robust_reconstruct_corrects_errors(self):
        rng = random.Random(2)
        n, t = 9, 2
        shares = share_secret(F, 77, t, list(range(n)), rng)
        shares[3] = shares[3] + F(1)
        shares[6] = F(123456)
        assert robust_reconstruct(F, shares, t, n, t) == F(77)

    def test_robust_reconstruct_waits(self):
        rng = random.Random(3)
        n, t = 9, 2
        shares = share_secret(F, 8, t, list(range(n)), rng)
        partial = {pid: shares[pid] for pid in range(t + 1)}
        assert robust_reconstruct(F, partial, t, n, t) is None

    def test_linearity(self):
        rng = random.Random(4)
        parties = list(range(5))
        s1 = share_secret(F, 10, 1, parties, rng)
        s2 = share_secret(F, 20, 1, parties, rng)
        summed = {pid: s1[pid] + s2[pid] for pid in parties}
        assert reconstruct(F, summed, 1) == F(30)


class TestTrustedSetup:
    def make(self, n=5, t=1, seed=0, with_macs=True):
        return TrustedSetup(F, list(range(n)), t, seed=seed, with_macs=with_macs)

    def test_triple_is_multiplicative(self):
        setup = self.make()
        setup.deal_triple(0)
        shares_a = {p: setup.pack_for(p).shares[("triple", 0, "a")] for p in range(5)}
        shares_b = {p: setup.pack_for(p).shares[("triple", 0, "b")] for p in range(5)}
        shares_c = {p: setup.pack_for(p).shares[("triple", 0, "c")] for p in range(5)}
        a = reconstruct(F, shares_a, 1)
        b = reconstruct(F, shares_b, 1)
        c = reconstruct(F, shares_c, 1)
        assert c == a * b

    def test_input_mask_private_value_matches_sharing(self):
        setup = self.make()
        setup.deal_input_mask(2)
        shares = {p: setup.pack_for(p).shares[("mask", 2)] for p in range(5)}
        assert reconstruct(F, shares, 1) == setup.pack_for(2).private_values[("mask", 2)]
        assert ("mask", 2) not in setup.pack_for(0).private_values

    def test_randbit_is_bit(self):
        setup = self.make()
        for i in range(8):
            setup.deal_base(("randbit", i), bit=True)
            assert int(setup.base_values[("randbit", i)]) in (0, 1)

    def test_duplicate_label_rejected(self):
        setup = self.make()
        setup.deal_base(("rand", 0))
        with pytest.raises(ProtocolError):
            setup.deal_base(("rand", 0))

    def test_mac_verifies(self):
        setup = self.make()
        setup.deal_base(("rand", 0))
        sender, verifier = 1, 3
        share = setup.pack_for(sender).shares[("rand", 0)]
        mac = setup.pack_for(sender).macs[("rand", 0)][verifier]
        vpack = setup.pack_for(verifier)
        assert mac == vpack.alpha * share + vpack.betas[(sender, ("rand", 0))]

    def test_deal_for_circuit_covers_gates(self):
        c = Circuit(F)
        i0 = c.input(0)
        i1 = c.input(1)
        m = c.mul(i0, i1)
        c.randbit()
        c.output(m, 0)
        setup = self.make()
        setup.deal_for_circuit(c)
        pack = setup.pack_for(0)
        assert ("mask", 0) in pack.shares
        assert ("triple", 0, "a") in pack.shares
        assert any(label[0] == "randbit" for label in pack.shares)


class TestWireShare:
    def setup_method(self):
        self.setup = TrustedSetup(F, list(range(5)), 1, seed=7)
        self.setup.deal_base(("rand", 0))
        self.setup.deal_base(("rand", 1))

    def test_affine_evaluation(self):
        pack = self.setup.pack_for(2)
        w = (
            WireShare.base(F, ("rand", 0)).scale(F(3))
            + WireShare.base(F, ("rand", 1))
        ).shift(F(10))
        expected = F(3) * pack.shares[("rand", 0)] + pack.shares[("rand", 1)] + F(10)
        assert w.my_value(pack) == expected

    def test_combo_cancellation(self):
        a = WireShare.base(F, ("rand", 0))
        diff = a - a
        assert diff.combo == ()
        assert diff.const == F(0)

    def test_mac_roundtrip(self):
        sender, verifier = 0, 4
        w = (
            WireShare.base(F, ("rand", 0)).scale(F(5))
            + WireShare.base(F, ("rand", 1)).scale(F(2))
        ).shift(F(9))
        spack = self.setup.pack_for(sender)
        vpack = self.setup.pack_for(verifier)
        value = w.my_value(spack)
        mac = w.my_mac_for(verifier, spack)
        assert w.verify_mac(sender, value, mac, vpack)
        assert not w.verify_mac(sender, value + F(1), mac, vpack)
        assert not w.verify_mac(sender, value, mac + F(1), vpack)

    def test_reconstructs_across_parties(self):
        w = (WireShare.base(F, ("rand", 0)) + WireShare.base(F, ("rand", 1))).shift(F(4))
        shares = {p: w.my_value(self.setup.pack_for(p)) for p in range(5)}
        expected = (
            self.setup.base_values[("rand", 0)]
            + self.setup.base_values[("rand", 1)]
            + F(4)
        )
        assert reconstruct(F, shares, 1) == expected


def build_demo_circuit(n):
    """Outputs: sum of inputs to player 0, product of first two to player 1,
    xor of first two (bits) to everyone."""
    c = Circuit(F, "demo")
    ins = [c.input(p) for p in range(n)]
    total = c.sum_many(ins)
    prod = c.mul(ins[0], ins[1])
    xor = c.b_xor(ins[0], ins[1])
    c.output(total, 0, "sum")
    c.output(prod, 1, "prod")
    for p in range(n):
        c.output(xor, p, f"xor@{p}")
    return c


def run_engine(
    n,
    t,
    circuit,
    inputs,
    mode="bcg",
    scheduler=None,
    seed=0,
    byzantine=None,
    engine_overrides=None,
    defaults=None,
):
    """Run one MPC evaluation; returns ({pid: outputs}, RunResult, setup)."""
    setup = TrustedSetup(F, list(range(n)), t, seed=seed)
    setup.deal_for_circuit(circuit)
    sid = mpc_sid("test")
    engine_overrides = engine_overrides or {}

    def kick(host):
        cls = engine_overrides.get(host.me)
        host.open_session(sid, cls=cls) if cls else host.open_session(sid)

    base_config = {
        "circuit": circuit,
        "field": F,
        "engine_mode": mode,
        "default_inputs": defaults or {p: 0 for p in range(n)},
    }

    # Per-host configs differ (setup pack + own input), so build hosts here
    # rather than via the shared helper.
    from repro.broadcast import SessionHost
    from repro.sim import Runtime

    byzantine = byzantine or {}
    hosts, processes = {}, {}
    for pid in range(n):
        if pid in byzantine:
            processes[pid] = byzantine[pid]
            continue
        config = dict(base_config)
        config.update(setup.host_config(pid))
        config["mpc_input"] = inputs.get(pid)
        host = SessionHost(pid, list(range(n)), config, on_ready=kick)
        hosts[pid] = host
        processes[pid] = host
    runtime = Runtime(processes, scheduler or FifoScheduler(), seed=seed,
                      step_limit=600_000)
    result = runtime.run()
    outputs = {pid: host.results.get(sid) for pid, host in hosts.items()}
    engines = {
        pid: host.sessions.get(sid) for pid, host in hosts.items()
    }
    return outputs, result, setup, engines


class TestEngineHonest:
    @pytest.mark.parametrize("scheduler", SCHEDULERS, ids=lambda s: s.name)
    @pytest.mark.parametrize("mode,n,t", [("bcg", 5, 1), ("bkr", 4, 1)])
    def test_demo_circuit_all_schedulers(self, scheduler, mode, n, t):
        circuit = build_demo_circuit(n)
        inputs = {p: (p + 1) % 2 for p in range(n)}
        outputs, result, _, engines = run_engine(
            n, t, circuit, inputs, mode=mode, scheduler=scheduler
        )
        assert all(outputs[p] is not None for p in range(n))
        # Asynchronous MPC may replace up to t slow (honest) parties' inputs
        # with the public default — exactly as the paper's mediator proceeds
        # after n - k - t inputs. Compare against the agreed input set.
        agreed_sets = {engines[p].agreed_inputs for p in range(n)}
        assert len(agreed_sets) == 1  # ACS agreement
        (agreed,) = agreed_sets
        assert len(agreed) >= n - t
        effective = {
            p: inputs[p] if p in agreed else 0 for p in range(n)
        }
        assert outputs[0]["sum"] == sum(effective.values())
        assert outputs[1]["prod"] == effective[0] * effective[1]
        for p in range(n):
            assert outputs[p][f"xor@{p}"] == effective[0] ^ effective[1]

    def test_outputs_match_clear_evaluation_with_dealt_randomness(self):
        n, t = 5, 1
        c = Circuit(F, "randy")
        bit = c.randbit()
        i0 = c.input(0)
        c.output(c.b_xor(bit, i0), 2, "masked")
        outputs, _, setup, engines = run_engine(n, t, c, {0: 1})
        randomness = {
            wire: setup.base_values[("randbit", wire)]
            for wire, gate in enumerate(c.gates)
            if gate.op == "randbit"
        }
        clear = c.evaluate({0: 1}, random.Random(0), randomness=randomness)
        assert outputs[2]["masked"] == int(clear["masked"])

    def test_lookup_and_majority_circuits(self):
        n, t = 5, 1
        c = Circuit(F, "maj")
        bits = [c.input(p) for p in range(n)]
        c.output(c.majority(bits), 0, "maj")
        c.output(c.threshold(bits, 2), 1, "thr2")
        inputs = {0: 1, 1: 1, 2: 1, 3: 0, 4: 0}
        outputs, _, _, engines = run_engine(n, t, c, inputs)
        assert outputs[0]["maj"] == 1
        assert outputs[1]["thr2"] == 1

    def test_t_zero_single_party_world(self):
        c = Circuit(F, "solo")
        i0 = c.input(0)
        c.output(c.mul(i0, i0), 0, "sq")
        outputs, _, _, engines = run_engine(2, 0, c, {0: 6})
        assert outputs[0]["sq"] == 36


class TestEngineFaults:
    def test_crashed_input_player_gets_default(self):
        n, t = 5, 1
        circuit = build_demo_circuit(n)
        inputs = {p: 1 for p in range(n)}
        outputs, result, _, engines = run_engine(
            n, t, circuit, inputs, byzantine={4: CrashProcess()},
            defaults={p: 0 for p in range(n)},
        )
        assert outputs[0] is not None
        # Player 4's input replaced by default 0: sum is 4, not 5.
        assert outputs[0]["sum"] == 4

    def test_crashed_non_input_player_tolerated(self):
        n, t = 5, 1
        c = Circuit(F, "pair")
        i0, i1 = c.input(0), c.input(1)
        c.output(c.mul(i0, i1), 0, "prod")
        outputs, result, _, engines = run_engine(
            n, t, c, {0: 3, 1: 7}, byzantine={3: CrashProcess()}
        )
        assert outputs[0]["prod"] == 21

    @pytest.mark.parametrize("mode,n,t", [("bcg", 5, 1), ("bkr", 4, 1)])
    def test_wrong_shares_defeated(self, mode, n, t):
        """A liar corrupting every opening share cannot corrupt outputs."""

        class LyingEngine(MpcEngine):
            def _ensure_open(self, key, share, private_to=None):
                opening = self._opening(key, private_to)
                if opening.announced:
                    return
                opening.announced = True
                opening.mine = share
                value = share.my_value(self.pack) + F(3)  # lie
                recipients = [private_to] if private_to is not None else self.peers
                for recipient in recipients:
                    mac = None
                    if self.mode == "bkr":
                        mac = share.my_mac_for(recipient, self.pack)  # stale MAC
                    self.send(
                        recipient,
                        ("osh", key, int(value), None if mac is None else int(mac)),
                    )
                self._try_resolve(key)

        circuit = build_demo_circuit(n)
        inputs = {p: 1 for p in range(n)}
        liar = n - 1
        outputs, result, _, engines = run_engine(
            n, t, circuit, inputs, mode=mode,
            engine_overrides={liar: LyingEngine},
        )
        honest = [p for p in range(n) if p != liar]
        assert outputs[0]["sum"] == n  # all inputs arrived (liar's RBC was honest)
        assert outputs[1]["prod"] == 1
        for p in honest:
            assert outputs[p][f"xor@{p}"] == 0

    def test_bcg_bound_enforced(self):
        # The engine enforces the soundness bound n > 3t; 3t < n <= 4t is
        # the deliberately-allowed Theorem 4.4 regime (deadlockable but
        # never wrong), so n=4, t=1 runs while n=3, t=1 must refuse.
        with pytest.raises(ProtocolError):
            run_engine(3, 1, build_demo_circuit(3), {p: 0 for p in range(3)},
                       mode="bcg")
        outputs, _, _, _ = run_engine(
            4, 1, build_demo_circuit(4), {p: 0 for p in range(4)}, mode="bcg"
        )
        assert outputs[0]["sum"] == 0

    def test_missing_input_rejected(self):
        c = Circuit(F, "needy")
        c.output(c.input(0), 0, "echo")
        with pytest.raises(ProtocolError):
            run_engine(5, 1, c, {})


class TestAVSS:
    def run_avss(self, n, t, secret=11, scheduler=None, byzantine=None,
                 dealer=0, seed=0):
        sid = avss_sid(dealer, "s")

        def kick(host):
            if host.me == dealer:
                host.open_session(sid).input(secret)

        hosts, result = run_hosts(
            n, t, on_ready=kick, config={"field": F},
            byzantine=byzantine, scheduler=scheduler, seed=seed,
        )
        return hosts, result, sid

    @pytest.mark.parametrize("scheduler", SCHEDULERS, ids=lambda s: s.name)
    def test_honest_dealer_all_complete_consistently(self, scheduler):
        n, t, secret = 5, 1, 29
        hosts, _, sid = self.run_avss(n, t, secret, scheduler=scheduler)
        shares = results_for(hosts, sid)
        assert set(shares) == set(range(n))
        points = [(x_of(p), F(v)) for p, v in sorted(shares.items())][: t + 1]
        assert lagrange_interpolate(F, points)(0) == F(secret)

    def test_crashed_dealer_nobody_completes(self):
        hosts, result, sid = self.run_avss(5, 1, byzantine={0: CrashProcess()})
        assert results_for(hosts, sid) == {}
        assert not result.deadlocked or result.steps < 10_000

    def test_row_withheld_by_network_recovery(self):
        """The victim's row is never delivered; it recovers from READY rows.

        This exercises AVSS *totality*: an honest dealer sends every row,
        but the (relaxed) environment withholds the dealer's messages to
        party 2 forever. Party 2 must still complete, by recovering its row
        from a pairwise-consistent subset of READY rows.
        """
        from repro.sim import DropPlanRelaxedScheduler

        n, t, secret = 5, 1, 3
        sid = avss_sid(0, "s")

        def kick(host):
            if host.me == 0:
                host.open_session(sid).input(secret)

        scheduler = DropPlanRelaxedScheduler(
            FifoScheduler(),
            should_drop=lambda m: m.sender == 0 and m.recipient == 2,
        )
        hosts, _ = run_hosts(
            n, t, on_ready=kick, config={"field": F}, scheduler=scheduler
        )
        shares = results_for(hosts, sid)
        assert set(shares) >= {1, 2, 3, 4}
        points = [(x_of(p), F(v)) for p, v in sorted(shares.items())][: t + 1]
        assert lagrange_interpolate(F, points)(0) == F(secret)

    def test_corrupt_points_tolerated(self):
        """A non-dealer party sending junk points cannot block completion."""
        n, t, secret = 5, 1, 15
        sid = avss_sid(0, "s")

        def junk(ctx, sender, payload):
            if sender is None:
                for p in range(n):
                    if p != 4:
                        ctx.send(p, (sid, ("pt", 123456789)))

        def kick(host):
            if host.me == 0:
                host.open_session(sid).input(secret)

        hosts, _ = run_hosts(
            n, t, on_ready=kick, config={"field": F},
            byzantine={4: ScriptedByzantine(junk)},
        )
        shares = results_for(hosts, sid)
        assert set(shares) == {0, 1, 2, 3}
        points = [(x_of(p), F(v)) for p, v in sorted(shares.items())][: t + 1]
        assert lagrange_interpolate(F, points)(0) == F(secret)

    def test_non_dealer_cannot_input(self):
        sid = avss_sid(0, "s")

        def kick(host):
            if host.me == 1:
                with pytest.raises(ProtocolError):
                    host.open_session(sid).input(5)

        run_hosts(3, 0, on_ready=kick, config={"field": F})
