"""Tests for the TimingModel API: LockStep, BoundedDelay, parity, registry."""

import pytest

from repro.errors import ExperimentError, SimulationError, StepLimitExceeded
from repro.experiments import ScenarioSpec, expand_grid, run_scenario
from repro.sim import (
    Asynchronous,
    BoundedDelay,
    FifoScheduler,
    FuncProcess,
    LaggardScheduler,
    LockStep,
    Process,
    Runtime,
    register_timing,
    timing_from_name,
)


class TestTimingRegistry:
    def test_fixed_names(self):
        assert isinstance(timing_from_name("async"), Asynchronous)
        assert isinstance(timing_from_name("asynchronous"), Asynchronous)
        assert isinstance(timing_from_name("lockstep"), LockStep)
        assert isinstance(timing_from_name("sync"), LockStep)

    def test_bounded_parses_parameters(self):
        model = timing_from_name("bounded-8")
        assert isinstance(model, BoundedDelay)
        assert model.d == 8 and model.gst == 0
        model = timing_from_name("bounded-8@100")
        assert model.d == 8 and model.gst == 100

    def test_name_round_trips(self):
        for name in ("bounded-8", "bounded-8@100"):
            assert timing_from_name(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(SimulationError):
            timing_from_name("warp")
        with pytest.raises(SimulationError):
            timing_from_name("bounded-x")
        with pytest.raises(SimulationError):
            timing_from_name("bounded-4@y")

    def test_register_custom_model(self):
        register_timing("test-instant", Asynchronous)
        assert isinstance(timing_from_name("test-instant"), Asynchronous)
        with pytest.raises(SimulationError):
            register_timing("test-instant", Asynchronous)

    def test_bad_parameters_rejected(self):
        with pytest.raises(SimulationError):
            BoundedDelay(0)
        with pytest.raises(SimulationError):
            BoundedDelay(4, gst=-1)
        with pytest.raises(SimulationError):
            LockStep(max_rounds=0)


class Relay(Process):
    """Forward a token down the chain 0 -> 1 -> ... -> n-1."""

    def __init__(self, n):
        self.n = n

    def on_start(self, ctx):
        if ctx.pid == 0:
            ctx.send(1, "token")

    def on_message(self, ctx, sender, payload):
        nxt = ctx.pid + 1
        if nxt < self.n:
            ctx.send(nxt, payload)
        else:
            ctx.output("done")
        ctx.halt()


class TestLockStepKernel:
    def test_one_hop_per_round(self):
        n = 5
        timing = LockStep()
        procs = {pid: Relay(n) for pid in range(n)}
        result = Runtime(procs, FifoScheduler(), timing=timing).run()
        assert result.outputs == {n - 1: "done"}
        # The token needs one round per hop (n - 1 hops), plus round 0.
        assert timing.rounds_completed() >= n - 1

    def test_ticks_observed_by_live_processes(self):
        ticks = []

        class Ticker(Process):
            def on_start(self, ctx):
                if ctx.pid == 0:
                    ctx.send(1, "a")

            def on_message(self, ctx, sender, payload):
                if payload == "a":
                    ctx.send(0, "b")

            def on_tick(self, ctx, round_no):
                ticks.append((ctx.pid, round_no))

        Runtime(
            {0: Ticker(), 1: Ticker()}, FifoScheduler(), timing=LockStep()
        ).run()
        # Two payload rounds happened; every live process saw every boundary.
        assert (0, 1) in ticks and (1, 1) in ticks
        assert (0, 2) in ticks and (1, 2) in ticks

    def test_max_rounds_raises(self):
        forever = FuncProcess(
            on_start=lambda ctx: ctx.send(0, "x"),
            on_message=lambda ctx, s, p: ctx.send(0, "x"),
        )
        with pytest.raises(StepLimitExceeded):
            Runtime(
                {0: forever}, FifoScheduler(), timing=LockStep(max_rounds=5)
            ).run()

    def test_soft_step_limit_returns_result(self):
        forever = FuncProcess(
            on_start=lambda ctx: ctx.send(0, "x"),
            on_message=lambda ctx, s, p: ctx.send(0, "x"),
        )
        result = Runtime(
            {0: forever}, FifoScheduler(), timing=LockStep(max_rounds=5),
            raise_on_step_limit=False,
        ).run()
        assert result.steps <= 6  # a round per step here; no exception

    def test_no_round_fires_when_all_mail_was_discarded(self):
        rounds_seen = []

        class Talker(Process):
            def on_start(self, ctx):
                ctx.send(1, "late")

            def on_message(self, ctx, sender, payload):  # pragma: no cover
                pass

            def on_tick(self, ctx, round_no):
                rounds_seen.append(round_no)

        quitter = FuncProcess(on_start=lambda ctx: ctx.halt())
        result = Runtime(
            {0: Talker(), 1: quitter}, FifoScheduler(), timing=LockStep()
        ).run()
        # Player 1 halted in round 0, so the only message of round 1 was
        # discarded: the legacy synchronous loop never executed a mail-less
        # round, and neither does the kernel.
        assert rounds_seen == []
        assert result.messages_dropped == 1

    def test_message_driven_processes_ignore_ticks(self):
        done = FuncProcess(
            on_start=lambda ctx: ctx.send(0, "x"),
            on_message=lambda ctx, s, p: (ctx.output("ok"), ctx.halt()),
        )
        result = Runtime({0: done}, FifoScheduler(), timing=LockStep()).run()
        assert result.outputs == {0: "ok"}


class Pinger(Process):
    """Everyone pings everyone; count pongs (from test_sim_runtime)."""

    def __init__(self, peers, expected):
        self.peers = peers
        self.expected = expected
        self.pongs = 0
        self.pings = 0

    def on_start(self, ctx):
        for peer in self.peers:
            if peer != ctx.pid:
                ctx.send(peer, ("ping", ctx.pid))

    def on_message(self, ctx, sender, payload):
        if payload[0] == "ping":
            ctx.send(sender, ("pong", ctx.pid))
            self.pings += 1
        else:
            self.pongs += 1
        if self.pongs == self.expected and self.pings == self.expected:
            if not ctx.has_output():
                ctx.output(self.pongs)
            ctx.halt()


def ping_world(n):
    peers = list(range(n))
    return {pid: Pinger(peers, n - 1) for pid in peers}


def max_latency(result):
    """Max (delivery step - send step) over protocol messages in the trace."""
    send_step = {
        e.uid: e.step for e in result.trace.sends()
    }
    return max(
        (e.step - send_step[e.uid])
        for e in result.trace.deliveries()
        if e.uid in send_step
    )


class TestBoundedDelay:
    def test_outputs_match_async_for_huge_bound(self):
        sched = LaggardScheduler([0])
        base = Runtime(ping_world(4), sched, seed=7).run()
        bounded = Runtime(
            ping_world(4), LaggardScheduler([0]), seed=7,
            timing=BoundedDelay(10**9),
        ).run()
        assert bounded.outputs == base.outputs
        assert max_latency(bounded) == max_latency(base)

    def test_huge_gst_defers_the_bound(self):
        base = Runtime(ping_world(4), LaggardScheduler([0]), seed=3).run()
        deferred = Runtime(
            ping_world(4), LaggardScheduler([0]), seed=3,
            timing=BoundedDelay(1, gst=10**9),
        ).run()
        assert max_latency(deferred) == max_latency(base)

    def test_degrades_monotonically_in_d(self):
        """The adversary's achievable starvation grows with the bound d."""
        latencies = []
        for d in (1, 4, 16, 64):
            result = Runtime(
                ping_world(5), LaggardScheduler([0]), seed=2,
                timing=BoundedDelay(d),
            ).run()
            assert result.outputs == {pid: 4 for pid in range(5)}
            latencies.append(max_latency(result))
        assert latencies == sorted(latencies)
        # A tight bound really does rein the laggard scheduler in.
        unbounded = Runtime(
            ping_world(5), LaggardScheduler([0]), seed=2
        ).run()
        assert latencies[0] < max_latency(unbounded)


class TestSyncAsyncParity:
    """Satellite: the canonical Thm 4.1 scenario across timing models."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_lockstep_matches_async_fifo_output_profile(self, seed):
        from repro.cheaptalk import compile_theorem41
        from repro.games.registry import make_game

        proto = compile_theorem41(make_game("consensus", 9), 1, 1)
        types = (0,) * 9
        async_run = proto.game.run(types, FifoScheduler(), seed=seed)
        lockstep_run = proto.game.run(
            types, FifoScheduler(), seed=seed, timing=LockStep()
        )
        assert async_run.actions == lockstep_run.actions
        assert len(set(lockstep_run.actions)) == 1

    def test_bounded_delay_profiles_match_async(self):
        from repro.cheaptalk import compile_theorem41
        from repro.games.registry import make_game

        proto = compile_theorem41(make_game("consensus", 9), 1, 1)
        types = (0,) * 9
        async_run = proto.game.run(types, FifoScheduler(), seed=0)
        for d in (4, 64):
            bounded = proto.game.run(
                types, FifoScheduler(), seed=0, timing=BoundedDelay(d)
            )
            assert bounded.actions == async_run.actions


class TestScenarioTimings:
    def test_spec_round_trips_with_timings(self):
        spec = ScenarioSpec(
            name="tmp-timing",
            game="consensus",
            n=9,
            timings=("async", "lockstep", "bounded-8@10"),
            record_payloads=True,
            seed_count=2,
        )
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.timings == ("async", "lockstep", "bounded-8@10")
        assert again.record_payloads is True

    def test_unknown_timing_rejected(self):
        with pytest.raises(ExperimentError):
            ScenarioSpec(
                name="bad", game="consensus", n=9, timings=("warp",)
            )

    def test_grid_includes_timing_axis(self):
        spec = ScenarioSpec(
            name="tmp-grid",
            game="consensus",
            n=9,
            timings=("async", "lockstep"),
            schedulers=("fifo", "random"),
            seed_count=3,
        )
        tasks = expand_grid(spec)
        assert len(tasks) == spec.grid_size() == 2 * 2 * 3
        assert {t.timing for t in tasks} == {"async", "lockstep"}

    def test_r1_rejects_timing_grid(self):
        spec = ScenarioSpec(
            name="tmp-r1",
            game="consensus",
            n=7,
            theorem="r1",
            timings=("lockstep",),
        )
        with pytest.raises(ExperimentError):
            expand_grid(spec)

    def test_r1_records_lockstep_timing(self):
        spec = ScenarioSpec(
            name="tmp-r1-ok", game="consensus", n=7, theorem="r1"
        )
        tasks = expand_grid(spec)
        assert all(t.timing == "lockstep" for t in tasks)

    def test_record_payloads_captures_trace(self):
        from repro.experiments import ExperimentResult

        spec = ScenarioSpec(
            name="tmp-trace",
            game="chicken",
            n=2,
            theorem="mediator",
            k=1,
            t=0,
            record_payloads=True,
        )
        result = run_scenario(spec)
        record = result.records[0]
        assert record.ok, record
        kinds = {event[1] for event in record.trace}
        assert "send" in kinds and "deliver" in kinds
        assert any(event[6] is not None for event in record.trace
                   if event[1] == "deliver")
        again = ExperimentResult.from_json(result.to_json())
        assert again.records[0].trace == record.trace

    def test_timing_sweep_scenario_runs(self):
        from repro.experiments import get_scenario

        spec = get_scenario("thm41-timing-models").replace(
            schedulers=("fifo",), timings=("lockstep", "bounded-8"),
            seed_count=1,
        )
        result = run_scenario(spec)
        assert result.agreement_rate() == 1.0
        assert {r.timing for r in result.records} == {"lockstep", "bounded-8"}
