"""Contract tests for the scheduler zoo."""

import pytest

from repro.sim import (
    BatchRandomScheduler,
    EagerScheduler,
    FifoScheduler,
    LaggardScheduler,
    Process,
    RandomScheduler,
    RelaxedScheduler,
    Runtime,
    RushingScheduler,
    scheduler_zoo,
)
from repro.sim.network import MessageView, Network


def mk(uid, sender=0, recipient=1, batch=0):
    return MessageView(uid=uid, sender=sender, recipient=recipient,
                       send_step=0, batch=batch)


class TestChooseContracts:
    @pytest.mark.parametrize(
        "scheduler",
        [FifoScheduler(), RandomScheduler(0), EagerScheduler(),
         BatchRandomScheduler(0), LaggardScheduler([1])],
        ids=lambda s: s.name,
    )
    def test_empty_pool_returns_none(self, scheduler):
        scheduler.reset(0)
        assert scheduler.choose([], 0) is None

    @pytest.mark.parametrize(
        "scheduler",
        [FifoScheduler(), RandomScheduler(0), EagerScheduler(),
         BatchRandomScheduler(0), LaggardScheduler([1])],
        ids=lambda s: s.name,
    )
    def test_always_picks_an_existing_uid(self, scheduler):
        scheduler.reset(0)
        pool = [mk(3), mk(7, recipient=2), mk(9, sender=1)]
        for step in range(10):
            uid = scheduler.choose(pool, step)
            assert uid in {3, 7, 9}

    def test_fifo_order(self):
        sched = FifoScheduler()
        assert sched.choose([mk(5), mk(2), mk(9)], 0) == 2

    def test_random_deterministic_per_reset(self):
        a = RandomScheduler(3)
        a.reset(11)
        pool = [mk(i) for i in range(10)]
        seq_a = [a.choose(pool, s) for s in range(5)]
        a.reset(11)
        seq_b = [a.choose(pool, s) for s in range(5)]
        assert seq_a == seq_b

    def test_eager_drains_one_recipient(self):
        sched = EagerScheduler()
        sched.reset(0)
        pool = [mk(1, recipient=1), mk(2, recipient=2), mk(3, recipient=1)]
        first = sched.choose(pool, 0)
        assert first == 1  # lowest recipient chosen, lowest uid within it
        pool2 = [mk(2, recipient=2), mk(3, recipient=1)]
        assert sched.choose(pool2, 1) == 3  # stays on recipient 1

    def test_laggard_defers_victims(self):
        sched = LaggardScheduler([2])
        pool = [mk(1, recipient=2), mk(5, recipient=1)]
        assert sched.choose(pool, 0) == 5
        only_victim = [mk(1, recipient=2)]
        assert sched.choose(only_victim, 0) == 1  # must deliver eventually

    def test_laggard_senders_mode(self):
        sched = LaggardScheduler([2], lag_senders=True)
        pool = [mk(1, sender=2, recipient=0), mk(5, sender=0, recipient=1)]
        assert sched.choose(pool, 0) == 5

    def test_batch_random_finishes_batches(self):
        sched = BatchRandomScheduler(0)
        sched.reset(0)
        pool = [mk(1, batch=10), mk(2, batch=10), mk(3, batch=20)]
        first = sched.choose(pool, 0)
        batch = 10 if first in (1, 2) else 20
        rest = [m for m in pool if m.uid != first]
        second = sched.choose(rest, 1)
        same_batch_left = [m for m in rest if m.batch == batch]
        if same_batch_left:
            assert second == min(m.uid for m in same_batch_left)


class TestRelaxed:
    def test_counts_deliveries(self):
        sched = RelaxedScheduler(FifoScheduler(), deliveries_before_stop=2)
        sched.reset(0)
        pool = [mk(i) for i in range(5)]
        assert sched.choose(pool, 0) == 0
        assert sched.choose(pool, 1) == 0
        assert sched.choose(pool, 2) is None

    def test_reset_restores_budget(self):
        sched = RelaxedScheduler(FifoScheduler(), deliveries_before_stop=1)
        sched.reset(0)
        assert sched.choose([mk(1)], 0) == 1
        assert sched.choose([mk(2)], 1) is None
        sched.reset(1)
        assert sched.choose([mk(3)], 0) == 3

    def test_is_relaxed_flags(self):
        assert RelaxedScheduler(FifoScheduler(), 1).is_relaxed()
        assert not FifoScheduler().is_relaxed()


class Chatty(Process):
    """Randomized workload: a burst at start, one relay per delivery."""

    def __init__(self, n, budget=12):
        self.n = n
        self.budget = budget

    def on_start(self, ctx):
        for _ in range(3):
            ctx.send(ctx.rng.randrange(self.n), ("chat", ctx.pid))

    def on_message(self, ctx, sender, payload):
        if self.budget > 0:
            self.budget -= 1
            ctx.send(ctx.rng.randrange(self.n), ("chat", ctx.pid))


def _registered_schedulers(n):
    from repro.experiments.schedulers import (
        SCHEDULER_BUILDERS,
        scheduler_from_name,
    )

    return [(name, scheduler_from_name(name, n)) for name in
            sorted(SCHEDULER_BUILDERS)]


class TestDrainContract:
    """Satellite: every registered non-relaxed scheduler must eventually
    deliver every message — the ``Scheduler.choose`` contract, enforced
    empirically on a randomized workload instead of only by construction."""

    def test_non_relaxed_schedulers_drain_everything(self):
        n = 6
        for name, scheduler in _registered_schedulers(n):
            if scheduler.is_relaxed():
                continue
            result = Runtime(
                {pid: Chatty(n) for pid in range(n)}, scheduler, seed=11
            ).run()
            assert result.messages_dropped == 0, name
            assert result.messages_delivered == result.messages_sent, name

    def test_zoo_schedulers_drain_everything(self):
        n = 6
        for scheduler in scheduler_zoo(seed=3, parties=range(n)):
            result = Runtime(
                {pid: Chatty(n) for pid in range(n)}, scheduler, seed=5
            ).run()
            assert result.messages_dropped == 0, scheduler.name
            assert (
                result.messages_delivered == result.messages_sent
            ), scheduler.name

    def test_relaxed_registered_schedulers_flagged(self):
        # Relaxed entries in the registry must say so, since the drain
        # contract intentionally skips them.
        relaxed = [name for name, s in _registered_schedulers(6)
                   if s.is_relaxed()]
        assert relaxed == ["colluding"]


class TestTransitViewFastPaths:
    """The indexed TransitView answers must match the legacy list scans."""

    def _network(self):
        net = Network()
        # A mix of recipients/senders/batches, some removed to exercise
        # bucket cleanup.
        layout = [
            (0, 1, 10), (1, 2, 10), (2, 0, 11), (1, 0, 12), (3, 2, 12),
            (2, 1, 13), (0, 2, 13), (3, 0, 14), (1, 3, 14), (2, 3, 15),
        ]
        for sender, recipient, batch in layout:
            net.send(sender, recipient, "x", 0, batch)
        net.deliver(1, 1)
        net.drop(4)
        net.deliver(0, 2)
        return net

    def _fresh_pairs(self):
        return [
            (FifoScheduler(), FifoScheduler()),
            (RandomScheduler(7), RandomScheduler(7)),
            (EagerScheduler(), EagerScheduler()),
            (BatchRandomScheduler(7), BatchRandomScheduler(7)),
            (LaggardScheduler([0]), LaggardScheduler([0])),
            (LaggardScheduler([2], lag_senders=True),
             LaggardScheduler([2], lag_senders=True)),
            (RushingScheduler([3]), RushingScheduler([3])),
            (RushingScheduler([0, 2]), RushingScheduler([0, 2])),
        ]

    def test_view_choice_matches_legacy_choice(self):
        for fast, legacy in self._fresh_pairs():
            net = self._network()
            fast.reset(9)
            legacy.reset(9)
            for step in range(len(net)):
                view_pick = fast.choose(net.view(), step)
                list_pick = legacy.choose(net.in_transit_views(), step)
                assert view_pick == list_pick, type(fast).__name__
                net.deliver(view_pick, step)
            assert fast.choose(net.view(), 99) is None

    def test_view_is_a_sequence(self):
        net = self._network()
        view = net.view()
        assert len(view) == 7
        assert [m.uid for m in view] == sorted(m.uid for m in view)
        assert view[0].uid == min(view.uids())
        assert view.min_uid() == view[0].uid


class TestZoo:
    def test_zoo_contains_variety(self):
        zoo = scheduler_zoo(seed=0, parties=range(6))
        names = {s.name for s in zoo}
        assert "fifo" in names
        assert any(name.startswith("laggard") for name in names)
        assert len(zoo) >= 7

    def test_zoo_without_parties(self):
        zoo = scheduler_zoo(seed=0)
        assert all(not s.name.startswith("laggard") for s in zoo)
