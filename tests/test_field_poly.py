"""Unit and property tests for polynomials, interpolation, and BW decoding."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DecodingError, FieldError
from repro.field import (
    GF,
    SMALL_PRIME,
    Polynomial,
    berlekamp_welch,
    lagrange_coefficients_at_zero,
    lagrange_interpolate,
    robust_interpolate,
)

F = GF(SMALL_PRIME)

coeff_lists = st.lists(
    st.integers(min_value=0, max_value=SMALL_PRIME - 1), min_size=0, max_size=6
)


def poly_from(coeffs):
    return Polynomial.from_ints(F, coeffs)


class TestPolynomialBasics:
    def test_zero_polynomial_degree(self):
        assert Polynomial.zero(F).degree == -1
        assert Polynomial.zero(F).is_zero()

    def test_normalization_strips_trailing_zeros(self):
        p = Polynomial.from_ints(F, [1, 2, 0, 0])
        assert p.degree == 1

    def test_evaluation_horner(self):
        p = poly_from([1, 2, 3])  # 1 + 2x + 3x^2
        assert p(0) == F(1)
        assert p(1) == F(6)
        assert p(2) == F(1 + 4 + 12)

    def test_evaluate_many(self):
        p = poly_from([5])
        assert p.evaluate_many([1, 2, 3]) == [F(5)] * 3

    def test_random_constant_pins_secret(self):
        rng = random.Random(3)
        p = Polynomial.random(F, 3, rng, constant=F(42))
        assert p(0) == F(42)

    def test_mixed_field_rejected(self):
        other = Polynomial.from_ints(GF(7), [1])
        with pytest.raises(FieldError):
            poly_from([1]) + other

    def test_divmod_roundtrip(self):
        a = poly_from([1, 2, 3, 4])
        b = poly_from([2, 1])
        q, r = a.divmod(b)
        assert q * b + r == a
        assert r.degree < b.degree

    def test_division_by_zero_rejected(self):
        with pytest.raises(FieldError):
            poly_from([1]).divmod(Polynomial.zero(F))


class TestPolynomialAlgebra:
    @given(coeff_lists, coeff_lists)
    def test_addition_commutative(self, a, b):
        assert poly_from(a) + poly_from(b) == poly_from(b) + poly_from(a)

    @given(coeff_lists, coeff_lists)
    def test_multiplication_commutative(self, a, b):
        assert poly_from(a) * poly_from(b) == poly_from(b) * poly_from(a)

    @given(coeff_lists, coeff_lists, st.integers(0, SMALL_PRIME - 1))
    def test_mul_evaluation_homomorphism(self, a, b, x):
        pa, pb = poly_from(a), poly_from(b)
        assert (pa * pb)(x) == pa(x) * pb(x)

    @given(coeff_lists, coeff_lists, st.integers(0, SMALL_PRIME - 1))
    def test_add_evaluation_homomorphism(self, a, b, x):
        pa, pb = poly_from(a), poly_from(b)
        assert (pa + pb)(x) == pa(x) + pb(x)

    @given(coeff_lists)
    def test_sub_self_is_zero(self, a):
        assert (poly_from(a) - poly_from(a)).is_zero()

    @given(coeff_lists, st.integers(0, SMALL_PRIME - 1))
    def test_scalar_multiplication(self, a, s):
        pa = poly_from(a)
        assert (pa * s)(1) == pa(1) * F(s)


class TestInterpolation:
    def test_exact_roundtrip(self):
        p = poly_from([3, 1, 4, 1])
        points = [(x, p(x)) for x in range(1, 5)]
        assert lagrange_interpolate(F, points) == p

    def test_duplicate_x_rejected(self):
        with pytest.raises(FieldError):
            lagrange_interpolate(F, [(1, 1), (1, 2)])

    @given(st.lists(st.integers(0, SMALL_PRIME - 1), min_size=1, max_size=5))
    @settings(max_examples=40)
    def test_roundtrip_random(self, coeffs):
        p = poly_from(coeffs)
        deg = max(p.degree, 0)
        points = [(x, p(x)) for x in range(1, deg + 2)]
        assert lagrange_interpolate(F, points) == p

    def test_coefficients_at_zero(self):
        p = poly_from([7, 3, 2])
        xs = [1, 2, 3]
        lambdas = lagrange_coefficients_at_zero(F, xs)
        total = F(0)
        for lam, x in zip(lambdas, xs):
            total = total + lam * p(x)
        assert total == p(0)


class TestBerlekampWelch:
    def _noisy_points(self, p, n_points, corrupt_at, rng):
        points = []
        for x in range(1, n_points + 1):
            y = p(x)
            if x in corrupt_at:
                y = y + F(rng.randrange(1, SMALL_PRIME))
            points.append((x, y))
        return points

    def test_no_errors_fast_path(self):
        p = poly_from([1, 2, 3])
        points = [(x, p(x)) for x in range(1, 8)]
        assert berlekamp_welch(F, points, degree=2, max_errors=2) == p

    def test_corrects_single_error(self):
        rng = random.Random(0)
        p = poly_from([9, 8, 7])
        points = self._noisy_points(p, 7, {3}, rng)
        assert berlekamp_welch(F, points, degree=2, max_errors=2) == p

    def test_corrects_max_errors(self):
        rng = random.Random(1)
        p = poly_from([5, 4, 3])  # degree 2, e=2 -> need 7 points
        points = self._noisy_points(p, 7, {2, 5}, rng)
        assert berlekamp_welch(F, points, degree=2, max_errors=2) == p

    def test_insufficient_points_rejected(self):
        p = poly_from([1, 1, 1])
        points = [(x, p(x)) for x in range(1, 6)]
        with pytest.raises(DecodingError):
            berlekamp_welch(F, points, degree=2, max_errors=2)

    def test_too_many_errors_detected(self):
        rng = random.Random(2)
        p = poly_from([1, 2])
        # degree 1, 5 points supports 2 errors; corrupt 3 in a structured way
        points = []
        bad_poly = poly_from([7, 9])
        for x in range(1, 6):
            src = bad_poly if x <= 3 else p
            points.append((x, src(x)))
        result_ok = True
        try:
            decoded = berlekamp_welch(F, points, degree=1, max_errors=2)
            # If decoding "succeeds", it must have found the majority poly.
            result_ok = decoded in (p, bad_poly)
        except DecodingError:
            pass
        assert result_ok

    @given(
        st.lists(st.integers(0, SMALL_PRIME - 1), min_size=3, max_size=3),
        st.sets(st.integers(1, 9), max_size=2),
        st.integers(0, 2**16),
    )
    @settings(max_examples=40)
    def test_property_decode_with_errors(self, coeffs, corrupt, seed):
        rng = random.Random(seed)
        p = poly_from(coeffs)
        points = self._noisy_points(p, 9, corrupt, rng)
        assert berlekamp_welch(F, points, degree=2, max_errors=2) == p


class TestRobustInterpolate:
    def test_waits_for_enough_points(self):
        p = poly_from([2, 3])
        pts = [(1, p(1)), (2, p(2))]
        # degree 1, t=1: need agreement on deg+t+1 = 3 points minimum
        assert robust_interpolate(F, pts, 1, total_parties=5, max_faulty=1) is None

    def test_decodes_clean(self):
        p = poly_from([2, 3])
        pts = [(x, p(x)) for x in range(1, 4)]
        got = robust_interpolate(F, pts, 1, total_parties=5, max_faulty=1)
        assert got == p

    def test_rejects_ambiguous_then_accepts(self):
        p = poly_from([2, 3])
        # One corrupted point among 3 is ambiguous for degree 1, t=1
        pts = [(1, p(1)), (2, p(2)), (3, p(3) + F(1))]
        assert robust_interpolate(F, pts, 1, total_parties=5, max_faulty=1) is None
        pts.append((4, p(4)))
        pts.append((5, p(5)))
        got = robust_interpolate(F, pts, 1, total_parties=5, max_faulty=1)
        assert got == p

    def test_never_returns_wrong_polynomial(self):
        rng = random.Random(9)
        for trial in range(25):
            coeffs = [rng.randrange(SMALL_PRIME) for _ in range(3)]
            p = poly_from(coeffs)
            n, t = 9, 2
            xs = list(range(1, n + 1))
            rng.shuffle(xs)
            bad = set(xs[:t])
            pts = []
            for x in xs:
                y = p(x) if x not in bad else F(rng.randrange(SMALL_PRIME))
                pts.append((x, y))
                got = robust_interpolate(F, pts, 2, total_parties=n, max_faulty=t)
                if got is not None:
                    assert got == p
