"""Tests for AVSS public reconstruction and the Prop 6.6 ε-tightening."""

import pytest

from repro.errors import GameError
from repro.field import GF, DEFAULT_PRIME
from repro.games import BayesianGame, ConstantStrategy, StrategyProfile, TypeSpace
from repro.games.solution import tighten_epsilon
from repro.mpc.avss import avss_open_sid, avss_sid
from repro.sim import FifoScheduler, RandomScheduler

from tests.helpers import ScriptedByzantine, results_for, run_hosts

F = GF(DEFAULT_PRIME)


class TestAvssReconstruction:
    def run_share_and_open(self, n, t, secret, byzantine=None, scheduler=None):
        share_sid = avss_sid(0, "s")
        open_sid = avss_open_sid(0, "s")

        def kick(host):
            def on_share(sid, share):
                host.open_session(open_sid).contribute(share)

            host.await_session(share_sid, on_share, create=True)
            if host.me == 0:
                host.open_session(share_sid).input(secret)

        hosts, _ = run_hosts(
            n, t, on_ready=kick, config={"field": F},
            byzantine=byzantine, scheduler=scheduler,
        )
        return results_for(hosts, open_sid)

    def test_share_then_reconstruct(self):
        values = self.run_share_and_open(5, 1, secret=77)
        assert values == {pid: 77 for pid in range(5)}

    def test_reconstruction_under_random_scheduler(self):
        values = self.run_share_and_open(
            5, 1, secret=31, scheduler=RandomScheduler(3)
        )
        assert set(values.values()) == {31}

    def test_wrong_share_corrected(self):
        """A party that injects a junk share into the opening is corrected."""
        share_sid = avss_sid(0, "s")
        open_sid = avss_open_sid(0, "s")

        def junk(ctx, sender, payload):
            if sender is None:
                for pid in range(5):
                    if pid != 4:
                        ctx.send(pid, (open_sid, ("share", 123456789)))

        def kick(host):
            def on_share(sid, share):
                host.open_session(open_sid).contribute(share)

            host.await_session(share_sid, on_share, create=True)
            if host.me == 0:
                host.open_session(share_sid).input(9)

        hosts, _ = run_hosts(
            5, 1, on_ready=kick, config={"field": F},
            byzantine={4: ScriptedByzantine(junk)},
        )
        values = results_for(hosts, open_sid)
        assert set(values.values()) == {9}
        assert set(values) == {0, 1, 2, 3}


class TestTightenEpsilon:
    def pd(self):
        payoffs = {
            ("C", "C"): (3.0, 3.0),
            ("C", "D"): (0.0, 4.0),
            ("D", "C"): (4.0, 0.0),
            ("D", "D"): (1.0, 1.0),
        }
        return BayesianGame(
            2, [["C", "D"]] * 2, TypeSpace.single([0, 0]),
            lambda t, a: payoffs[tuple(a)],
        )

    def test_exact_equilibrium_tightens_toward_half_epsilon(self):
        game = self.pd()
        profile = StrategyProfile([ConstantStrategy("D")] * 2)
        # Worst gain is 0 (strict equilibrium): eps0 = eps/2.
        assert tighten_epsilon(game, profile, 1, 0.4) == pytest.approx(0.2)

    def test_epsilon_equilibrium_midpoint(self):
        game = self.pd()
        profile = StrategyProfile([ConstantStrategy("C")] * 2)
        # Best unilateral gain from (C,C) is exactly 1.0.
        eps0 = tighten_epsilon(game, profile, 1, 1.5)
        assert eps0 == pytest.approx((1.5 + 1.0) / 2)
        assert eps0 < 1.5

    def test_not_epsilon_resilient_rejected(self):
        game = self.pd()
        profile = StrategyProfile([ConstantStrategy("C")] * 2)
        with pytest.raises(GameError):
            tighten_epsilon(game, profile, 1, 0.5)  # gain 1.0 >= 0.5

    def test_monotone_in_epsilon(self):
        game = self.pd()
        profile = StrategyProfile([ConstantStrategy("D")] * 2)
        assert tighten_epsilon(game, profile, 1, 0.2) < tighten_epsilon(
            game, profile, 1, 0.4
        )
