"""Tests for the canonical-form checker and trace tooling negatives."""

import pytest

from repro.games.library import consensus_game
from repro.mediator import MediatorGame, check_canonical_form
from repro.mediator.protocol import HonestMediatorPlayer, mediator_pid
from repro.sim import FifoScheduler, message_pattern
from repro.sim.trace import Trace, TraceEvent


class TestCanonicalNegatives:
    def test_missing_payloads_flagged(self):
        spec = consensus_game(4)
        game = MediatorGame(spec, k=1, t=0)
        run = game.run((0,) * 4, FifoScheduler(), seed=0)  # no payloads
        report = check_canonical_form(run.result, 4, game.mediator, 1)
        assert not report.ok
        assert any("payloads" in p for p in report.problems)

    def test_player_to_player_chatter_flagged(self):
        spec = consensus_game(4)
        med = mediator_pid(4)

        class Chatty(HonestMediatorPlayer):
            def on_start(self, ctx):
                ctx.send(1, "psst")  # violates canonical form
                super().on_start(ctx)

        game = MediatorGame(spec, k=1, t=0)
        run = game.run(
            (0,) * 4, FifoScheduler(), seed=0, record_payloads=True,
            deviations={0: lambda pid, ty: Chatty(spec, pid, ty)},
        )
        # Checking with player 0 treated as honest flags the chatter ...
        bad = check_canonical_form(run.result, 4, med, 1)
        assert not bad.ok
        # ... and exempting it (deviators are exempt by definition) passes.
        ok = check_canonical_form(run.result, 4, med, 1, honest={1, 2, 3})
        assert ok.ok, ok.problems

    def test_round_bound_violation_flagged(self):
        spec = consensus_game(4)
        game = MediatorGame(spec, k=1, t=0, rounds=3)
        run = game.run((0,) * 4, FifoScheduler(), seed=0, record_payloads=True)
        # The 3-round mediator exceeds a claimed 1-round bound.
        report = check_canonical_form(run.result, 4, game.mediator, 1)
        assert not report.ok
        # And satisfies its true bound.
        assert check_canonical_form(run.result, 4, game.mediator, 3).ok


class TestTraceTools:
    def test_note_events(self):
        trace = Trace()
        trace.note(3, "custom", {"x": 1})
        assert trace.of_kind("note")[0].pid == 3

    def test_outputs_helper(self):
        trace = Trace()
        trace.add(TraceEvent(step=1, kind="output", pid=0, payload="a"))
        assert trace.outputs() == {0: "a"}

    def test_pattern_numbers_messages_per_pair(self):
        trace = Trace()
        for uid in range(3):
            trace.add(TraceEvent(step=uid, kind="send", pid=0, sender=0,
                                 recipient=1, uid=uid))
        pattern = message_pattern(trace)
        assert pattern == (("s", 0, 1, 1), ("s", 0, 1, 2), ("s", 0, 1, 3))

    def test_pattern_interleaves_delivery(self):
        trace = Trace()
        trace.add(TraceEvent(step=0, kind="send", pid=0, sender=0,
                             recipient=1, uid=10))
        trace.add(TraceEvent(step=1, kind="deliver", pid=1, sender=0,
                             recipient=1, uid=10))
        assert message_pattern(trace) == (("s", 0, 1, 1), ("d", 0, 1, 1))
