"""Edge-case tests for the canonical mediator protocol machinery."""

import pytest

from repro.errors import MediatorError
from repro.games.library import byzantine_agreement_game, consensus_game
from repro.mediator import FnMediator, MediatorGame
from repro.mediator.protocol import HonestMediatorPlayer, mediator_pid
from repro.sim import FifoScheduler, Runtime
from repro.sim.process import FuncProcess

from tests.helpers import ScriptedByzantine


class TestFnMediatorValidation:
    def test_zero_rounds_rejected(self):
        with pytest.raises(MediatorError):
            FnMediator(consensus_game(4), 1, 0, rounds=0)

    def test_degenerate_quorum_rejected(self):
        with pytest.raises(MediatorError):
            FnMediator(consensus_game(4), 2, 2)  # quorum 0

    def test_duplicate_reports_ignored(self):
        """A player spamming round-0 reports counts once toward quorum."""
        spec = byzantine_agreement_game(5)
        game = MediatorGame(spec, k=0, t=1)
        med = mediator_pid(5)

        def spam(ctx, sender, payload):
            if sender is None:
                for _ in range(10):
                    ctx.send(med, ("report", 0, 1))

        run = game.run(
            (0, 0, 0, 0, 1), FifoScheduler(), seed=0,
            deviations={4: lambda pid, ty: ScriptedByzantine(spam)},
        )
        # Quorum is n-k-t = 4: the mediator still needed 4 distinct
        # reporters; majority of (0,0,0,0,1) is 0.
        assert run.actions[:4] == (0,) * 4

    def test_invalid_type_report_rejected(self):
        """A report outside the player's type space is invalid; the
        mediator defaults that player instead."""
        spec = byzantine_agreement_game(5)
        game = MediatorGame(spec, k=0, t=1)
        med = mediator_pid(5)

        def junk(ctx, sender, payload):
            if sender is None:
                ctx.send(med, ("report", 0, "not-a-bit"))

        run = game.run(
            (1, 1, 0, 0, 1), FifoScheduler(), seed=0,
            deviations={4: lambda pid, ty: ScriptedByzantine(junk)},
        )
        # Player 4's junk replaced by default type 0: reported profile
        # (1,1,0,0,0) -> majority 0.
        assert run.actions[:4] == (0,) * 4

    def test_inconsistent_cross_round_reports_invalid(self):
        """Canonical form requires the same type every round; flip-flopping
        makes the report set invalid and the player is defaulted."""
        spec = byzantine_agreement_game(5)
        game = MediatorGame(spec, k=0, t=1, rounds=2)
        med = mediator_pid(5)

        class FlipFlop(HonestMediatorPlayer):
            def on_message(self, ctx, sender, payload):
                if (
                    sender == med
                    and isinstance(payload, tuple)
                    and payload[0] == "round"
                ):
                    ctx.send(med, ("report", payload[1], 0))  # flip to 0
                    return
                super().on_message(ctx, sender, payload)

        run = game.run(
            (1, 1, 1, 0, 0), FifoScheduler(), seed=0,
            deviations={0: lambda pid, ty: FlipFlop(spec, pid, 1)},
        )
        # Player 0 reported 1 then 0: invalid; default 0 applies ->
        # reported (0,1,1,0,0) -> majority 0.
        assert run.actions[1:] == (0,) * 4

    def test_malformed_messages_ignored(self):
        spec = consensus_game(4)
        game = MediatorGame(spec, k=1, t=0)
        med = mediator_pid(4)

        def garbage(ctx, sender, payload):
            if sender is None:
                ctx.send(med, "not-a-tuple")
                ctx.send(med, ("report",))
                ctx.send(med, ("report", 99, 0))
                ctx.send(med, ("report", 0, 0))  # finally a valid one

        run = game.run(
            (0,) * 4, FifoScheduler(), seed=0,
            deviations={3: lambda pid, ty: ScriptedByzantine(garbage)},
        )
        assert len(set(run.actions[:3])) == 1

    def test_mediator_ignores_messages_after_stop(self):
        spec = consensus_game(4)
        mediator = FnMediator(spec, 1, 0)
        game = MediatorGame(spec, 1, 0, mediator_factory=lambda: mediator)
        run = game.run((0,) * 4, FifoScheduler(), seed=0)
        assert mediator.stopped
        assert len(set(run.actions)) == 1


class TestHonestPlayer:
    def test_ignores_non_mediator_chatter(self):
        spec = consensus_game(4)
        game = MediatorGame(spec, k=1, t=0)

        def whisper(ctx, sender, payload):
            if sender is None:
                for pid in range(3):
                    ctx.send(pid, ("stop", 1))  # forged stop from a player

        run = game.run(
            (0,) * 4, FifoScheduler(), seed=0,
            deviations={3: lambda pid, ty: ScriptedByzantine(whisper)},
        )
        # Honest players moved only on the real mediator's stop: common bit.
        assert len(set(run.actions[:3])) == 1

    def test_will_is_consulted_only_without_output(self):
        spec = consensus_game(4)
        player = HonestMediatorPlayer(spec, 0, 0, will=lambda p, t: 1)
        assert player.on_deadlock(0) == 1
        no_will = HonestMediatorPlayer(spec, 0, 0)
        assert no_will.on_deadlock(0) is None
