"""Tests for the durable result store (``repro.store``).

The invariants under test are the ones the job service and CLI dedup
build on: identical cells are answered from the store and never
re-simulated; stored documents come back byte-identical; rows are
immutable once written (first writer wins); and two processes writing
disjoint cells into one WAL database produce one consistent merged view.
"""

import os
import subprocess
import sys
import pathlib

import pytest

from repro.errors import StoreError
from repro.experiments import ExperimentRunner, get_scenario
from repro.experiments.runner import expand_grid
from repro.store import ResultStore, open_store, resolve_store_path
from repro.store.core import ENV_STORE, SCHEMA_VERSION
from repro.store.fingerprint import (
    audit_fingerprint,
    run_fingerprint,
    spec_fingerprint,
)

SRC = pathlib.Path(__file__).resolve().parents[1] / "src"

CHEAP = "raw-chicken-matrix"  # 4-cell grid, no simulation: fast
OTHER = "chicken-mediator"


def small(name: str, seeds: int = 1):
    return get_scenario(name).replace(seed_count=seeds)


# -- path resolution ----------------------------------------------------------

class TestPathResolution:
    def test_explicit_beats_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(ENV_STORE, "/env/store.sqlite")
        assert resolve_store_path("/cli/s.sqlite", "/d.sqlite") == "/cli/s.sqlite"
        assert resolve_store_path(None, "/d.sqlite") == "/env/store.sqlite"
        monkeypatch.delenv(ENV_STORE)
        assert resolve_store_path(None, "/d.sqlite") == "/d.sqlite"
        assert resolve_store_path(None, None) is None

    def test_open_store_returns_none_without_a_path(self, monkeypatch):
        monkeypatch.delenv(ENV_STORE, raising=False)
        assert open_store(None, default=None) is None

    def test_open_store_opens_the_resolved_path(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with open_store(str(path)) as store:
            assert store.path == str(path)
        assert path.exists()


# -- schema and immutability --------------------------------------------------

class TestSchema:
    def test_schema_version_mismatch_is_an_error(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with ResultStore(path) as store:
            store._conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION + 1),),
            )
            store._conn.commit()
        with pytest.raises(StoreError, match="schema version"):
            ResultStore(path)

    def test_records_are_immutable_once_written(self, tmp_path):
        spec = small(CHEAP)
        with ExperimentRunner() as runner:
            result = runner.run(spec)
        first, second = result.records[0], result.records[1]
        with ResultStore(str(tmp_path / "s.sqlite")) as store:
            assert store.put_records([("fp", first)]) == 1
            # Same key, different record: the write is a silent no-op.
            assert store.put_records([("fp", second)]) == 0
            assert store.fetch_records(["fp"])["fp"] == first

    def test_result_documents_are_immutable(self, tmp_path):
        with ResultStore(str(tmp_path / "s.sqlite")) as store:
            assert store.put_result("fp", "scenario", "a", "one", 1)
            assert not store.put_result("fp", "scenario", "a", "two", 1)
            assert store.fetch_result("fp") == "one"


# -- record round trip and dedup ----------------------------------------------

class TestRecordDedup:
    def test_runner_store_round_trip_and_reuse(self, tmp_path):
        spec = small(OTHER)
        with ResultStore(str(tmp_path / "s.sqlite")) as store:
            with ExperimentRunner() as runner:
                cold = runner.run(spec, store=store)
                assert cold.stats["store"] == {
                    "hits": 0,
                    "misses": len(cold.records),
                    "stored": len(cold.records),
                }
                warm = runner.run(spec, store=store)
            assert warm.stats["store"]["hits"] == len(cold.records)
            assert warm.stats["store"]["misses"] == 0
            assert warm.stats["store"]["stored"] == 0
        # The dedup'd grid is the simulated grid, record for record
        # (RunRecord equality excludes wall-clock duration).
        with ExperimentRunner() as runner:
            reference = runner.run(spec)
        assert warm.records == reference.records

    def test_partial_overlap_simulates_only_the_missing_cells(self, tmp_path):
        one_seed = small(OTHER, seeds=1)
        two_seeds = small(OTHER, seeds=2)
        with ResultStore(str(tmp_path / "s.sqlite")) as store:
            with ExperimentRunner() as runner:
                runner.run(one_seed, store=store)
                grown = runner.run(two_seeds, store=store)
        grid_one = len(expand_grid(one_seed))
        grid_two = len(expand_grid(two_seeds))
        assert grown.stats["store"]["hits"] == grid_one
        assert grown.stats["store"]["misses"] == grid_two - grid_one

    def test_query_records_filters(self, tmp_path):
        spec = small(OTHER)
        with ResultStore(str(tmp_path / "s.sqlite")) as store:
            with ExperimentRunner() as runner:
                result = runner.run(spec, store=store)
            assert len(store.query_records()) == len(result.records)
            assert store.query_records(scenario="nope") == []
            fifo = store.query_records(scenario=spec.name, scheduler="fifo")
            assert fifo and all(r.scheduler == "fifo" for r in fifo)
            assert len(store.query_records(limit=2)) == 2
            summary = store.summary()
            assert summary["runs"] == len(result.records)
            assert summary["by_scenario"] == {spec.name: len(result.records)}


# -- fingerprints -------------------------------------------------------------

class TestFingerprints:
    def test_run_fingerprints_distinguish_every_cell(self):
        spec = small(OTHER, seeds=2)
        tasks = expand_grid(spec)
        fps = {run_fingerprint(spec, task) for task in tasks}
        assert len(fps) == len(tasks)

    def test_spec_fingerprint_is_sensitive_to_the_spec(self):
        base = small(OTHER)
        assert spec_fingerprint(base) == spec_fingerprint(small(OTHER))
        assert spec_fingerprint(base) != spec_fingerprint(
            base.replace(seed_count=3)
        )
        assert spec_fingerprint(base) != spec_fingerprint(small(CHEAP))

    def test_run_fingerprints_are_sensitive_to_runtime_and_latency(self):
        """--store dedup must never conflate sim and net cells (inv. 9)."""
        spec = small(OTHER)
        task = expand_grid(spec)[0]
        sim_fp = run_fingerprint(spec, task)
        net_spec = spec.replace(runtime="net", latency="lognormal@m5s2")
        net_task = expand_grid(net_spec)[0]
        net_fp = run_fingerprint(net_spec, net_task)
        assert sim_fp != net_fp
        other_latency = net_spec.replace(latency="fixed-3")
        assert run_fingerprint(
            other_latency, expand_grid(other_latency)[0]
        ) not in (sim_fp, net_fp)
        tcp_spec = net_spec.replace(runtime="net-tcp")
        assert run_fingerprint(
            tcp_spec, expand_grid(tcp_spec)[0]
        ) not in (sim_fp, net_fp)

    def test_cell_keys_are_sensitive_to_runtime_and_latency(self):
        from repro.experiments.cache import CellKey

        spec = small(OTHER)
        task = expand_grid(spec)[0]
        net_spec = spec.replace(runtime="net", latency="fixed-2")
        net_task = expand_grid(net_spec)[0]
        sim_key = CellKey.for_task(spec, task)
        net_key = CellKey.for_task(net_spec, net_task)
        assert sim_key != net_key
        # But prepared artifacts are substrate-blind: the cache sub-keys
        # share compilations across runtimes.
        assert sim_key.protocol_key() == net_key.protocol_key()
        assert sim_key.game_key() == net_key.game_key()

    def test_audit_fingerprint_separates_kinds(self):
        from repro.audit.registry import AuditSpec

        spec = AuditSpec(name="x", scenario=OTHER)
        one = audit_fingerprint(spec, (1,), (0,), "audit")
        assert one == audit_fingerprint(spec, (1,), (0,), "audit")
        assert one != audit_fingerprint(spec, (1,), (0,), "frontier")
        assert one != audit_fingerprint(spec, (2,), (0,), "audit")


# -- result-level get_or_run --------------------------------------------------

class TestGetOrRun:
    def test_hit_is_byte_identical_and_simulates_nothing(self, tmp_path):
        spec = small(OTHER)
        with ResultStore(str(tmp_path / "s.sqlite")) as store:
            cold = store.get_or_run(spec)
            assert not cold.hit
            # No runner argument: a hit must not need one, because it
            # does zero simulation work.
            warm = store.get_or_run(spec)
            assert warm.hit
            assert warm.text == cold.text
            assert warm.fingerprint == cold.fingerprint
            assert warm.result == cold.result
            assert store.counters()["result_hits"] == 1
        # The stored document round-trips losslessly.
        assert warm.result.to_json(indent=2) == warm.text

    def test_hit_reports_full_progress(self, tmp_path):
        spec = small(CHEAP)
        seen = []
        with ResultStore(str(tmp_path / "s.sqlite")) as store:
            store.get_or_run(spec)
            store.get_or_run(spec, progress=lambda d, t: seen.append((d, t)))
        total = len(expand_grid(spec))
        assert seen == [(total, total)]

    def test_accepts_registry_names(self, tmp_path):
        with ResultStore(str(tmp_path / "s.sqlite")) as store:
            outcome = store.get_or_run(CHEAP)
            assert outcome.result.spec.name == CHEAP
            assert store.get_or_run(CHEAP).hit


# -- concurrent writers -------------------------------------------------------

_WRITER = """
import sys
from repro.experiments import ExperimentRunner, get_scenario
from repro.store import ResultStore

path, name = sys.argv[1], sys.argv[2]
spec = get_scenario(name).replace(seed_count=1)
with ResultStore(path) as store:
    outcome = store.get_or_run(spec)
print(outcome.fingerprint)
"""


class TestConcurrentWriters:
    def test_two_processes_merge_into_one_consistent_view(self, tmp_path):
        """Two processes write disjoint cells into one WAL store."""
        path = str(tmp_path / "shared.sqlite")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER, path, name],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for name in (CHEAP, OTHER)
        ]
        outs = []
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            outs.append(out.strip())
        assert outs[0] != outs[1]
        cheap_grid = len(expand_grid(small(CHEAP)))
        other_grid = len(expand_grid(small(OTHER)))
        with ResultStore(path) as store:
            summary = store.summary()
            assert summary["runs"] == cheap_grid + other_grid
            assert summary["by_scenario"] == {
                CHEAP: cheap_grid,
                OTHER: other_grid,
            }
            assert summary["results"] == 2
            # Both documents are hits now — and the merged store answers
            # each with the exact bytes its writer stored.
            for name in (CHEAP, OTHER):
                outcome = store.get_or_run(small(name))
                assert outcome.hit
