"""Property-based protocol tests: invariants over random schedules/seeds.

Hypothesis drives the *environment* here: random scheduler seeds and
delivery disciplines explore the asynchronous interleaving space, and the
protocol invariants (agreement, validity, totality, correctness of shared
computation) must hold on every explored path.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.broadcast.aba import aba_sid
from repro.broadcast.rbc import rbc_sid
from repro.circuits import Circuit
from repro.field import GF, DEFAULT_PRIME
from repro.sim import BatchRandomScheduler, RandomScheduler

from tests.helpers import results_for, run_hosts
from tests.test_mpc import run_engine

F = GF(DEFAULT_PRIME)

seeds = st.integers(0, 10_000)
fast = settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRbcProperties:
    @given(seeds, seeds)
    @fast
    def test_agreement_and_validity_under_random_schedules(self, sseed, rseed):
        sid = rbc_sid(0, "x")

        def kick(host):
            if host.me == 0:
                host.open_session(sid).input(("payload", 42))

        hosts, _ = run_hosts(
            4, 1, on_ready=kick, scheduler=RandomScheduler(sseed), seed=rseed
        )
        delivered = results_for(hosts, sid)
        assert set(delivered.values()) == {("payload", 42)}
        assert set(delivered) == {0, 1, 2, 3}


class TestAbaProperties:
    @given(seeds, st.lists(st.integers(0, 1), min_size=4, max_size=4))
    @fast
    def test_agreement_and_validity(self, seed, inputs):
        sid = aba_sid("v")

        def kick(host):
            host.open_session(sid).propose(inputs[host.me])

        hosts, _ = run_hosts(
            4, 1, on_ready=kick, scheduler=BatchRandomScheduler(seed),
            seed=seed,
        )
        decisions = results_for(hosts, sid)
        assert len(decisions) == 4
        values = set(decisions.values())
        assert len(values) == 1
        (decided,) = values
        assert decided in set(inputs)  # validity: some party proposed it


class TestEngineProperties:
    @given(seeds, st.lists(st.integers(0, 1), min_size=5, max_size=5))
    @fast
    def test_sum_circuit_correct_modulo_input_agreement(self, seed, inputs):
        circuit = Circuit(F, "sum")
        ins = [circuit.input(p) for p in range(5)]
        circuit.output(circuit.sum_many(ins), 0, "sum")
        outputs, _, _, engines = run_engine(
            5, 1, circuit, dict(enumerate(inputs)),
            scheduler=RandomScheduler(seed), seed=seed,
        )
        agreed = engines[0].agreed_inputs
        assert agreed is not None
        assert len(agreed) >= 4
        expected = sum(inputs[p] for p in agreed if p < 5)
        assert outputs[0]["sum"] == expected

    @given(seeds)
    @fast
    def test_product_circuit_deterministic_per_seed(self, seed):
        circuit = Circuit(F, "prod")
        a, b = circuit.input(0), circuit.input(1)
        circuit.output(circuit.mul(a, b), 0, "p")
        first, _, _, _ = run_engine(5, 1, circuit, {0: 1, 1: 1}, seed=seed)
        second, _, _, _ = run_engine(5, 1, circuit, {0: 1, 1: 1}, seed=seed)
        assert first[0] == second[0]


class TestEglProperties:
    @given(seeds)
    @fast
    def test_both_parties_decode_the_same_cell(self, seed):
        from repro.baselines import run_egl
        from repro.games.library import chicken_game

        spec = chicken_game()
        actions, messages = run_egl(spec, epsilon=0.3, seed=seed)
        assert actions in set(spec.mediator_dist((0, 0)))
        assert messages >= 2
        assert messages % 2 == 0  # one exchange per round
