"""Clean twin for the ``unsorted-set-iteration`` rule."""


class Router:
    def __init__(self, pids):
        self.members = set(pids)

    def fanout(self, payload, extra):
        sends = []
        for pid in sorted(self.members):         # explicit order
            sends.append((pid, payload))
        waiting = frozenset(extra)
        if payload in waiting:                   # membership: order-free
            sends.append((-1, payload))
        total = sum(waiting)                     # order-insensitive consumer
        quorum = any(p > 3 for p in waiting)     # genexp inside any(): fine
        low = min({1, 2, 3})                     # order-insensitive consumer
        return sends, total, quorum, low
