"""Seeded violation for the ``id-ordering`` rule."""


def stable_order(processes):
    by_identity = {id(p): p for p in processes}      # id() keying
    return sorted(processes, key=id)                 # key=id ordering
