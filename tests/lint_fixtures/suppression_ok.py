"""Valid suppressions: justified, same-line and line-above forms."""


def debug_label(obj):
    return id(obj)  # repro-lint: disable=id-ordering -- debug label only, never ordered or persisted


def debug_pair(a, b):
    # repro-lint: disable=id-ordering -- comparing identity is the point here
    return id(a) == id(b)
