"""Clean twin for the ``json-symmetry`` rule."""

import json
from dataclasses import dataclass


class RunRecord:
    def to_json(self):
        return "{}"

    @classmethod
    def from_json(cls, text):
        json.loads(text)
        return cls()


@dataclass
class Summary:
    runs: int
    seed: int

    def to_dict(self):
        return {"runs": self.runs, "seed": self.seed}

    @classmethod
    def from_dict(cls, data):
        return cls(runs=data["runs"], seed=data["seed"])
