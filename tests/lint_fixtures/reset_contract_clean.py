"""Clean twin for the ``reset-contract`` rule."""


class FairScheduler(Scheduler):                      # noqa: F821
    def __init__(self, bias):
        self.bias = bias
        self._queue = []

    def reset(self, seed):
        self._queue = []


class FixedTimingModel(BaseTimingModel):             # noqa: F821
    def __init__(self, delay):
        self.delay = delay                           # config only: no reset needed
