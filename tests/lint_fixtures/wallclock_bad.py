"""Seeded violation for the ``wallclock`` rule."""

import os
import time
import uuid
from datetime import datetime
from time import time as now


def stamp_run(record):
    record["at"] = time.time()             # wall clock
    record["mono"] = time.perf_counter()   # clock read
    record["when"] = datetime.now()        # wall clock
    record["entropy"] = os.urandom(8)      # OS entropy
    record["id"] = uuid.uuid4()            # OS-entropy id
    record["t"] = now()                    # from-import alias
    return record
