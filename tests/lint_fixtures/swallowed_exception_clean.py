"""Clean twin for the ``swallowed-exception`` rule."""


def drain(queue):
    try:
        return queue.pop()
    except IndexError:
        return None


def deliver(message, transport, log):
    try:
        transport.post(message)
    except Exception as exc:
        log.append(f"post failed: {exc}")
        raise


def close(writer):
    try:
        writer.close()
    except (OSError, ConnectionResetError):
        pass  # teardown of an already-dead peer: nothing left to release
