"""Clean twin for the ``id-ordering`` rule."""


def stable_order(processes):
    by_pid = {p.pid: p for p in processes}           # stable domain key
    return sorted(processes, key=lambda p: p.pid)
