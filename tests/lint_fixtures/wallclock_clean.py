"""Clean twin for the ``wallclock`` rule: logical time only."""


def stamp_run(record, step, seed):
    record["step"] = step                  # kernel-step logical time
    record["seed"] = seed                  # identity from the seed grid
    return record
