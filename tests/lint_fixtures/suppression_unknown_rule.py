"""A suppression naming a rule that does not exist: reported."""


def fine():
    return 0  # repro-lint: disable=no-such-rule -- this rule name is a typo
