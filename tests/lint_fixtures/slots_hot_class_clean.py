"""Clean twin for the ``slots-hot-class`` rule."""

from dataclasses import dataclass


class ProbeMessage:
    __slots__ = ("sender", "payload")

    def __init__(self, sender, payload):
        self.sender = sender
        self.payload = payload


@dataclass(frozen=True, slots=True)
class DropEvent:
    uid: int
    reason: str
