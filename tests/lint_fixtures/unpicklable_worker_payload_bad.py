"""Seeded violations for the ``unpicklable-worker-payload`` rule."""


def run_all(pool, tasks):
    def score(task):
        return task * 2

    doubled = pool.map(lambda t: t + 1, tasks)
    scored = list(pool.imap_unordered(score, tasks))
    return doubled, scored
