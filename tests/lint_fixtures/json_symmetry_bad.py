"""Seeded violations for the ``json-symmetry`` rule."""

from dataclasses import dataclass


class RunRecord:
    def to_json(self):                   # no from_json: write-only format
        return "{}"


@dataclass
class Summary:
    runs: int
    seed: int

    def to_dict(self):                   # omits the ``seed`` field
        return {"runs": self.runs}

    @classmethod
    def from_dict(cls, data):
        return cls(runs=data["runs"], seed=data.get("seed", 0))
