"""Clean twin for the ``module-mutable-state`` rule."""

RULES = {}                 # ALL_CAPS import-time registry: sanctioned
_CACHE: dict = {}          # private registry, still ALL_CAPS
LIMIT = 64                 # immutable: always fine

__all__ = ["RULES", "LIMIT"]
