"""Clean twin for the ``unpicklable-worker-payload`` rule."""


def score(task):
    return task * 2


def bump(task):
    return task + 1


def run_all(pool, tasks):
    doubled = pool.map(bump, tasks)
    scored = list(pool.imap_unordered(score, tasks))
    return doubled, scored
