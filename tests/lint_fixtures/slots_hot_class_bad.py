"""Seeded violation for the ``slots-hot-class`` rule."""

from dataclasses import dataclass


class ProbeMessage:
    def __init__(self, sender, payload):
        self.sender = sender
        self.payload = payload


@dataclass(frozen=True)
class DropEvent:
    uid: int
    reason: str
