"""Seeded violation for the ``unsorted-set-iteration`` rule."""


class Router:
    def __init__(self, pids):
        self.members = set(pids)

    def fanout(self, payload, extra):
        sends = []
        for pid in self.members:                 # set attribute
            sends.append((pid, payload))
        waiting = frozenset(extra)
        order = [p for p in waiting]             # local frozenset
        first = list({1, 2, 3})                  # set display via list()
        keyed = tuple(dict(a=1).keys())          # dict.keys()
        return sends, order, first, keyed
