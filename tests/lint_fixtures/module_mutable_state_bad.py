"""Seeded violations for the ``module-mutable-state`` rule."""

cache = {}                 # lowercase module mutable: diverges per worker
pending: list = []         # annotated form
_seen = set()              # leading underscore does not make it a registry
