"""Clean twin for the ``mutable-default`` rule."""


def accumulate(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket


def tally(counts=None, *, seen=frozenset()):
    return counts or {}, seen
