"""Clean twin for the ``unseeded-random`` rule."""

import random

import numpy


def pick(items, seed):
    rng = random.Random(seed)              # explicitly seeded: fine
    winner = rng.choice(items)             # instance draw: fine
    gen = numpy.random.default_rng(seed)   # seeded generator: fine
    return winner, gen.random()
