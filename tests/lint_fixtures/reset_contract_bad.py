"""Seeded violation for the ``reset-contract`` rule."""


class DriftScheduler(Scheduler):                     # noqa: F821
    def __init__(self, bias):
        self.bias = bias
        self._queue = []
        self._step = 0
    # no reset(): cached instances leak _queue/_step across runs


class JitterTimingModel(BaseTimingModel):            # noqa: F821
    def __init__(self):
        self._pending = {}
