"""A suppression without a justification: reported, suppresses nothing."""


def debug_label(obj):
    return id(obj)  # repro-lint: disable=id-ordering
