"""Seeded violations for the ``swallowed-exception`` rule."""


def drain(queue):
    try:
        return queue.pop()
    except:  # noqa: E722
        pass


def deliver(message, transport):
    try:
        transport.post(message)
    except Exception:
        pass


def close(writer):
    try:
        writer.close()
    except (OSError, Exception):
        ...
