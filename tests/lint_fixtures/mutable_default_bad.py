"""Seeded violations for the ``mutable-default`` rule."""


def accumulate(item, bucket=[]):
    bucket.append(item)
    return bucket


def tally(counts={}, *, seen=set()):
    return counts, seen


merge = lambda items, acc=[]: acc + items  # noqa: E731
