"""Seeded violation for the ``unseeded-random`` rule."""

import random
from random import choice

import numpy


def pick(items):
    winner = random.choice(items)          # global RNG draw
    jitter = random.random()               # global RNG draw
    rng = random.Random()                  # OS-entropy seed
    alias = choice(items)                  # from-import of a global draw
    noise = numpy.random.rand(3)           # numpy global RNG
    return winner, jitter, rng, alias, noise
