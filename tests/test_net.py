"""The real-network substrate: determinism, conformance, TCP smoke.

Invariant 9: a net run must be record-equivalent to the simulated-kernel
run of the same spec. The in-memory transport is held to the strong form
(byte-identical repeats; zero latency reproduces the fifo schedule
exactly, traces included); the TCP transport to the relaxed form (payoffs
and outcome taxonomy only).
"""

import pytest

from repro.errors import ExperimentError, NetError, SimulationError, SpecError
from repro.experiments import ExperimentResult, ExperimentRunner, get_scenario
from repro.experiments.results import RunRecord
from repro.experiments.runner import expand_grid
from repro.experiments.spec import RUNTIMES, ScenarioSpec
from repro.net.conformance import (
    CONFORMANCE_FIELDS,
    check_conformance,
    conformance_diff,
    conformance_view,
)
from repro.net.latency import (
    LATENCY_BUILDERS,
    FixedLatency,
    GstLatency,
    LatencyModel,
    LogNormalLatency,
    latency_from_name,
    latency_names,
    register_latency,
)
from repro.net.runtime import NetRuntime
from repro.sim.process import Process
from repro.sim.runtime import Runtime
from repro.sim.scheduler import FifoScheduler


# -- a tiny deterministic protocol for runtime-level tests --------------------

class Pinger(Process):
    """Ping every peer, pong every ping, output after all pongs."""

    def __init__(self, peers):
        self.peers = tuple(peers)
        self.pongs = 0

    def on_start(self, ctx):
        for peer in sorted(self.peers):
            ctx.send(peer, ("ping", ctx.pid))

    def on_message(self, ctx, sender, payload):
        kind, _origin = payload
        if kind == "ping":
            ctx.send(sender, ("pong", ctx.pid))
            return
        self.pongs += 1
        if self.pongs == len(self.peers):
            ctx.output(("done", ctx.pid, ctx.rng.randrange(1000)))
            ctx.halt()


def pingers(n):
    return {
        i: Pinger([j for j in range(n) if j != i]) for i in range(n)
    }


def trace_tuples(result):
    return [
        (e.step, e.kind, e.pid, e.sender, e.recipient, e.uid)
        for e in result.trace.events
    ]


# -- latency model naming -----------------------------------------------------

class TestLatencyNames:
    def test_zero_is_registered(self):
        model = latency_from_name("zero")
        assert isinstance(model, LatencyModel)
        assert model.name == "zero"
        assert "zero" in latency_names()

    @pytest.mark.parametrize("name,cls", [
        ("fixed-3", FixedLatency),
        ("fixed-2.5", FixedLatency),
        ("lognormal@m5s2", LogNormalLatency),
        ("lognormal@m0.5s1.25", LogNormalLatency),
        ("gst-8-1@50", GstLatency),
        ("gst-0.5-2@12.5", GstLatency),
    ])
    def test_parameterized_names_round_trip(self, name, cls):
        model = latency_from_name(name)
        assert isinstance(model, cls)
        assert model.name == name
        again = latency_from_name(model.name)
        assert type(again) is type(model)

    @pytest.mark.parametrize("bad", [
        "nope", "fixed-", "fixed--1", "lognormal@m5", "gst-1-2", "",
    ])
    def test_unknown_names_raise_with_vocabulary(self, bad):
        with pytest.raises(NetError, match="unknown latency model"):
            latency_from_name(bad)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(NetError, match="already registered"):
            register_latency("zero", LatencyModel)
        assert LATENCY_BUILDERS["zero"] is LatencyModel

    def test_bad_parameters_rejected(self):
        with pytest.raises(NetError):
            FixedLatency(-1)
        with pytest.raises(NetError):
            LogNormalLatency(0, 1)
        with pytest.raises(NetError):
            GstLatency(1, -2, 0)

    def test_draws_are_per_edge_and_seeded(self):
        one, two = latency_from_name("lognormal@m5s2"), latency_from_name(
            "lognormal@m5s2"
        )
        one.reset(11)
        two.reset(11)
        a = [one.delay(0, 1, 0.0) for _ in range(5)]
        b = [two.delay(0, 1, 0.0) for _ in range(5)]
        assert a == b
        two_edge = [two.delay(1, 0, 0.0) for _ in range(5)]
        assert two_edge != b
        two.reset(12)
        assert [two.delay(0, 1, 0.0) for _ in range(5)] != b

    def test_gst_phase_shift(self):
        model = GstLatency(8, 1, 50)
        model.reset(0)
        assert model.delay(0, 1, 60.0) == 1.0
        pre = model.delay(0, 1, 10.0)
        assert 0.0 <= pre <= 8.0


# -- NetRuntime determinism ---------------------------------------------------

class TestNetRuntimeDeterminism:
    def test_zero_latency_matches_fifo_kernel_byte_for_byte(self):
        sim = Runtime(pingers(4), FifoScheduler(), seed=3).run()
        net = NetRuntime(pingers(4), latency="zero", seed=3).run()
        assert net.outputs == sim.outputs
        assert net.halted == sim.halted
        assert net.steps == sim.steps
        assert net.messages_sent == sim.messages_sent
        assert net.messages_delivered == sim.messages_delivered
        assert net.deadlocked == sim.deadlocked
        assert net.env_messages == sim.env_messages
        assert trace_tuples(net) == trace_tuples(sim)

    def test_seeded_latency_repeats_are_byte_identical(self):
        runs = [
            NetRuntime(pingers(4), latency="lognormal@m5s2", seed=9).run()
            for _ in range(2)
        ]
        assert runs[0].outputs == runs[1].outputs
        assert runs[0].steps == runs[1].steps
        assert trace_tuples(runs[0]) == trace_tuples(runs[1])

    def test_different_seeds_give_different_schedules(self):
        one = NetRuntime(pingers(4), latency="lognormal@m5s2", seed=1).run()
        two = NetRuntime(pingers(4), latency="lognormal@m5s2", seed=2).run()
        assert trace_tuples(one) != trace_tuples(two)

    def test_unknown_transport_rejected(self):
        with pytest.raises(NetError, match="unknown transport"):
            NetRuntime(pingers(2), transport="carrier-pigeon")

    def test_empty_process_set_rejected(self):
        with pytest.raises(SimulationError):
            NetRuntime({})

    def test_handler_exceptions_propagate(self):
        class Boom(Process):
            def on_start(self, ctx):
                ctx.send(ctx.pid, "fuse")

            def on_message(self, ctx, sender, payload):
                raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            NetRuntime({0: Boom()}).run()

    def test_tcp_transport_matches_outputs(self):
        sim = Runtime(pingers(3), FifoScheduler(), seed=5).run()
        net = NetRuntime(
            pingers(3), latency="fixed-2", seed=5, transport="tcp"
        ).run()
        assert net.outputs == sim.outputs
        assert net.halted == sim.halted
        assert net.messages_sent == sim.messages_sent


# -- scenario-level conformance (the PR 5/6 record-diff oracle) ---------------

class TestNetConformance:
    def test_thm41_equivalence_net_vs_sim(self):
        spec = get_scenario("thm41-equivalence").replace(
            seed_start=7, runtime="net", latency="lognormal@m5s2"
        )
        report = check_conformance(spec)
        assert report["ok"], report["diffs"]
        net = report["net"].records
        assert all(r.ok for r in net)
        assert all(r.runtime == "net" for r in net)
        assert all(r.latency == "lognormal@m5s2" for r in net)
        sim = report["sim"].records
        assert all(r.runtime == "sim" and r.latency == "zero" for r in sim)

    def test_net_repeat_invocations_are_byte_identical(self):
        spec = get_scenario("thm41-equivalence").replace(
            seed_start=7, runtime="net", latency="lognormal@m5s2"
        )
        with ExperimentRunner() as runner:
            one = runner.run(spec)
            two = runner.run(spec)
        assert one.records == two.records  # duration_s excluded by compare
        doc = ExperimentResult.from_json(one.to_json())
        assert doc.records == one.records

    def test_netcheck_family_conforms(self):
        for name in ("netcheck-thm41", "netcheck-sec64"):
            report = check_conformance(get_scenario(name))
            assert report["ok"], (name, report["diffs"])

    def test_netcheck_tcp_smoke_payoff_parity(self):
        """n=5 over real localhost sockets: relaxed (projection) equality."""
        report = check_conformance(get_scenario("netcheck-tcp"))
        assert report["ok"], report["diffs"]
        record = report["net"].records[0]
        assert record.ok and record.payoffs == report["sim"].records[0].payoffs

    def test_conformance_view_projects_order_independent_fields(self):
        record = RunRecord(
            scenario="s", theorem="4.1", scheduler="fifo",
            deviation="honest", seed=0, payoffs=(1.0,), steps=42,
            messages_sent=7,
        )
        view = conformance_view(record)
        assert set(view) == set(CONFORMANCE_FIELDS)
        assert "steps" not in view and "messages_sent" not in view

    def test_conformance_diff_reports_mismatches(self):
        a = RunRecord(scenario="s", theorem="4.1", scheduler="fifo",
                      deviation="honest", seed=0, payoffs=(1.0,))
        b = RunRecord(scenario="s", theorem="4.1", scheduler="eager",
                      deviation="honest", seed=0, payoffs=(0.5,))
        diffs = conformance_diff([a], [b])
        assert diffs and "payoffs" in diffs[0]
        assert conformance_diff([a], [a]) == []
        assert "count mismatch" in conformance_diff([a], [a, b])[0]


# -- spec axes ----------------------------------------------------------------

class TestSpecRuntimeAxes:
    def test_runtimes_vocabulary(self):
        assert RUNTIMES == ("sim", "net", "net-tcp")

    def test_defaults_are_sim_zero(self):
        spec = get_scenario("thm41-honest")
        assert spec.runtime == "sim" and spec.latency == "zero"

    def test_unknown_runtime_rejected(self):
        with pytest.raises(ExperimentError, match="unknown runtime"):
            ScenarioSpec(name="x", game="consensus", n=5, runtime="quantum")

    def test_unknown_latency_rejected(self):
        with pytest.raises(ExperimentError, match="unknown latency model"):
            ScenarioSpec(name="x", game="consensus", n=5,
                         runtime="net", latency="warp")

    def test_sim_runs_reject_latency_models(self):
        with pytest.raises(ExperimentError, match="timings axis"):
            ScenarioSpec(name="x", game="consensus", n=5, latency="fixed-1")

    def test_net_runs_reject_timing_grids(self):
        with pytest.raises(ExperimentError, match="timing models belong"):
            ScenarioSpec(name="x", game="consensus", n=5, runtime="net",
                         timings=("lockstep",))

    @pytest.mark.parametrize("theorem", ["r1", "raw-game"])
    def test_sync_theorems_reject_net_runtimes(self, theorem):
        with pytest.raises(ExperimentError, match="simulated kernel"):
            ScenarioSpec(name="x", game="chicken", n=2, theorem=theorem,
                         k=1, t=0, runtime="net",
                         action_profiles=(("D", "D"),))

    def test_expand_grid_threads_runtime_axes(self):
        spec = get_scenario("netcheck-thm41")
        tasks = expand_grid(spec)
        assert all(t.runtime == "net" for t in tasks)
        assert all(t.latency == "lognormal@m5s2" for t in tasks)
        sim_tasks = expand_grid(get_scenario("thm41-honest"))
        assert all(
            t.runtime == "sim" and t.latency == "zero" for t in sim_tasks
        )

    def test_netcheck_scenarios_registered(self):
        assert get_scenario("thm41-equivalence").runtime == "sim"
        assert get_scenario("netcheck-thm41").runtime == "net"
        assert get_scenario("netcheck-sec64").latency == "gst-8-1@50"
        assert get_scenario("netcheck-tcp").runtime == "net-tcp"
        assert get_scenario("netcheck-tcp").n == 5


# -- satellite: SpecError forward-compat --------------------------------------

class TestSpecErrorForwardCompat:
    def test_unknown_fields_raise_spec_error_listing_accepted(self):
        doc = get_scenario("thm41-honest").to_dict()
        doc["warp_factor"] = 9
        with pytest.raises(SpecError) as err:
            ScenarioSpec.from_dict(doc)
        message = str(err.value)
        assert "warp_factor" in message
        assert "accepted fields" in message
        # The listing names the real vocabulary, new axes included.
        assert "runtime" in message and "latency" in message

    def test_spec_error_is_an_experiment_error(self):
        assert issubclass(SpecError, ExperimentError)

    def test_derived_fields_still_dropped(self):
        doc = get_scenario("thm41-honest").to_dict()
        doc["mode"] = "bcg"
        doc["supported_deviations"] = ["honest"]
        spec = ScenarioSpec.from_dict(doc)
        assert spec == get_scenario("thm41-honest")

    def test_round_trip_with_runtime_axes(self):
        spec = get_scenario("netcheck-thm41")
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_pre_net_documents_parse_with_defaults(self):
        doc = get_scenario("thm41-honest").to_dict()
        del doc["runtime"], doc["latency"]
        spec = ScenarioSpec.from_dict(doc)
        assert spec.runtime == "sim" and spec.latency == "zero"


# -- records ------------------------------------------------------------------

class TestRecordRuntimeFields:
    def test_pre_net_record_documents_parse_with_defaults(self):
        record = RunRecord(scenario="s", theorem="4.1", scheduler="fifo",
                           deviation="honest", seed=0)
        doc = record.to_dict()
        del doc["runtime"], doc["latency"]
        assert RunRecord.from_dict(doc).runtime == "sim"

    def test_csv_rows_carry_runtime_and_latency(self):
        fields = ExperimentResult.CSV_FIELDS
        assert "runtime" in fields and "latency" in fields
        spec = get_scenario("netcheck-sec64")
        with ExperimentRunner() as runner:
            result = runner.run(spec)
        rows = result.csv_rows()
        assert all(len(row) == len(fields) for row in rows)
        runtime_col = fields.index("runtime")
        assert {row[runtime_col] for row in rows} == {"net"}
