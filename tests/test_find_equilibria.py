"""Tests for the pure-Nash enumeration utility."""

import pytest

from repro.games import BayesianGame, TypeSpace
from repro.games.solution import find_pure_nash


def pd_game():
    payoffs = {
        ("C", "C"): (3.0, 3.0),
        ("C", "D"): (0.0, 4.0),
        ("D", "C"): (4.0, 0.0),
        ("D", "D"): (1.0, 1.0),
    }
    return BayesianGame(
        2, [["C", "D"]] * 2, TypeSpace.single([0, 0]),
        lambda t, a: payoffs[tuple(a)],
    )


class TestFindPureNash:
    def test_prisoners_dilemma_unique(self):
        assert find_pure_nash(pd_game()) == [("D", "D")]

    def test_coordination_two_equilibria(self):
        game = BayesianGame(
            2, [[0, 1]] * 2, TypeSpace.single([0, 0]),
            lambda t, a: (1.0, 1.0) if a[0] == a[1] else (0.0, 0.0),
        )
        assert set(find_pure_nash(game)) == {(0, 0), (1, 1)}

    def test_matching_pennies_has_no_pure_equilibrium(self):
        game = BayesianGame(
            2, [["H", "T"]] * 2, TypeSpace.single([0, 0]),
            lambda t, a: (1.0, -1.0) if a[0] == a[1] else (-1.0, 1.0),
        )
        assert find_pure_nash(game) == []

    def test_bayesian_equilibrium_with_types(self):
        """One informed player: its equilibrium strategy follows its type."""
        game = BayesianGame(
            2,
            [[0, 1], [0]],
            TypeSpace.independent_uniform([[0, 1], [0]]),
            # Player 0 is paid for matching its own type; player 1 inert.
            lambda t, a: (1.0 if a[0] == t[0] else 0.0, 0.0),
        )
        equilibria = find_pure_nash(game)
        assert ({0: 0, 1: 1}, 0) in equilibria

    def test_section64_all_one_is_pure_nash(self):
        from repro.games.library import section64_game

        spec = section64_game(4, k=1)
        equilibria = find_pure_nash(spec.game)
        assert (1, 1, 1, 1) in equilibria
        # All-zero is also a Nash equilibrium (unilateral moves give <= 1).
        assert (0, 0, 0, 0) in equilibria
