"""Shared test utilities for running protocol hosts under the simulator."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.broadcast import SessionHost
from repro.sim import FifoScheduler, Process, Runtime


class CrashProcess(Process):
    """A party that never sends anything (crash fault from time zero)."""

    def on_message(self, ctx, sender, payload):
        pass


class ScriptedByzantine(Process):
    """A party driven by an explicit behaviour function.

    ``behaviour(ctx, sender, payload)`` is called for the start signal
    (``sender is None``) and for every delivered message.
    """

    def __init__(self, behaviour: Callable) -> None:
        self.behaviour = behaviour

    def on_start(self, ctx):
        self.behaviour(ctx, None, None)

    def on_message(self, ctx, sender, payload):
        self.behaviour(ctx, sender, payload)


def run_hosts(
    n: int,
    t: int,
    on_ready: Optional[Callable[[SessionHost], None]] = None,
    config: Optional[dict] = None,
    byzantine: Optional[dict[int, Process]] = None,
    scheduler=None,
    seed: int = 0,
    step_limit: int = 400_000,
):
    """Run ``n`` session hosts to quiescence; return (hosts, RunResult).

    ``byzantine`` maps pids to replacement processes (those pids get no
    SessionHost). ``on_ready`` runs on every honest host at its start
    signal.
    """
    peers = list(range(n))
    byzantine = byzantine or {}
    full_config = {"t": t, "coin_seed": 1234 + seed}
    if config:
        full_config.update(config)
    hosts: dict[int, SessionHost] = {}
    processes: dict[int, Process] = {}
    for pid in peers:
        if pid in byzantine:
            processes[pid] = byzantine[pid]
            continue
        host = SessionHost(pid, peers, full_config, on_ready=on_ready)
        hosts[pid] = host
        processes[pid] = host
    runtime = Runtime(
        processes,
        scheduler or FifoScheduler(),
        seed=seed,
        step_limit=step_limit,
    )
    result = runtime.run()
    return hosts, result


def results_for(hosts: dict, sid: tuple) -> dict[int, Any]:
    """Collect each honest host's result for session ``sid`` (if finished)."""
    return {
        pid: host.results[sid]
        for pid, host in hosts.items()
        if sid in host.results
    }
