"""Deterministic fault injection: the DSL, both substrates, the oracle.

The package turns the paper's t-resilience statements into executable
claims: a seeded :class:`FaultPlan` injected through either substrate
must (a) stay a pure function of ``(spec, seed)`` — byte-identical
repeats, invariant 1 — and (b) be *masked* by the protocol whenever the
crash count stays within the theorem's budget, and only then. The
masking oracle (``repro faults check``) is tested here at both the
trimmed-grid level and through the CLI.
"""

import json

import pytest

from repro.errors import ExperimentError, FaultError
from repro.experiments import ExperimentResult, ExperimentRunner, get_scenario
from repro.experiments.runner import expand_grid
from repro.faults import (
    CrashFault,
    DropFault,
    FaultInjector,
    FaultPlan,
    PartitionFault,
    fault_from_name,
    fault_names,
    injector_for,
    register_fault,
)
from repro.faults.masking import (
    BREAKING_PLANS,
    check_scenario,
    crash_budget,
    crashed_players,
    run_faultcheck,
)
from repro.net.conformance import check_conformance
from repro.net.runtime import NetRuntime
from repro.sim.process import Process
from repro.sim.runtime import Runtime
from repro.sim.scheduler import FifoScheduler


# -- a chatty deterministic protocol for runtime-level tests ------------------

class Gossip(Process):
    """Flood two rounds of rumors; output the sorted set heard."""

    def __init__(self, peers, rounds=2):
        self.peers = tuple(sorted(peers))
        self.rounds = rounds
        self.heard = set()

    def on_start(self, ctx):
        for peer in self.peers:
            ctx.send(peer, ("rumor", ctx.pid, 0))

    def on_message(self, ctx, sender, payload):
        _kind, origin, hop = payload
        self.heard.add(origin)
        if hop + 1 < self.rounds:
            for peer in self.peers:
                ctx.send(peer, ("rumor", origin, hop + 1))
        if len(self.heard) == len(self.peers):
            ctx.output(tuple(sorted(self.heard)))
            ctx.halt()


def gossipers(n):
    return {
        i: Gossip([j for j in range(n) if j != i]) for i in range(n)
    }


def trace_tuples(result):
    return [
        (e.step, e.kind, e.pid, e.sender, e.recipient, e.uid)
        for e in result.trace.events
    ]


def sim_run(n=4, seed=3, faults=None, **kwargs):
    return Runtime(
        gossipers(n), FifoScheduler(), seed=seed, faults=faults, **kwargs
    ).run()


# -- the plan DSL -------------------------------------------------------------

class TestPlanNames:
    ROUND_TRIPS = [
        "crash@p2s40",
        "crash-restart@p3s20r60",
        "drop-0.1",
        "dup-0.05",
        "partition@{1,2}t30h90",
        "corrupt-tcp-0.01",
        "crash@p0s5+crash@p8s9",
        "crash@p1s10+drop-0.25+partition@{0,1}t5h50",
    ]

    @pytest.mark.parametrize("name", ROUND_TRIPS)
    def test_names_round_trip(self, name):
        plan = fault_from_name(name)
        assert plan.name == name
        assert fault_from_name(plan.name) == plan

    def test_none_is_registered_and_empty(self):
        assert "none" in fault_names()
        plan = fault_from_name("none")
        assert plan.is_none
        assert plan.name == "none"

    def test_plans_are_hashable_value_objects(self):
        one = fault_from_name("crash@p2s40+drop-0.1")
        two = fault_from_name("crash@p2s40+drop-0.1")
        assert one == two and hash(one) == hash(two)
        assert one != fault_from_name("crash@p2s40+drop-0.2")
        assert {one: "x"}[two] == "x"

    @pytest.mark.parametrize("bad", [
        "crash@p2",          # missing step
        "drop-1.5",          # probability out of range
        "meteor-strike",     # unknown form
        "+",                 # no actions at all
        "partition@{}t1h2",  # empty group
    ])
    def test_malformed_names_raise_with_vocabulary(self, bad):
        with pytest.raises(FaultError):
            fault_from_name(bad)

    def test_unknown_form_message_lists_the_grammar(self):
        with pytest.raises(FaultError, match="crash@p<pid>s<step>"):
            fault_from_name("meteor-strike")

    def test_restart_must_follow_the_crash(self):
        with pytest.raises(FaultError, match="restart step"):
            CrashFault(0, 10, restart=10)

    def test_partition_heal_must_follow_the_cut(self):
        with pytest.raises(FaultError):
            PartitionFault([0, 1], 30, 30)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(FaultError, match="already registered"):
            register_fault("none", FaultPlan)

    def test_crash_pid_outside_the_process_set_rejected(self):
        with pytest.raises(FaultError, match="pid"):
            sim_run(n=4, faults="crash@p9s5")

    def test_injector_for_normalizes_every_spelling(self):
        assert injector_for(None) is None
        assert injector_for("none") is None
        assert injector_for(FaultPlan()) is None
        inj = injector_for("drop-0.1")
        assert isinstance(inj, FaultInjector)
        assert injector_for(inj) is inj


# -- determinism on both substrates -------------------------------------------

class TestChaosDeterminism:
    def test_sim_repeats_are_byte_identical(self):
        one = sim_run(faults="crash@p1s3+drop-0.3")
        two = sim_run(faults="crash@p1s3+drop-0.3")
        assert one.outputs == two.outputs
        assert trace_tuples(one) == trace_tuples(two)

    def test_different_seeds_draw_different_fates(self):
        one = sim_run(seed=1, faults="drop-0.5")
        two = sim_run(seed=2, faults="drop-0.5")
        assert trace_tuples(one) != trace_tuples(two)

    def test_faulted_zero_latency_net_matches_the_kernel(self):
        plan = "crash@p1s3+drop-0.3"
        sim = sim_run(faults=plan)
        net = NetRuntime(
            gossipers(4), latency="zero", seed=3, faults=plan
        ).run()
        assert net.outputs == sim.outputs
        assert net.halted == sim.halted
        assert net.messages_delivered == sim.messages_delivered
        assert trace_tuples(net) == trace_tuples(sim)

    def test_faulted_net_repeats_are_byte_identical(self):
        runs = [
            NetRuntime(
                gossipers(4), latency="lognormal@m5s2", seed=9,
                faults="drop-0.2+dup-0.2",
            ).run()
            for _ in range(2)
        ]
        assert runs[0].outputs == runs[1].outputs
        assert trace_tuples(runs[0]) == trace_tuples(runs[1])

    def test_faulted_grid_conforms_across_substrates(self):
        spec = get_scenario("netcheck-thm41").replace(
            deviations=("honest",), seed_count=1, latency="zero",
            faults=("crash@p0s5", "drop-0.1"),
        )
        report = check_conformance(spec)
        assert report["ok"], report["diffs"]
        assert {r.faults for r in report["net"].records} == {
            "crash@p0s5", "drop-0.1"
        }

    def test_faulted_grid_repeats_are_byte_identical(self):
        spec = get_scenario("faultcheck-sec64").replace(seed_count=1)
        with ExperimentRunner() as runner:
            one = runner.run(spec)
            two = runner.run(spec)
        assert one.records == two.records
        doc = ExperimentResult.from_json(one.to_json())
        assert doc.records == one.records


# -- fault semantics at the runtime level -------------------------------------

class TestCrashSemantics:
    def test_permanent_crash_halts_and_silences_the_pid(self):
        result = sim_run(faults="crash@p1s2")
        kinds = [(e.kind, e.pid) for e in result.trace.events]
        assert ("crash", 1) in kinds
        assert 1 in result.halted
        assert 1 not in result.outputs  # died before its output
        # The survivors still quiesce (no deadlock from the dead pid).
        assert not result.deadlocked

    def test_crash_scheduled_past_the_run_never_fires(self):
        baseline = sim_run()
        faulted = sim_run(faults="crash@p1s100000")
        assert trace_tuples(faulted) == trace_tuples(baseline)
        assert faulted.outputs == baseline.outputs

    def test_crash_restart_replays_the_inbox_and_recovers(self):
        result = sim_run(faults="crash-restart@p1s3r20")
        kinds = [(e.kind, e.pid) for e in result.trace.events]
        assert ("crash", 1) in kinds
        assert ("restart", 1) in kinds
        assert kinds.index(("restart", 1)) > kinds.index(("crash", 1))
        # The pristine copy replays its log and finishes the protocol.
        assert result.outputs[1] == (0, 2, 3)

    def test_restart_pulls_forward_when_traffic_drains(self):
        # r-step far beyond the run's natural length: quiesce-advance
        # must fire it anyway instead of deadlocking.
        result = sim_run(faults="crash-restart@p1s3r500000")
        assert ("restart", 1) in [
            (e.kind, e.pid) for e in result.trace.events
        ]
        assert not result.deadlocked


class TestPartitionSemantics:
    def test_partition_heals_and_the_run_quiesces(self):
        faulted = sim_run(faults="partition@{0,1}t2h40")
        # Cut-crossing messages are held, then released at heal: every
        # process still finishes the protocol — no deadlock, no loss.
        assert not faulted.deadlocked
        assert sorted(faulted.outputs) == [0, 1, 2, 3]

    def test_heal_past_the_run_is_pulled_forward(self):
        # h-step far beyond the run's natural length: quiesce-advance
        # fires the heal when the deliverable pool drains instead of
        # leaving the held messages stuck forever.
        faulted = sim_run(faults="partition@{0,1}t2h900000")
        assert not faulted.deadlocked
        assert sorted(faulted.outputs) == [0, 1, 2, 3]

    def test_drop_loses_messages_dup_adds_them(self):
        procs = gossipers(2)
        dropper = injector_for("drop-0.4")
        dropper.reset(0, procs)
        fates = [dropper.fate(0, 1, step)[0] for step in range(200)]
        assert fates.count("drop") > 0
        assert fates.count("deliver") > fates.count("drop")

        dupper = injector_for("dup-0.9")
        dupper.reset(0, procs)
        copies = [dupper.fate(0, 1, step)[1] for step in range(200)]
        assert copies.count(2) > copies.count(1)

    def test_fate_streams_are_seeded_per_edge(self):
        procs = gossipers(3)
        one, two, other = (injector_for("drop-0.5") for _ in range(3))
        one.reset(7, procs)
        two.reset(7, procs)
        other.reset(8, procs)
        draws = lambda inj, s, r: [
            inj.fate(s, r, step)[0] for step in range(64)
        ]
        assert draws(one, 0, 1) == draws(two, 0, 1)  # same seed: replay
        assert draws(one, 1, 2) != draws(two, 0, 1)  # independent edges
        assert draws(other, 0, 1) != draws(two, 0, 1)  # seed moves fates


# -- the faults axis through the experiment pipeline --------------------------

class TestFaultsAxis:
    def test_grid_threads_the_faults_axis(self):
        spec = get_scenario("faultcheck-sec64").replace(seed_count=1)
        tasks = expand_grid(spec)
        assert sorted({t.faults for t in tasks}) == sorted(spec.faults)

    def test_sync_theorems_reject_faults(self):
        spec = get_scenario("raw-chicken-matrix")
        with pytest.raises(ExperimentError, match="faults"):
            spec.replace(faults=("crash@p0s5",))

    def test_unknown_plan_rejected_at_spec_validation(self):
        spec = get_scenario("faultcheck-sec64")
        with pytest.raises(ExperimentError, match="unknown fault"):
            spec.replace(faults=("meteor-strike",))

    def test_records_carry_faults_through_json_and_csv(self):
        spec = get_scenario("faultcheck-sec64").replace(
            seed_count=1, faults=("none", "crash@p0s5")
        )
        with ExperimentRunner() as runner:
            result = runner.run(spec)
        again = ExperimentResult.from_json(result.to_json())
        assert again.records == result.records
        assert "faults" in ExperimentResult.CSV_FIELDS
        column = ExperimentResult.CSV_FIELDS.index("faults")
        plans = {row[column] for row in result.csv_rows()}
        assert plans == {"none", "crash@p0s5"}

    def test_fingerprints_separate_fault_plans(self):
        from repro.store.fingerprint import (
            FINGERPRINT_VERSION,
            run_fingerprint,
        )

        assert FINGERPRINT_VERSION == 3
        spec = get_scenario("faultcheck-sec64").replace(
            seed_count=1, faults=("none", "crash@p0s5")
        )
        prints = [run_fingerprint(spec, task) for task in expand_grid(spec)]
        assert len(set(prints)) == len(prints)

    def test_store_dedups_per_fault_plan(self, tmp_path):
        from repro.store import ResultStore

        spec = get_scenario("faultcheck-sec64").replace(seed_count=1)
        path = str(tmp_path / "store.sqlite")
        with ResultStore(path) as store, \
                ExperimentRunner(store=store) as runner:
            cold = runner.run(spec)
            warm = runner.run(spec)
        assert warm.records == cold.records
        assert warm.stats["store"]["hits"] == len(warm.records)
        assert warm.stats["store"]["misses"] == 0


# -- the masking oracle -------------------------------------------------------

class TestMaskingOracle:
    def test_crash_budget_is_k_plus_t_for_cheap_talk(self):
        assert crash_budget(get_scenario("faultcheck-thm41")) == 2  # k+t
        assert crash_budget(get_scenario("faultcheck-sec64")) == 2  # k
        assert crash_budget(get_scenario("raw-chicken-matrix")) == 0

    def test_crashed_players_counts_permanent_player_crashes_only(self):
        plan = "crash@p0s5+crash-restart@p2s6r40+crash@p7s0"
        # n=7: pid 7 is the mediator, crash-restart is not permanent.
        assert crashed_players(plan, 7) == (0,)
        assert crashed_players(plan, 9) == (0, 7)
        assert crashed_players("drop-0.1", 9) == ()

    def test_within_budget_crashes_mask_on_thm41(self):
        spec = get_scenario("faultcheck-thm41").replace(
            seed_count=1, faults=("crash@p0s5", "crash@p0s5+crash@p8s9")
        )
        result = check_scenario(spec, breaking=())
        assert result.ok
        assert [r.expect for r in result.reports] == ["mask", "mask"]
        assert all(r.masked for r in result.reports)

    def test_budget_plus_one_crash_breaks_thm41(self):
        # t+1 = 3 permanent crashes with n=9, k=1, t=1: honest players'
        # *actions* flip (the all-default outcome keeps payoffs flat, so
        # tightness detection must look at actions, not payoffs).
        spec = get_scenario("faultcheck-thm41").replace(
            seed_count=1, faults=("none",)
        )
        result = check_scenario(
            spec, breaking=("crash@p0s5+crash@p1s5+crash@p8s9",)
        )
        assert result.ok
        report = result.reports[0]
        assert report.expect == "break" and not report.masked
        assert {m.field for m in report.mismatches} == {"actions"}

    def test_mediator_crash_is_a_single_point_of_failure(self):
        # Sec 6.4 has t=0: the mediator (pid n) is NOT in the fault
        # budget, and killing it collapses every honest player to ⊥.
        spec = get_scenario("faultcheck-sec64").replace(
            seed_count=1, faults=("none",)
        )
        result = check_scenario(spec, breaking=("crash@p7s0",))
        assert result.ok
        report = result.reports[0]
        assert report.crashed == ()  # pid 7 == n: not a *player* crash
        assert not report.masked

    def test_describe_lines_name_the_verdict(self):
        spec = get_scenario("faultcheck-sec64").replace(
            seed_count=1, faults=("crash@p0s5",)
        )
        result = check_scenario(spec, breaking=())
        line = result.reports[0].describe()
        assert line.startswith("[ok]")
        assert "masked" in line and "budget 2" in line

    def test_run_faultcheck_defaults_to_the_registered_scenarios(self):
        assert sorted(BREAKING_PLANS) == [
            "faultcheck-sec64", "faultcheck-thm41"
        ]

    def test_desynced_grids_are_a_fault_error(self):
        from repro.faults.masking import check_plans

        spec = get_scenario("faultcheck-sec64").replace(
            seed_count=1, faults=("none", "crash@p0s5")
        )
        with ExperimentRunner() as runner:
            records = runner.run(spec).records
        faulted = [r for r in records if r.faults == "crash@p0s5"]
        with pytest.raises(FaultError, match="out of sync"):
            check_plans(spec, [], faulted, "crash@p0s5", expect="mask")


# -- the CLI ------------------------------------------------------------------

class TestFaultsCli:
    def test_faults_list_names_the_grammar_and_scenarios(self, capsys):
        from repro.cli import main

        main(["faults", "list"])
        out = capsys.readouterr().out
        assert "crash@p<pid>s<step>" in out
        assert "faultcheck-thm41" in out and "faultcheck-sec64" in out

    def test_faults_list_json_is_machine_readable(self, capsys):
        from repro.cli import main

        main(["faults", "list", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert "none" in doc["registered"]
        assert "faultcheck-sec64" in doc["faultcheck"]

    def test_faults_check_passes_on_sec64(self, capsys):
        from repro.cli import main

        main(["faults", "check", "faultcheck-sec64"])
        out = capsys.readouterr().out
        assert "5/5 plans behaved as claimed [ok]" in out

    def test_faults_check_rejects_unknown_scenarios(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["faults", "check", "no-such-scenario"])
