"""End-to-end integration stories across all layers.

Each test walks a full pipeline the way a user of the library would:
certify the ideal equilibrium, compile to cheap talk, run under a zoo of
environments and adversaries, and verify the game-theoretic claims on the
measured outcomes.
"""

import pytest

from repro.analysis import (
    DeviationTrial,
    check_empirical_robustness,
    check_implementation,
)
from repro.analysis.deviations import ct_crash, ct_misreport, misreport
from repro.cheaptalk import compile_theorem41, compile_theorem42
from repro.games import expected_utilities
from repro.games.library import byzantine_agreement_game, consensus_game
from repro.mediator import MediatorGame, check_ideal_mediator_robustness
from repro.sim import FifoScheduler, RandomScheduler, scheduler_zoo


@pytest.mark.slow
class TestFullPipelineConsensus:
    """certify -> compile -> implement -> attack, on the workhorse game."""

    def test_story(self):
        n, k, t = 9, 1, 1
        spec = consensus_game(n)

        # 1. The hypothesis of Theorem 4.1: the mediator equilibrium is
        #    (k,t)-robust. Certified exactly on a scaled-down instance
        #    (the checkers are exponential in n) ...
        assert check_ideal_mediator_robustness(consensus_game(5), k, t).holds

        # 2. ... compile to cheap talk at the paper's bound ...
        proto = compile_theorem41(spec, k, t)

        # 3. ... the compiled protocol implements the mediator game ...
        mediator = MediatorGame(spec, k, t)
        impl = check_implementation(
            proto.game, mediator,
            schedulers=[FifoScheduler(), RandomScheduler(1)],
            samples_per_scheduler=10,
        )
        assert impl.holds, (impl.distance, impl.tolerance)

        # 4. ... and the catalogued deviations do not pay.
        trials = [
            DeviationTrial("crash", {8: ct_crash()}, malicious=(8,)),
            DeviationTrial(
                "misreport", {8: ct_misreport(spec, 0)}, rational=(8,)
            ),
        ]
        rob = check_empirical_robustness(
            proto.game, trials, [FifoScheduler()], samples_per_scheduler=6
        )
        assert rob.holds, rob.findings


@pytest.mark.slow
class TestFullPipelineByzantineAgreement:
    """Typed inputs flow through AVSS-free input agreement end to end."""

    def test_majority_preserved_under_environments(self):
        n, k, t = 9, 1, 1
        spec = byzantine_agreement_game(n)
        proto = compile_theorem41(spec, k, t)
        types = (1, 1, 1, 1, 1, 1, 1, 0, 0)
        for scheduler in scheduler_zoo(seed=0, parties=range(n))[:3]:
            run = proto.game.run(types, scheduler, seed=4)
            # A strong 7-vs-2 majority survives even if ACS drops up to
            # k+t = 2 slow inputs.
            assert run.actions == (1,) * n

    def test_mediator_and_cheap_talk_agree_per_type_profile(self):
        n = 9
        spec = byzantine_agreement_game(n)
        mediator = MediatorGame(spec, 1, 1)
        proto = compile_theorem41(spec, 1, 1)
        types = (1, 1, 1, 1, 1, 1, 1, 0, 0)
        med = mediator.run(types, FifoScheduler(), seed=0)
        ct = proto.game.run(types, FifoScheduler(), seed=0)
        assert med.actions == ct.actions == (1,) * n

    def test_misreport_shifts_both_worlds_equally(self):
        """A liar about its input bit has the *same* effect in the mediator
        game and in cheap talk — the implementation preserves deviations."""
        n = 9
        spec = byzantine_agreement_game(n)
        types = (1, 1, 1, 1, 1, 0, 0, 0, 0)  # 5-4 majority of 1
        mediator = MediatorGame(spec, 1, 1)
        proto = compile_theorem41(spec, 1, 1)
        med = mediator.run(
            types, FifoScheduler(), seed=1,
            deviations={0: misreport(spec, 0)},
        )
        ct = proto.game.run(
            types, FifoScheduler(), seed=1,
            deviations={0: ct_misreport(spec, 0)},
        )
        # Reported profile 4-5: majority flips to 0 in both worlds.
        assert med.actions[1:] == (0,) * 8
        assert ct.actions[1:] == (0,) * 8


@pytest.mark.slow
class TestUtilityVariants:
    """Theorem 4.1's 'for all utility variants' clause: the compiled
    strategy does not depend on utilities, so rescaling them changes
    nothing about the outcome distribution."""

    def test_outcomes_independent_of_utilities(self):
        spec = consensus_game(9)
        proto = compile_theorem41(spec, 1, 1)
        run_a = proto.game.run((0,) * 9, FifoScheduler(), seed=5)

        variant = consensus_game(9)
        variant.game = variant.game.with_utility(
            lambda ty, a: tuple(10 * u for u in spec.game.utility(ty, a))
        )
        proto_b = compile_theorem41(variant, 1, 1)
        run_b = proto_b.game.run((0,) * 9, FifoScheduler(), seed=5)
        assert run_a.actions == run_b.actions

    def test_payoffs_scale_with_variant(self):
        spec = consensus_game(5)
        scaled = spec.game.with_utility(
            lambda ty, a: tuple(3 * u for u in spec.game.utility(ty, a))
        )
        base = spec.game.utility((0,) * 5, (1, 1, 1, 1, 1))
        new = scaled.utility((0,) * 5, (1, 1, 1, 1, 1))
        assert new == tuple(3 * u for u in base)


@pytest.mark.slow
class TestCrossLayerAccounting:
    def test_trace_messages_match_network_counter(self):
        spec = consensus_game(9)
        proto = compile_theorem41(spec, 1, 1)
        run = proto.game.run((0,) * 9, FifoScheduler(), seed=0)
        # network counter includes the n synthetic start signals, which are
        # environment moves rather than traced protocol messages.
        assert run.result.messages_sent == run.message_count() + 9
        assert (
            run.result.messages_delivered + run.result.messages_dropped
            <= run.result.messages_sent
        )

    def test_deterministic_end_to_end(self):
        spec = consensus_game(9)
        proto = compile_theorem41(spec, 1, 1)
        a = proto.game.run((0,) * 9, RandomScheduler(3), seed=9)
        b = proto.game.run((0,) * 9, RandomScheduler(3), seed=9)
        assert a.actions == b.actions
        assert a.message_count() == b.message_count()
