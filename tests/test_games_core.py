"""Tests for Bayesian games, strategies, and outcome maps."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GameError, StrategyError
from repro.games import (
    BayesianGame,
    ConstantStrategy,
    MixedStrategy,
    PureStrategy,
    StrategyProfile,
    TypeSpace,
    UniformStrategy,
    expected_utilities,
    conditional_expected_utility,
    outcome_map,
    outcome_map_distance,
    statistical_distance,
)
from repro.games.outcomes import empirical_outcome_map, empirical_utilities
from repro.games.strategies import JointDeviation, joint_action_distribution


def pd_game():
    """Classic prisoner's dilemma (complete information)."""
    payoffs = {
        ("C", "C"): (3.0, 3.0),
        ("C", "D"): (0.0, 4.0),
        ("D", "C"): (4.0, 0.0),
        ("D", "D"): (1.0, 1.0),
    }
    return BayesianGame(
        n=2,
        action_sets=[["C", "D"], ["C", "D"]],
        type_space=TypeSpace.single([0, 0]),
        utility=lambda t, a: payoffs[tuple(a)],
        name="pd",
    )


class TestTypeSpace:
    def test_single(self):
        ts = TypeSpace.single([1, 2, 3])
        assert ts.n == 3
        assert ts.profiles() == [(1, 2, 3)]
        assert ts.probability((1, 2, 3)) == 1.0

    def test_uniform(self):
        ts = TypeSpace.uniform([(0, 0), (1, 1)])
        assert ts.probability((0, 0)) == pytest.approx(0.5)

    def test_independent_uniform(self):
        ts = TypeSpace.independent_uniform([[0, 1], [0, 1]])
        assert len(ts.profiles()) == 4
        assert ts.player_types(0) == [0, 1]

    def test_distribution_must_sum_to_one(self):
        with pytest.raises(GameError):
            TypeSpace.from_dict(1, {(0,): 0.5})

    def test_wrong_arity_rejected(self):
        with pytest.raises(GameError):
            TypeSpace(2, (((0,), 1.0),))

    def test_conditional(self):
        ts = TypeSpace.independent_uniform([[0, 1], [0, 1]])
        cond = ts.conditional([0], (1,))
        assert sum(p for _, p in cond) == pytest.approx(1.0)
        assert all(profile[0] == 1 for profile, _ in cond)

    def test_conditional_zero_probability_rejected(self):
        ts = TypeSpace.single([0, 0])
        with pytest.raises(GameError):
            ts.conditional([0], (5,))

    def test_coalition_profiles(self):
        ts = TypeSpace.independent_uniform([[0, 1], [0, 1], [0]])
        assert set(ts.coalition_profiles([0, 2])) == {(0, 0), (1, 0)}


class TestBayesianGame:
    def test_utility_caching_and_shape(self):
        game = pd_game()
        assert game.utility((0, 0), ("C", "C")) == (3.0, 3.0)
        assert game.utility_of(1, (0, 0), ("C", "D")) == 4.0

    def test_wrong_utility_arity_rejected(self):
        game = BayesianGame(
            2,
            [["a"], ["a"]],
            TypeSpace.single([0, 0]),
            lambda t, a: (1.0,),
        )
        with pytest.raises(GameError):
            game.utility((0, 0), ("a", "a"))

    def test_empty_action_set_rejected(self):
        with pytest.raises(GameError):
            BayesianGame(1, [[]], TypeSpace.single([0]), lambda t, a: (0.0,))

    def test_action_set_count_must_match_n(self):
        with pytest.raises(GameError):
            BayesianGame(2, [["a"]], TypeSpace.single([0, 0]), lambda t, a: (0, 0))

    def test_utility_bound(self):
        assert pd_game().utility_bound() == 4.0

    def test_validate_action_profile(self):
        game = pd_game()
        game.validate_action_profile(("C", "D"))
        with pytest.raises(GameError):
            game.validate_action_profile(("C", "X"))

    def test_with_utility_variant(self):
        game = pd_game()
        variant = game.with_utility(lambda t, a: (0.0, 0.0))
        assert variant.utility((0, 0), ("C", "C")) == (0.0, 0.0)
        assert game.utility((0, 0), ("C", "C")) == (3.0, 3.0)

    def test_action_profiles(self):
        assert len(pd_game().action_profiles()) == 4


class TestStrategies:
    def test_constant_strategy(self):
        s = ConstantStrategy("D")
        assert s.distribution(0) == {"D": 1.0}
        assert s.action(123) == "D"

    def test_pure_strategy_from_map(self):
        s = PureStrategy.constant_map({0: "C", 1: "D"})
        assert s.action(0) == "C"
        assert s.action(1) == "D"

    def test_mixed_strategy_must_normalise(self):
        s = MixedStrategy(lambda t: {"a": 0.7})
        with pytest.raises(StrategyError):
            s.distribution(0)

    def test_uniform_strategy(self):
        s = UniformStrategy(["x", "y"])
        assert s.distribution(0) == {"x": 0.5, "y": 0.5}

    def test_sampling_deterministic(self):
        s = UniformStrategy([0, 1, 2, 3])
        a = s.sample(0, random.Random(1))
        b = s.sample(0, random.Random(1))
        assert a == b

    def test_profile_replace(self):
        profile = StrategyProfile([ConstantStrategy("C")] * 2)
        new = profile.replace({1: ConstantStrategy("D")})
        assert new[1].fixed_action == "D"
        assert profile[1].fixed_action == "C"

    def test_action_distribution_product(self):
        profile = StrategyProfile(
            [UniformStrategy(["C", "D"]), ConstantStrategy("C")]
        )
        dist = profile.action_distribution((0, 0))
        assert dist == {("C", "C"): 0.5, ("D", "C"): 0.5}

    def test_joint_deviation_correlated(self):
        profile = StrategyProfile([ConstantStrategy("C")] * 3)
        deviation = JointDeviation(
            (0, 2), lambda x: {("D", "D"): 0.5, ("C", "C"): 0.5}
        )
        dist = joint_action_distribution(profile, [deviation], (0, 0, 0))
        assert dist == {
            ("D", "C", "D"): 0.5,
            ("C", "C", "C"): 0.5,
        }

    def test_overlapping_deviations_rejected(self):
        profile = StrategyProfile([ConstantStrategy("C")] * 2)
        d1 = JointDeviation((0,), lambda x: {("D",): 1.0})
        d2 = JointDeviation((0, 1), lambda x: {("D", "D"): 1.0})
        with pytest.raises(StrategyError):
            joint_action_distribution(profile, [d1, d2], (0, 0))


class TestOutcomes:
    def test_expected_utilities_pd(self):
        game = pd_game()
        both_defect = StrategyProfile([ConstantStrategy("D")] * 2)
        assert expected_utilities(game, both_defect) == (1.0, 1.0)

    def test_expected_utilities_mixed(self):
        game = pd_game()
        profile = StrategyProfile(
            [UniformStrategy(["C", "D"]), ConstantStrategy("C")]
        )
        # 0.5*(3,3) + 0.5*(4,0)
        assert expected_utilities(game, profile) == (3.5, 1.5)

    def test_conditional_expected_utility_type_dependent(self):
        # Player 0's utility equals its own type; player 1 indifferent.
        game = BayesianGame(
            2,
            [["a"], ["a"]],
            TypeSpace.independent_uniform([[0, 1], [0]]),
            lambda t, a: (float(t[0]), 0.0),
        )
        profile = StrategyProfile([ConstantStrategy("a")] * 2)
        assert conditional_expected_utility(game, profile, 0, [0], (1,)) == 1.0
        assert conditional_expected_utility(game, profile, 0, [0], (0,)) == 0.0
        # Unconditioned on player 0's type (conditioning on player 1 only):
        assert conditional_expected_utility(game, profile, 0, [1], (0,)) == 0.5

    def test_outcome_map(self):
        game = pd_game()
        profile = StrategyProfile([ConstantStrategy("C")] * 2)
        m = outcome_map(game, profile)
        assert m == {(0, 0): {("C", "C"): 1.0}}

    def test_statistical_distance(self):
        a = {"x": 0.5, "y": 0.5}
        b = {"x": 1.0}
        assert statistical_distance(a, b) == pytest.approx(1.0)
        assert statistical_distance(a, a) == 0.0

    def test_outcome_map_distance(self):
        m1 = {(0,): {"x": 1.0}}
        m2 = {(0,): {"y": 1.0}}
        assert outcome_map_distance(m1, m2) == pytest.approx(2.0)

    @given(
        st.dictionaries(st.sampled_from("abcd"), st.floats(0, 1), max_size=4),
        st.dictionaries(st.sampled_from("abcd"), st.floats(0, 1), max_size=4),
    )
    @settings(max_examples=50)
    def test_distance_symmetry_nonnegativity(self, a, b):
        assert statistical_distance(a, b) == statistical_distance(b, a)
        assert statistical_distance(a, b) >= 0
        assert statistical_distance(a, a) == 0

    def test_empirical_outcome_map(self):
        game = pd_game()
        samples = {(0, 0): [("C", "C"), ("C", "C"), ("D", "D"), ("D", "D")]}
        m = empirical_outcome_map(game, samples)
        assert m[(0, 0)][("C", "C")] == pytest.approx(0.5)

    def test_empirical_outcome_map_empty_rejected(self):
        with pytest.raises(GameError):
            empirical_outcome_map(pd_game(), {(0, 0): []})

    def test_empirical_utilities(self):
        game = pd_game()
        samples = {(0, 0): [("C", "C"), ("D", "D")]}
        u = empirical_utilities(game, samples)
        assert u == (2.0, 2.0)
