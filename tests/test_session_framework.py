"""Tests for the session multiplexing framework (broadcast/base.py)."""

import pytest

from repro.broadcast import SESSION_REGISTRY, Session, SessionHost, register_session
from repro.errors import ProtocolError
from repro.sim import FifoScheduler, Runtime

from tests.helpers import run_hosts


@register_session("echo-test")
class EchoSession(Session):
    """Toy session: dealer (pid in sid) broadcasts; everyone echoes back;
    dealer finishes when it hears n echoes."""

    def __init__(self, host, sid):
        super().__init__(host, sid)
        self.echoes = set()

    def start(self):
        if self.me == self.sid[1]:
            self.send_all(("ping",))

    def handle(self, sender, payload):
        if payload[0] == "ping":
            self.send(self.sid[1], ("echo",))
            if self.me != self.sid[1]:
                self.finish("echoed")
        elif payload[0] == "echo" and self.me == self.sid[1]:
            self.echoes.add(sender)
            if len(self.echoes) == len(self.peers):
                self.finish("done")


class TestRegistry:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(ProtocolError):
            @register_session("echo-test")
            class Other(Session):
                pass

    def test_reregistering_same_class_is_fine(self):
        register_session("echo-test")(EchoSession)

    def test_unknown_session_type_rejected(self):
        def kick(host):
            with pytest.raises(ProtocolError):
                host.open_session(("no-such-proto", 0))

        run_hosts(2, 0, on_ready=kick)


class TestLazyInstantiation:
    def test_remote_message_creates_local_endpoint(self):
        sid = ("echo-test", 0)

        def kick(host):
            if host.me == 0:
                host.open_session(sid)

        hosts, _ = run_hosts(3, 0, on_ready=kick)
        # Parties 1 and 2 never opened the session locally, yet it exists
        # and ran to completion.
        assert hosts[1].results[sid] == "echoed"
        assert hosts[0].results[sid] == "done"

    def test_await_already_finished_fires_immediately(self):
        sid = ("echo-test", 0)
        fired = []

        def kick(host):
            if host.me == 0:
                host.open_session(sid)

        hosts, _ = run_hosts(3, 0, on_ready=kick)
        hosts[1].await_session(sid, lambda s, r: fired.append((s, r)),
                               create=False)
        assert fired == [(sid, "echoed")]

    def test_finish_is_idempotent(self):
        sid = ("echo-test", 0)

        def kick(host):
            if host.me == 0:
                session = host.open_session(sid)

        hosts, _ = run_hosts(2, 0, on_ready=kick)
        session = hosts[0].sessions[sid]
        before = session.result
        session.finish("changed")  # ignored
        assert session.result == before


class TestHostPlumbing:
    def test_plain_message_rejected_by_default(self):
        from repro.sim.process import FuncProcess

        host = SessionHost(1, [0, 1], {"t": 0})
        procs = {
            0: FuncProcess(on_start=lambda ctx: ctx.send(1, "not-a-session")),
            1: host,
        }
        with pytest.raises(ProtocolError):
            Runtime(procs, FifoScheduler()).run()

    def test_pending_sends_flush_on_next_activation(self):
        """Sends triggered outside an activation (driver callbacks) are
        queued and flushed when the host next runs."""
        sid = ("echo-test", 0)
        host = SessionHost(0, [0, 1], {"t": 0})
        peer = SessionHost(1, [0, 1], {"t": 0})
        # Queue a send before the simulation starts:
        host.session_send(sid, 1, ("ping",))
        assert host._pending_sends
        result = Runtime({0: host, 1: peer}, FifoScheduler()).run()
        assert not host._pending_sends
        assert peer.results.get(sid) == "echoed"

    def test_rng_requires_active_context(self):
        host = SessionHost(0, [0], {"t": 0})
        with pytest.raises(ProtocolError):
            host.current_rng()

    def test_config_defaults(self):
        host = SessionHost(0, [0], {})
        assert host.config["t"] == 0
