"""Tests for the arithmetic-circuit layer (builders + reference evaluation)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit
from repro.errors import MediatorError
from repro.field import GF, DEFAULT_PRIME, SMALL_PRIME

F = GF(DEFAULT_PRIME)

bits = st.integers(0, 1)


def ev(circuit, inputs, seed=0, randomness=None):
    out = circuit.evaluate(inputs, random.Random(seed), randomness=randomness)
    return {k: int(v) for k, v in out.items()}


class TestGateBasics:
    def test_const_add_sub_mul(self):
        c = Circuit(F)
        a, b = c.const(7), c.const(5)
        c.output(c.add(a, b), 0, "add")
        c.output(c.sub(a, b), 0, "sub")
        c.output(c.mul(a, b), 0, "mul")
        out = ev(c, {})
        assert (out["add"], out["sub"], out["mul"]) == (12, 2, 35)

    def test_scalar_gates(self):
        c = Circuit(F)
        a = c.const(6)
        c.output(c.smul(a, 3), 0, "smul")
        c.output(c.sadd(a, 4), 0, "sadd")
        out = ev(c, {})
        assert (out["smul"], out["sadd"]) == (18, 10)

    def test_input_gate_requires_value(self):
        c = Circuit(F)
        c.output(c.input(2), 0, "echo")
        with pytest.raises(MediatorError):
            ev(c, {})
        assert ev(c, {2: 9})["echo"] == 9

    def test_forward_reference_rejected(self):
        from repro.circuits import Gate

        c = Circuit(F)
        c.gates.append(Gate("add", (0, 1)))  # references undefined wires
        with pytest.raises(MediatorError):
            c.validate()

    def test_output_wire_bounds_checked(self):
        from repro.circuits import OutputSpec

        c = Circuit(F)
        c.const(1)
        c.outputs.append(OutputSpec(5, 0, "bad"))
        with pytest.raises(MediatorError):
            c.validate()

    def test_accounting(self):
        c = Circuit(F)
        x = c.input(0)
        y = c.input(1)
        c.mul(x, y)
        c.rand()
        c.randbit()
        c.randint(5)
        assert c.mul_count == 1
        assert c.rand_count == 1
        assert c.randbit_count == 1
        assert c.randint_count == 1
        assert c.input_players() == [0, 1]

    def test_pinned_randomness(self):
        c = Circuit(F)
        r = c.randbit()
        c.output(r, 0, "bit")
        assert ev(c, {}, randomness={r: F(1)})["bit"] == 1
        assert ev(c, {}, randomness={r: F(0)})["bit"] == 0

    def test_randint_range(self):
        c = Circuit(F)
        r = c.randint(7)
        c.output(r, 0, "r")
        values = {ev(c, {}, seed=s)["r"] for s in range(60)}
        assert values == set(range(7))

    def test_randint_bad_modulus(self):
        with pytest.raises(MediatorError):
            Circuit(F).randint(0)

    def test_output_all(self):
        c = Circuit(F)
        w = c.const(3)
        c.output_all(w, [0, 1, 2], "v")
        out = ev(c, {})
        assert out == {"v@0": 3, "v@1": 3, "v@2": 3}


class TestBooleanHelpers:
    @given(bits, bits)
    @settings(max_examples=8)
    def test_xor_and_or_not(self, x, y):
        c = Circuit(F)
        a, b = c.input(0), c.input(1)
        c.output(c.b_xor(a, b), 0, "xor")
        c.output(c.b_and(a, b), 0, "and")
        c.output(c.b_or(a, b), 0, "or")
        c.output(c.b_not(a), 0, "not")
        out = ev(c, {0: x, 1: y})
        assert out["xor"] == x ^ y
        assert out["and"] == x & y
        assert out["or"] == x | y
        assert out["not"] == 1 - x

    @given(st.lists(bits, min_size=1, max_size=6))
    @settings(max_examples=20)
    def test_xor_many(self, values):
        c = Circuit(F)
        wires = [c.input(i) for i in range(len(values))]
        c.output(c.xor_many(wires), 0, "x")
        expected = 0
        for v in values:
            expected ^= v
        assert ev(c, dict(enumerate(values)))["x"] == expected

    def test_xor_many_empty_rejected(self):
        with pytest.raises(MediatorError):
            Circuit(F).xor_many([])

    @given(bits, st.integers(0, 9), st.integers(0, 9))
    @settings(max_examples=10)
    def test_mux(self, sel, x, y):
        c = Circuit(F)
        s, a, b = c.input(0), c.input(1), c.input(2)
        c.output(c.mux(s, a, b), 0, "m")
        out = ev(c, {0: sel, 1: x, 2: y})
        assert out["m"] == (x if sel else y)


class TestLookupAndThreshold:
    @given(st.integers(0, 4))
    @settings(max_examples=10)
    def test_lookup_table(self, x):
        table = {0: 3, 1: 1, 2: 4, 3: 1, 4: 5}
        c = Circuit(F)
        a = c.input(0)
        c.output(c.lookup(a, table, list(range(5))), 0, "t")
        assert ev(c, {0: x})["t"] == table[x]

    def test_lookup_zero_table(self):
        c = Circuit(F)
        a = c.input(0)
        c.output(c.lookup(a, {}, [0, 1]), 0, "z")
        assert ev(c, {0: 1})["z"] == 0

    @given(st.integers(0, 4))
    @settings(max_examples=10)
    def test_eq_const(self, x):
        c = Circuit(F)
        a = c.input(0)
        c.output(c.eq_const(a, 2, list(range(5))), 0, "eq")
        assert ev(c, {0: x})["eq"] == (1 if x == 2 else 0)

    @given(st.lists(bits, min_size=1, max_size=7), st.integers(0, 7))
    @settings(max_examples=25)
    def test_threshold(self, values, minimum):
        c = Circuit(F)
        wires = [c.input(i) for i in range(len(values))]
        c.output(c.threshold(wires, minimum), 0, "thr")
        expected = 1 if sum(values) >= minimum else 0
        assert ev(c, dict(enumerate(values)))["thr"] == expected

    @given(st.lists(bits, min_size=1, max_size=7))
    @settings(max_examples=25)
    def test_majority(self, values):
        c = Circuit(F)
        wires = [c.input(i) for i in range(len(values))]
        c.output(c.majority(wires), 0, "maj")
        expected = 1 if sum(values) * 2 > len(values) else 0
        assert ev(c, dict(enumerate(values)))["maj"] == expected

    def test_powers(self):
        c = Circuit(F)
        a = c.input(0)
        wires = c.powers(a, 4)
        for i, w in enumerate(wires):
            c.output(w, 0, f"p{i}")
        out = ev(c, {0: 3})
        assert [out[f"p{i}"] for i in range(5)] == [1, 3, 9, 27, 81]

    def test_small_field_lookup_wraps(self):
        f = GF(SMALL_PRIME)
        c = Circuit(f)
        a = c.input(0)
        c.output(c.lookup(a, {v: v * v % SMALL_PRIME for v in range(6)},
                          list(range(6))), 0, "sq")
        out = c.evaluate({0: 5}, random.Random(0))
        assert int(out["sq"]) == 25
