"""Tests for the declarative game layer: GameDef, families, fuzzing.

The golden tests pin every DSL-defined library game byte-identically —
payoffs, per-seed mediator draws, exact mediator distributions, encodings,
default moves — to the pre-DSL hand-written implementations, captured in
``tests/golden_games.json`` before the refactor.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.errors import ExperimentError, GameError
from repro.games import (
    BOT,
    GameDef,
    family_names,
    iter_families,
    make_family_def,
    parse_game_name,
    random_game_def,
)
from repro.games.registry import game_names, iter_games, make_game
from repro.mediator.rules import build_mediator, mediator_rule_names

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_games.json")


def _golden() -> dict:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def _all_specs():
    """Every registered game, built at the golden fixture's n (or 9)."""
    golden = _golden()
    for name, maker in iter_games():
        n = golden.get(name, {}).get("n", 9)
        yield name, make_game(name, n)


# ---------------------------------------------------------------------------
# Golden equivalence with the pre-DSL implementations
# ---------------------------------------------------------------------------

class TestGoldenEquivalence:
    def test_every_registered_game_has_a_golden_entry(self):
        assert sorted(_golden()) == game_names()

    @pytest.mark.parametrize("name", sorted(_golden()))
    def test_payoffs_identical(self, name):
        data = _golden()[name]
        spec = make_game(name, data["n"])
        assert spec.game.n == data["game_n"]
        assert spec.game.name == data["game_name"]
        for types, actions, expected in data["cells"]:
            got = list(spec.game.utility(tuple(types), tuple(actions)))
            assert got == expected, (types, actions)

    @pytest.mark.parametrize("name", sorted(_golden()))
    def test_mediator_draws_and_dist_identical(self, name):
        data = _golden()[name]
        spec = make_game(name, data["n"])
        first = spec.game.type_space.profiles()[0]
        for seed, expected in data["mediator_draws"].items():
            got = list(spec.mediator_fn(first, random.Random(int(seed))))
            assert got == expected, seed
        dist = sorted(
            ([list(p), prob] for p, prob in spec.mediator_dist(first).items()),
            key=lambda kv: repr(kv[0]),
        )
        assert dist == data["mediator_dist"]

    @pytest.mark.parametrize("name", sorted(_golden()))
    def test_punishment_encodings_defaults_identical(self, name):
        data = _golden()[name]
        spec = make_game(name, data["n"])
        assert (spec.punishment is not None) == data["punishment"]
        assert spec.punishment_strength == data["punishment_strength"]
        enc = sorted([repr(k), v] for k, v in spec.type_encoding.items())
        assert enc == data["type_encoding"]
        dec = sorted([k, repr(v)] for k, v in spec.action_decoding.items())
        assert dec == data["action_decoding"]
        first = spec.game.type_space.profiles()[0]
        if data["default_moves"] is not None:
            got = [
                repr(spec.default_moves(i, first[i]))
                for i in range(spec.game.n)
            ]
            assert got == data["default_moves"]


# ---------------------------------------------------------------------------
# Property tests: determinism and lossless round-trips (satellite)
# ---------------------------------------------------------------------------

class TestDefinitionProperties:
    def test_every_registered_game_is_defined_as_data(self):
        for name, spec in _all_specs():
            assert spec.definition is not None, name
            assert isinstance(spec.definition, GameDef), name

    def test_mediator_fn_deterministic_under_fixed_seed(self):
        # Includes the ⊥-action section64 game and a family/random sample.
        extra = [
            make_game("consensus@n5", 0),
            make_game("sec64@n7k2", 0),
            make_game("random@n4s123", 0),
            make_game("random@n3s7a3m2", 0),
        ]
        specs = [spec for _, spec in _all_specs()] + extra
        for spec in specs:
            for types in spec.game.type_space.profiles()[:3]:
                for seed in range(4):
                    a = spec.mediator_fn(types, random.Random(seed))
                    b = spec.mediator_fn(types, random.Random(seed))
                    assert a == b, (spec.name, types, seed)

    def test_mediator_fn_draws_lie_in_dist_support(self):
        for name, spec in _all_specs():
            types = spec.game.type_space.profiles()[0]
            support = set(spec.mediator_dist(types))
            for seed in range(8):
                draw = spec.mediator_fn(types, random.Random(seed))
                assert draw in support, (name, draw)

    def test_to_json_round_trips_losslessly_for_all_registered_games(self):
        for name, spec in _all_specs():
            definition = spec.definition
            restored = GameDef.from_json(definition.to_json())
            assert restored == definition, name
            # And the restored definition compiles to the same game.
            respec = restored.compile()
            types = spec.game.type_space.profiles()[0]
            for actions in spec.game.action_profiles()[:16]:
                assert respec.game.utility(types, actions) == \
                    spec.game.utility(types, actions), name

    def test_bot_action_survives_round_trip(self):
        definition = make_game("section64", 7).definition
        restored = GameDef.from_json(definition.to_json())
        assert restored.actions[0][2] == BOT
        spec = restored.compile()
        assert spec.decode_action(2) == BOT
        assert spec.default_moves(0, 0) == BOT

    def test_random_game_def_is_deterministic_and_json_stable(self):
        a = random_game_def(n=4, seed=123)
        b = random_game_def(n=4, seed=123)
        assert a == b
        assert a.to_json() == b.to_json()
        assert random_game_def(n=4, seed=124) != a


# ---------------------------------------------------------------------------
# The GameDef sub-languages
# ---------------------------------------------------------------------------

class TestDsl:
    def _minimal(self, **overrides):
        base = dict(
            name="t",
            n=2,
            actions=((0, 1), (0, 1)),
            types={"kind": "single", "profile": (0, 0)},
            payoff={"kind": "expr", "expr": "1.0 if me == 1 else 0.0"},
            mediator={"rule": "fixed", "params": {"profile": (1, 1)}},
        )
        base.update(overrides)
        return GameDef(**base)

    def test_expression_rejects_attribute_access(self):
        with pytest.raises(GameError, match="forbidden syntax"):
            self._minimal(
                payoff={"kind": "expr", "expr": "().__class__"}
            ).compile()

    def test_expression_rejects_unknown_names_at_eval(self):
        spec = self._minimal(
            payoff={"kind": "expr", "expr": "open_files"}
        ).compile()
        with pytest.raises(GameError, match="payoff expression failed"):
            spec.game.utility((0, 0), (0, 0))

    def test_expression_where_and_params(self):
        spec = self._minimal(
            payoff={
                "kind": "expr",
                "params": {"base": 2.0},
                "where": {"both": "count(1) == n"},
                "expr": "base if both else 0.0",
            }
        ).compile()
        assert spec.game.utility((0, 0), (1, 1)) == (2.0, 2.0)
        assert spec.game.utility((0, 0), (1, 0)) == (0.0, 0.0)

    def test_where_entries_resolve_regardless_of_order(self):
        # JSON serialization sorts keys, so a where-entry whose dependency
        # sorts after it must still resolve after a round trip.
        definition = self._minimal(
            payoff={
                "kind": "expr",
                "where": {"z": "count(1)", "a": "z + 1.0"},
                "expr": "a if me == 1 else 0.0",
            }
        )
        for d in (definition, GameDef.from_json(definition.to_json())):
            assert d.compile().game.utility((0, 0), (1, 1)) == (3.0, 3.0)

    def test_cyclic_or_unknown_where_entries_are_a_game_error(self):
        spec = self._minimal(
            payoff={
                "kind": "expr",
                "where": {"a": "b", "b": "a"},
                "expr": "a",
            }
        ).compile()
        with pytest.raises(GameError, match="never resolve"):
            spec.game.utility((0, 0), (1, 1))

    def test_payoff_table_missing_cell_is_a_game_error(self):
        spec = self._minimal(
            payoff={"kind": "table", "cells": (((0, 0), (0, 0), (1.0, 1.0)),)}
        ).compile()
        assert spec.game.utility((0, 0), (0, 0)) == (1.0, 1.0)
        with pytest.raises(GameError, match="no cell"):
            spec.game.utility((0, 0), (1, 1))

    def test_unknown_mediator_rule_lists_known_rules(self):
        with pytest.raises(GameError) as err:
            self._minimal(mediator={"rule": "nope"}).compile()
        for rule in mediator_rule_names():
            assert rule in str(err.value)

    def test_table_rule_by_reports(self):
        fn, dist = build_mediator(
            {
                "rule": "table",
                "params": {
                    "by_reports": (
                        ((0, 0), (((0, 0), 1.0),)),
                        ((1, 1), (((1, 1), 1.0),)),
                    ),
                },
            },
            2,
        )
        assert fn((0, 0), random.Random(0)) == (0, 0)
        assert dist((1, 1)) == {(1, 1): 1.0}
        with pytest.raises(GameError, match="no row"):
            fn((0, 1), random.Random(0))

    def test_from_dict_rejects_unknown_and_missing_fields(self):
        with pytest.raises(GameError, match="unknown GameDef fields"):
            GameDef.from_dict({**self._minimal().to_dict(), "bogus": 1})
        with pytest.raises(GameError, match="missing fields"):
            GameDef.from_dict({"name": "x"})


# ---------------------------------------------------------------------------
# Families and make_game resolution (satellite: GameError style)
# ---------------------------------------------------------------------------

class TestFamilies:
    def test_params_in_the_name_win_over_n(self):
        assert make_game("consensus@n5", 9).game.n == 5
        assert make_game("ba@n7t2", 0).punishment_strength == 2
        assert make_game("sec64@n7k2", 0).punishment_strength == 2

    def test_plain_family_name_uses_n_argument(self):
        assert make_game("volunteer", 7).game.n == 7

    def test_parse_game_name(self):
        assert parse_game_name("random@n4s123") == (
            "random", {"n": 4, "s": 123, "a": 2, "m": 1}
        )
        with pytest.raises(GameError, match="unknown parameter"):
            parse_game_name("consensus@x5")
        with pytest.raises(GameError, match="bad game parameters"):
            parse_game_name("consensus@")
        with pytest.raises(GameError, match="unknown game family"):
            parse_game_name("nope@n4")

    def test_every_family_builds_at_defaults(self):
        for name, params in iter_families():
            definition = make_family_def(name)
            assert isinstance(definition, GameDef), name
            assert definition.compile().game.n >= 1, name
            assert params == dict(params)

    def test_make_game_unknown_name_is_a_game_error_with_names(self):
        # Satellite fix: the error must carry registry names AND families,
        # matching the scheduler_from_name / timing_from_name style.
        with pytest.raises(GameError) as err:
            make_game("nope", 5)
        message = str(err.value)
        for known in game_names():
            assert known in message
        for family in family_names():
            assert family in message
        assert "file:" in message

    def test_file_games(self, tmp_path):
        path = tmp_path / "game.json"
        path.write_text(make_game("consensus", 5).definition.to_json())
        spec = make_game(f"file:{path}", 0)
        assert spec.game.n == 5
        with pytest.raises(GameError, match="cannot read game file"):
            make_game("file:/missing/game.json", 0)
        path.write_text("{not json")
        with pytest.raises(GameError, match="bad GameDef JSON"):
            make_game(f"file:{path}", 0)


# ---------------------------------------------------------------------------
# The games axis through the experiment layer
# ---------------------------------------------------------------------------

class TestGamesAxis:
    def _spec(self, **overrides):
        from repro.experiments import ScenarioSpec

        base = dict(
            name="axis-test",
            game="consensus",
            n=9,
            theorem="mediator",
            k=1,
            t=0,
            games=("consensus@n3", "consensus@n5"),
            schedulers=("fifo",),
            deviations=("honest",),
            seed_count=2,
        )
        base.update(overrides)
        return ScenarioSpec(**base)

    def test_grid_crosses_games_and_records_carry_them(self):
        from repro.experiments import ExperimentRunner
        from repro.experiments.runner import expand_grid

        spec = self._spec()
        tasks = expand_grid(spec)
        assert len(tasks) == spec.grid_size() == 4
        assert [t.game for t in tasks] == [
            "consensus@n3", "consensus@n3", "consensus@n5", "consensus@n5",
        ]
        result = ExperimentRunner().run(spec)
        assert {r.game for r in result.records} == set(spec.games)
        by_game = {r.game: len(r.payoffs) for r in result.records}
        assert by_game == {"consensus@n3": 3, "consensus@n5": 5}

    def test_parallel_equals_serial_with_games_axis(self):
        from repro.experiments import ExperimentRunner

        spec = self._spec()
        serial = ExperimentRunner().run(spec)
        par = ExperimentRunner(parallel=True, processes=2).run(spec)
        assert serial.records == par.records

    def test_spec_round_trips_with_games(self):
        from repro.experiments import ScenarioSpec

        spec = self._spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_bad_axis_entries_rejected(self):
        with pytest.raises(ExperimentError, match="unknown parameter"):
            self._spec(games=("consensus@z9",))
        with pytest.raises(ExperimentError, match="games axis"):
            self._spec(theorem="raw-game", games=("consensus@n3",),
                       action_profiles=((0, 0, 0),))

    def test_summary_rows_group_by_game_in_spec_order(self):
        from repro.experiments import ExperimentResult, ExperimentRunner

        result = ExperimentRunner().run(self._spec())
        rows = result.summary_rows()
        assert [row[0] for row in rows] == ["consensus@n3", "consensus@n5"]
        assert len(rows[0]) == len(ExperimentResult.SUMMARY_HEADERS)

    def test_consensus_n7_through_runner(self):
        # Acceptance: consensus@n7 runs end-to-end, parallel == serial.
        from repro.experiments import ExperimentRunner

        spec = self._spec(games=(), game="consensus@n7", theorem="4.1", t=0)
        serial = ExperimentRunner().run(spec)
        assert all(r.ok for r in serial.records)
        assert all(len(r.payoffs) == 7 for r in serial.records)
        par = ExperimentRunner(parallel=True, processes=2).run(spec)
        assert serial.records == par.records


# ---------------------------------------------------------------------------
# Generated-game fuzzing (the audit engine on games nobody hand-wrote)
# ---------------------------------------------------------------------------

class TestFuzz:
    def test_random_game_through_runner_parallel_equals_serial(self):
        # Acceptance: random@n4s123 runs end-to-end, parallel == serial.
        from repro.experiments import ExperimentRunner, ScenarioSpec

        spec = ScenarioSpec(
            name="fuzz-run", game="random@n4s123", n=4, theorem="mediator",
            k=1, t=0, schedulers=("fifo",), deviations=("honest",),
            seed_count=3,
        )
        serial = ExperimentRunner().run(spec)
        assert all(r.ok for r in serial.records)
        par = ExperimentRunner(parallel=True, processes=2).run(spec)
        assert serial.records == par.records

    def test_audit_game_override(self):
        from repro.audit import AuditEngine, get_audit

        spec = get_audit("mediator-fuzz-audit").replace(
            game="random@n4s123", seed_count=1
        )
        engine = AuditEngine(spec)
        assert engine.n == 4
        assert engine.game_spec.name == "random(n=4,a=2,m=1,s=123)"
        score = engine.honest_score()
        assert score.scored and score.gain == 0.0

    def test_games_axis_scenario_refuses_audit_without_override(self):
        from repro.audit import AuditEngine, AuditSpec

        with pytest.raises(ExperimentError, match="games axis"):
            AuditEngine(AuditSpec(name="x", scenario="consensus-scaling"))
        engine = AuditEngine(AuditSpec(
            name="x", scenario="consensus-scaling", game="consensus@n3",
            seed_count=1,
        ))
        assert engine.n == 3

    def test_run_fuzz_deterministic_and_parallel_equals_serial(self):
        # Acceptance: random games through `repro audit fuzz`, parallel ==
        # serial (FrontierCell equality excludes wall-clock fields).
        from repro.audit import fuzz_summary, run_fuzz

        kwargs = dict(count=2, seed=123, budget=6, seed_count=2)
        serial = run_fuzz(**kwargs)
        again = run_fuzz(**kwargs)
        par = run_fuzz(**kwargs, parallel=True, processes=2)
        assert [r.cells for r in serial] == [r.cells for r in again]
        assert [r.cells for r in serial] == [r.cells for r in par]
        assert [r.spec.game for r in serial] == [
            "random@n4s123a2", "random@n4s124a2",
        ]
        summary = fuzz_summary(serial)
        assert summary["games"] == 2
        assert summary["evaluations"] > 0

    def test_fuzz_results_round_trip_through_json(self):
        from repro.audit import AuditResult, run_fuzz

        result = run_fuzz(count=1, seed=5, budget=4, seed_count=1)[0]
        assert AuditResult.from_json(result.to_json()) == result

    def test_fuzz_explicit_games(self):
        from repro.audit import run_fuzz

        results = run_fuzz(games=["random@n3s9a2"], budget=4, seed_count=1)
        assert len(results) == 1
        assert results[0].spec.game == "random@n3s9a2"


# ---------------------------------------------------------------------------
# CLI (satellite: games list/show --json, audit fuzz)
# ---------------------------------------------------------------------------

class TestCli:
    def _run(self, capsys, *argv):
        from repro.cli import main

        main(list(argv))
        return capsys.readouterr().out

    def test_games_list_json(self, capsys):
        data = json.loads(self._run(capsys, "games", "list", "--json"))
        games = {entry["name"]: entry for entry in data["games"]}
        assert set(games) == set(game_names())
        consensus = games["consensus"]
        assert consensus["players"] == 9
        assert consensus["type_space_sizes"] == [1] * 9
        assert consensus["has_punishment"] is True
        assert consensus["mediator_rule"] == "common-coin"
        families = {entry["family"] for entry in data["families"]}
        assert families == set(family_names())

    def test_games_bare_and_list_text(self, capsys):
        out = self._run(capsys, "games")
        assert "consensus" in out and "families" in out
        out = self._run(capsys, "games", "list")
        assert "consensus" in out

    def test_games_show_json_carries_definition(self, capsys):
        data = json.loads(
            self._run(capsys, "games", "show", "random@n4s123", "--json")
        )
        assert data["players"] == 4
        definition = GameDef.from_dict(data["definition"])
        assert definition == make_game("random@n4s123", 0).definition

    def test_games_show_unknown_exits_with_names(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as err:
            main(["games", "show", "nope"])
        assert "known games" in str(err.value)

    def test_audit_fuzz_json(self, capsys):
        from repro.audit import AuditResult

        out = self._run(
            capsys, "audit", "fuzz", "--count", "2", "--budget", "4",
            "--seeds", "1", "--json",
        )
        entries = json.loads(out)
        assert len(entries) == 2
        results = [AuditResult.from_dict(e) for e in entries]
        assert results[0].spec.scenario == "mediator-fuzz"

    def test_audit_fuzz_table(self, capsys):
        out = self._run(
            capsys, "audit", "fuzz", "--count", "1", "--budget", "4",
            "--seeds", "1",
        )
        assert "fuzzed 1 generated game(s)" in out

    def test_run_game_override(self, capsys):
        out = self._run(
            capsys, "run", "mediator-honest", "--game", "consensus@n5",
            "--seeds", "1",
        )
        assert "consensus@n5" in out
