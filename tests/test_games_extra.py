"""Tests for the extended game library and its generic mediator circuits."""

import random

import pytest

from repro.cheaptalk import compile_theorem41, mediator_circuit_for
from repro.cheaptalk.circuits import output_label
from repro.errors import GameError
from repro.field import GF, DEFAULT_PRIME
from repro.games.library_extra import (
    battle_of_sexes,
    minority_game,
    public_goods_game,
    volunteer_game,
)
from repro.mediator.ideal import check_ideal_k_resilience, honest_payoffs
from repro.sim import FifoScheduler

F = GF(DEFAULT_PRIME)


class TestVolunteer:
    def test_payoffs(self):
        spec = volunteer_game(4, benefit=2.0, cost=1.2)
        u = spec.game.utility
        assert u((0,) * 4, ("go", "stay", "stay", "stay")) == (0.8, 2.0, 2.0, 2.0)
        assert u((0,) * 4, ("stay",) * 4) == (0.0,) * 4

    def test_obedience_is_equilibrium(self):
        spec = volunteer_game(4, benefit=2.0, cost=1.2)
        assert check_ideal_k_resilience(spec, 1).holds

    def test_shirking_breaks_when_cost_exceeds_benefit_margin(self):
        # With cost close to benefit the appointed volunteer still obeys as
        # long as cost < benefit; at cost > benefit construction is refused.
        with pytest.raises(GameError):
            volunteer_game(4, benefit=1.0, cost=1.5)

    def test_expected_payoff_is_symmetric(self):
        spec = volunteer_game(5)
        payoffs = honest_payoffs(spec, (), ())
        values = set(round(v, 9) for v in payoffs.values())
        assert len(values) == 1


class TestBattleOfSexes:
    def test_fair_coin(self):
        spec = battle_of_sexes()
        payoffs = honest_payoffs(spec, (), ())
        assert payoffs[0] == pytest.approx(2.5)
        assert payoffs[1] == pytest.approx(2.5)

    def test_obedience(self):
        assert check_ideal_k_resilience(battle_of_sexes(), 1).holds


class TestPublicGoods:
    def test_pivotality_guard(self):
        with pytest.raises(GameError):
            public_goods_game(6, threshold=4, pot=5.0, cost=1.0)

    def test_obedience_is_equilibrium(self):
        spec = public_goods_game(4, threshold=2, pot=6.0, cost=1.0)
        assert check_ideal_k_resilience(spec, 1).holds

    def test_threshold_payoffs(self):
        spec = public_goods_game(4, threshold=2, pot=6.0, cost=1.0)
        u = spec.game.utility((0,) * 4,
                              ("contribute", "contribute", "defect", "defect"))
        assert u == (0.5, 0.5, 1.5, 1.5)


class TestMinority:
    def test_even_n_rejected(self):
        with pytest.raises(GameError):
            minority_game(4)

    def test_mediator_always_builds_largest_minority(self):
        spec = minority_game(5)
        for seed in range(10):
            rec = spec.mediator_fn((0,) * 5, random.Random(seed))
            assert sum(rec) == 2

    def test_recommended_minority_wins(self):
        spec = minority_game(5)
        rec = spec.mediator_fn((0,) * 5, random.Random(1))
        payoffs = spec.game.utility((0,) * 5, rec)
        for i in range(5):
            assert payoffs[i] == (1.0 if rec[i] == 1 else 0.0)


@pytest.mark.slow
class TestGenericCircuits:
    @pytest.mark.parametrize(
        "spec_maker",
        [lambda: volunteer_game(5), battle_of_sexes,
         lambda: public_goods_game(4, 2), lambda: minority_game(5)],
        ids=["volunteer", "battle", "public-goods", "minority"],
    )
    def test_circuit_matches_dist(self, spec_maker):
        spec = spec_maker()
        circuit = mediator_circuit_for(spec, F)
        dist = spec.mediator_dist(spec.game.type_space.profiles()[0])
        seen = {}
        trials = 40 * len(dist)
        for i in range(trials):
            out = circuit.evaluate({}, random.Random(i))
            actions = tuple(
                spec.decode_action(int(out[output_label(p)]))
                for p in range(spec.game.n)
            )
            seen[actions] = seen.get(actions, 0) + 1
        assert set(seen) == set(dist)

    def test_volunteer_cheap_talk_end_to_end(self):
        spec = volunteer_game(9)
        proto = compile_theorem41(spec, 1, 1)
        run = proto.game.run((0,) * 9, FifoScheduler(), seed=1)
        assert run.actions.count("go") == 1

    def test_minority_cheap_talk_end_to_end(self):
        spec = minority_game(9)
        proto = compile_theorem41(spec, 1, 1)
        run = proto.game.run((0,) * 9, FifoScheduler(), seed=2)
        assert run.actions.count(1) == 4
