"""Tests for the Even-Goldreich-Lempel baseline (E8 support)."""

import pytest

from repro.baselines import expected_messages, run_egl
from repro.errors import ProtocolError
from repro.games.library import chicken_game, consensus_game
from repro.sim import RandomScheduler


class TestEgl:
    def test_samples_valid_cells(self):
        spec = chicken_game()
        cells = set(spec.mediator_dist((0, 0)))
        for seed in range(30):
            actions, _messages = run_egl(spec, epsilon=0.3, seed=seed)
            assert actions in cells

    def test_distribution_roughly_uniform(self):
        spec = chicken_game()
        counts = {}
        for seed in range(180):
            actions, _ = run_egl(spec, epsilon=0.4, seed=seed)
            counts[actions] = counts.get(actions, 0) + 1
        assert len(counts) == 3
        for count in counts.values():
            assert 30 <= count <= 100

    def test_message_count_scales_inversely_with_epsilon(self):
        spec = chicken_game()
        loose = expected_messages(spec, 0.5, trials=60)
        tight = expected_messages(spec, 0.05, trials=60)
        assert tight > 4 * loose

    def test_message_count_matches_geometric_mean(self):
        spec = chicken_game()
        eps = 0.25
        measured = expected_messages(spec, eps, trials=200)
        # Each round costs 2 messages, E[rounds] = 1/eps (+1 for round 0).
        assert measured == pytest.approx(2 / eps + 2, rel=0.35)

    def test_works_under_async_scheduler(self):
        spec = chicken_game()
        actions, _ = run_egl(spec, 0.2, seed=3, scheduler=RandomScheduler(1))
        assert actions in set(spec.mediator_dist((0, 0)))

    def test_rejects_non_two_player(self):
        with pytest.raises(ProtocolError):
            run_egl(consensus_game(4), 0.1)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ProtocolError):
            run_egl(chicken_game(), 0.0)

    def test_rejects_non_uniform_dist(self):
        spec = chicken_game()
        spec.mediator_dist = lambda reports: {("C", "C"): 0.9, ("D", "D"): 0.1}
        with pytest.raises(ProtocolError):
            run_egl(spec, 0.1)
