"""Tests for the experiment job service (``repro.service``).

Covers the JSON job contract, the filesystem spool protocol (atomic
submission, priority + FIFO claiming, cancellation races), and the full
server lifecycle — including the dedup proof: a second identical
submission does zero simulation work and returns byte-identical bytes.
"""

import threading

import pytest

from repro.audit.frontier import AuditResult
from repro.errors import ServiceError
from repro.experiments import get_scenario
from repro.experiments.results import ExperimentResult
from repro.service import (
    JobClient,
    JobServer,
    JobSpec,
    JobStatus,
    Spool,
    resolve_spool_path,
)
from repro.service.spool import ENV_SPOOL
from repro.store import ResultStore

CHEAP = "raw-chicken-matrix"  # 4-cell grid, no simulation: fast

TINY_AUDIT = {
    "name": "tiny-audit",
    "scenario": "chicken-mediator",
    "budget": 2,
    "seed_count": 1,
    "top": 1,
}


def cheap_spec_dict(seeds: int = 1) -> dict:
    return get_scenario(CHEAP).replace(seed_count=seeds).to_dict()


@pytest.fixture
def spool(tmp_path):
    return Spool(str(tmp_path / "spool"))


@pytest.fixture
def store(tmp_path):
    with ResultStore(str(tmp_path / "store.sqlite")) as s:
        yield s


@pytest.fixture
def server(spool, store):
    with JobServer(spool, store=store, poll_s=0.01) as srv:
        yield srv


# -- the job contract ---------------------------------------------------------

class TestJobSpec:
    def test_round_trips_through_json(self):
        spec = JobSpec(
            kind="frontier", name="x", ks=(1, 2), ts=(0,),
            priority=42, description="d",
        )
        again = JobSpec.from_json(spec.to_json(indent=2))
        assert again == spec

    def test_validation(self):
        with pytest.raises(ServiceError, match="kind"):
            JobSpec(kind="nope", name="x").validate()
        with pytest.raises(ServiceError, match="exactly one"):
            JobSpec(kind="scenario", name="x", spec={"a": 1}).validate()
        with pytest.raises(ServiceError, match="exactly one"):
            JobSpec(kind="scenario").validate()
        with pytest.raises(ServiceError, match="frontier"):
            JobSpec(kind="scenario", name="x", ks=(1,)).validate()
        with pytest.raises(ServiceError, match="priority"):
            JobSpec(kind="scenario", name="x", priority=100).validate()

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(ServiceError, match="unknown"):
            JobSpec.from_dict({"kind": "scenario", "name": "x", "bogus": 1})


class TestJobStatus:
    def test_round_trips_through_json(self):
        status = JobStatus(
            id="j1", state="running", kind="scenario", title="t",
            priority=10, submitted_at=1.5, started_at=2.5,
            done=3, total=12, stats={"result_hit": False},
        )
        assert JobStatus.from_json(status.to_json(indent=2)) == status

    def test_invalid_state_is_rejected(self):
        with pytest.raises(ServiceError, match="state"):
            JobStatus.from_dict({
                "id": "j", "state": "limbo", "kind": "scenario",
                "title": "t", "priority": 0, "submitted_at": 0.0,
            })

    def test_finished_covers_exactly_the_terminal_states(self):
        base = JobStatus(
            id="j", state="queued", kind="scenario", title="t",
            priority=0, submitted_at=0.0,
        )
        expectations = {
            "queued": False, "running": False,
            "done": True, "failed": True, "cancelled": True,
        }
        for state, finished in expectations.items():
            assert base.replace(state=state).finished is finished


# -- the spool protocol -------------------------------------------------------

class TestSpool:
    def test_submit_creates_queued_job(self, spool):
        status = spool.submit(JobSpec(kind="scenario", name=CHEAP))
        assert status.state == "queued"
        assert spool.read_status(status.id) == status
        assert spool.read_spec(status.id).name == CHEAP
        assert spool.ticket_for(status.id) is not None

    def test_claim_order_is_priority_then_fifo(self, spool):
        low = spool.submit(JobSpec(kind="scenario", name=CHEAP, priority=5))
        first = spool.submit(JobSpec(kind="scenario", name=CHEAP, priority=50))
        second = spool.submit(JobSpec(kind="scenario", name=CHEAP, priority=50))
        claimed = [spool.claim_next() for _ in range(3)]
        assert claimed == [first.id, second.id, low.id]
        assert spool.claim_next() is None

    def test_unknown_job_ids_raise(self, spool):
        for reader in (spool.read_status, spool.read_spec, spool.read_log):
            with pytest.raises(ServiceError, match="unknown job id"):
                reader("j-missing")

    def test_game_defs_are_content_addressed(self, spool):
        game = {"name": "g", "players": 2}
        path = spool.materialize_game_def(game)
        assert path == spool.materialize_game_def(dict(game))
        assert path != spool.materialize_game_def({"name": "h", "players": 2})

    def test_job_ids_are_unique(self, spool):
        ids = {spool.new_job_id() for _ in range(100)}
        assert len(ids) == 100


# -- client-side lifecycle (no server) ----------------------------------------

class TestClientWithoutServer:
    def test_cancel_queued_job_dequeues_it(self, spool):
        client = JobClient(spool)
        status = client.submit(JobSpec(kind="scenario", name=CHEAP))
        cancelled = client.cancel(status.id)
        assert cancelled.state == "cancelled"
        assert spool.claim_next() is None
        # Cancelling again is a no-op on a finished job.
        assert client.cancel(status.id).state == "cancelled"

    def test_result_before_finish_is_an_error(self, spool):
        client = JobClient(spool)
        status = client.submit(JobSpec(kind="scenario", name=CHEAP))
        with pytest.raises(ServiceError, match="no result"):
            client.result_text(status.id)

    def test_wait_times_out(self, spool):
        client = JobClient(spool)
        status = client.submit(JobSpec(kind="scenario", name=CHEAP))
        with pytest.raises(ServiceError, match="timed out"):
            client.wait(status.id, timeout_s=0.05, poll_s=0.01)

    def test_spool_path_resolution(self, monkeypatch):
        monkeypatch.setenv(ENV_SPOOL, "/env/spool")
        assert resolve_spool_path("/cli/spool") == "/cli/spool"
        assert resolve_spool_path(None) == "/env/spool"


# -- the server ---------------------------------------------------------------

class TestServer:
    def test_scenario_job_full_lifecycle(self, spool, server):
        client = JobClient(spool)
        queued = client.submit(
            JobSpec(kind="scenario", spec=cheap_spec_dict())
        )
        assert server.run_once() == queued.id
        status = client.status(queued.id)
        assert status.state == "done"
        assert status.done == status.total == 4
        assert status.stats["result_hit"] is False
        result = client.result(queued.id)
        assert isinstance(result, ExperimentResult)
        assert len(result.records) == 4
        assert "started" in client.logs(queued.id)

    def test_second_identical_job_is_a_pure_store_hit(self, spool, server):
        client = JobClient(spool)
        first = client.submit(JobSpec(kind="scenario", spec=cheap_spec_dict()))
        second = client.submit(JobSpec(kind="scenario", spec=cheap_spec_dict()))
        server.run_once()
        server.run_once()
        done = client.status(second.id)
        assert done.stats["result_hit"] is True
        # The dedup proof: zero cells simulated, zero cells stored.
        assert done.stats["store"]["hits"] == 0
        assert done.stats["store"]["misses"] == 0
        assert done.stats["store"]["result_hits"] == 1
        assert client.result_text(first.id) == client.result_text(second.id)

    def test_audit_job_runs_and_dedups(self, spool, server):
        client = JobClient(spool)
        first = client.submit(JobSpec(kind="audit", spec=dict(TINY_AUDIT)))
        second = client.submit(JobSpec(kind="audit", spec=dict(TINY_AUDIT)))
        server.run_once()
        server.run_once()
        assert client.status(first.id).state == "done"
        done = client.status(second.id)
        assert done.state == "done"
        assert done.stats["result_hit"] is True
        assert isinstance(client.result(second.id), AuditResult)
        assert client.result_text(first.id) == client.result_text(second.id)

    def test_unknown_scenario_fails_the_job_not_the_daemon(self, spool, server):
        client = JobClient(spool)
        bad = client.submit(JobSpec(kind="scenario", name="no-such"))
        good = client.submit(JobSpec(kind="scenario", spec=cheap_spec_dict()))
        server.run_once()
        server.run_once()
        failed = client.status(bad.id)
        assert failed.state == "failed"
        assert failed.error
        assert client.status(good.id).state == "done"

    def test_cancel_between_claim_and_start(self, spool, server):
        client = JobClient(spool)
        status = client.submit(JobSpec(kind="scenario", spec=cheap_spec_dict()))
        job_id = spool.claim_next()
        assert job_id == status.id
        spool.request_cancel(job_id)
        server.run_job(job_id)
        assert client.status(job_id).state == "cancelled"

    def test_serve_forever_drains_then_idles_out(self, spool, server):
        client = JobClient(spool)
        ids = [
            client.submit(JobSpec(kind="scenario", spec=cheap_spec_dict())).id
            for _ in range(2)
        ]
        served = []
        thread = threading.Thread(
            target=lambda: served.append(
                server.serve_forever(idle_timeout_s=0.3)
            )
        )
        thread.start()
        done = [client.wait(jid, timeout_s=30.0) for jid in ids]
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert served == [2]
        assert [s.state for s in done] == ["done", "done"]

    def test_serverless_spool_without_store_still_serves(self, spool, tmp_path):
        client = JobClient(spool)
        status = client.submit(JobSpec(kind="scenario", spec=cheap_spec_dict()))
        with JobServer(spool, store=None) as storeless:
            storeless.run_once()
        done = client.status(status.id)
        assert done.state == "done"
        assert done.stats["result_hit"] is False
        assert "store" not in done.stats
