"""Tests for the experiment job service (``repro.service``).

Covers the JSON job contract, the filesystem spool protocol (atomic
submission, priority + FIFO claiming, cancellation races), and the full
server lifecycle — including the dedup proof: a second identical
submission does zero simulation work and returns byte-identical bytes.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.audit.frontier import AuditResult
from repro.errors import ServiceError
from repro.experiments import get_scenario
from repro.experiments.results import ExperimentResult
from repro.service import (
    JobClient,
    JobServer,
    JobSpec,
    JobStatus,
    Spool,
    resolve_spool_path,
)
from repro.service.spool import ENV_SPOOL
from repro.store import ResultStore

CHEAP = "raw-chicken-matrix"  # 4-cell grid, no simulation: fast

TINY_AUDIT = {
    "name": "tiny-audit",
    "scenario": "chicken-mediator",
    "budget": 2,
    "seed_count": 1,
    "top": 1,
}


def cheap_spec_dict(seeds: int = 1) -> dict:
    return get_scenario(CHEAP).replace(seed_count=seeds).to_dict()


@pytest.fixture
def spool(tmp_path):
    return Spool(str(tmp_path / "spool"))


@pytest.fixture
def store(tmp_path):
    with ResultStore(str(tmp_path / "store.sqlite")) as s:
        yield s


@pytest.fixture
def server(spool, store):
    with JobServer(spool, store=store, poll_s=0.01) as srv:
        yield srv


# -- the job contract ---------------------------------------------------------

class TestJobSpec:
    def test_round_trips_through_json(self):
        spec = JobSpec(
            kind="frontier", name="x", ks=(1, 2), ts=(0,),
            priority=42, description="d",
        )
        again = JobSpec.from_json(spec.to_json(indent=2))
        assert again == spec

    def test_validation(self):
        with pytest.raises(ServiceError, match="kind"):
            JobSpec(kind="nope", name="x").validate()
        with pytest.raises(ServiceError, match="exactly one"):
            JobSpec(kind="scenario", name="x", spec={"a": 1}).validate()
        with pytest.raises(ServiceError, match="exactly one"):
            JobSpec(kind="scenario").validate()
        with pytest.raises(ServiceError, match="frontier"):
            JobSpec(kind="scenario", name="x", ks=(1,)).validate()
        with pytest.raises(ServiceError, match="priority"):
            JobSpec(kind="scenario", name="x", priority=100).validate()

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(ServiceError, match="unknown"):
            JobSpec.from_dict({"kind": "scenario", "name": "x", "bogus": 1})


class TestJobStatus:
    def test_round_trips_through_json(self):
        status = JobStatus(
            id="j1", state="running", kind="scenario", title="t",
            priority=10, submitted_at=1.5, started_at=2.5,
            done=3, total=12, stats={"result_hit": False},
        )
        assert JobStatus.from_json(status.to_json(indent=2)) == status

    def test_invalid_state_is_rejected(self):
        with pytest.raises(ServiceError, match="state"):
            JobStatus.from_dict({
                "id": "j", "state": "limbo", "kind": "scenario",
                "title": "t", "priority": 0, "submitted_at": 0.0,
            })

    def test_finished_covers_exactly_the_terminal_states(self):
        base = JobStatus(
            id="j", state="queued", kind="scenario", title="t",
            priority=0, submitted_at=0.0,
        )
        expectations = {
            "queued": False, "running": False,
            "done": True, "failed": True, "cancelled": True,
        }
        for state, finished in expectations.items():
            assert base.replace(state=state).finished is finished


# -- the spool protocol -------------------------------------------------------

class TestSpool:
    def test_submit_creates_queued_job(self, spool):
        status = spool.submit(JobSpec(kind="scenario", name=CHEAP))
        assert status.state == "queued"
        assert spool.read_status(status.id) == status
        assert spool.read_spec(status.id).name == CHEAP
        assert spool.ticket_for(status.id) is not None

    def test_claim_order_is_priority_then_fifo(self, spool):
        low = spool.submit(JobSpec(kind="scenario", name=CHEAP, priority=5))
        first = spool.submit(JobSpec(kind="scenario", name=CHEAP, priority=50))
        second = spool.submit(JobSpec(kind="scenario", name=CHEAP, priority=50))
        claimed = [spool.claim_next() for _ in range(3)]
        assert claimed == [first.id, second.id, low.id]
        assert spool.claim_next() is None

    def test_unknown_job_ids_raise(self, spool):
        for reader in (spool.read_status, spool.read_spec, spool.read_log):
            with pytest.raises(ServiceError, match="unknown job id"):
                reader("j-missing")

    def test_game_defs_are_content_addressed(self, spool):
        game = {"name": "g", "players": 2}
        path = spool.materialize_game_def(game)
        assert path == spool.materialize_game_def(dict(game))
        assert path != spool.materialize_game_def({"name": "h", "players": 2})

    def test_job_ids_are_unique(self, spool):
        ids = {spool.new_job_id() for _ in range(100)}
        assert len(ids) == 100


# -- client-side lifecycle (no server) ----------------------------------------

class TestClientWithoutServer:
    def test_cancel_queued_job_dequeues_it(self, spool):
        client = JobClient(spool)
        status = client.submit(JobSpec(kind="scenario", name=CHEAP))
        cancelled = client.cancel(status.id)
        assert cancelled.state == "cancelled"
        assert spool.claim_next() is None
        # Cancelling again is a no-op on a finished job.
        assert client.cancel(status.id).state == "cancelled"

    def test_result_before_finish_is_an_error(self, spool):
        client = JobClient(spool)
        status = client.submit(JobSpec(kind="scenario", name=CHEAP))
        with pytest.raises(ServiceError, match="no result"):
            client.result_text(status.id)

    def test_wait_times_out(self, spool):
        client = JobClient(spool)
        status = client.submit(JobSpec(kind="scenario", name=CHEAP))
        with pytest.raises(ServiceError, match="timed out"):
            client.wait(status.id, timeout_s=0.05, poll_s=0.01)

    def test_spool_path_resolution(self, monkeypatch):
        monkeypatch.setenv(ENV_SPOOL, "/env/spool")
        assert resolve_spool_path("/cli/spool") == "/cli/spool"
        assert resolve_spool_path(None) == "/env/spool"


# -- the server ---------------------------------------------------------------

class TestServer:
    def test_scenario_job_full_lifecycle(self, spool, server):
        client = JobClient(spool)
        queued = client.submit(
            JobSpec(kind="scenario", spec=cheap_spec_dict())
        )
        assert server.run_once() == queued.id
        status = client.status(queued.id)
        assert status.state == "done"
        assert status.done == status.total == 4
        assert status.stats["result_hit"] is False
        result = client.result(queued.id)
        assert isinstance(result, ExperimentResult)
        assert len(result.records) == 4
        assert "started" in client.logs(queued.id)

    def test_second_identical_job_is_a_pure_store_hit(self, spool, server):
        client = JobClient(spool)
        first = client.submit(JobSpec(kind="scenario", spec=cheap_spec_dict()))
        second = client.submit(JobSpec(kind="scenario", spec=cheap_spec_dict()))
        server.run_once()
        server.run_once()
        done = client.status(second.id)
        assert done.stats["result_hit"] is True
        # The dedup proof: zero cells simulated, zero cells stored.
        assert done.stats["store"]["hits"] == 0
        assert done.stats["store"]["misses"] == 0
        assert done.stats["store"]["result_hits"] == 1
        assert client.result_text(first.id) == client.result_text(second.id)

    def test_audit_job_runs_and_dedups(self, spool, server):
        client = JobClient(spool)
        first = client.submit(JobSpec(kind="audit", spec=dict(TINY_AUDIT)))
        second = client.submit(JobSpec(kind="audit", spec=dict(TINY_AUDIT)))
        server.run_once()
        server.run_once()
        assert client.status(first.id).state == "done"
        done = client.status(second.id)
        assert done.state == "done"
        assert done.stats["result_hit"] is True
        assert isinstance(client.result(second.id), AuditResult)
        assert client.result_text(first.id) == client.result_text(second.id)

    def test_unknown_scenario_fails_the_job_not_the_daemon(self, spool, server):
        client = JobClient(spool)
        bad = client.submit(JobSpec(kind="scenario", name="no-such"))
        good = client.submit(JobSpec(kind="scenario", spec=cheap_spec_dict()))
        server.run_once()
        server.run_once()
        failed = client.status(bad.id)
        assert failed.state == "failed"
        assert failed.error
        assert client.status(good.id).state == "done"

    def test_cancel_between_claim_and_start(self, spool, server):
        client = JobClient(spool)
        status = client.submit(JobSpec(kind="scenario", spec=cheap_spec_dict()))
        job_id = spool.claim_next()
        assert job_id == status.id
        spool.request_cancel(job_id)
        server.run_job(job_id)
        assert client.status(job_id).state == "cancelled"

    def test_serve_forever_drains_then_idles_out(self, spool, server):
        client = JobClient(spool)
        ids = [
            client.submit(JobSpec(kind="scenario", spec=cheap_spec_dict())).id
            for _ in range(2)
        ]
        served = []
        thread = threading.Thread(
            target=lambda: served.append(
                server.serve_forever(idle_timeout_s=0.3)
            )
        )
        thread.start()
        done = [client.wait(jid, timeout_s=30.0) for jid in ids]
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert served == [2]
        assert [s.state for s in done] == ["done", "done"]

    def test_serverless_spool_without_store_still_serves(self, spool, tmp_path):
        client = JobClient(spool)
        status = client.submit(JobSpec(kind="scenario", spec=cheap_spec_dict()))
        with JobServer(spool, store=None) as storeless:
            storeless.run_once()
        done = client.status(status.id)
        assert done.state == "done"
        assert done.stats["result_hit"] is False
        assert "store" not in done.stats


# -- crash safety: retries, orphan recovery, the SIGKILL drill ----------------

class TestSpoolCrashRecovery:
    def test_tickets_carry_a_due_timestamp(self, spool):
        client = JobClient(spool)
        status = client.submit(JobSpec(kind="scenario", spec=cheap_spec_dict()))
        (ticket,) = spool.queued_tickets()
        assert spool.ticket_job_id(ticket) == status.id
        assert spool.ticket_due_ns(ticket) <= time.time_ns()
        with pytest.raises(ServiceError):
            spool.ticket_due_ns("garbage")

    def test_claim_marks_and_requeue_restores(self, spool):
        client = JobClient(spool)
        client.submit(JobSpec(kind="scenario", spec=cheap_spec_dict()))
        job_id = spool.claim_next()
        assert spool.is_claimed(job_id)
        assert spool.claimed_job_ids() == [job_id]
        assert spool.queued_tickets() == []
        assert spool.requeue(job_id)
        assert not spool.is_claimed(job_id)
        # Requeueing twice is idempotent: the second rename finds no
        # claimed ticket (another recovering server won the race).
        assert spool.requeue(job_id) is False
        assert spool.claim_next() == job_id

    def test_retry_tickets_wait_for_their_due_time(self, spool):
        client = JobClient(spool)
        client.submit(JobSpec(kind="scenario", spec=cheap_spec_dict()))
        job_id = spool.claim_next()
        assert spool.requeue(job_id, delay_s=60.0)
        assert spool.queued_tickets()  # back in the queue...
        assert spool.claim_next() is None  # ...but not claimable yet

    def test_submit_stamps_the_attempt_budget(self, spool):
        client = JobClient(spool)
        queued = client.submit(
            JobSpec(kind="scenario", spec=cheap_spec_dict(), max_attempts=5)
        )
        assert queued.attempts == 0
        assert queued.max_attempts == 5

    def test_old_status_documents_parse_as_single_attempt(self):
        doc = JobStatus(
            id="j1", state="queued", kind="scenario", title="x",
            priority=0, submitted_at=1.0,
        ).to_dict()
        del doc["attempts"], doc["max_attempts"]
        old = JobStatus.from_dict(doc)
        assert old.attempts == 0
        assert old.max_attempts == 1

    def test_max_attempts_is_validated(self):
        with pytest.raises(ServiceError, match="max_attempts"):
            JobSpec(kind="scenario", name="x", max_attempts=0).validate()


class TestServerCrashSafety:
    def test_unexpected_errors_retry_until_the_budget_is_spent(
        self, spool, store, monkeypatch
    ):
        client = JobClient(spool)
        queued = client.submit(JobSpec(kind="scenario", spec=cheap_spec_dict()))
        calls = []

        def boom(self, job_id, spec, stream):
            calls.append(job_id)
            raise RuntimeError("transient blip")

        monkeypatch.setattr(JobServer, "_execute", boom)
        with JobServer(spool, store=store, retry_base_s=0.0) as srv:
            assert srv.run_once() == queued.id
            retried = client.status(queued.id)
            assert retried.state == "queued"  # back on the queue
            assert retried.attempts == 1
            assert "transient blip" in retried.error
            assert srv.run_once() == queued.id
            assert srv.run_once() == queued.id
            assert srv.run_once() is None  # the queue is drained
        final = client.status(queued.id)
        assert final.state == "failed"
        assert final.attempts == final.max_attempts == 3
        assert len(calls) == 3
        logs = client.logs(queued.id)
        assert "retrying in" in logs
        assert "failed (attempt 3/3, final)" in logs

    def test_domain_errors_fail_terminally_without_retries(
        self, spool, server
    ):
        # An unknown scenario is deterministic: retrying replays the
        # same failure, so the server must not burn the budget on it.
        client = JobClient(spool)
        bad = client.submit(JobSpec(kind="scenario", name="no-such"))
        server.run_once()
        failed = client.status(bad.id)
        assert failed.state == "failed"
        assert failed.attempts == 1

    def test_retry_backoff_is_seeded_per_job_and_attempt(self, spool, store):
        with JobServer(spool, store=store) as srv:
            first = srv._retry_delay_s("job-x", 1)
            assert first == srv._retry_delay_s("job-x", 1)  # deterministic
            assert first != srv._retry_delay_s("job-x", 2)
            assert first != srv._retry_delay_s("job-y", 1)
            assert 0.25 <= first <= 0.75  # base 0.5s, jitter in [0.5, 1.5)
            assert srv._retry_delay_s("job-x", 50) <= srv.retry_cap_s * 1.5

    def _strand_running_job(self, spool, heartbeat_age_s):
        client = JobClient(spool)
        client.submit(JobSpec(kind="scenario", spec=cheap_spec_dict()))
        job_id = spool.claim_next()
        stamp = time.time() - heartbeat_age_s
        spool.write_status(
            spool.read_status(job_id).replace(
                state="running", attempts=1, started_at=stamp,
                heartbeat_at=stamp,
            )
        )
        return client, job_id

    def test_orphaned_job_is_requeued_and_completes(self, spool, store):
        client, job_id = self._strand_running_job(spool, heartbeat_age_s=60.0)
        with JobServer(spool, store=store, orphan_after_s=5.0) as srv:
            assert srv.recover_orphans() == [job_id]
            assert client.status(job_id).state == "queued"
            assert srv.run_once() == job_id
        final = client.status(job_id)
        assert final.state == "done"
        assert final.attempts == 2  # the lost attempt plus the replay
        assert "requeued: orphaned by a dead server" in client.logs(job_id)

    def test_fresh_heartbeats_are_left_alone(self, spool, store):
        _, job_id = self._strand_running_job(spool, heartbeat_age_s=0.0)
        with JobServer(spool, store=store, orphan_after_s=5.0) as srv:
            assert srv.recover_orphans() == []
        assert spool.is_claimed(job_id)  # a live server still owns it

    def test_exhausted_orphans_fail_terminally(self, spool, store):
        client, job_id = self._strand_running_job(spool, heartbeat_age_s=60.0)
        spool.write_status(
            spool.read_status(job_id).replace(attempts=3, max_attempts=3)
        )
        with JobServer(spool, store=store, orphan_after_s=5.0) as srv:
            assert srv.recover_orphans() == []
        failed = client.status(job_id)
        assert failed.state == "failed"
        assert "attempt budget exhausted" in failed.error


class TestServerSigkillDrill:
    """The whole crash-safety story, end to end, against real processes.

    A server is SIGKILLed mid-grid; a second server must requeue the
    orphan at startup and finish the job — with the store dedup counters
    proving the dead server's finished cells were *not* re-simulated.
    """

    def _serve(self, spool_dir, store_path, *extra):
        env = dict(os.environ)
        src = pathlib.Path(__file__).resolve().parents[1] / "src"
        env["PYTHONPATH"] = str(src)
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--spool", spool_dir, "--store", store_path,
                "--poll", "0.05", *extra,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    def test_sigkill_mid_job_costs_one_attempt_not_the_job(self, tmp_path):
        spool_dir = str(tmp_path / "spool")
        store_path = str(tmp_path / "store.sqlite")
        spool = Spool(spool_dir)
        client = JobClient(spool)
        big = get_scenario("thm41-honest").replace(
            name="thm41-honest-big", schedulers=("fifo",), seed_count=40
        )
        queued = client.submit(
            JobSpec(kind="scenario", spec=big.to_dict())
        )

        victim = self._serve(spool_dir, store_path)
        try:
            deadline = time.time() + 60.0
            while time.time() < deadline:
                status = client.status(queued.id)
                if status.state == "running" and 2 <= status.done:
                    break
                assert not status.finished, "job finished before the kill"
                time.sleep(0.05)
            else:
                pytest.fail("server never reached mid-grid progress")
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=10.0)
        finally:
            if victim.poll() is None:
                victim.kill()
        killed_at = client.status(queued.id)
        assert not killed_at.finished
        assert killed_at.attempts == 1
        assert spool.is_claimed(queued.id)  # the orphan marker

        time.sleep(1.5)  # let the dead server's heartbeat go stale
        rescuer = self._serve(
            spool_dir, store_path, "--orphan-after", "1", "--max-jobs", "1"
        )
        try:
            _out, err = rescuer.communicate(timeout=120.0)
        finally:
            if rescuer.poll() is None:
                rescuer.kill()
        assert rescuer.returncode == 0, err

        final = client.status(queued.id)
        assert final.state == "done", final.error
        assert final.attempts == 2
        logs = client.logs(queued.id)
        assert "requeued: orphaned by a dead server" in logs
        # The dedup proof: the second attempt answered the dead
        # server's finished cells from the store instead of re-running
        # them, and simulated only the remainder.
        hits = final.stats["store"]["hits"]
        misses = final.stats["store"]["misses"]
        assert hits >= killed_at.done > 0
        assert hits + misses == 40
