"""Tests for the analysis layer: deviations, robustness, implementation, E5."""

import pytest

from repro.analysis import (
    DeviationTrial,
    check_empirical_robustness,
    check_implementation,
    implementation_distance,
    scheduler_proofness_spread,
)
from repro.analysis.deviations import (
    crash,
    ct_crash,
    ct_misreport,
    ct_selective_silence,
    disobedient,
    misreport,
    stall_after_messages,
)
from repro.analysis.section64 import ColludingScheduler, leak_attack, run_attack
from repro.cheaptalk import compile_theorem41
from repro.games.library import (
    BOT,
    byzantine_agreement_game,
    consensus_game,
    section64_game,
)
from repro.mediator import (
    LeakySection64Mediator,
    MediatorGame,
    minimally_informative,
)
from repro.sim import FifoScheduler, RandomScheduler, scheduler_zoo


class TestMediatorDeviations:
    def test_misreport_changes_majority(self):
        spec = byzantine_agreement_game(5)
        game = MediatorGame(spec, k=1, t=0)
        types = (1, 1, 1, 0, 0)
        honest = game.run(types, FifoScheduler(), seed=0)
        assert honest.actions == (1,) * 5
        lied = game.run(
            types, FifoScheduler(), seed=0,
            deviations={0: misreport(spec, 0)},
        )
        # Reported profile is (0,1,1,0,0): majority flips to 0.
        assert lied.actions[1:] == (0,) * 4

    def test_disobedient_plays_remapped_action(self):
        spec = consensus_game(4)
        game = MediatorGame(spec, k=1, t=0)
        run = game.run(
            (0,) * 4, FifoScheduler(), seed=0,
            deviations={2: disobedient(spec, lambda a: 1 - a)},
        )
        assert run.actions[2] == 1 - run.actions[0]

    def test_stall_after_messages(self):
        spec = consensus_game(4)
        game = MediatorGame(spec, k=1, t=0, rounds=3)
        run = game.run(
            (0,) * 4, FifoScheduler(), seed=0,
            deviations={1: stall_after_messages(spec, limit=1)},
        )
        # The staller reports round 0 then stops; the mediator's quorum is
        # n-k-t = 3, so the rest still finish.
        assert all(run.actions[i] in (0, 1) for i in (0, 2, 3))

    def test_crash_factory(self):
        spec = consensus_game(4)
        game = MediatorGame(spec, k=1, t=0)
        run = game.run(
            (0,) * 4, FifoScheduler(), seed=0, deviations={3: crash()}
        )
        assert len(set(run.actions[:3])) == 1
        assert run.actions[3] == 0  # default move


@pytest.mark.slow
class TestEmpiricalRobustness:
    def test_consensus_cheap_talk_catalogue_passes(self):
        spec = consensus_game(9)
        proto = compile_theorem41(spec, 1, 1)
        trials = [
            DeviationTrial(
                name="crash-one", deviations={8: ct_crash()}, malicious=(8,)
            ),
            DeviationTrial(
                name="misreport",
                deviations={8: ct_misreport(spec, 0)},
                rational=(8,),
            ),
        ]
        report = check_empirical_robustness(
            proto.game, trials, [FifoScheduler(), RandomScheduler(2)],
            samples_per_scheduler=4,
        )
        assert report.holds, report.findings

    def test_selective_silence_harms_nobody(self):
        """Silence toward one victim: the rest of the network routes around
        it (the victim still reconstructs from n-1 contributions)."""
        spec = consensus_game(9)
        proto = compile_theorem41(spec, 1, 1)
        run = proto.game.run(
            (0,) * 9, FifoScheduler(), seed=3,
            deviations={8: ct_selective_silence(spec, victims=[0])},
        )
        assert len(set(run.actions[:8])) == 1

    def test_scheduler_proofness_spread_small(self):
        spec = consensus_game(9)
        proto = compile_theorem41(spec, 1, 1)
        result = scheduler_proofness_spread(
            proto.game,
            scheduler_zoo(seed=1, parties=range(9))[:3],
            samples_per_scheduler=6,
        )
        # The coin is fair under every environment; spread is sampling noise.
        assert result["spread"] < 0.45


@pytest.mark.slow
class TestImplementationChecking:
    def test_cheap_talk_implements_mediator(self):
        spec = consensus_game(9)
        proto = compile_theorem41(spec, 1, 1)
        med = MediatorGame(spec, 1, 1)
        report = check_implementation(
            proto.game, med,
            schedulers=[FifoScheduler(), RandomScheduler(4)],
            samples_per_scheduler=12,
        )
        assert report.holds, (report.distance, report.tolerance)

    def test_distance_detects_wrong_mediator(self):
        """A mediator recommending a biased coin is far from the fair one."""
        spec_fair = consensus_game(5)
        spec_biased = consensus_game(5)
        spec_biased.mediator_fn = lambda reports, rng: (1,) * 5
        fair = MediatorGame(spec_fair, 1, 0)
        biased = MediatorGame(spec_biased, 1, 0)
        distance = implementation_distance(
            fair, biased, [FifoScheduler()], samples_per_scheduler=40
        )
        assert distance > 0.5


class TestSection64Attack:
    def make_leaky(self, n=7, k=2):
        spec = section64_game(n, k=k)
        return MediatorGame(
            spec, k, 0, approach="ah",
            will=lambda pid, ty: BOT,
            mediator_factory=lambda: LeakySection64Mediator(spec, k, 0),
        )

    def test_attack_needs_odd_difference(self):
        spec = section64_game(7, k=2)
        with pytest.raises(ValueError):
            leak_attack(spec, (0, 2))

    def test_attack_converts_low_coin_runs_into_punishment(self):
        game = self.make_leaky()
        payoffs = run_attack(game, (0, 1), runs=30)
        assert set(payoffs) == {1.1, 2.0}  # 1.0 outcomes eliminated
        # Pointwise domination of honest play => strictly profitable.
        assert sum(payoffs) / len(payoffs) > 1.5

    def test_attack_fails_against_minimal_mediator(self):
        game = minimally_informative(self.make_leaky(), rounds=2)
        payoffs = run_attack(game, (0, 1), runs=30)
        assert 1.1 not in payoffs
        assert set(payoffs) <= {1.0, 2.0}

    def test_colluding_scheduler_trips_only_on_signal(self):
        sched = ColludingScheduler((0, 1))
        sched.reset(0)
        from repro.sim.network import MessageView

        normal = [MessageView(uid=1, sender=2, recipient=3, send_step=0, batch=1)]
        assert sched.choose(normal, 0) == 1
        signal = [
            MessageView(uid=2, sender=0, recipient=0, send_step=0, batch=2)
        ]
        assert sched.choose(signal, 1) is None
        assert sched.choose(normal, 2) is None  # stays tripped

    def test_honest_play_unaffected_by_leak(self):
        """Without deviators, the leaky mediator still implements the coin."""
        game = self.make_leaky()
        outcomes = set()
        for seed in range(10):
            run = game.run((0,) * 7, FifoScheduler(), seed=seed)
            assert len(set(run.actions)) == 1
            outcomes.add(run.actions[0])
        assert outcomes == {0, 1}
