"""Tests for the mediator layer: protocol, games, canonical form, ideal checks."""

import pytest

from repro.errors import GameError
from repro.games.library import (
    BOT,
    byzantine_agreement_game,
    chicken_game,
    consensus_game,
    free_rider_game,
    section64_game,
)
from repro.mediator import (
    FnMediator,
    LeakySection64Mediator,
    MediatorGame,
    MinimalMediator,
    check_canonical_form,
    check_ideal_mediator_robustness,
    minimally_informative,
)
from repro.mediator.ideal import (
    check_ideal_k_resilience,
    check_ideal_t_immunity,
    honest_payoffs,
)
from repro.sim import (
    FifoScheduler,
    RandomScheduler,
    RelaxedScheduler,
    scheduler_zoo,
)

from tests.helpers import CrashProcess


class TestHonestMediatorRuns:
    def test_consensus_all_coordinate(self):
        spec = consensus_game(4)
        game = MediatorGame(spec, k=1, t=0)
        for scheduler in scheduler_zoo(seed=3, parties=range(4)):
            run = game.run((0,) * 4, scheduler, seed=5)
            assert len(set(run.actions)) == 1
            assert run.actions[0] in (0, 1)

    def test_byzantine_agreement_majority_recommendation(self):
        spec = byzantine_agreement_game(5)
        game = MediatorGame(spec, k=0, t=0)
        run = game.run((1, 1, 1, 0, 0), FifoScheduler(), seed=2)
        assert run.actions == (1,) * 5

    def test_crashed_players_replaced_by_default_type(self):
        spec = byzantine_agreement_game(5)
        game = MediatorGame(spec, k=0, t=1)
        run = game.run(
            (1, 1, 0, 0, 0),
            FifoScheduler(),
            deviations={0: lambda pid, ty: CrashProcess()},
        )
        # Mediator hears 4 reports (quorum n-k-t = 4) and defaults player 0
        # to type 0: majority of (0,1,0,0,0) is 0; crashed player outputs
        # nothing and the default move (own type = 1) applies to player 0.
        assert run.actions[1:] == (0,) * 4

    def test_multi_round_mediator(self):
        spec = consensus_game(4)
        game = MediatorGame(spec, k=1, t=0, rounds=3)
        run = game.run((0,) * 4, FifoScheduler(), seed=1)
        assert len(set(run.actions)) == 1
        # 3 report rounds: n*(1 initial + 2 responses) + n round msgs*2 + n stops
        assert run.message_count() >= 4 * 3 + 4 * 2 + 4

    def test_canonical_form_holds(self):
        spec = consensus_game(4)
        game = MediatorGame(spec, k=1, t=0, rounds=2)
        run = game.run((0,) * 4, FifoScheduler(), seed=0, record_payloads=True)
        report = check_canonical_form(run.result, 4, game.mediator, max_rounds=2)
        assert report.ok, report.problems

    def test_unknown_approach_rejected(self):
        with pytest.raises(GameError):
            MediatorGame(consensus_game(4), k=1, t=0, approach="???")


class TestDeadlockSemantics:
    def make_relaxed(self, deliveries):
        return RelaxedScheduler(FifoScheduler(), deliveries_before_stop=deliveries)

    def test_stop_batch_all_or_none(self):
        """Under any relaxed scheduler, either all honest players move or
        none do (Lemma 6.10's characterisation of mediator-game deadlock)."""
        spec = consensus_game(4)
        game = MediatorGame(spec, k=1, t=0)
        for deliveries in range(0, 20):
            run = game.run((0,) * 4, self.make_relaxed(deliveries), seed=1)
            moved = sum(1 for pid in range(4) if pid in run.result.outputs)
            assert moved in (0, 4)

    def test_default_move_approach_fills_profile(self):
        spec = consensus_game(4)
        game = MediatorGame(spec, k=1, t=0, approach="default")
        run = game.run((0,) * 4, self.make_relaxed(2), seed=1)
        assert run.actions == (0, 0, 0, 0)  # spec default move is 0

    def test_ah_approach_executes_wills(self):
        spec = section64_game(4, k=1)
        game = MediatorGame(
            spec, k=1, t=0, approach="ah", will=lambda pid, ty: BOT
        )
        run = game.run((0,) * 4, self.make_relaxed(2), seed=1)
        assert run.actions == (BOT,) * 4  # punishment from the wills

    def test_ah_approach_without_will_falls_back_to_default(self):
        spec = consensus_game(4)
        game = MediatorGame(spec, k=1, t=0, approach="ah")
        run = game.run((0,) * 4, self.make_relaxed(2), seed=1)
        assert run.actions == (0, 0, 0, 0)


class TestLeakyMediator:
    def test_leaky_mediator_still_coordinates_honest_players(self):
        spec = section64_game(4, k=1)
        game = MediatorGame(
            spec, k=1, t=0,
            mediator_factory=lambda: LeakySection64Mediator(spec, 1, 0),
        )
        run = game.run((0,) * 4, FifoScheduler(), seed=3)
        assert len(set(run.actions)) == 1
        assert run.actions[0] in (0, 1)

    def test_leak_values_are_consistent_with_b(self):
        """Collect the leaked a + b·i values and check they decode b."""
        spec = section64_game(4, k=1)
        leaks = {}

        class Recorder(LeakySection64Mediator):
            def round_info_value(self, ctx, pid):
                value = super().round_info_value(ctx, pid)
                leaks[pid] = value
                return value

        game = MediatorGame(
            spec, k=1, t=0, mediator_factory=lambda: Recorder(spec, 1, 0)
        )
        run = game.run((0,) * 4, FifoScheduler(), seed=9)
        b = run.actions[0]
        # leak(i) xor leak(j) == b * (i - j) mod 2: adjacent leaks decode b.
        assert (leaks[1] - leaks[0]) % 2 == b % 2

    def test_minimally_informative_strips_leak(self):
        spec = section64_game(4, k=1)
        leaky = MediatorGame(
            spec, k=1, t=0,
            mediator_factory=lambda: LeakySection64Mediator(spec, 1, 0),
        )
        minimal = minimally_informative(leaky, rounds=1)
        run = minimal.run((0,) * 4, FifoScheduler(), seed=3, record_payloads=True)
        round_infos = [
            e.payload[2]
            for e in run.result.trace.sends()
            if e.sender == minimal.mediator
            and isinstance(e.payload, tuple)
            and e.payload[0] == "round"
        ]
        assert all(info is None for info in round_infos)
        assert len(set(run.actions)) == 1

    def test_weak_implementation_message_count_is_linear(self):
        spec = consensus_game(6)
        game = MediatorGame(
            spec, k=1, t=0, rounds=1,
            mediator_factory=lambda: MinimalMediator(spec, 1, 0, rounds=1),
        )
        run = game.run((0,) * 6, FifoScheduler(), seed=0)
        # One report per player + one STOP per player = 2n messages.
        assert run.message_count() == 12


class TestOutcomeSampling:
    def test_sample_outcomes_shape(self):
        spec = consensus_game(4)
        game = MediatorGame(spec, k=1, t=0)
        samples = game.sample_outcomes(
            scheduler_zoo(seed=0, parties=range(4)), samples_per_scheduler=3
        )
        rows = samples[(0, 0, 0, 0)]
        assert len(rows) == 3 * len(scheduler_zoo(seed=0, parties=range(4)))
        assert all(len(set(r)) == 1 for r in rows)

    def test_coin_distribution_roughly_uniform(self):
        spec = consensus_game(4)
        game = MediatorGame(spec, k=1, t=0)
        samples = game.sample_outcomes(
            [FifoScheduler()], samples_per_scheduler=200
        )
        ones = sum(1 for r in samples[(0, 0, 0, 0)] if r[0] == 1)
        assert 60 < ones < 140


class TestIdealCheckers:
    def test_honest_payoffs_consensus(self):
        spec = consensus_game(4)
        payoffs = honest_payoffs(spec, (), ())
        assert payoffs == {i: pytest.approx(1.0) for i in range(4)}

    def test_chicken_is_correlated_equilibrium(self):
        spec = chicken_game()
        assert check_ideal_k_resilience(spec, 1).holds

    def test_chicken_expected_payoff(self):
        payoffs = honest_payoffs(chicken_game(), (), ())
        assert payoffs[0] == pytest.approx(5.0)
        assert payoffs[1] == pytest.approx(5.0)

    def test_consensus_ideal_robustness(self):
        spec = consensus_game(5)
        assert check_ideal_mediator_robustness(spec, k=1, t=1).holds

    def test_section64_resilient_at_k1_not_k2(self):
        spec = section64_game(4, k=1)
        assert check_ideal_k_resilience(spec, 1).holds
        report = check_ideal_k_resilience(spec, 2)
        # Two players defecting to BOT when told "0" prefer 1.1 to 1.0.
        assert not report.holds
        assert any(len(v.coalition) == 2 for v in report.violations)

    def test_byzantine_agreement_t_immunity(self):
        spec = byzantine_agreement_game(5)
        assert check_ideal_t_immunity(spec, 1).holds

    def test_free_rider_nash(self):
        spec = free_rider_game(4, sharers_needed=2)
        assert check_ideal_k_resilience(spec, 1).holds

    def test_free_rider_nash_fails_when_not_pivotal(self):
        """With 3 sharers required but benefit below cost, duty is shirked."""
        spec = free_rider_game(4, sharers_needed=2, benefit=0.9, cost=1.0)
        report = check_ideal_k_resilience(spec, 1)
        assert not report.holds

    def test_missing_dist_rejected(self):
        spec = consensus_game(4)
        spec.mediator_dist = None
        with pytest.raises(GameError):
            check_ideal_k_resilience(spec, 1)
