"""Input equivocation in cheap talk is defeated by reliable broadcast.

In the mediator game, a liar sends one (possibly false) type to one
trusted mediator. In cheap talk there is no mediator: the input δ travels
by Bracha reliable broadcast precisely so a malicious input player cannot
show different inputs to different peers. These tests mount the
equivocation attack directly and verify RBC's agreement property closes it.
"""

import pytest

from repro.cheaptalk.game import ENGINE_SID, CheapTalkGame
from repro.field import GF, DEFAULT_PRIME
from repro.games.library import byzantine_agreement_game
from repro.sim import FifoScheduler, RandomScheduler
from repro.sim.process import Process

F = GF(DEFAULT_PRIME)


class EquivocatingInput(Process):
    """A malicious input player that sends conflicting RBC 'init' messages.

    It short-circuits the honest RBC dealer logic: half the peers receive
    init(x), the other half init(x'). Bracha's echo quorum prevents both
    values from being delivered; at most one survives.
    """

    def __init__(self, spec, pid, n, delta_a, delta_b):
        self.spec = spec
        self.pid = pid
        self.n = n
        self.delta_a = delta_a
        self.delta_b = delta_b

    def on_start(self, ctx):
        sid = ("rbc", self.pid, (ENGINE_SID, "delta"))
        half = self.n // 2
        for peer in range(self.n):
            value = self.delta_a if peer < half else self.delta_b
            ctx.send(peer, (sid, ("init", value)))

    def on_message(self, ctx, sender, payload):
        pass  # sends nothing further (does not echo/ready)


def run_with_equivocator(seed, scheduler=None):
    n, k, t = 9, 1, 1
    spec = byzantine_agreement_game(n)
    game = CheapTalkGame(spec, k, t, mode="bcg")
    types = (1, 1, 1, 1, 1, 0, 0, 0, 0)  # 5-4 majority without the liar

    setup = game.build_setup(seed)
    # The equivocator claims input 0 to half the network and 1 to the rest.
    pack = setup.pack_for(8)
    mask = pack.private_values[("mask", 8)]
    delta_zero = int(F(0) - mask)
    delta_one = int(F(1) - mask)

    def factory(pid, own_type, config):
        return EquivocatingInput(spec, pid, n, delta_zero, delta_one)

    run = game.run(
        types, scheduler or FifoScheduler(), seed=seed,
        deviations={8: factory},
    )
    return run


@pytest.mark.slow
class TestEquivocationDefeated:
    def test_honest_players_agree_despite_split_inputs(self):
        for seed in range(3):
            run = run_with_equivocator(seed, RandomScheduler(seed))
            honest = run.actions[:8]
            assert len(set(honest)) == 1, honest
            assert honest[0] in (0, 1)

    def test_agreed_value_consistent_with_one_claim(self):
        """Whatever the liar achieved, all honest parties computed the
        majority of ONE consistent reported profile: either the liar's 0,
        its 1, or its exclusion (default 0). Majority is 1 in the first
        and last case (5-4-ish), 1 or flip in the middle — but never a
        split."""
        run = run_with_equivocator(7)
        honest = run.actions[:8]
        assert len(set(honest)) == 1
