"""Tests for deterministic hierarchical randomness."""

from hypothesis import given, strategies as st

from repro.utils.rng import RngTree, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    @given(st.integers(0, 2**32), st.text(max_size=8))
    def test_range(self, master, label):
        seed = derive_seed(master, label)
        assert 0 <= seed < 2**64

    def test_label_types_distinguished(self):
        # repr-based derivation: int 1 and str "1" differ.
        assert derive_seed(0, 1) != derive_seed(0, "1")


class TestRngTree:
    def test_same_path_same_stream(self):
        a = RngTree(7).child("x", 1)
        b = RngTree(7).child("x", 1)
        assert [a.rng.random() for _ in range(5)] == [
            b.rng.random() for _ in range(5)
        ]

    def test_sibling_streams_differ(self):
        root = RngTree(7)
        a = root.child("x")
        b = root.child("y")
        assert a.rng.random() != b.rng.random()

    def test_parent_child_streams_differ(self):
        root = RngTree(7)
        child = root.child("x")
        assert root.rng.random() != child.rng.random()

    def test_shuffled_returns_new_list(self):
        root = RngTree(3)
        items = [1, 2, 3, 4, 5]
        shuffled = root.child("s").shuffled(items)
        assert sorted(shuffled) == items
        assert items == [1, 2, 3, 4, 5]

    def test_nested_children(self):
        a = RngTree(5).child("a").child("b")
        b = RngTree(5).child("a", "b")
        assert a.rng.random() == b.rng.random()
