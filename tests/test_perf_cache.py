"""Compile-once/run-many correctness: the contracts behind the speed.

The artifact cache, persistent pool, and chunked dispatch are only
admissible because they are *invisible* in the records: warm-cache ==
cold-cache, parallel == serial, shared-runner audits == per-call audits.
This module pins exactly those equalities, plus the cache keying rules
(games axis, ``file:`` stamps, mediator variants) that keep distinct
artifacts from colliding.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    ArtifactCache,
    CellKey,
    ExperimentResult,
    ExperimentRunner,
    expand_grid,
    get_scenario,
    prepare_cell,
)
from repro.errors import ExperimentError


class TestArtifactCache:
    def test_lru_bound_and_stats(self):
        cache = ArtifactCache(maxsize=2)
        assert cache.get(("a",), lambda: 1) == 1
        assert cache.get(("a",), lambda: 2) == 1  # hit keeps first value
        cache.get(("b",), lambda: 2)
        cache.get(("c",), lambda: 3)  # evicts ("a",), the LRU entry
        assert len(cache) == 2
        assert cache.get(("a",), lambda: 9) == 9  # rebuilt after eviction
        assert cache.hits == 1 and cache.misses == 4

    def test_disabled_cache_never_stores(self):
        cache = ArtifactCache(maxsize=0)
        assert cache.get(("a",), lambda: 1) == 1
        assert cache.get(("a",), lambda: 2) == 2  # nothing was stored
        assert len(cache) == 0 and cache.misses == 2

    def test_lru_recency_on_hit(self):
        cache = ArtifactCache(maxsize=2)
        cache.get(("a",), lambda: 1)
        cache.get(("b",), lambda: 2)
        cache.get(("a",), lambda: 0)  # refresh ("a",)
        cache.get(("c",), lambda: 3)  # must evict ("b",), not ("a",)
        assert cache.get(("a",), lambda: 9) == 1

    def test_bad_cache_size_rejected(self):
        with pytest.raises(ExperimentError, match="cache_size"):
            ExperimentRunner(cache_size=-1)


class TestCellKey:
    def test_slow_axes_shared_fast_axes_ignored(self):
        spec = get_scenario("chicken-mediator").replace(seed_count=3)
        tasks = expand_grid(spec)
        keys = {CellKey.for_task(spec, task) for task in tasks}
        # seeds/schedulers are fast axes: one deviation => one key each.
        assert len(keys) == len(spec.deviations)

    def test_mediator_variants_do_not_collide(self):
        leaky = get_scenario("sec64-leaky-honest")
        minimal = get_scenario("sec64-minimal-honest")
        key_l = CellKey.for_task(leaky, expand_grid(leaky)[0])
        key_m = CellKey.for_task(minimal, expand_grid(minimal)[0])
        assert key_l.protocol_key() != key_m.protocol_key()

    @staticmethod
    def _write_tiny_game(path, action):
        data = {
            "name": "tiny-fixed",
            "n": 2,
            "actions": [["a", "b"], ["a", "b"]],
            "types": {"kind": "single", "profile": [0, 0]},
            "payoff": {"kind": "expr", "expr": "1.0"},
            "mediator": {"rule": "fixed", "params": {"profile": [action, action]}},
            "default_move": {"kind": "constant", "action": "a"},
        }
        text = json.dumps(data)
        if action == "b":
            text += " "  # force a distinct (mtime_ns, size) stamp
        path.write_text(text)

    def test_file_game_stamp_in_key(self, tmp_path):
        path = tmp_path / "game.json"
        self._write_tiny_game(path, "a")
        spec = get_scenario("mediator-honest").replace(
            game=f"file:{path}", seed_count=1, schedulers=("fifo",), k=1, t=0
        )
        task = expand_grid(spec)[0]
        stamp1 = CellKey.for_task(spec, task).file_stamp
        assert stamp1 is not None
        registry_key = CellKey.for_task(
            get_scenario("chicken-mediator"),
            expand_grid(get_scenario("chicken-mediator"))[0],
        )
        assert registry_key.file_stamp is None
        self._write_tiny_game(path, "b")
        stamp2 = CellKey.for_task(spec, task).file_stamp
        assert stamp1 != stamp2

    def test_file_game_edit_invalidates_warm_runner(self, tmp_path):
        path = tmp_path / "game.json"
        spec = get_scenario("mediator-honest").replace(
            game=f"file:{path}", seed_count=2, schedulers=("fifo",), k=1, t=0
        )
        runner = ExperimentRunner()
        self._write_tiny_game(path, "a")
        first = runner.run(spec)
        self._write_tiny_game(path, "b")
        second = runner.run(spec)  # same warm runner, edited file
        assert not first.failed() and not second.failed()
        assert {r.actions for r in first.records} == {("a", "a")}
        assert {r.actions for r in second.records} == {("b", "b")}


class TestWarmColdIdentity:
    SCENARIOS = (
        ("chicken-mediator", {"seed_count": 3}),
        ("sec64-leaky-honest", {"seed_count": 3}),
        ("sec64-minimal-honest", {"seed_count": 3}),
        ("r1-baseline", {}),
        ("raw-chicken-matrix", {}),
        ("mediator-honest", {"seed_count": 2}),
    )

    def test_warm_equals_cold_for_canonical_scenarios(self):
        cold_runner = ExperimentRunner(cache_size=0)
        warm_runner = ExperimentRunner()
        for name, overrides in self.SCENARIOS:
            spec = get_scenario(name).replace(**overrides) if overrides \
                else get_scenario(name)
            cold = cold_runner.run(spec)
            first = warm_runner.run(spec)
            second = warm_runner.run(spec)  # every prepare now cache-hits
            assert first.records == cold.records, name
            assert second.records == cold.records, name
            assert second.stats["cache"]["misses"] == 0, name

    @pytest.mark.slow
    def test_warm_equals_cold_cheaptalk(self):
        spec = get_scenario("thm41-honest").replace(
            schedulers=("fifo", "random"), seed_count=2
        )
        cold = ExperimentRunner(cache_size=0).run(spec)
        warm_runner = ExperimentRunner()
        warm_runner.run(spec)
        warm = warm_runner.run(spec)
        assert warm.records == cold.records
        assert warm.stats["cache"]["misses"] == 0
        assert warm.stats["cache"]["hits"] > 0

    def test_games_axis_keying(self):
        # One grid spanning several games through one warm runner: each
        # family instance must resolve to its own cached artifacts.
        spec = get_scenario("consensus-scaling")
        runner = ExperimentRunner()
        warm1 = runner.run(spec)
        warm2 = runner.run(spec)
        cold = ExperimentRunner(cache_size=0).run(spec)
        assert warm1.records == cold.records
        assert warm2.records == cold.records
        sizes = {r.game for r in cold.records}
        assert len(sizes) > 1  # really multiple games in one grid


class TestPreparedCell:
    def test_prepare_without_cache_matches_cached(self):
        spec = get_scenario("chicken-mediator")
        task = expand_grid(spec)[0]
        cache = ArtifactCache()
        bare = prepare_cell(spec, task)
        cached = prepare_cell(spec, task, cache)
        again = prepare_cell(spec, task, cache)
        assert bare.key == cached.key == again.key
        assert cached.game is again.game  # the artifact itself is shared
        assert cache.hits > 0


class TestPersistentPool:
    def test_pool_reused_across_runs(self):
        spec = get_scenario("chicken-mediator").replace(seed_count=2)
        serial = ExperimentRunner().run(spec)
        with ExperimentRunner(parallel=True, processes=2) as runner:
            first = runner.run(spec)
            second = runner.run(spec)
        assert first.records == serial.records
        assert second.records == serial.records
        assert first.stats["pool"] == {
            "used": True, "processes": 2, "reused": False,
        }
        assert second.stats["pool"]["reused"] is True

    def test_close_is_idempotent_and_recoverable(self):
        spec = get_scenario("r1-baseline")
        runner = ExperimentRunner(parallel=True, processes=2)
        first = runner.run(spec)
        runner.close()
        runner.close()
        second = runner.run(spec)  # lazily recreates the pool
        runner.close()
        assert first.records == second.records

    def test_progress_callback_streams(self):
        spec = get_scenario("chicken-mediator").replace(seed_count=2)
        seen: list[tuple[int, int]] = []
        result = ExperimentRunner().run(
            spec, progress=lambda done, total: seen.append((done, total))
        )
        total = len(result.records)
        assert len(seen) == total
        assert seen[-1] == (total, total)
        assert [done for done, _ in seen] == sorted(done for done, _ in seen)

    def test_progress_callback_parallel(self):
        spec = get_scenario("chicken-mediator").replace(seed_count=2)
        seen: list[tuple[int, int]] = []
        with ExperimentRunner(parallel=True, processes=2) as runner:
            result = runner.run(
                spec, progress=lambda done, total: seen.append((done, total))
            )
        total = len(result.records)
        assert len(seen) == total and seen[-1] == (total, total)


class TestStats:
    def test_serial_stats_shape(self):
        spec = get_scenario("chicken-mediator").replace(seed_count=2)
        result = ExperimentRunner().run(spec)
        assert result.stats["pool"]["used"] is False
        phases = result.stats["phases"]
        assert set(phases) == {"prepare_s", "run_s", "payoff_s"}
        assert all(v >= 0 for v in phases.values())
        cache = result.stats["cache"]
        assert cache["misses"] > 0  # first run on a fresh runner

    def test_stats_round_trip_and_equality_exclusion(self):
        spec = get_scenario("raw-chicken-matrix")
        result = ExperimentRunner().run(spec)
        restored = ExperimentResult.from_json(result.to_json())
        assert restored == result
        assert restored.stats == result.stats
        # stats are bookkeeping: a result with different stats is equal.
        assert ExperimentResult(
            spec=result.spec, records=result.records, stats={}
        ) == result


class TestAuditSharedRunner:
    def test_run_audit_shared_equals_owned(self):
        from repro.audit import get_audit, run_audit

        spec = get_audit("sec64-leak").replace(seed_count=3, budget=8)
        owned = run_audit(spec)
        with ExperimentRunner() as shared:
            first = run_audit(spec, runner=shared)
            second = run_audit(spec, runner=shared)  # warm caches
        assert first.cells == owned.cells
        assert second.cells == owned.cells

    def test_run_frontier_shared_equals_owned(self):
        from repro.audit import get_audit, run_frontier

        spec = get_audit("sec64-minimal-audit").replace(seed_count=2, budget=6)
        owned = run_frontier(spec)
        with ExperimentRunner() as shared:
            again = run_frontier(spec, runner=shared)
        assert again.cells == owned.cells

    def test_run_fuzz_shared_equals_owned(self):
        from repro.audit import run_fuzz

        kwargs = dict(count=2, budget=6, seed_count=2)
        owned = run_fuzz(**kwargs)
        with ExperimentRunner() as shared:
            again = run_fuzz(runner=shared, **kwargs)
        assert [r.cells for r in again] == [r.cells for r in owned]

    def test_runner_plus_construction_args_rejected(self):
        from repro.audit import get_audit, run_audit

        spec = get_audit("sec64-leak")
        with ExperimentRunner() as shared:
            with pytest.raises(ExperimentError, match="not both"):
                run_audit(spec, parallel=True, runner=shared)
            with pytest.raises(ExperimentError, match="not both"):
                run_audit(spec, timeout_s=5.0, runner=shared)


class TestBenchSuite:
    def test_run_suite_and_baseline_soft_warn(self):
        from repro.bench import bench_names, compare_to_baseline, run_suite

        suite = run_suite(names=["games-construct"], quick=True)
        assert suite["benches"][0]["name"] == "games-construct"
        assert suite["benches"][0]["cells_per_s"] > 0
        assert "games-construct" in bench_names()

        row = dict(suite["benches"][0])
        fast = {"benches": [{**row, "cells_per_s": row["cells_per_s"] * 10}]}
        slow = {"benches": [{**row, "cells_per_s": row["cells_per_s"] / 10}]}
        assert compare_to_baseline(suite, slow) == []  # we are faster: fine
        warnings = compare_to_baseline(suite, fast)
        assert len(warnings) == 1 and "below the baseline" in warnings[0]
        # Unknown benches on either side are skipped, not errors.
        assert compare_to_baseline(suite, {"benches": [{"name": "x"}]}) == []

    def test_unknown_bench_rejected(self):
        from repro.bench import run_suite

        with pytest.raises(ExperimentError, match="unknown bench"):
            run_suite(names=["nope"])


class TestProfileCLI:
    def test_run_profile_flag(self, capsys):
        from repro.cli import main

        main(["run", "raw-chicken-matrix", "--profile"])
        out = capsys.readouterr().out
        assert "profile — raw-chicken-matrix" in out
        assert "artifact cache:" in out

    def test_bench_cli_json(self, capsys, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "bench_suite.json"
        main(["bench", "games-construct", "--json", "--out", str(out_path)])
        printed = json.loads(capsys.readouterr().out)
        on_disk = json.loads(out_path.read_text())
        assert printed["benches"][0]["name"] == "games-construct"
        assert on_disk["suite"] == "repro-bench"
