"""Tests for the synchronous runtime, BGW engine, and R1 compiler."""

import pytest

from repro.cheaptalk.sync import SynchronousCheapTalk, compile_r1
from repro.circuits import Circuit
from repro.errors import CompilationError, SimulationError, StepLimitExceeded
from repro.field import GF, DEFAULT_PRIME
from repro.games.library import byzantine_agreement_game, consensus_game
from repro.mpc.bgw import multiplication_layers
from repro.sim.sync import SyncProcess, SyncRuntime

F = GF(DEFAULT_PRIME)


class Echo(SyncProcess):
    def __init__(self, peer):
        self.peer = peer
        self.got = []

    def on_round(self, ctx, inbox):
        if ctx.round == 0:
            ctx.send(self.peer, ("hello", ctx.pid))
            return
        for sender, payload in inbox:
            self.got.append((sender, payload))
        if self.got and not ctx.has_output():
            ctx.output(len(self.got))
            ctx.halt()


class TestSyncRuntime:
    def test_round_delivery(self):
        procs = {0: Echo(1), 1: Echo(0)}
        result = SyncRuntime(procs).run()
        assert result.outputs == {0: 1, 1: 1}
        assert result.rounds >= 2

    def test_empty_process_set_rejected(self):
        with pytest.raises(SimulationError):
            SyncRuntime({})

    def test_double_output_rejected(self):
        class Bad(SyncProcess):
            def on_round(self, ctx, inbox):
                ctx.output(1)
                ctx.output(2)

        with pytest.raises(SimulationError):
            SyncRuntime({0: Bad()}).run()

    def test_round_limit(self):
        class Chatter(SyncProcess):
            def on_round(self, ctx, inbox):
                ctx.send(ctx.pid, "again")

        with pytest.raises(StepLimitExceeded):
            SyncRuntime({0: Chatter()}, max_rounds=10).run()

    def test_rng_uses_legacy_sync_namespace(self):
        """Seeded synchronous runs must reproduce pre-kernel randomness."""
        from repro.utils.rng import RngTree

        values = {}

        class Roller(SyncProcess):
            def on_round(self, ctx, inbox):
                values[ctx.pid] = ctx.rng.randrange(10**9)
                ctx.halt()

        SyncRuntime({0: Roller(), 1: Roller()}, seed=3).run()
        expected = {
            pid: RngTree(3).child("sync", pid).rng.randrange(10**9)
            for pid in (0, 1)
        }
        assert values == expected

    def test_rng_deterministic(self):
        values = {}

        class Roller(SyncProcess):
            def on_round(self, ctx, inbox):
                values[ctx.pid] = ctx.rng.randrange(10**9)
                ctx.halt()

        SyncRuntime({0: Roller(), 1: Roller()}, seed=3).run()
        first = dict(values)
        values.clear()
        SyncRuntime({0: Roller(), 1: Roller()}, seed=3).run()
        assert values == first

    def test_broadcast_reaches_everyone(self):
        seen = {}

        class Caster(SyncProcess):
            def on_round(self, ctx, inbox):
                if ctx.round == 0 and ctx.pid == 0:
                    ctx.broadcast("announcement")
                for sender, payload in inbox:
                    seen[ctx.pid] = payload
                if ctx.round >= 1:
                    ctx.halt()

        SyncRuntime({i: Caster() for i in range(3)}).run()
        assert seen == {i: "announcement" for i in range(3)}


class TestMultiplicationLayers:
    def test_layering(self):
        c = Circuit(F)
        a, b = c.input(0), c.input(1)
        m1 = c.mul(a, b)          # layer 1
        m2 = c.mul(m1, b)         # layer 2
        s = c.add(m1, m2)
        m3 = c.mul(s, m1)         # layer 3
        layers = multiplication_layers(c)
        assert layers == [[m1], [m2], [m3]]

    def test_parallel_muls_share_a_layer(self):
        c = Circuit(F)
        a, b = c.input(0), c.input(1)
        m1 = c.mul(a, b)
        m2 = c.mul(b, a)
        layers = multiplication_layers(c)
        assert layers == [[m1, m2]]

    def test_no_muls(self):
        c = Circuit(F)
        c.add(c.const(1), c.const(2))
        assert multiplication_layers(c) == []


class TestR1Compiler:
    def test_bound_enforced(self):
        with pytest.raises(CompilationError):
            compile_r1(consensus_game(6), 1, 1)
        assert compile_r1(consensus_game(7), 1, 1)

    def test_consensus_coordinates(self):
        sync = compile_r1(consensus_game(7), 1, 1)
        for seed in range(4):
            actions, result = sync.run((0,) * 7, seed=seed)
            assert len(set(actions)) == 1
            assert actions[0] in (0, 1)

    def test_byzantine_agreement_majority(self):
        sync = compile_r1(byzantine_agreement_game(7), 1, 1)
        actions, _ = sync.run((1, 1, 1, 1, 0, 0, 0), seed=0)
        assert actions == (1,) * 7

    def test_crash_fault_defaults_input(self):
        sync = compile_r1(byzantine_agreement_game(7), 1, 1)
        # types majority 1 but crashing two 1-voters flips reported majority
        actions, _ = sync.run(
            (1, 1, 1, 1, 0, 0, 0), seed=1, crashed=[0, 1]
        )
        # Defaults (type profile 0) for crashed: reported = (0,0,1,1,0,0,0).
        assert actions[2:] == (0,) * 5

    def test_fewer_messages_than_async(self):
        from repro.cheaptalk import compile_theorem41
        from repro.sim import FifoScheduler

        sync = compile_r1(consensus_game(9), 1, 1)
        _, sync_result = sync.run((0,) * 9, seed=1)
        async_proto = compile_theorem41(consensus_game(9), 1, 1)
        async_run = async_proto.game.run((0,) * 9, FifoScheduler(), seed=1)
        assert sync_result.messages_sent < async_run.message_count()

    def test_outcome_distribution_is_fair_coin(self):
        sync = compile_r1(consensus_game(7), 1, 1)
        ones = sum(sync.run((0,) * 7, seed=s)[0][0] for s in range(20))
        assert 3 <= ones <= 17
