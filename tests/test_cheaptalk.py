"""Tests for the cheap-talk compilers, properties, and circuits."""

import random

import pytest

from repro.cheaptalk import (
    CheapTalkGame,
    check_cotermination,
    compile_theorem41,
    compile_theorem42,
    compile_theorem44,
    compile_theorem45,
    mediator_circuit_for,
)
from repro.cheaptalk.circuits import output_label
from repro.errors import CompilationError, MediatorError
from repro.field import GF, DEFAULT_PRIME
from repro.games.library import (
    BOT,
    byzantine_agreement_game,
    chicken_game,
    consensus_game,
    free_rider_game,
    section64_game,
    shamir_secret_game,
)
from repro.sim import FifoScheduler, RandomScheduler, scheduler_zoo

from tests.helpers import CrashProcess

F = GF(DEFAULT_PRIME)


class TestMediatorCircuits:
    @pytest.mark.parametrize(
        "spec_maker",
        [
            lambda: consensus_game(5),
            lambda: section64_game(4, 1),
            lambda: byzantine_agreement_game(5),
            chicken_game,
            free_rider_game,
            shamir_secret_game,
        ],
        ids=["consensus", "section64", "byz", "chicken", "free-rider", "shamir"],
    )
    def test_circuit_agrees_with_mediator_dist(self, spec_maker):
        """Clear evaluation of the circuit matches the ideal distribution."""
        spec = spec_maker()
        circuit = mediator_circuit_for(spec, F)
        n = spec.game.n
        input_players = circuit.input_players()
        for t_idx, types in enumerate(spec.game.type_space.profiles()[:3]):
            dist = spec.mediator_dist(types)
            seen = {}
            trials = 120 if len(dist) > 1 else 8
            for i in range(trials):
                inputs = {
                    p: spec.encode_type(types[p]) for p in input_players
                }
                out = circuit.evaluate(inputs, random.Random(1000 * t_idx + i))
                actions = tuple(
                    spec.decode_action(int(out[output_label(p)]))
                    for p in range(n)
                )
                seen[actions] = seen.get(actions, 0) + 1
            assert set(seen) == set(dist), (types, seen, dist)
            for actions, count in seen.items():
                assert abs(count / trials - dist[actions]) < 0.2

    def test_unknown_spec_rejected(self):
        spec = consensus_game(4)
        spec.name = "mystery-game"
        with pytest.raises(MediatorError):
            mediator_circuit_for(spec, F)


class TestCompilerBounds:
    def test_theorem41_bound(self):
        with pytest.raises(CompilationError):
            compile_theorem41(consensus_game(8), 1, 1)  # needs n > 8
        assert compile_theorem41(consensus_game(9), 1, 1)

    def test_theorem42_bound(self):
        with pytest.raises(CompilationError):
            compile_theorem42(consensus_game(6), 1, 1, epsilon=0.1)
        assert compile_theorem42(consensus_game(7), 1, 1, epsilon=0.1)

    def test_theorem44_bound_and_punishment(self):
        spec = section64_game(4, k=1)
        with pytest.raises(CompilationError):
            compile_theorem44(section64_game(7, k=2), 2, 1)  # needs n > 10
        with pytest.raises(CompilationError):
            # punishment strength k=1 < k+t=2
            compile_theorem44(section64_game(8, k=1), 1, 1)
        assert compile_theorem44(spec, 1, 0)

    def test_theorem45_bound_and_punishment(self):
        with pytest.raises(CompilationError):
            compile_theorem45(section64_game(4, k=1), 1, 1, epsilon=0.1)
        spec = section64_game(7, k=2)  # punishment strength 2 >= 2k+2t = 2
        assert compile_theorem45(spec, 1, 0, epsilon=0.1)

    def test_epsilon_controls_field_choice(self):
        loose = compile_theorem42(consensus_game(7), 1, 1, epsilon=0.5)
        tight = compile_theorem42(consensus_game(7), 1, 1, epsilon=1e-6)
        assert loose.game.field.p < tight.game.field.p
        assert loose.epsilon_achieved <= 0.5
        assert tight.epsilon_achieved <= 1e-6

    def test_describe(self):
        proto = compile_theorem41(consensus_game(9), 1, 1)
        text = proto.describe()
        assert "Theorem 4.1" in text and "n > 4k+4t" in text


@pytest.mark.slow
class TestTheorem41Runs:
    def test_consensus_coordinates_across_schedulers(self):
        proto = compile_theorem41(consensus_game(9), 1, 1)
        for scheduler in scheduler_zoo(seed=2, parties=range(9))[:4]:
            run = proto.game.run((0,) * 9, scheduler, seed=3)
            assert len(set(run.actions)) == 1
            assert run.actions[0] in (0, 1)

    def test_byzantine_agreement_types_flow_through(self):
        proto = compile_theorem41(byzantine_agreement_game(9), 1, 1)
        types = (1, 1, 1, 1, 1, 1, 0, 0, 0)
        run = proto.game.run(types, FifoScheduler(), seed=1)
        assert run.actions == (1,) * 9

    def test_tolerates_crashes_up_to_budget(self):
        from repro.analysis.deviations import ct_crash

        proto = compile_theorem41(consensus_game(9), 1, 1)
        deviations = {7: ct_crash(), 8: ct_crash()}
        run = proto.game.run(
            (0,) * 9, FifoScheduler(), seed=2, deviations=deviations
        )
        honest_actions = run.actions[:7]
        assert len(set(honest_actions)) == 1

    def test_lying_shares_corrected(self):
        from repro.analysis.deviations import ct_lying_shares

        spec = consensus_game(9)
        proto = compile_theorem41(spec, 1, 1)
        run = proto.game.run(
            (0,) * 9, FifoScheduler(), seed=4,
            deviations={8: ct_lying_shares(spec)},
        )
        assert len(set(run.actions[:8])) == 1

    def test_outcome_distribution_matches_mediator_coin(self):
        proto = compile_theorem41(consensus_game(9), 1, 1)
        ones = 0
        for seed in range(24):
            run = proto.game.run((0,) * 9, FifoScheduler(), seed=seed)
            ones += run.actions[0]
        assert 4 <= ones <= 20  # fair-ish coin


class TestTheorem42Runs:
    def test_consensus_at_tighter_bound(self):
        proto = compile_theorem42(consensus_game(7), 1, 1, epsilon=0.01)
        for seed in range(4):
            run = proto.game.run((0,) * 7, RandomScheduler(seed), seed=seed)
            assert len(set(run.actions)) == 1

    def test_small_field_still_correct_honest(self):
        proto = compile_theorem42(
            consensus_game(7), 1, 1, epsilon=1.0, field=GF(101)
        )
        run = proto.game.run((0,) * 7, FifoScheduler(), seed=0)
        assert len(set(run.actions)) == 1

    def test_mac_rejection_with_liar(self):
        from repro.analysis.deviations import ct_lying_shares

        spec = consensus_game(7)
        proto = compile_theorem42(spec, 1, 1, epsilon=0.01)
        run = proto.game.run(
            (0,) * 7, FifoScheduler(), seed=5,
            deviations={6: ct_lying_shares(spec)},
        )
        assert len(set(run.actions[:6])) == 1


class TestTheorem44Runs:
    def test_honest_run_reaches_equilibrium(self):
        proto = compile_theorem44(section64_game(4, k=1), 1, 0)
        run = proto.game.run((0,) * 4, FifoScheduler(), seed=0)
        assert len(set(run.actions)) == 1
        assert run.actions[0] in (0, 1)

    def test_single_staller_cannot_deadlock(self):
        """Substrate-strength note (DESIGN.md §3): with dealt offline
        material, a single staller at the Theorem 4.4 bound cannot block
        the error-corrected openings — honest players still move."""
        from repro.analysis.deviations import ct_stall_after

        spec = section64_game(4, k=1)
        proto = compile_theorem44(spec, 1, 0)
        run = proto.game.run(
            (0,) * 4, FifoScheduler(), seed=1,
            deviations={3: ct_stall_after(spec, limit=2)},
        )
        assert len(set(run.actions[:3])) == 1
        assert run.actions[0] in (0, 1)

    def test_blocking_coalition_triggers_punishment_wills(self):
        """A coalition large enough to stall the protocol gets everyone's
        ⊥ will executed — and ends up below the 1.5 equilibrium payoff."""
        from repro.analysis.deviations import ct_stall_after

        spec = section64_game(4, k=1)
        proto = compile_theorem44(spec, 1, 0)
        run = proto.game.run(
            (0,) * 4, FifoScheduler(), seed=1,
            deviations={
                2: ct_stall_after(spec, limit=2),
                3: ct_stall_after(spec, limit=2),
            },
        )
        # Nobody reconstructs: every will (honest and staller) plays BOT.
        assert run.actions == (BOT,) * 4
        payoff = spec.game.utility(run.types, run.actions)[3]
        assert payoff == pytest.approx(1.1)  # below the 1.5 equilibrium

    def test_stalling_is_unprofitable_on_average(self):
        from repro.analysis.deviations import ct_stall_after

        spec = section64_game(4, k=1)
        proto = compile_theorem44(spec, 1, 0)
        stall = {
            2: ct_stall_after(spec, limit=2),
            3: ct_stall_after(spec, limit=2),
        }
        honest, stalled = [], []
        for seed in range(12):
            run_h = proto.game.run((0,) * 4, FifoScheduler(), seed=seed)
            honest.append(spec.game.utility(run_h.types, run_h.actions)[3])
            run_s = proto.game.run(
                (0,) * 4, FifoScheduler(), seed=seed, deviations=stall
            )
            stalled.append(spec.game.utility(run_s.types, run_s.actions)[3])
        assert sum(stalled) / len(stalled) < sum(honest) / len(honest)

    def test_cotermination_over_adversaries(self):
        from repro.analysis.deviations import ct_crash, ct_stall_after

        spec = section64_game(4, k=1)
        proto = compile_theorem44(spec, 1, 0)
        report = check_cotermination(
            proto.game,
            schedulers=[FifoScheduler(), RandomScheduler(1)],
            adversaries=[
                None,
                {3: ct_crash()},
                {3: ct_stall_after(spec, limit=3)},
                {3: ct_stall_after(spec, limit=8)},
            ],
            trials=3,
        )
        assert report.holds, report.details


class TestTheorem45Runs:
    def test_honest_run(self):
        proto = compile_theorem45(section64_game(7, k=2), 1, 0, epsilon=0.05)
        run = proto.game.run((0,) * 7, FifoScheduler(), seed=0)
        assert len(set(run.actions)) == 1

    def test_deadlock_punishment(self):
        from repro.analysis.deviations import ct_stall_after

        spec = section64_game(7, k=2)
        proto = compile_theorem45(spec, 1, 0, epsilon=0.05)
        run = proto.game.run(
            (0,) * 7, FifoScheduler(), seed=1,
            deviations={
                5: ct_stall_after(spec, limit=2),
                6: ct_stall_after(spec, limit=2),
            },
        )
        assert all(a == BOT for a in run.actions[:5])


class TestDefaultMoveVsAH:
    def test_default_move_approach_on_41(self):
        proto = compile_theorem41(
            consensus_game(9), 1, 1, approach="default"
        )
        from repro.analysis.deviations import ct_crash

        # Even if k+t players crash, the engine completes (n > 4(k+t)) and
        # honest players move; the crashed players' default move applies.
        run = proto.game.run(
            (0,) * 9, FifoScheduler(), seed=0,
            deviations={7: ct_crash(), 8: ct_crash()},
        )
        assert run.actions[7] == 0 and run.actions[8] == 0  # default move

    def test_ah_approach_without_wills_matches_default(self):
        game = CheapTalkGame(consensus_game(9), 1, 1, approach="ah")
        run = game.run((0,) * 9, FifoScheduler(), seed=0)
        assert len(set(run.actions)) == 1
