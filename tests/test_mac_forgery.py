"""Statistical tests for the BKR engine's ε: MAC forgery probability.

Theorem 4.2/4.5's ε comes, in our substrate, from the probability that a
forged share passes a pairwise information-theoretic MAC check — 1/p per
uniformly guessed tag (2/p in the compiler's conservative union bound).
These tests measure that probability directly at the WireShare level: tiny
fields leak, big fields don't, and the measured rate matches 1/p.
"""

import random

from repro.field import GF, DEFAULT_PRIME
from repro.mpc.engine import WireShare
from repro.mpc.setup import TrustedSetup


def forgery_attempts(prime: int, attempts: int, seed: int = 0) -> int:
    """Count how many uniformly-forged (value, mac) pairs pass verification."""
    field = GF(prime)
    setup = TrustedSetup(field, list(range(4)), 1, seed=seed)
    setup.deal_base(("rand", 0))
    wire = WireShare.base(field, ("rand", 0))
    verifier = setup.pack_for(3)
    rng = random.Random(seed + 1)
    passed = 0
    for _ in range(attempts):
        forged_value = field.random(rng)
        forged_mac = field.random(rng)
        if wire.verify_mac(0, forged_value, forged_mac, verifier):
            passed += 1
    return passed


class TestForgeryProbability:
    def test_small_field_leaks_at_rate_one_over_p(self):
        attempts = 4000
        passed = forgery_attempts(101, attempts)
        rate = passed / attempts
        # Expected 1/101 ~ 0.0099; allow 3 sigma of binomial noise.
        assert 0.004 < rate < 0.017, rate

    def test_large_field_never_leaks(self):
        assert forgery_attempts(DEFAULT_PRIME, 4000) == 0

    def test_rate_scales_inversely_with_p(self):
        attempts = 6000
        small = forgery_attempts(101, attempts, seed=5)
        large = forgery_attempts(10007, attempts, seed=5)
        assert small > 5 * max(large, 1)

    def test_targeted_forgery_needs_alpha(self):
        """Even knowing the true share, shifting it requires guessing the
        verifier's key: acceptance of value+1 with mac+delta is a pure
        guess of alpha."""
        field = GF(101)
        setup = TrustedSetup(field, list(range(4)), 1, seed=9)
        setup.deal_base(("rand", 0))
        wire = WireShare.base(field, ("rand", 0))
        sender_pack = setup.pack_for(0)
        verifier = setup.pack_for(3)
        value = wire.my_value(sender_pack)
        mac = wire.my_mac_for(3, sender_pack)
        rng = random.Random(0)
        passed = 0
        attempts = 3000
        for _ in range(attempts):
            guess_alpha = field.random(rng)
            forged_mac = mac + guess_alpha  # claims value + 1
            if wire.verify_mac(0, value + field(1), forged_mac, verifier):
                passed += 1
        assert passed <= attempts // 20  # ~1/p, certainly far from reliable
