"""Tests for the robustness-audit engine (repro.audit)."""

import json

import pytest

from repro.audit import (
    AuditEngine,
    AuditResult,
    AuditSpec,
    CandidateDeviation,
    Coalition,
    DeviationAtom,
    StrategySpace,
    audit_names,
    candidate_from_name,
    enumerate_coalitions,
    get_audit,
    iter_audits,
    register_audit,
    run_audit,
    run_frontier,
)
from repro.errors import ExperimentError
from repro.experiments import (
    MODE_FOR_THEOREM,
    ExperimentRunner,
    deviation_profile,
    deviations_for_mode,
    iter_scenarios,
)
from repro.games.registry import make_game


class TestCoalitions:
    def test_disjoint_and_bounded(self):
        for coalition in enumerate_coalitions(7, 2, 1, symmetry=False):
            assert not set(coalition.rational) & set(coalition.malicious)
            assert 1 <= len(coalition.rational) <= 2
            assert len(coalition.malicious) <= 1

    def test_full_enumeration_count(self):
        # n=4, k=1, t=1, no symmetry: 4 singles + 4*3 pairs = 16 splits.
        assert len(enumerate_coalitions(4, 1, 1, symmetry=False)) == 16

    def test_symmetry_keeps_parity_classes(self):
        # All types equal: representatives split only by (type, parity), so
        # the odd-difference pair (needed by Section 6.4) must survive.
        reps = enumerate_coalitions(7, 2, 0)
        pairs = [c.rational for c in reps if len(c.rational) == 2]
        parities = {tuple(sorted(p % 2 for p in pair)) for pair in pairs}
        assert parities == {(0, 0), (0, 1), (1, 1)}

    def test_symmetry_respects_types(self):
        reps_uniform = enumerate_coalitions(6, 1, 0, types=(0,) * 6)
        reps_typed = enumerate_coalitions(6, 1, 0, types=(0, 1, 0, 1, 0, 1))
        assert len(reps_typed) == len(reps_uniform)  # parity == type here
        reps_richer = enumerate_coalitions(6, 1, 0, types=(0, 0, 1, 1, 2, 2))
        assert len(reps_richer) > len(reps_uniform)

    def test_overlapping_members_rejected(self):
        with pytest.raises(ExperimentError, match="both"):
            Coalition(rational=(1,), malicious=(1,))

    def test_bad_bounds_rejected(self):
        with pytest.raises(ExperimentError, match="exceed"):
            enumerate_coalitions(3, 2, 2)
        with pytest.raises(ExperimentError, match=">= 0"):
            enumerate_coalitions(5, -1, 0)


class TestStrategySpace:
    def setup_method(self):
        self.spec = make_game("section64", 7)

    def _space(self, mode="mediator", k=2, t=0, **kwargs):
        coalitions = enumerate_coalitions(7, k, t)
        return StrategySpace(self.spec, mode, coalitions, **kwargs)

    def test_size_matches_enumeration(self):
        space = self._space()
        assert space.size() == len(list(space.candidates()))

    def test_nth_agrees_with_enumeration(self):
        space = self._space()
        listed = list(space.candidates())
        for index in (0, 1, len(listed) // 2, len(listed) - 1):
            assert space.nth(index) == listed[index]

    def test_candidate_name_round_trip(self):
        for candidate in self._space().candidates():
            assert candidate_from_name(candidate.name) == candidate

    def test_leak_pool_is_mediator_joint_only(self):
        med = [
            c for c in self._space().candidates()
            if any(a.kind == "leak-pool" for _, a in c.atoms)
        ]
        assert med  # pairs exist at k=2
        assert all(len(c.atoms) == 2 for c in med)
        ct_space = StrategySpace(
            make_game("consensus", 9), "cheaptalk",
            enumerate_coalitions(9, 2, 0),
        )
        assert not any(
            a.kind == "leak-pool" for c in ct_space.candidates()
            for _, a in c.atoms
        )

    def test_atom_filter_and_grids(self):
        space = self._space(atoms=("stall",), stall_limits=(3, 5))
        kinds = {a.kind for c in space.candidates() for _, a in c.atoms}
        assert kinds == {"stall"}
        limits = {a.param("limit") for c in space.candidates()
                  for _, a in c.atoms}
        assert limits == {3, 5}

    def test_unknown_atom_rejected(self):
        with pytest.raises(ExperimentError, match="unknown deviation atom"):
            self._space(atoms=("sabotage",))
        with pytest.raises(ExperimentError, match="unknown deviation atom"):
            DeviationAtom("sabotage")

    def test_neighbors_stay_in_space(self):
        import random

        space = self._space()
        names = {c.name for c in space.candidates()}
        rng = random.Random(0)
        start = space.nth(5)
        neighbors = space.neighbors(start, rng)
        assert neighbors
        assert all(n.name in names for n in neighbors)
        assert all(n.name != start.name for n in neighbors)

    def test_candidate_validation(self):
        with pytest.raises(ExperimentError, match="outside"):
            CandidateDeviation(
                rational=(0,), atoms=((3, DeviationAtom("crash")),)
            )
        with pytest.raises(ExperimentError, match="several"):
            CandidateDeviation(
                rational=(0, 1),
                atoms=((0, DeviationAtom("crash")),
                       (0, DeviationAtom("covert"))),
            )


class TestAuditDeviationNames:
    def test_profile_resolution_both_modes(self):
        candidate = CandidateDeviation(
            rational=(0,), atoms=((0, DeviationAtom("crash")),)
        )
        for game, mode in (("section64", "mediator"), ("consensus", "cheaptalk")):
            profile = deviation_profile(
                candidate.name, make_game(game, 7), 1, 0, mode
            )
            assert set(profile) == {0}

    def test_malformed_name_rejected(self):
        with pytest.raises(ExperimentError, match="malformed"):
            deviation_profile(
                "audit:{broken", make_game("section64", 7), 1, 0, "mediator"
            )

    def test_mode_guard(self):
        candidate = CandidateDeviation(
            rational=(0,), atoms=((0, DeviationAtom("lie")),)
        )
        with pytest.raises(ExperimentError, match="not available"):
            deviation_profile(
                candidate.name, make_game("section64", 7), 1, 0, "mediator"
            )

    def test_uniform_adapter_wraps_both_arities(self):
        from repro.analysis.deviations import (
            UniformDeviation,
            crash,
            ct_crash,
            unify_profile,
        )

        two_arity = UniformDeviation(crash())
        three_arity = UniformDeviation(ct_crash())
        # Both shapes accept both call conventions.
        for factory in (two_arity, three_arity):
            assert factory(0, 0) is not None
            assert factory(0, 0, {"cfg": 1}) is not None
        # Idempotent wrapping; dict helper covers whole profiles.
        assert UniformDeviation(two_arity).factory is two_arity.factory
        assert set(unify_profile({1: crash(), 2: ct_crash()})) == {1, 2}

    def test_registered_profiles_still_resolve(self):
        spec = make_game("consensus", 9)
        profile = deviation_profile("crash+liar", spec, 1, 1, "cheaptalk")
        assert len(profile) == 2
        for factory in profile.values():
            assert factory(8, 0, {"mpc_input": 0}) is not None


class TestAuditSpec:
    def test_json_round_trip_all_registered(self):
        for spec in iter_audits():
            assert AuditSpec.from_json(spec.to_json()) == spec

    def test_unknown_field_rejected(self):
        data = get_audit("sec64-leak").to_dict()
        data["bogus"] = 1
        with pytest.raises(ExperimentError, match="bogus"):
            AuditSpec.from_dict(data)

    def test_validation(self):
        with pytest.raises(ExperimentError, match="method"):
            AuditSpec(name="x", scenario="thm41-honest", method="psychic")
        with pytest.raises(ExperimentError, match="budget"):
            AuditSpec(name="x", scenario="thm41-honest", budget=0)
        with pytest.raises(ExperimentError, match="atom"):
            AuditSpec(name="x", scenario="thm41-honest", atoms=("warp",))

    def test_registry_duplicates_and_lookup(self):
        with pytest.raises(ExperimentError, match="already registered"):
            register_audit(get_audit("sec64-leak"))
        with pytest.raises(ExperimentError, match="unknown audit"):
            get_audit("nope")
        for expected in ("thm41-audit", "thm42-audit", "thm44-audit",
                         "thm45-audit", "sec64-leak", "sec64-minimal-audit"):
            assert expected in audit_names()

    def test_non_auditable_scenario_rejected(self):
        spec = AuditSpec(name="x", scenario="r1-baseline")
        with pytest.raises(ExperimentError, match="cannot be audited"):
            AuditEngine(spec)


def _quick(audit_name, **overrides):
    defaults = dict(seed_count=2)
    defaults.update(overrides)
    return get_audit(audit_name).replace(**defaults)


class TestHonestBaselineInvariant:
    def test_gain_exactly_zero_fast_scenarios(self):
        # Every auditable mediator-mode registered scenario: the empty
        # deviation must report gain exactly 0 against its own baseline.
        checked = 0
        for scenario in iter_scenarios():
            if MODE_FOR_THEOREM[scenario.theorem] != "mediator":
                continue
            # Games-axis scenarios are probed one game override at a time
            # (the engine refuses the ambiguous axis itself).
            for game in scenario.games or (None,):
                spec = AuditSpec(
                    name=f"probe-{scenario.name}",
                    scenario=scenario.name,
                    game=game,
                    seed_count=1,
                )
                score = AuditEngine(spec).honest_score()
                assert score.scored, scenario.name
                assert score.gain == 0.0, scenario.name
                assert score.outsider_harm == 0.0, scenario.name
                checked += 1
        assert checked >= 5

    @pytest.mark.slow
    def test_gain_exactly_zero_every_scenario(self):
        for scenario in iter_scenarios():
            if MODE_FOR_THEOREM[scenario.theorem] == "none":
                continue
            for game in scenario.games or (None,):
                spec = AuditSpec(
                    name=f"probe-{scenario.name}",
                    scenario=scenario.name,
                    game=game,
                    seed_count=1,
                    schedulers=(scenario.schedulers[0],),
                    timings=(scenario.timings[0],),
                )
                score = AuditEngine(spec).honest_score()
                assert score.scored, scenario.name
                assert score.gain == 0.0, scenario.name


class TestSearch:
    def test_sec64_attack_rediscovered(self):
        # The acceptance property: exhaustive search over the generic atom
        # space (no profile named anywhere in the audit spec) finds the
        # Section 6.4 covert-channel attack — the odd-parity leak-pooling
        # pair conditioned on b=0 — with strictly positive coalition gain.
        result = run_audit(_quick("sec64-leak", seed_count=6))
        cell = result.cells[0]
        assert cell.ok
        assert cell.evaluated == cell.space_size  # exhaustive
        assert cell.max_gain > 0
        assert not cell.robust
        best = cell.best
        atoms = dict(candidate_from_name(best.candidate).atoms)
        assert {a.kind for a in atoms.values()} == {"leak-pool"}
        assert all(a.param("when") == 0 for a in atoms.values())
        i, j = sorted(atoms)
        assert (j - i) % 2 == 1  # the odd-difference coalition

    def test_sec64_minimal_defense_is_robust(self):
        result = run_audit(_quick("sec64-minimal-audit", seed_count=6))
        cell = result.cells[0]
        assert cell.ok
        assert cell.max_gain <= cell.epsilon + cell.tolerance
        assert cell.robust

    def test_parallel_matches_serial_best(self):
        spec = _quick("sec64-leak", seed_count=4, budget=32, method="greedy")
        serial = AuditEngine(spec, runner=ExperimentRunner()).run_cell()
        parallel = AuditEngine(
            spec, runner=ExperimentRunner(parallel=True, processes=2)
        ).run_cell()
        assert serial == parallel  # elapsed_s excluded from equality
        assert serial.best == parallel.best

    def test_fixed_seed_reproduces_best(self):
        spec = _quick("sec64-leak", seed_count=4, budget=24, method="random")
        first = AuditEngine(spec).run_cell()
        second = AuditEngine(spec).run_cell()
        assert first == second

    def test_search_methods_cover_space_guards(self):
        spec = _quick("mediator-audit", budget=6, method="random")
        cell = AuditEngine(spec).run_cell()
        assert cell.evaluated <= 6
        cell = AuditEngine(spec.replace(method="greedy")).run_cell()
        assert cell.evaluated <= 6

    def test_out_of_bounds_cell_reports_error(self):
        # Thm 4.1 at (k=2, t=2) violates n > 4k+4t for n=9: the cell must
        # carry the failure instead of crashing the sweep.
        engine = AuditEngine(_quick("thm41-audit", seed_count=1))
        cell = engine.run_cell(2, 2)
        assert not cell.ok
        assert "baseline failed" in cell.error
        assert cell.robust  # vacuous, but flagged via error


class TestFrontierAndResult:
    def test_mediator_frontier_round_trip(self):
        result = run_frontier(_quick("mediator-audit", budget=8))
        assert {(c.k, c.t) for c in result.cells} == {(1, 0), (1, 1)}
        assert result.robust()
        restored = AuditResult.from_json(result.to_json())
        assert restored == result
        json.loads(result.to_json())  # plain data

    def test_frontier_csv_rows_align(self):
        result = run_frontier(_quick("mediator-audit", budget=4))
        rows = result.csv_rows()
        assert len(rows) == len(result.cells)
        assert all(len(row) == len(AuditResult.CSV_FIELDS) for row in rows)

    def test_aggregate_and_summary(self):
        result = run_audit(_quick("mediator-audit", budget=4))
        agg = result.aggregate()
        assert agg["cells"] == 1
        assert agg["evaluations"] <= 4
        rows = result.summary_rows()
        assert len(rows) == 1
        assert len(rows[0]) == len(AuditResult.SUMMARY_HEADERS)

    def test_empty_ranges_rejected(self):
        with pytest.raises(ExperimentError, match="at least one"):
            run_frontier(_quick("mediator-audit"), ks=(), ts=(0,))

    @pytest.mark.slow
    def test_thm41_frontier_within_paper_bounds(self):
        # Thm 4.1 holds with ε = 0 for n > 4k + 4t: across every (k, t)
        # cell inside the bound, the searched max gain stays ≤ ε + tol.
        result = run_frontier(_quick("thm41-audit", budget=12))
        assert {(c.k, c.t) for c in result.cells} == {(1, 0), (1, 1)}
        for cell in result.cells:
            assert cell.ok
            assert cell.max_gain <= cell.epsilon + cell.tolerance
            assert cell.robust
        assert AuditResult.from_json(result.to_json()) == result


class TestCli:
    def test_audit_run_json(self, capsys):
        from repro.cli import main

        # Seeds 0-5 include a b=0 draw, which the attack converts to 1.1.
        main(["audit", "run", "sec64-leak", "--seeds", "6", "--json"])
        out = capsys.readouterr().out
        result = AuditResult.from_json(out)
        assert result.spec.name == "sec64-leak"
        assert result.cells[0].max_gain > 0

    def test_audit_frontier_csv(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "frontier.csv"
        main(["audit", "frontier", "mediator-audit", "--budget", "4",
              "--csv", str(path)])
        header = path.read_text().splitlines()[0]
        assert header == ",".join(AuditResult.CSV_FIELDS)
        assert "NOT ROBUST" not in capsys.readouterr().out

    def test_audit_list(self, capsys):
        from repro.cli import main

        main(["audit", "list"])
        out = capsys.readouterr().out
        assert "sec64-leak" in out

    def test_unknown_audit_exits_cleanly(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown audit"):
            main(["audit", "run", "nope"])

    def test_scenarios_json_exposes_modes(self, capsys):
        from repro.cli import main
        from repro.experiments import ScenarioSpec

        main(["scenarios", "--json"])
        entries = json.loads(capsys.readouterr().out)
        by_name = {e["name"]: e for e in entries}
        leaky = by_name["sec64-leaky-honest"]
        assert leaky["mode"] == "mediator"
        assert leaky["supported_deviations"] == deviations_for_mode("mediator")
        assert "honest" in leaky["supported_deviations"]
        # The augmented entries still parse back into specs.
        for entry in entries:
            assert ScenarioSpec.from_dict(entry).name == entry["name"]
