"""Tests for the declarative experiment API (repro.experiments)."""

import json

import pytest

from repro.errors import ExperimentError, GameError
from repro.experiments import (
    ExperimentResult,
    ExperimentRunner,
    RunRecord,
    ScenarioSpec,
    deviation_profile,
    expand_grid,
    get_scenario,
    iter_scenarios,
    register_scenario,
    run_scenario,
    scenario_names,
    scheduler_from_name,
)
from repro.games.registry import GAME_REGISTRY, make_game, register_game


class TestGameRegistry:
    def test_make_game_builds_spec(self):
        spec = make_game("consensus", 5)
        assert spec.game.n == 5

    def test_unknown_game_raises_clean_error(self):
        with pytest.raises(GameError, match="unknown game 'nope'"):
            make_game("nope", 5)
        with pytest.raises(GameError, match="consensus"):
            make_game("nope", 5)  # error lists the known names

    def test_duplicate_registration_rejected(self):
        with pytest.raises(GameError, match="already registered"):
            register_game("consensus", lambda n: None)

    def test_registry_covers_cli_names(self):
        for name in ("consensus", "byz-agreement", "section64", "chicken",
                     "free-rider", "shamir-secret", "volunteer",
                     "battle-of-sexes", "public-goods", "minority"):
            assert name in GAME_REGISTRY


class TestScenarioSpec:
    def test_json_round_trip(self):
        spec = get_scenario("thm41-honest")
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_round_trip_all_registered(self):
        for spec in iter_scenarios():
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_lists_coerced_to_tuples(self):
        spec = ScenarioSpec(
            name="x", game="chicken", n=2, theorem="raw-game",
            schedulers=["fifo"], deviations=["honest"],
            action_profiles=[["D", "C"]],
        )
        assert spec.schedulers == ("fifo",)
        assert spec.action_profiles == (("D", "C"),)

    def test_unknown_theorem_rejected(self):
        with pytest.raises(ExperimentError, match="unknown theorem"):
            ScenarioSpec(name="x", game="consensus", n=9, theorem="9.9")

    def test_unknown_field_rejected(self):
        data = get_scenario("thm41-honest").to_dict()
        data["bogus"] = 1
        with pytest.raises(ExperimentError, match="bogus"):
            ScenarioSpec.from_dict(data)

    def test_raw_game_needs_profiles(self):
        with pytest.raises(ExperimentError, match="action_profiles"):
            ScenarioSpec(name="x", game="chicken", n=2, theorem="raw-game")

    def test_grid_size_matches_expansion(self):
        for spec in iter_scenarios():
            assert spec.grid_size() == len(expand_grid(spec))


class TestScenarioRegistry:
    def test_unknown_scenario_raises_clean_error(self):
        with pytest.raises(ExperimentError, match="unknown scenario"):
            get_scenario("nope")

    def test_duplicate_scenario_rejected(self):
        with pytest.raises(ExperimentError, match="already registered"):
            register_scenario(get_scenario("thm41-honest"))

    def test_canonical_scenarios_present(self):
        names = scenario_names()
        for expected in ("thm41-honest", "thm41-crash-liar", "thm42-epsilon",
                         "sec64-leak-attack", "r1-baseline",
                         "raw-chicken-matrix"):
            assert expected in names
        assert len(names) >= 10

    def test_all_scenario_games_construct(self):
        for spec in iter_scenarios():
            game_spec = make_game(spec.game, spec.n)
            assert game_spec.game.n >= 2


class TestGridAndLookups:
    def test_unknown_scheduler_raises(self):
        with pytest.raises(ExperimentError, match="unknown scheduler"):
            scheduler_from_name("warp", 9)

    def test_unknown_deviation_raises(self):
        spec = make_game("consensus", 9)
        with pytest.raises(ExperimentError, match="unknown deviation"):
            deviation_profile("sabotage", spec, 1, 1, "cheaptalk")

    def test_mode_mismatch_raises(self):
        spec = make_game("section64", 7)
        with pytest.raises(ExperimentError, match="not available"):
            deviation_profile("leak-attack", spec, 2, 0, "cheaptalk")

    def test_r1_rejects_deviations(self):
        spec = get_scenario("r1-baseline").replace(
            deviations=("crash-last",)
        )
        with pytest.raises(ExperimentError, match="honest"):
            expand_grid(spec)

    def test_r1_rejects_scheduler_grid(self):
        spec = get_scenario("r1-baseline").replace(
            schedulers=("fifo", "random")
        )
        with pytest.raises(ExperimentError, match="synchronous"):
            expand_grid(spec)

    def test_raw_game_rejects_grid_dimensions(self):
        spec = get_scenario("raw-chicken-matrix").replace(
            schedulers=("fifo", "random")
        )
        with pytest.raises(ExperimentError, match="do not apply"):
            expand_grid(spec)

    def test_unusable_timeout_warns_off_main_thread(self):
        import threading

        from repro.experiments import execute_task
        from repro.experiments.runner import RunTask

        spec = get_scenario("raw-chicken-matrix").replace(timeout_s=1.0)
        caught = []

        def worker():
            with pytest.warns(RuntimeWarning, match="SIGALRM"):
                record = execute_task(
                    spec, RunTask("none", "honest", 0, 0, profile_index=0)
                )
            caught.append(record)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert caught and caught[0].ok  # ran to completion, just untimed

    def test_bad_runner_processes(self):
        with pytest.raises(ExperimentError, match="processes"):
            ExperimentRunner(processes=0)


class TestRunnerSerial:
    def test_r1_scenario_end_to_end(self):
        result = run_scenario("r1-baseline")
        assert len(result.records) == 4
        assert result.agreement_rate() == 1.0
        assert result.message_stats()["mean"] > 0
        assert not result.failed()

    def test_result_json_round_trip(self):
        result = run_scenario("chicken-mediator")
        restored = ExperimentResult.from_json(result.to_json())
        assert restored == result
        assert restored.records == result.records
        # the JSON itself is plain data
        json.loads(result.to_json())

    def test_raw_game_matrix(self):
        result = run_scenario("raw-chicken-matrix")
        payoffs = {r.actions: r.payoffs for r in result.records}
        assert payoffs[("C", "C")] == (6.0, 6.0)
        assert payoffs[("D", "C")] == (7.0, 2.0)

    def test_mediator_aggregates(self):
        result = run_scenario("chicken-mediator")
        agg = result.aggregate()
        assert agg["runs"] == 12
        assert agg["errors"] == 0
        # correlated equilibrium: mean payoff 5.0 in expectation, every
        # recommended cell pays at least 2.0 to each player
        assert min(result.payoff_by_player()) >= 2.0

    def test_timeout_produces_record_not_crash(self):
        spec = get_scenario("thm41-honest").replace(
            schedulers=("fifo",), seed_count=1, timeout_s=0.01
        )
        result = run_scenario(spec)
        record = result.records[0]
        assert record.timed_out
        assert not record.ok
        assert result.aggregate()["timeouts"] == 1

    def test_run_error_captured_in_record(self):
        # n=7 violates Theorem 4.1's bound: the compiler refuses, and the
        # runner must capture that per-run instead of crashing the sweep.
        spec = get_scenario("thm41-honest").replace(
            n=7, schedulers=("fifo",), seed_count=1
        )
        record = run_scenario(spec).records[0]
        assert record.error is not None
        assert "4k+4t" in record.error


class TestRunnerParallel:
    def test_parallel_matches_serial(self):
        spec = get_scenario("chicken-mediator")
        serial = ExperimentRunner(parallel=False).run(spec)
        parallel = ExperimentRunner(parallel=True, processes=2).run(spec)
        assert parallel.parallel
        assert parallel.records == serial.records

    def test_parallel_r1_matches_serial(self):
        spec = get_scenario("r1-baseline")
        serial = ExperimentRunner().run(spec)
        parallel = ExperimentRunner(parallel=True, processes=2).run(spec)
        assert parallel.records == serial.records


@pytest.mark.slow
class TestRunnerCheapTalk:
    def test_thm41_parallel_matches_serial(self):
        spec = get_scenario("thm41-honest").replace(
            schedulers=("fifo", "random"), seed_count=1
        )
        serial = ExperimentRunner().run(spec)
        parallel = ExperimentRunner(parallel=True, processes=2).run(spec)
        assert parallel.records == serial.records
        assert serial.agreement_rate() == 1.0
        restored = ExperimentResult.from_json(parallel.to_json())
        assert restored == serial
