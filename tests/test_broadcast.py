"""Tests for RBC, common coin, ABA, and ACS."""

import pytest

from repro.broadcast import coin_value
from repro.broadcast.rbc import rbc_sid
from repro.broadcast.aba import aba_sid
from repro.broadcast.acs import acs_sid
from repro.sim import (
    BatchRandomScheduler,
    EagerScheduler,
    FifoScheduler,
    LaggardScheduler,
    RandomScheduler,
)

from tests.helpers import CrashProcess, ScriptedByzantine, results_for, run_hosts

SCHEDULERS = [
    FifoScheduler(),
    RandomScheduler(7),
    EagerScheduler(),
    BatchRandomScheduler(3),
    LaggardScheduler([0]),
]


class TestCoin:
    def test_deterministic_and_uniformish(self):
        values = [coin_value(42, ("tag", i)) for i in range(200)]
        assert all(v in (0, 1) for v in values)
        assert 60 < sum(values) < 140
        assert values == [coin_value(42, ("tag", i)) for i in range(200)]

    def test_modulus(self):
        values = {coin_value(1, i, modulus=5) for i in range(100)}
        assert values == {0, 1, 2, 3, 4}

    def test_different_seeds_differ(self):
        a = [coin_value(1, i) for i in range(64)]
        b = [coin_value(2, i) for i in range(64)]
        assert a != b


class TestRBC:
    @pytest.mark.parametrize("scheduler", SCHEDULERS, ids=lambda s: s.name)
    def test_honest_dealer_all_deliver(self, scheduler):
        sid = rbc_sid(0, "x")

        def kick(host):
            if host.me == 0:
                host.open_session(sid).input("payload")

        hosts, _ = run_hosts(4, 1, on_ready=kick, scheduler=scheduler)
        delivered = results_for(hosts, sid)
        assert delivered == {pid: "payload" for pid in range(4)}

    def test_crashed_dealer_no_delivery_but_quiesce(self):
        sid = rbc_sid(0, "x")
        hosts, result = run_hosts(4, 1, byzantine={0: CrashProcess()})
        assert results_for(hosts, sid) == {}
        assert result.steps < 1000

    def test_crash_nondealer_still_delivers(self):
        sid = rbc_sid(0, "x")

        def kick(host):
            if host.me == 0:
                host.open_session(sid).input(123)

        hosts, _ = run_hosts(4, 1, on_ready=kick, byzantine={3: CrashProcess()})
        delivered = results_for(hosts, sid)
        assert delivered == {0: 123, 1: 123, 2: 123}

    def test_equivocating_dealer_agreement_holds(self):
        """A dealer sending different init values cannot split honest parties."""
        sid = rbc_sid(0, "x")

        def behaviour(ctx, sender, payload):
            if sender is None:
                for pid in (1, 2):
                    ctx.send(pid, (sid, ("init", "A")))
                ctx.send(3, (sid, ("init", "B")))
            # Echo both values everywhere to maximise confusion.
            if sender is not None and payload and payload[1][0] == "echo":
                return

        hosts, _ = run_hosts(
            4, 1, byzantine={0: ScriptedByzantine(behaviour)},
            scheduler=RandomScheduler(5),
        )
        delivered = set(results_for(hosts, sid).values())
        assert len(delivered) <= 1

    def test_forged_init_ignored(self):
        """Only the dealer's init triggers echoes."""
        sid = rbc_sid(0, "x")

        def behaviour(ctx, sender, payload):
            if sender is None:
                for pid in (0, 2, 3):
                    ctx.send(pid, (sid, ("init", "forged")))

        hosts, _ = run_hosts(
            4, 1, byzantine={1: ScriptedByzantine(behaviour)}
        )
        assert results_for(hosts, sid) == {}

    def test_two_parallel_instances_do_not_interfere(self):
        sid_a = rbc_sid(0, "a")
        sid_b = rbc_sid(1, "b")

        def kick(host):
            if host.me == 0:
                host.open_session(sid_a).input("va")
            if host.me == 1:
                host.open_session(sid_b).input("vb")

        hosts, _ = run_hosts(4, 1, on_ready=kick, scheduler=RandomScheduler(2))
        assert set(results_for(hosts, sid_a).values()) == {"va"}
        assert set(results_for(hosts, sid_b).values()) == {"vb"}


class TestABA:
    @pytest.mark.parametrize("scheduler", SCHEDULERS, ids=lambda s: s.name)
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_inputs_decide_that_value(self, scheduler, value):
        sid = aba_sid("vote")

        def kick(host):
            host.open_session(sid).propose(value)

        hosts, _ = run_hosts(4, 1, on_ready=kick, scheduler=scheduler)
        assert results_for(hosts, sid) == {pid: value for pid in range(4)}

    @pytest.mark.parametrize("seed", range(6))
    def test_mixed_inputs_agree(self, seed):
        sid = aba_sid("vote")

        def kick(host):
            host.open_session(sid).propose(host.me % 2)

        hosts, _ = run_hosts(
            4, 1, on_ready=kick, scheduler=RandomScheduler(seed), seed=seed
        )
        decisions = results_for(hosts, sid)
        assert set(decisions) == {0, 1, 2, 3}
        assert len(set(decisions.values())) == 1

    def test_tolerates_crash_fault(self):
        sid = aba_sid("vote")

        def kick(host):
            host.open_session(sid).propose(1)

        hosts, _ = run_hosts(4, 1, on_ready=kick, byzantine={2: CrashProcess()})
        decisions = results_for(hosts, sid)
        assert decisions == {0: 1, 1: 1, 3: 1}

    def test_larger_network(self):
        sid = aba_sid("vote")

        def kick(host):
            host.open_session(sid).propose(1 if host.me < 4 else 0)

        hosts, _ = run_hosts(
            7, 2, on_ready=kick, scheduler=RandomScheduler(11), seed=3
        )
        decisions = results_for(hosts, sid)
        assert len(decisions) == 7
        assert len(set(decisions.values())) == 1

    def test_invalid_input_rejected(self):
        from repro.errors import ProtocolError

        def kick(host):
            with pytest.raises(ProtocolError):
                host.open_session(aba_sid("x")).propose(2)
            host.open_session(aba_sid("x")).propose(0)

        run_hosts(4, 1, on_ready=kick)


class TestACS:
    @pytest.mark.parametrize("scheduler", SCHEDULERS, ids=lambda s: s.name)
    def test_all_inputs_complete(self, scheduler):
        sid = acs_sid("round1")

        def kick(host):
            acs = host.open_session(sid)
            for j in range(4):
                acs.provide_input(j)

        hosts, _ = run_hosts(4, 1, on_ready=kick, scheduler=scheduler)
        subsets = results_for(hosts, sid)
        assert len(subsets) == 4
        (common,) = set(subsets.values())
        assert len(common) >= 3

    def test_crashed_party_excluded_or_tolerated(self):
        sid = acs_sid("round1")

        def kick(host):
            acs = host.open_session(sid)
            for j in range(4):
                if j != 2:  # nobody observes a contribution from party 2
                    acs.provide_input(j)

        hosts, _ = run_hosts(4, 1, on_ready=kick, byzantine={2: CrashProcess()})
        subsets = results_for(hosts, sid)
        assert len(subsets) == 3
        (common,) = set(subsets.values())
        assert 2 not in common
        assert len(common) >= 3

    def test_agreement_under_partial_observation(self):
        """Parties observe different completion subsets; ACS still agrees.

        Liveness requires that at least n - t contributions are observed by
        every honest party (AVSS totality provides this in the MPC stack);
        the remaining contribution is observed by only one party, whose
        lone 1-vote races the 0-votes triggered by the n - t rule.
        """
        sid = acs_sid("r")

        def kick(host):
            acs = host.open_session(sid)
            for j in range(3):
                acs.provide_input(j)
            if host.me == 0:
                acs.provide_input(3)

        for seed in range(4):
            hosts, _ = run_hosts(
                4, 1, on_ready=kick, scheduler=RandomScheduler(seed), seed=seed
            )
            subsets = results_for(hosts, sid)
            assert len(subsets) == 4
            assert len(set(subsets.values())) == 1
