"""Tests for the asynchronous simulation substrate."""

import pytest

from repro.errors import SchedulerError, SimulationError, StepLimitExceeded
from repro.sim import (
    Context,
    FifoScheduler,
    FuncProcess,
    LaggardScheduler,
    Process,
    RandomScheduler,
    EagerScheduler,
    BatchRandomScheduler,
    RelaxedScheduler,
    DropPlanRelaxedScheduler,
    Runtime,
    START_SIGNAL,
    message_pattern,
    scheduler_zoo,
)


class Pinger(Process):
    """Sends 'ping' to everyone on start; outputs count of pongs received."""

    def __init__(self, peers, expected):
        self.peers = peers
        self.expected = expected
        self.pongs = 0
        self.pings = 0

    def on_start(self, ctx):
        for peer in self.peers:
            if peer != ctx.pid:
                ctx.send(peer, ("ping", ctx.pid))

    def _maybe_finish(self, ctx):
        # Only halt once we have answered every peer's ping, otherwise we
        # would starve slower players of their pongs.
        if self.pongs == self.expected and self.pings == self.expected:
            if not ctx.has_output():
                ctx.output(self.pongs)
            ctx.halt()

    def on_message(self, ctx, sender, payload):
        kind = payload[0]
        if kind == "ping":
            ctx.send(sender, ("pong", ctx.pid))
            self.pings += 1
        elif kind == "pong":
            self.pongs += 1
        self._maybe_finish(ctx)


def make_ping_world(n):
    peers = list(range(n))
    return {pid: Pinger(peers, n - 1) for pid in peers}


class TestBasicRuns:
    @pytest.mark.parametrize(
        "scheduler",
        [FifoScheduler(), RandomScheduler(1), EagerScheduler(), BatchRandomScheduler(2)],
    )
    def test_all_players_complete_ping_pong(self, scheduler):
        procs = make_ping_world(4)
        result = Runtime(procs, scheduler, seed=5).run()
        assert result.outputs == {pid: 3 for pid in range(4)}
        assert not result.deadlocked
        assert result.halted == set(range(4))

    def test_message_accounting(self):
        procs = make_ping_world(3)
        result = Runtime(procs, FifoScheduler(), seed=0).run()
        # 3 start signals + 6 pings + 6 pongs
        assert result.messages_sent == 3 + 6 + 6
        # pongs to already-halted players may be dropped, rest delivered
        assert result.messages_delivered + result.messages_dropped == result.messages_sent

    def test_deterministic_given_seed_and_scheduler(self):
        r1 = Runtime(make_ping_world(4), RandomScheduler(3), seed=9).run()
        r2 = Runtime(make_ping_world(4), RandomScheduler(3), seed=9).run()
        assert message_pattern(r1.trace) == message_pattern(r2.trace)
        assert r1.outputs == r2.outputs

    def test_different_schedulers_reach_same_outputs(self):
        outputs = []
        for sched in scheduler_zoo(seed=1, parties=range(4)):
            result = Runtime(make_ping_world(4), sched, seed=2).run()
            outputs.append(result.outputs)
        assert all(o == outputs[0] for o in outputs)

    def test_empty_process_set_rejected(self):
        with pytest.raises(SimulationError):
            Runtime({}, FifoScheduler())


class TestProcessSemantics:
    def test_on_start_called_before_messages(self):
        order = []

        class Recorder(Process):
            def on_start(self, ctx):
                order.append(("start", ctx.pid))

            def on_message(self, ctx, sender, payload):
                order.append(("msg", ctx.pid))
                ctx.halt()

        sender = FuncProcess(on_start=lambda ctx: ctx.send(1, "hello"))
        procs = {0: sender, 1: Recorder()}
        # Deliver the data message before player 1's start signal:
        class DataFirst(FifoScheduler):
            def choose(self, in_transit, step):
                data = [m for m in in_transit if m.sender == 0]
                if data:
                    return data[0].uid
                return super().choose(in_transit, step)

        Runtime(procs, DataFirst(), seed=0).run()
        assert order[0] == ("start", 1)

    def test_double_output_rejected(self):
        def bad(ctx, sender, payload):
            ctx.output(1)
            ctx.output(2)

        procs = {
            0: FuncProcess(on_start=lambda ctx: ctx.send(1, "x")),
            1: FuncProcess(on_message=bad),
        }
        with pytest.raises(SimulationError):
            Runtime(procs, FifoScheduler()).run()

    def test_send_to_unknown_process_rejected(self):
        procs = {0: FuncProcess(on_start=lambda ctx: ctx.send(7, "x"))}
        with pytest.raises(SimulationError):
            Runtime(procs, FifoScheduler()).run()

    def test_messages_to_halted_are_dropped(self):
        class Quitter(Process):
            def on_start(self, ctx):
                ctx.halt()

            def on_message(self, ctx, sender, payload):  # pragma: no cover
                raise AssertionError("halted process received message")

        class Talker(Process):
            def on_start(self, ctx):
                ctx.send(1, "late")

            def on_message(self, ctx, sender, payload):  # pragma: no cover
                pass

        result = Runtime({0: Talker(), 1: Quitter()}, FifoScheduler()).run()
        assert result.messages_dropped >= 1

    def test_self_messages_allowed(self):
        """The Section 6.1 covert-channel construction sends to self."""
        class SelfTalker(Process):
            def __init__(self):
                self.count = 0

            def on_start(self, ctx):
                ctx.send(ctx.pid, "tick")

            def on_message(self, ctx, sender, payload):
                self.count += 1
                if self.count < 3:
                    ctx.send(ctx.pid, "tick")
                else:
                    ctx.output(self.count)
                    ctx.halt()

        result = Runtime({0: SelfTalker()}, FifoScheduler()).run()
        assert result.outputs[0] == 3

    def test_rng_is_deterministic_per_pid(self):
        values = {}

        class Roller(Process):
            def on_start(self, ctx):
                values[ctx.pid] = ctx.rng.randrange(10**9)
                ctx.halt()

            def on_message(self, ctx, sender, payload):  # pragma: no cover
                pass

        Runtime({0: Roller(), 1: Roller()}, FifoScheduler(), seed=4).run()
        first = dict(values)
        values.clear()
        Runtime({0: Roller(), 1: Roller()}, FifoScheduler(), seed=4).run()
        assert values == first
        assert first[0] != first[1]  # streams differ across pids


class TestTermination:
    def test_step_limit_raises(self):
        class Forever(Process):
            def on_start(self, ctx):
                ctx.send(ctx.pid, "again")

            def on_message(self, ctx, sender, payload):
                ctx.send(ctx.pid, "again")

        with pytest.raises(StepLimitExceeded):
            Runtime({0: Forever()}, FifoScheduler(), step_limit=50).run()

    def test_step_limit_soft_mode(self):
        class Forever(Process):
            def on_start(self, ctx):
                ctx.send(ctx.pid, "again")

            def on_message(self, ctx, sender, payload):
                ctx.send(ctx.pid, "again")

        result = Runtime(
            {0: Forever()}, FifoScheduler(), step_limit=50, raise_on_step_limit=False
        ).run()
        assert result.steps <= 50

    def test_quiescence_with_live_process_is_deadlock(self):
        waiting = FuncProcess(on_message=lambda ctx, s, p: None)  # never halts
        result = Runtime({0: waiting}, FifoScheduler()).run()
        assert result.deadlocked
        assert result.live == {0}

    def test_wills_collected_on_deadlock(self):
        proc = FuncProcess(
            on_message=lambda ctx, s, p: None,
            on_deadlock=lambda pid: ("punish", pid),
        )
        result = Runtime({0: proc}, FifoScheduler()).run()
        assert result.wills == {0: ("punish", 0)}


class TestRelaxedSchedulers:
    def test_relaxed_scheduler_causes_deadlock(self):
        procs = make_ping_world(3)
        sched = RelaxedScheduler(FifoScheduler(), deliveries_before_stop=4)
        result = Runtime(procs, sched, seed=0).run()
        assert result.deadlocked
        assert result.messages_dropped > 0

    def test_start_signals_always_delivered(self):
        seen_start = set()

        class Observer(Process):
            def on_start(self, ctx):
                seen_start.add(ctx.pid)

            def on_message(self, ctx, sender, payload):
                pass

        procs = {pid: Observer() for pid in range(3)}
        sched = RelaxedScheduler(FifoScheduler(), deliveries_before_stop=0)
        Runtime(procs, sched, seed=0).run()
        assert seen_start == {0, 1, 2}

    def test_mediator_batch_all_or_none(self):
        """If one message of a mediator batch is delivered, all must be."""
        MEDIATOR = 99
        got = []

        class Med(Process):
            def on_start(self, ctx):
                for pid in range(3):
                    ctx.send(pid, ("STOP", pid))

            def on_message(self, ctx, sender, payload):
                pass

        class Player(Process):
            def on_message(self, ctx, sender, payload):
                got.append(ctx.pid)
                ctx.halt()

        procs = {pid: Player() for pid in range(3)}
        procs[MEDIATOR] = Med()
        # Stop right after the first *data* delivery: 4 start signals + 1.
        sched = RelaxedScheduler(FifoScheduler(), deliveries_before_stop=5)
        Runtime(procs, sched, seed=0, mediator_pid=MEDIATOR).run()
        assert sorted(got) == [0, 1, 2]

    def test_drop_plan_scheduler(self):
        procs = make_ping_world(3)
        sched = DropPlanRelaxedScheduler(
            FifoScheduler(), should_drop=lambda m: m.recipient == 0 and m.sender != -1
        )
        result = Runtime(procs, sched, seed=0).run()
        # player 0 never gets pongs -> no output
        assert 0 not in result.outputs
        assert result.deadlocked

    def test_non_relaxed_scheduler_refusing_is_error(self):
        class Lazy(FifoScheduler):
            def choose(self, in_transit, step):
                return None

        procs = make_ping_world(2)
        with pytest.raises(SchedulerError):
            Runtime(procs, Lazy(), seed=0).run()


class TestLaggard:
    def test_laggard_starves_but_eventually_delivers(self):
        procs = make_ping_world(4)
        result = Runtime(procs, LaggardScheduler([0]), seed=0).run()
        assert result.outputs[0] == 3  # still completes

    def test_laggard_delivery_order_biased(self):
        procs = make_ping_world(4)
        result = Runtime(procs, LaggardScheduler([0]), seed=0).run()
        deliveries = [e for e in result.trace.deliveries() if e.sender != -1]
        to_zero = [i for i, e in enumerate(deliveries) if e.recipient == 0]
        to_rest = [i for i, e in enumerate(deliveries) if e.recipient != 0]
        assert sum(to_zero) / len(to_zero) > sum(to_rest) / len(to_rest)


class TestMessagePattern:
    def test_pattern_shape(self):
        procs = {
            0: FuncProcess(on_start=lambda ctx: ctx.send(1, "x")),
            1: FuncProcess(on_message=lambda ctx, s, p: ctx.halt()),
        }
        result = Runtime(procs, FifoScheduler()).run()
        pattern = message_pattern(result.trace)
        assert ("s", 0, 1, 1) in pattern
        assert ("d", 0, 1, 1) in pattern

    def test_pattern_erases_contents(self):
        def mk(payload):
            return {
                0: FuncProcess(on_start=lambda ctx: ctx.send(1, payload)),
                1: FuncProcess(on_message=lambda ctx, s, p: ctx.halt()),
            }

        p1 = message_pattern(Runtime(mk("a"), FifoScheduler()).run().trace)
        p2 = message_pattern(Runtime(mk("b"), FifoScheduler()).run().trace)
        assert p1 == p2
