"""Tests for ε-variants of the ideal-mediator checkers and compiler edges."""

import pytest

from repro.errors import CompilationError, GameError
from repro.games.library import consensus_game, section64_game
from repro.mediator.ideal import (
    check_ideal_k_resilience,
    check_ideal_t_immunity,
    enumerate_behaviors,
    honest_payoffs,
)


class TestIdealEpsilonVariants:
    def test_section64_k2_gain_is_exactly_point_one(self):
        """The ⊥-coalition gains exactly 0.1 (1.1 over the b=0 payoff 1.0),
        i.e. 0.05 in expectation over the coin — so ε above that threshold
        certifies ε-resilience and ε below it does not."""
        spec = section64_game(4, k=1)
        report = check_ideal_k_resilience(spec, 2)
        assert not report.holds
        worst = max(v.gain for v in report.violations)
        assert worst == pytest.approx(0.05, abs=1e-9)
        assert check_ideal_k_resilience(spec, 2, epsilon=0.06).holds
        assert not check_ideal_k_resilience(spec, 2, epsilon=0.04).holds

    def test_epsilon_immunity_threshold(self):
        spec = consensus_game(5)
        # consensus is exactly immune; any epsilon > 0 also holds.
        assert check_ideal_t_immunity(spec, 1).holds
        assert check_ideal_t_immunity(spec, 1, epsilon=0.2).holds

    def test_strong_vs_weak_resilience(self):
        spec = section64_game(4, k=1)
        # Strong 1-resilience: no single deviator gets any strict gain.
        assert check_ideal_k_resilience(spec, 1, strong=True).holds

    def test_behavior_enumeration_counts(self):
        spec = consensus_game(4)
        behaviors = enumerate_behaviors(spec, (0,), (0,), (0,), (0,))
        # 1 report option x maps from rec in {0,1} to 2 actions = 4.
        assert len(behaviors) == 4

    def test_honest_payoffs_conditioned(self):
        spec = consensus_game(4)
        payoffs = honest_payoffs(spec, (0,), (0,))
        assert payoffs[0] == pytest.approx(1.0)


class TestCompilerEdgeCases:
    def test_bad_epsilon_rejected(self):
        from repro.cheaptalk import compile_theorem42

        with pytest.raises(CompilationError):
            compile_theorem42(consensus_game(7), 1, 1, epsilon=0.0)
        with pytest.raises(CompilationError):
            compile_theorem42(consensus_game(7), 1, 1, epsilon=1.5)

    def test_theorem44_needs_punishment_spec(self):
        from repro.cheaptalk import compile_theorem44

        spec = consensus_game(8)
        spec.punishment = None
        with pytest.raises(CompilationError):
            compile_theorem44(spec, 1, 1)

    def test_unknown_approach_rejected(self):
        from repro.cheaptalk import compile_theorem41

        with pytest.raises(GameError):
            compile_theorem41(consensus_game(9), 1, 1, approach="bogus")

    def test_explicit_field_override(self):
        from repro.cheaptalk import compile_theorem42
        from repro.field import GF

        proto = compile_theorem42(
            consensus_game(7), 1, 1, epsilon=0.9, field=GF(257)
        )
        assert proto.game.field.p == 257

    def test_rushing_scheduler_in_zoo_runs_protocols(self):
        from repro.cheaptalk import compile_theorem41
        from repro.sim import RushingScheduler

        proto = compile_theorem41(consensus_game(9), 1, 1)
        run = proto.game.run((0,) * 9, RushingScheduler([8]), seed=0)
        assert len(set(run.actions)) == 1
