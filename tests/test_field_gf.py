"""Unit and property tests for GF(p) arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FieldError
from repro.field import GF, DEFAULT_PRIME, SMALL_PRIME

F = GF(SMALL_PRIME)
BIG = GF(DEFAULT_PRIME)

elements = st.integers(min_value=0, max_value=SMALL_PRIME - 1).map(F)
nonzero = st.integers(min_value=1, max_value=SMALL_PRIME - 1).map(F)


class TestConstruction:
    def test_field_is_cached(self):
        assert GF(SMALL_PRIME) is GF(SMALL_PRIME)

    def test_modulus_below_two_rejected(self):
        with pytest.raises(FieldError):
            GF(1)

    def test_coercion_wraps_modulo_p(self):
        assert F(SMALL_PRIME + 5) == F(5)
        assert F(-1) == F(SMALL_PRIME - 1)

    def test_coercion_across_fields_rejected(self):
        with pytest.raises(FieldError):
            BIG(F(3))

    def test_zero_and_one(self):
        assert F.zero() == 0
        assert F.one() == 1
        assert not F.zero()
        assert F.one()

    def test_elements_enumeration(self):
        assert len(list(F.elements())) == SMALL_PRIME

    def test_batch(self):
        assert F.batch([1, 2, 3]) == [F(1), F(2), F(3)]

    def test_immutability(self):
        x = F(3)
        with pytest.raises(FieldError):
            x.value = 4


class TestArithmetic:
    def test_add_sub_int_mixing(self):
        assert F(5) + 10 == F(15)
        assert 10 + F(5) == F(15)
        assert F(5) - 10 == F(-5)
        assert 10 - F(5) == F(5)

    def test_mul_div(self):
        assert F(7) * F(8) == F(56)
        assert (F(7) * F(8)) / F(8) == F(7)
        assert 1 / F(2) * F(2) == F(1)

    def test_pow(self):
        assert F(3) ** 0 == F(1)
        assert F(3) ** 2 == F(9)
        assert F(3) ** -1 == F(3).inverse()

    def test_fermat_inverse_on_big_field(self):
        x = BIG(123456789)
        assert x * x.inverse() == BIG(1)

    def test_zero_inverse_rejected(self):
        with pytest.raises(FieldError):
            F(0).inverse()
        with pytest.raises(FieldError):
            F(1) / F(0)

    def test_mixed_field_arithmetic_rejected(self):
        with pytest.raises(FieldError):
            F(1) + BIG(1)

    def test_hash_consistency(self):
        assert hash(F(5)) == hash(F(5 + SMALL_PRIME))
        assert len({F(1), F(1), F(2)}) == 2

    def test_int_conversion(self):
        assert int(F(42)) == 42


class TestFieldAxioms:
    @given(elements, elements, elements)
    def test_addition_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(elements, elements)
    def test_addition_commutative(self, a, b):
        assert a + b == b + a

    @given(elements, elements, elements)
    def test_multiplication_associative(self, a, b, c):
        assert (a * b) * c == a * (b * c)

    @given(elements, elements)
    def test_multiplication_commutative(self, a, b):
        assert a * b == b * a

    @given(elements, elements, elements)
    def test_distributivity(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(elements)
    def test_additive_inverse(self, a):
        assert a + (-a) == F.zero()

    @given(nonzero)
    def test_multiplicative_inverse(self, a):
        assert a * a.inverse() == F.one()

    @given(elements)
    def test_identity_elements(self, a):
        assert a + F.zero() == a
        assert a * F.one() == a


class TestRandomness:
    def test_random_elements_deterministic_per_seed(self):
        import random

        a = F.random(random.Random(7))
        b = F.random(random.Random(7))
        assert a == b

    def test_random_nonzero(self):
        import random

        rng = random.Random(0)
        for _ in range(50):
            assert F.random_nonzero(rng) != F.zero()
