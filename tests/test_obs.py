"""The telemetry layer: metrics, tracing, profiling, and the invariant
that all of it stays strictly out-of-band (CONTRIBUTING invariant 8).

The byte-identity meta-test is the load-bearing one: the same scenario
run fully instrumented (metrics on, tracer active) and with telemetry
disabled must produce byte-identical record dumps.
"""

import json
import multiprocessing
import os

import pytest

from repro.errors import ObsError
from repro.obs.metrics import (
    MetricsRegistry,
    enabled,
    registry,
    set_enabled,
)
from repro.obs.tracing import (
    Tracer,
    activate,
    current_tracer,
    deactivate,
    span,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Each test sees a fresh global registry and no active tracer."""
    registry().reset()
    deactivate()
    set_enabled(None)
    yield
    registry().reset()
    deactivate()
    set_enabled(None)


# -- metrics ------------------------------------------------------------------

class TestMetrics:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        hits = reg.counter("hits_total", "hits")
        hits.inc()
        hits.inc(2, scenario="a")
        hits.inc(scenario="a")
        assert hits.value() == 1
        assert hits.value(scenario="a") == 3

    def test_counter_rejects_negative_increments(self):
        reg = MetricsRegistry()
        with pytest.raises(ObsError):
            reg.counter("c_total").inc(-1)

    def test_gauge_sets_and_moves(self):
        reg = MetricsRegistry()
        depth = reg.gauge("depth")
        depth.set(4)
        depth.dec(1)
        depth.inc(2)
        assert depth.value() == 5

    def test_histogram_buckets_sum_count(self):
        reg = MetricsRegistry()
        lat = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            lat.observe(value)
        assert lat.count() == 3
        assert lat.sum() == pytest.approx(5.55)
        sample = reg.snapshot()["metrics"]["lat_seconds"]["samples"][0]
        # Cumulative buckets: le=0.1 holds 1, le=1 holds 2, +Inf all 3
        # (integral bounds render without the trailing ".0").
        assert sample["buckets"] == {"0.1": 1, "1": 2, "+Inf": 3}

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing_total")
        with pytest.raises(ObsError):
            reg.gauge("thing_total")

    def test_snapshot_is_deterministic_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b_total").inc(scenario="z")
        reg.counter("b_total").inc(scenario="a")
        reg.counter("a_total").inc()
        first = reg.snapshot_json()
        assert list(reg.snapshot()["metrics"]) == ["a_total", "b_total"]
        labels = [
            s["labels"]
            for s in reg.snapshot()["metrics"]["b_total"]["samples"]
        ]
        assert labels == [{"scenario": "a"}, {"scenario": "z"}]
        assert reg.snapshot_json() == first

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("runs_total", "total runs").inc(3, scenario="x")
        reg.gauge("depth").set(2)
        text = reg.render_prometheus()
        assert "# HELP runs_total total runs" in text
        assert "# TYPE runs_total counter" in text
        assert 'runs_total{scenario="x"} 3' in text
        assert "depth 2" in text
        assert text.endswith("\n")

    def test_mark_delta_reports_changes_only(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc(5)
        reg.gauge("level").set(7)
        mark = reg.mark()
        reg.counter("a_total").inc(2)
        reg.counter("new_total").inc()
        reg.gauge("level").set(3)
        delta = reg.delta_since(mark)
        assert delta["a_total"] == 2
        assert delta["new_total"] == 1
        assert delta["level"] == 3  # gauges report the current level

    def test_disabled_registry_mutations_are_noops(self):
        reg = MetricsRegistry()
        counter = reg.counter("c_total")
        set_enabled(False)
        counter.inc(10)
        reg.gauge("g").set(5)
        reg.histogram("h_seconds").observe(1.0)
        set_enabled(None)
        assert counter.value() == 0
        assert reg.gauge("g").value() == 0
        assert reg.histogram("h_seconds").count() == 0

    def test_env_gate_turns_telemetry_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "off")
        assert not enabled()
        monkeypatch.setenv("REPRO_OBS", "on")
        assert enabled()
        # The programmatic override beats the environment.
        set_enabled(False)
        assert not enabled()


# -- tracing ------------------------------------------------------------------

class TestTracing:
    def test_nested_spans_record_parents(self):
        tracer = Tracer()
        with tracer.span("outer", scenario="s"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        spans = tracer.spans()
        outer = next(s for s in spans if s.name == "outer")
        inners = [s for s in spans if s.name == "inner"]
        assert outer.parent_id is None
        assert outer.attrs == {"scenario": "s"}
        assert [s.parent_id for s in inners] == [outer.span_id] * 2
        assert all(s.dur_us >= 1 for s in spans)

    def test_json_round_trip_is_lossless(self):
        tracer = Tracer()
        with tracer.span("a", k=1):
            with tracer.span("b"):
                pass
        restored = Tracer.from_json(tracer.to_json(indent=2))
        assert restored.to_dict() == tracer.to_dict()

    def test_from_dict_rejects_unknown_fields(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        data = tracer.to_dict()
        data["spans"][0]["surprise"] = 1
        with pytest.raises(ObsError):
            Tracer.from_dict(data)

    def test_chrome_trace_schema(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.json"
        events = tracer.write_chrome_trace(str(path))
        assert events == 2
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        assert all(
            {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(e)
            for e in complete
        )
        assert any(e["name"] == "process_name" for e in meta)

    def test_merge_remaps_ids_and_reparents(self):
        parent = Tracer()
        with parent.span("scenario") as root:
            pass
        worker = Tracer()
        with worker.span("cell"):
            with worker.span("run"):
                pass
        parent.merge(worker.drain(), root_id=root.span_id)
        spans = {s.name: s for s in parent.spans()}
        assert spans["cell"].parent_id == spans["scenario"].span_id
        assert spans["run"].parent_id == spans["cell"].span_id
        ids = [s.span_id for s in parent.spans()]
        assert len(ids) == len(set(ids))

    def test_module_span_is_null_without_tracer(self):
        assert current_tracer() is None
        with span("anything", key=1):  # must not raise, must not record
            pass

    def test_module_span_records_into_active_tracer(self):
        tracer = activate(Tracer())
        try:
            with span("work", phase="x"):
                pass
        finally:
            deactivate()
        assert [s.name for s in tracer.spans()] == ["work"]
        assert tracer.spans()[0].attrs == {"phase": "x"}


# -- instrumented runner ------------------------------------------------------

def _scenario(seed_count=2):
    from repro.experiments import get_scenario

    return get_scenario("chicken-mediator").replace(seed_count=seed_count)


def _structure(tracer):
    """Pid/tid/timing-free view of a trace: (name-path, attrs) per span."""
    by_id = {s.span_id: s for s in tracer.spans()}

    def path(s):
        names = []
        while s is not None:
            names.append(s.name)
            s = by_id.get(s.parent_id)
        return tuple(reversed(names))

    return sorted(
        (path(s), tuple(sorted(s.attrs.items())))
        for s in tracer.spans()
    )


class TestRunnerInstrumentation:
    def test_serial_run_emits_nested_spans_and_counters(self):
        from repro.experiments import ExperimentRunner

        mark = registry().mark()
        tracer = activate(Tracer())
        try:
            with ExperimentRunner() as runner:
                result = runner.run(_scenario())
        finally:
            deactivate()
        names = {s.name for s in tracer.spans()}
        assert {"scenario", "cell", "prepare", "run", "payoff"} <= names
        cells = [s for s in tracer.spans() if s.name == "cell"]
        scenario = next(s for s in tracer.spans() if s.name == "scenario")
        assert all(c.parent_id == scenario.span_id for c in cells)
        delta = registry().delta_since(mark)
        label = '{scenario="chicken-mediator"}'
        assert delta[f"repro_runner_runs_total{label}"] == 1
        assert delta[f"repro_runner_cells_total{label}"] == len(result.records)

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_parallel_trace_merges_worker_spans(self):
        from repro.experiments import ExperimentRunner

        tracer = activate(Tracer())
        try:
            with ExperimentRunner(parallel=True, processes=2) as runner:
                runner.run(_scenario(seed_count=4))
        finally:
            deactivate()
        pids = {s.pid for s in tracer.spans()}
        assert len(pids) >= 2, "no worker spans were merged back"
        scenario = next(s for s in tracer.spans() if s.name == "scenario")
        cells = [s for s in tracer.spans() if s.name == "cell"]
        assert cells and all(
            c.parent_id == scenario.span_id for c in cells
        )
        assert os.getpid() == scenario.pid
        assert any(c.pid != os.getpid() for c in cells)

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_parallel_trace_structure_is_deterministic(self):
        from repro.experiments import ExperimentRunner

        structures = []
        for _ in range(2):
            tracer = activate(Tracer())
            try:
                with ExperimentRunner(parallel=True, processes=2) as runner:
                    runner.run(_scenario(seed_count=4))
            finally:
                deactivate()
            structures.append(_structure(tracer))
        assert structures[0] == structures[1]


# -- the out-of-band invariant ------------------------------------------------

def _record_dump(result):
    rows = []
    for record in result.records:
        data = record.to_dict()
        data["duration_s"] = 0.0  # the only wall-clock field
        rows.append(data)
    return json.dumps(rows, sort_keys=True)


class TestOutOfBand:
    def test_instrumented_run_is_byte_identical_to_telemetry_off(self):
        from repro.experiments import ExperimentRunner

        spec = _scenario()
        tracer = activate(Tracer())
        try:
            with ExperimentRunner() as runner:
                instrumented = runner.run(spec)
        finally:
            deactivate()
        set_enabled(False)
        try:
            with ExperimentRunner() as runner:
                dark = runner.run(spec)
        finally:
            set_enabled(None)
        assert _record_dump(instrumented) == _record_dump(dark)

    def test_obs_overhead_bench_asserts_equality(self):
        from repro.bench import _bench_obs_overhead

        row = _bench_obs_overhead(quick=True)
        assert row["name"] == "obs-overhead"
        assert "overhead_pct" in row and "speedup" in row


# -- audit + store instrumentation -------------------------------------------

class TestAuditStoreInstrumentation:
    def test_audit_run_bumps_batch_and_cell_counters(self):
        from repro.audit import get_audit, run_audit

        mark = registry().mark()
        spec = get_audit("mediator-audit").replace(budget=4, seed_count=2)
        run_audit(spec)
        delta = registry().delta_since(mark)
        label = '{audit="mediator-audit"}'
        assert delta[f"repro_audit_batches_total{label}"] >= 1
        assert delta[f"repro_audit_candidates_total{label}"] >= 1
        assert any(
            series.startswith("repro_audit_baseline_cache_total")
            for series in delta
        )

    def test_store_get_or_run_counts_hits_and_misses(self, tmp_path):
        from repro.experiments import ExperimentRunner
        from repro.store import ResultStore

        spec = _scenario()
        mark = registry().mark()
        with ResultStore(str(tmp_path / "s.sqlite")) as store:
            with ExperimentRunner(store=store) as runner:
                store.get_or_run(spec, runner=runner)
                store.get_or_run(spec, runner=runner)
        delta = registry().delta_since(mark)
        label = '{scenario="chicken-mediator"}'
        assert delta[f"repro_store_result_misses_total{label}"] == 1
        assert delta[f"repro_store_result_hits_total{label}"] == 1
        assert delta["repro_store_result_writes_total"] == 1
        assert delta["repro_store_fetch_seconds_count"] >= 1


# -- service heartbeat + metrics ----------------------------------------------

class TestServiceHeartbeat:
    def test_job_status_heartbeat_round_trip(self):
        from repro.service import JobStatus

        status = JobStatus(
            id="j1", state="running", kind="scenario", title="t",
            priority=10, submitted_at=1.0, heartbeat_at=2.5,
            phase="running",
        )
        again = JobStatus.from_json(status.to_json())
        assert again == status
        assert again.heartbeat_at == 2.5
        assert again.phase == "running"

    def test_older_status_documents_still_parse(self):
        from repro.service import JobStatus

        data = JobStatus(
            id="j1", state="queued", kind="scenario", title="t",
            priority=10, submitted_at=1.0,
        ).to_dict()
        del data["heartbeat_at"]
        del data["phase"]
        status = JobStatus.from_dict(data)
        assert status.heartbeat_at is None
        assert status.phase == ""

    def test_status_stream_stamps_heartbeat_and_phase(self, tmp_path):
        from repro.service import JobClient, JobSpec, Spool
        from repro.service.server import _StatusStream

        spool = Spool(str(tmp_path / "spool"))
        client = JobClient(spool)
        status = client.submit(JobSpec(kind="scenario", name="x"))
        stream = _StatusStream(spool, status, interval_s=0.05)
        stream.write(state="running")
        first = spool.read_status(status.id)
        assert first.heartbeat_at is not None
        stream.set_phase("running")
        assert spool.read_status(status.id).phase == "running"
        stream.start()
        try:
            import time as _time

            deadline = _time.monotonic() + 5.0
            while _time.monotonic() < deadline:
                if spool.read_status(status.id).heartbeat_at > first.heartbeat_at:
                    break
                _time.sleep(0.02)
            else:
                pytest.fail("heartbeat thread never re-stamped heartbeat_at")
        finally:
            stream.close()

    def test_served_job_ends_with_fresh_heartbeat_and_metrics(self, tmp_path):
        from repro.service import JobClient, JobServer, JobSpec, Spool

        mark = registry().mark()
        spool = Spool(str(tmp_path / "spool"))
        client = JobClient(spool)
        client.submit(JobSpec(kind="scenario", name="chicken-mediator"))
        with JobServer(spool, store=None) as server:
            job_id = server.run_once()
        status = spool.read_status(job_id)
        assert status.state == "done"
        assert status.phase == ""  # phases are a running-state concept
        assert status.heartbeat_at is not None
        assert status.heartbeat_at >= status.started_at
        delta = registry().delta_since(mark)
        assert delta[
            'repro_service_jobs_total{kind="scenario",state="done"}'
        ] == 1
        assert delta["repro_service_claim_seconds_count"] == 1


# -- the /metrics endpoint ----------------------------------------------------

class TestMetricsEndpoint:
    def test_serve_scrape_stop(self):
        from repro.obs import MetricsServer, scrape

        registry().counter("scrape_test_total", "visible").inc(7)
        with MetricsServer(port=0) as server:
            text = scrape(host=server.host, port=server.port)
            assert "scrape_test_total 7" in text
            doc = json.loads(
                scrape(host=server.host, port=server.port,
                       path="/metrics.json")
            )
            assert doc["metrics"]["scrape_test_total"]["samples"][0][
                "value"
            ] == 7
            assert "ok" in scrape(
                host=server.host, port=server.port, path="/healthz"
            )
            with pytest.raises(ObsError):
                scrape(host=server.host, port=server.port, path="/nope")
        with pytest.raises(ObsError):
            scrape(host=server.host, port=server.port)


# -- profiling ----------------------------------------------------------------

class TestProfiling:
    def test_profile_call_reports_top_functions(self):
        from repro.obs import profile_call

        def work():
            total = [i * i for i in range(1000)]
            del total  # int returns become exit codes; return None

        summary = profile_call(work, top=5)
        assert summary["version"] == 1
        assert summary["exit_code"] == 0
        assert 0 < len(summary["top"]) <= 5
        assert all(
            {"function", "calls", "time_s", "cumtime_s"} <= set(row)
            for row in summary["top"]
        )

    def test_profile_call_rejects_bad_top(self):
        from repro.obs import profile_call

        with pytest.raises(ObsError):
            profile_call(lambda: None, top=0)


# -- the CLI surface ----------------------------------------------------------

class TestCli:
    def test_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.json"
        main(["sweep", "chicken-mediator", "--trace-out", str(path)])
        capsys.readouterr()
        doc = json.loads(path.read_text())
        names = {
            e["name"] for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert {"scenario", "cell"} <= names
        assert current_tracer() is None  # the CLI deactivated its tracer

    def test_metrics_command_scrapes_a_live_server(self, capsys):
        from repro.cli import main
        from repro.obs import MetricsServer

        registry().counter("cli_scrape_total").inc(3)
        with MetricsServer(port=0) as server:
            main(["metrics", "--port", str(server.port)])
        out = capsys.readouterr().out
        assert "cli_scrape_total 3" in out

    def test_jobs_stats_aggregates_the_spool(self, tmp_path, capsys):
        from repro.cli import main
        from repro.service import JobClient, JobSpec, Spool

        spool_dir = str(tmp_path / "spool")
        client = JobClient(Spool(spool_dir))
        client.submit(JobSpec(kind="scenario", name="chicken-mediator"))
        main(["jobs", "stats", "--spool", spool_dir, "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["jobs"] == 1
        assert doc["by_state"]["queued"] == 1
        assert doc["queue_depth"] == 1

    def test_profile_command_runs_a_child_command(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "prof.json"
        main(["profile", "--top", "3", "--out", str(out_path),
              "--", "scenarios"])
        capsys.readouterr()
        doc = json.loads(out_path.read_text())
        assert doc["exit_code"] == 0
        assert len(doc["top"]) == 3
