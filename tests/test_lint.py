"""Tests for the ``repro lint`` engine, rules, and reporters.

The fixture corpus in ``tests/lint_fixtures/`` holds one seeded-violation
file plus one clean twin per rule (``<rule>_bad.py`` / ``<rule>_clean.py``;
underscores in file names, dashes in rule names). Fixtures live outside
the ``repro`` package, so rule tests pass ``respect_scopes=False``.
"""

import json
import pathlib

import pytest

from repro.errors import LintError
from repro.lint import (
    Finding,
    LintReport,
    lint_file,
    lint_paths,
    parse_diff_lines,
    resolve_rules,
    rule_descriptions,
    rule_names,
)
from repro.lint.engine import BAD_SUPPRESSION

FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"
SRC = pathlib.Path(__file__).resolve().parents[1] / "src"

#: rule name -> expected number of findings in its ``_bad.py`` fixture.
EXPECTED_BAD_FINDINGS = {
    "unseeded-random": 5,
    "wallclock": 6,
    "unsorted-set-iteration": 4,
    "id-ordering": 2,
    "reset-contract": 2,
    "slots-hot-class": 2,
    "json-symmetry": 2,
    "mutable-default": 4,
    "module-mutable-state": 3,
    "unpicklable-worker-payload": 2,
    "swallowed-exception": 3,
}


def _fixture(rule: str, kind: str) -> str:
    return str(FIXTURES / f"{rule.replace('-', '_')}_{kind}.py")


def _run_rule(rule: str, kind: str):
    findings, parse_error = lint_file(
        _fixture(rule, kind), resolve_rules([rule]), respect_scopes=False
    )
    assert parse_error is None
    return findings


# -- per-rule fixture corpus --------------------------------------------------

class TestRuleFixtures:
    @pytest.mark.parametrize("rule", sorted(EXPECTED_BAD_FINDINGS))
    def test_bad_fixture_fires(self, rule):
        findings = _run_rule(rule, "bad")
        assert len(findings) == EXPECTED_BAD_FINDINGS[rule]
        assert {f.rule for f in findings} == {rule}
        assert not any(f.suppressed for f in findings)
        for f in findings:
            assert f.line > 0 and f.col > 0 and f.message

    @pytest.mark.parametrize("rule", sorted(EXPECTED_BAD_FINDINGS))
    def test_clean_twin_is_silent(self, rule):
        assert _run_rule(rule, "clean") == []

    def test_every_registered_rule_has_a_fixture_pair(self):
        registered = set(rule_names()) - {BAD_SUPPRESSION}
        assert registered == set(EXPECTED_BAD_FINDINGS)
        for rule in registered:
            assert pathlib.Path(_fixture(rule, "bad")).is_file()
            assert pathlib.Path(_fixture(rule, "clean")).is_file()

    def test_rule_descriptions_cover_all_names(self):
        descriptions = rule_descriptions()
        assert set(descriptions) | {BAD_SUPPRESSION} == set(rule_names())
        assert all(descriptions.values())

    def test_resolve_rules_rejects_unknown_names(self):
        with pytest.raises(LintError, match="unknown lint rule"):
            resolve_rules(["no-such-rule"])


# -- suppressions -------------------------------------------------------------

class TestSuppressions:
    def test_justified_suppression_marks_but_keeps_finding(self):
        findings, _ = lint_file(
            str(FIXTURES / "suppression_ok.py"),
            resolve_rules(["id-ordering"]),
            respect_scopes=False,
        )
        # Three id() calls: one suppressed same-line, two by the line above.
        assert len(findings) == 3
        assert all(f.suppressed for f in findings)
        assert all(f.justification for f in findings)

    def test_suppressed_findings_do_not_fail_the_gate(self):
        report = lint_paths(
            [str(FIXTURES / "suppression_ok.py")],
            rules=["id-ordering"],
            respect_scopes=False,
        )
        assert report.active == []
        assert report.exit_code == 0
        assert len(report.findings) == 3

    def test_missing_justification_is_reported_and_inert(self):
        findings, _ = lint_file(
            str(FIXTURES / "suppression_missing_justification.py"),
            resolve_rules(["id-ordering"]),
            respect_scopes=False,
        )
        by_rule = {f.rule for f in findings}
        assert by_rule == {"id-ordering", BAD_SUPPRESSION}
        id_finding = next(f for f in findings if f.rule == "id-ordering")
        assert not id_finding.suppressed  # the bad comment suppressed nothing
        bad = next(f for f in findings if f.rule == BAD_SUPPRESSION)
        assert "justification" in bad.message

    def test_unknown_rule_in_suppression_is_reported(self):
        findings, _ = lint_file(
            str(FIXTURES / "suppression_unknown_rule.py"),
            resolve_rules(None),
            respect_scopes=False,
        )
        assert [f.rule for f in findings] == [BAD_SUPPRESSION]
        assert "no-such-rule" in findings[0].message


# -- reporters ----------------------------------------------------------------

class TestReport:
    def _corpus_report(self):
        return lint_paths([str(FIXTURES)], respect_scopes=False)

    def test_json_round_trip_is_lossless(self):
        report = self._corpus_report()
        assert report.findings  # the corpus is intentionally dirty
        restored = LintReport.from_json(report.to_json(indent=2))
        assert restored == report

    def test_json_summary_keys_are_derived(self):
        report = self._corpus_report()
        data = json.loads(report.to_json())
        assert data["clean"] is False
        assert data["summary"]["active"] == len(report.active)
        assert data["summary"]["suppressed"] == 3
        total_by_rule = sum(data["summary"]["by_rule"].values())
        assert total_by_rule == len(report.active)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(LintError, match="unknown LintReport fields"):
            LintReport.from_dict({"findings": [], "bogus": 1})
        with pytest.raises(LintError, match="unknown Finding fields"):
            Finding.from_dict({
                "rule": "x", "path": "p", "line": 1, "col": 1,
                "message": "m", "bogus": True,
            })

    def test_exit_code_and_text_format(self):
        report = self._corpus_report()
        assert report.exit_code == 1
        text = report.format_text()
        assert "finding(s)" in text.splitlines()[-1]
        assert "(suppressed)" not in text  # hidden unless show_suppressed
        shown = report.format_text(show_suppressed=True)
        assert "(suppressed)" in shown

    def test_parse_error_fails_the_gate(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        report = lint_paths([str(broken)])
        assert report.findings == []
        assert len(report.parse_errors) == 1
        assert report.parse_errors[0].rule == "parse-error"
        assert report.exit_code == 1

    def test_collect_rejects_missing_paths(self):
        with pytest.raises(LintError, match="no such file"):
            lint_paths(["definitely/not/a/path"])


# -- --diff mode --------------------------------------------------------------

DIFF_TEXT = """\
diff --git a/pkg/mod.py b/pkg/mod.py
--- a/pkg/mod.py
+++ b/pkg/mod.py
@@ -4,0 +5,2 @@ def f():
+    x = 1
+    y = 2
@@ -20 +22 @@ def g():
+    z = 3
diff --git a/pkg/gone.py b/pkg/gone.py
--- a/pkg/gone.py
+++ /dev/null
@@ -1,3 +0,0 @@
-removed
"""


class TestDiffMode:
    def test_parse_diff_lines(self):
        lines = parse_diff_lines(DIFF_TEXT)
        assert lines == {"pkg/mod.py": {5, 6, 22}}

    def test_restrict_to_lines_keeps_only_changed(self):
        report = lint_paths(
            [_fixture("mutable-default", "bad")],
            rules=["mutable-default"],
            respect_scopes=False,
        )
        assert len(report.findings) == 4
        path = report.findings[0].path
        keep = {report.findings[0].line}
        narrowed = report.restrict_to_lines({path: keep})
        assert [f.line for f in narrowed.findings] == [report.findings[0].line]
        assert narrowed.files_checked == report.files_checked
        assert narrowed.rules_run == report.rules_run

    def test_restrict_to_lines_keeps_parse_errors(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        report = lint_paths([str(broken)])
        narrowed = report.restrict_to_lines({})
        assert len(narrowed.parse_errors) == 1
        assert narrowed.exit_code == 1


# -- the CLI ------------------------------------------------------------------

class TestLintCli:
    def test_clean_tree_prints_clean_and_exits_zero(self, capsys):
        from repro.cli import main

        main(["lint", str(SRC)])  # returning without SystemExit == exit 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_and_out_matches_stdout(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "lint_report.json"
        with pytest.raises(SystemExit) as exc:
            main(["lint", str(FIXTURES), "--json", "--out", str(out_path)])
        assert exc.value.code == 1
        written = LintReport.from_json(out_path.read_text())
        printed = LintReport.from_json(capsys.readouterr().out)
        assert printed == written
        assert written.exit_code == 1

    def test_list_rules_mentions_every_rule(self, capsys):
        from repro.cli import main

        main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        for name in rule_names():
            assert name in out

    def test_rules_accept_commas_and_repeats(self, capsys):
        from repro.cli import main

        main(["lint", "--rules", "wallclock,id-ordering",
              "--rules", "mutable-default", str(SRC / "repro" / "sim")])
        assert "3 rule(s): clean" in capsys.readouterr().out

    def test_diff_mode_runs_against_git(self, capsys):
        from repro.cli import main

        main(["lint", "--diff", "HEAD", str(SRC)])
        assert "clean" in capsys.readouterr().out


# -- the wallclock scoped exemption -------------------------------------------

CLOCKY_SOURCE = "import time\n\ndef stamp():\n    return time.time()\n"
ENTROPY_SOURCE = "import os\n\ndef token():\n    return os.urandom(8)\n"


class TestWallClockScopedExemption:
    """repro.service/store/obs/net may read clocks; entropy stays banned.

    The same source is linted from two package locations — only the
    module path decides, so the rule's scope list is what's under test.
    """

    def _lint_as(self, tmp_path, package, source):
        mod = tmp_path / "repro" / package / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(source)
        return lint_paths([str(mod)], rules=["wallclock"])

    @pytest.mark.parametrize("package", ["sim", "mediator"])
    def test_sim_path_clock_reads_still_flag(self, tmp_path, package):
        report = self._lint_as(tmp_path, package, CLOCKY_SOURCE)
        assert len(report.active) == 1
        assert "simulation path" in report.active[0].message

    @pytest.mark.parametrize("package", ["service", "store", "obs", "net"])
    def test_service_layer_clock_reads_are_exempt(self, tmp_path, package):
        report = self._lint_as(tmp_path, package, CLOCKY_SOURCE)
        assert report.active == []

    @pytest.mark.parametrize("package", ["service", "store", "obs", "net"])
    def test_service_layer_entropy_still_flags(self, tmp_path, package):
        report = self._lint_as(tmp_path, package, ENTROPY_SOURCE)
        assert len(report.active) == 1
        assert f"repro.{package}" in report.active[0].message

    def test_outside_scanned_packages_is_silent(self, tmp_path):
        report = self._lint_as(tmp_path, "experiments", CLOCKY_SOURCE)
        assert report.active == []


# -- the repo gate ------------------------------------------------------------

class TestRepoIsClean:
    def test_src_tree_is_lint_clean_at_head(self):
        report = lint_paths([str(SRC)])
        assert report.files_checked > 50
        assert report.active == [], "\n" + report.format_text()


# -- regression for a fix the linter forced -----------------------------------

class TestTypeSpaceRoundTrip:
    def test_to_dict_feeds_from_dict(self):
        from repro.games.bayesian import TypeSpace

        ts = TypeSpace.from_dict(2, {("H", "L"): 0.25, ("L", "H"): 0.75})
        again = TypeSpace.from_dict(ts.n, ts.to_dict())
        assert again == ts
