"""Tests for the CLI and text reporting."""

import pytest

from repro.analysis.reporting import (
    format_outcome_samples,
    format_run,
    format_solution_report,
    format_table,
)
from repro.cli import GAMES, build_parser, main
from repro.games import ConstantStrategy, StrategyProfile, check_nash
from repro.games.library import consensus_game


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1]
        assert "333" in lines[3]

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert len(text.splitlines()) == 2


class TestFormatReports:
    def test_solution_report_holds(self):
        game = consensus_game(4).game
        profile = StrategyProfile([ConstantStrategy(0)] * 4)
        text = format_solution_report(check_nash(game, profile))
        assert "HOLDS" in text

    def test_solution_report_violations_listed(self):
        from repro.games import BayesianGame, TypeSpace

        payoffs = {
            ("C", "C"): (3.0, 3.0),
            ("C", "D"): (0.0, 4.0),
            ("D", "C"): (4.0, 0.0),
            ("D", "D"): (1.0, 1.0),
        }
        game = BayesianGame(
            2, [["C", "D"]] * 2, TypeSpace.single([0, 0]),
            lambda t, a: payoffs[tuple(a)],
        )
        profile = StrategyProfile([ConstantStrategy("C")] * 2)
        text = format_solution_report(check_nash(game, profile))
        assert "VIOLATED" in text
        assert "coalition" in text

    def test_format_run(self):
        class FakeRun:
            types = (0, 0)
            actions = (1, 1)

            def message_count(self):
                return 5

        text = format_run(FakeRun())
        assert "messages=5" in text

    def test_format_outcome_samples(self):
        samples = {(0,): [(1,), (1,), (0,)]}
        text = format_outcome_samples(samples)
        assert "0.667" in text


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["demo", "--game", "consensus", "-n", "9"])
        assert args.command == "demo"

    def test_games_command(self, capsys):
        main(["games", "-n", "9"])
        out = capsys.readouterr().out
        assert "consensus" in out
        assert "section64" in out

    def test_check_command(self, capsys):
        main(["check", "--game", "consensus", "-n", "5", "-k", "1", "-t", "1"])
        out = capsys.readouterr().out
        assert "HOLDS" in out

    def test_compile_r1_command(self, capsys):
        main([
            "compile", "--game", "consensus", "-n", "7", "-k", "1",
            "-t", "1", "--theorem", "r1",
        ])
        out = capsys.readouterr().out
        assert "R1 synchronous baseline" in out

    def test_unknown_game_exits(self):
        with pytest.raises(SystemExit):
            main(["demo", "--game", "nope"])

    def test_scenarios_json(self, capsys):
        import json

        main(["scenarios", "--json"])
        specs = json.loads(capsys.readouterr().out)
        assert isinstance(specs, list) and specs
        names = {spec["name"] for spec in specs}
        assert "thm41-honest" in names
        assert all("timings" in spec for spec in specs)

    def test_sweep_csv(self, tmp_path, capsys):
        import csv

        out = tmp_path / "cells.csv"
        main(["sweep", "raw-chicken-matrix", "--csv", str(out)])
        capsys.readouterr()
        with open(out, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 4  # one row per action profile cell
        assert rows[0]["scenario"] == "raw-chicken-matrix"
        assert {"timing", "scheduler", "deviation", "mean_payoff"} <= set(
            rows[0]
        )

    def test_run_timing_override(self, capsys):
        main([
            "run", "chicken-mediator", "--seeds", "1", "--timing", "lockstep",
        ])
        out = capsys.readouterr().out
        assert "lockstep" in out

    def test_bad_timing_override_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "chicken-mediator", "--timing", "warp"])

    def test_record_payloads_flag(self, capsys):
        main([
            "run", "chicken-mediator", "--seeds", "1",
            "--record-payloads", "--json",
        ])
        import json

        data = json.loads(capsys.readouterr().out)
        assert data["spec"]["record_payloads"] is True
        assert data["records"][0]["trace"], "expected captured trace events"

    def test_all_game_makers_construct(self):
        for name, maker in GAMES.items():
            spec = maker(9)
            assert spec.game.n >= 2, name
