"""Tests for solution-concept checkers and punishment verification."""

import pytest

from repro.games import (
    BayesianGame,
    ConstantStrategy,
    StrategyProfile,
    TypeSpace,
    UniformStrategy,
    check_k_resilient,
    check_kt_robust,
    check_nash,
    check_punishment_strategy,
    check_t_immune,
)
from repro.games.library import (
    BOT,
    byzantine_agreement_game,
    chicken_game,
    consensus_game,
    free_rider_game,
    section64_game,
    shamir_secret_game,
)
from repro.games.punishment import certify_punishment


def pd_game():
    payoffs = {
        ("C", "C"): (3.0, 3.0),
        ("C", "D"): (0.0, 4.0),
        ("D", "C"): (4.0, 0.0),
        ("D", "D"): (1.0, 1.0),
    }
    return BayesianGame(
        2,
        [["C", "D"], ["C", "D"]],
        TypeSpace.single([0, 0]),
        lambda t, a: payoffs[tuple(a)],
        name="pd",
    )


class TestNash:
    def test_defect_defect_is_nash(self):
        game = pd_game()
        profile = StrategyProfile([ConstantStrategy("D")] * 2)
        assert check_nash(game, profile).holds

    def test_cooperate_cooperate_is_not_nash(self):
        game = pd_game()
        profile = StrategyProfile([ConstantStrategy("C")] * 2)
        report = check_nash(game, profile)
        assert not report.holds
        assert report.violations[0].gain == pytest.approx(1.0)

    def test_epsilon_nash_tolerates_small_gain(self):
        game = pd_game()
        profile = StrategyProfile([ConstantStrategy("C")] * 2)
        # Gain from defecting is exactly 1.0: 1.1-Nash holds, 0.9-Nash fails.
        assert check_nash(game, profile, epsilon=1.1).holds
        assert not check_nash(game, profile, epsilon=0.9).holds


class TestResilience:
    def test_pd_not_2_resilient(self):
        """The pair jointly moving D,D -> C,C makes both strictly better."""
        game = pd_game()
        profile = StrategyProfile([ConstantStrategy("D")] * 2)
        assert check_k_resilient(game, profile, 1).holds
        report = check_k_resilient(game, profile, 2)
        assert not report.holds
        assert report.violations[0].coalition == (0, 1)

    def test_mixed_coalition_deviation_found_by_lp(self):
        """No pure joint deviation dominates, but a mixture does."""
        payoffs = {
            ("a", "a"): (0.5, 0.5),
            ("a", "b"): (2.0, 0.0),
            ("b", "a"): (0.0, 2.0),
            ("b", "b"): (0.0, 0.0),
        }
        game = BayesianGame(
            2,
            [["a", "b"], ["a", "b"]],
            TypeSpace.single([0, 0]),
            lambda t, a: payoffs[tuple(a)],
        )
        profile = StrategyProfile([ConstantStrategy("a")] * 2)
        # Check no single pure deviation dominates:
        for cell, (u0, u1) in payoffs.items():
            assert not (u0 > 0.5 and u1 > 0.5)
        report = check_k_resilient(game, profile, 2)
        assert not report.holds  # 0.5*(2,0) + 0.5*(0,2) = (1,1) > (0.5,0.5)
        assert report.violations[0].gain == pytest.approx(0.5, abs=1e-6)

    def test_strong_resilience_stricter_than_weak(self):
        """In PD, one defector profits: strong 2-resilience of (C,C) fails
        even where the deviation hurts the other member."""
        game = pd_game()
        cooperate = StrategyProfile([ConstantStrategy("C")] * 2)
        weak = check_k_resilient(game, cooperate, 2, strong=False)
        strong = check_k_resilient(game, cooperate, 2, strong=True)
        assert not strong.holds
        # Weak 2-resilience: (C,C) is the social optimum; no joint move makes
        # BOTH strictly better, but single defection (k=1 subset) does.
        assert not weak.holds  # coalition {0} alone already gains

    def test_consensus_profile_is_k_resilient(self):
        spec = consensus_game(5)
        all_zero = StrategyProfile([ConstantStrategy(0)] * 5)
        assert check_k_resilient(spec.game, all_zero, 2).holds

    def test_fixed_malicious_excluded_from_coalitions(self):
        game = pd_game()
        profile = StrategyProfile([ConstantStrategy("D")] * 2)
        report = check_k_resilient(game, profile, 2, fixed_malicious=(1,))
        # Only coalitions within {0} considered:
        assert all(v.coalition <= (0,) for v in report.violations)
        assert report.holds


class TestImmunity:
    def test_consensus_is_immune(self):
        spec = consensus_game(5)
        all_zero = StrategyProfile([ConstantStrategy(0)] * 5)
        assert check_t_immune(spec.game, all_zero, 2).holds

    def test_immunity_violation_detected(self):
        """A game where one malicious player can zero an outsider's payoff."""
        game = BayesianGame(
            2,
            [["a", "b"], ["a", "b"]],
            TypeSpace.single([0, 0]),
            lambda t, a: (1.0 if a[1] == "a" else 0.0, 1.0),
        )
        profile = StrategyProfile([ConstantStrategy("a")] * 2)
        report = check_t_immune(game, profile, 1)
        assert not report.holds
        assert report.violations[0].malicious == (1,)

    def test_t_zero_trivially_immune(self):
        assert check_t_immune(pd_game(), StrategyProfile(
            [ConstantStrategy("C")] * 2), 0).holds

    def test_epsilon_immunity(self):
        game = BayesianGame(
            2,
            [["a", "b"], ["a", "b"]],
            TypeSpace.single([0, 0]),
            lambda t, a: (1.0 if a[1] == "a" else 0.9, 1.0),
        )
        profile = StrategyProfile([ConstantStrategy("a")] * 2)
        assert not check_t_immune(game, profile, 1).holds
        assert check_t_immune(game, profile, 1, epsilon=0.2).holds
        assert not check_t_immune(game, profile, 1, epsilon=0.1).holds


class TestRobustness:
    def test_consensus_kt_robust(self):
        spec = consensus_game(5)
        all_zero = StrategyProfile([ConstantStrategy(0)] * 5)
        assert check_kt_robust(spec.game, all_zero, k=1, t=1).holds

    def test_robustness_fails_when_immunity_fails(self):
        game = BayesianGame(
            2,
            [["a", "b"], ["a", "b"]],
            TypeSpace.single([0, 0]),
            lambda t, a: (1.0 if a[1] == "a" else 0.0, 1.0),
        )
        profile = StrategyProfile([ConstantStrategy("a")] * 2)
        assert not check_kt_robust(game, profile, k=1, t=1).holds

    def test_robustness_detects_conditional_deviation(self):
        """Coalition gains only when the malicious player deviates first."""
        def utility(types, actions):
            # Player 2 (malicious candidate) playing 'b' unlocks a bonus
            # cell for player 0 at action 'b'; nobody is hurt (immunity ok).
            if actions[2] == "b" and actions[0] == "b":
                return (2.0, 1.0, 0.0)
            return (1.0, 1.0, 0.0)

        game = BayesianGame(
            3,
            [["a", "b"]] * 3,
            TypeSpace.single([0] * 3),
            utility,
        )
        profile = StrategyProfile([ConstantStrategy("a")] * 3)
        assert check_kt_robust(game, profile, k=1, t=0).holds
        report = check_kt_robust(game, profile, k=1, t=1)
        assert not report.holds
        assert any(v.malicious == (2,) for v in report.violations)


class TestSection64Game:
    def test_equilibrium_payoff_is_1_5(self):
        from repro.games import expected_utilities, MixedStrategy

        spec = section64_game(4, k=1)
        # The mediator-coordinated play: everyone plays a common uniform bit.
        # As a (correlated) outcome: half the time all-0 (payoff 1), half
        # all-1 (payoff 2).
        u0 = spec.game.utility((0, 0, 0, 0), (0, 0, 0, 0))[0]
        u1 = spec.game.utility((0, 0, 0, 0), (1, 1, 1, 1))[0]
        assert 0.5 * u0 + 0.5 * u1 == pytest.approx(1.5)

    def test_payoff_table_matches_paper(self):
        spec = section64_game(4, k=1)
        u = lambda a: spec.game.utility((0,) * 4, a)[0]
        assert u((BOT, BOT, 0, 0)) == 1.1  # >= k+1 bots
        assert u((BOT, 0, 0, 0)) == 1.0  # <= k bots, rest 0
        assert u((BOT, 1, 1, 1)) == 2.0  # <= k bots, rest 1
        assert u((0, 1, 1, 1)) == 0.0  # mixed
        assert u((0, 0, 0, 0)) == 1.0
        assert u((1, 1, 1, 1)) == 2.0

    def test_bot_profile_is_k_punishment(self):
        spec = section64_game(4, k=1)
        report = check_punishment_strategy(
            spec.game, spec.punishment, m=1, equilibrium_payoff=lambda i, x: 1.5
        )
        assert report.holds

    def test_punishment_certification_bounds(self):
        spec = section64_game(4, k=1)
        cert = certify_punishment(
            spec.game, spec.punishment, equilibrium_payoff=lambda i, x: 1.5
        )
        # With n=4, k=1: 2 deviators leave 2 bots (>= k+1) -> 1.1 < 1.5; with
        # 3 deviators playing 1 there is only 1 bot and payoff 2 > 1.5.
        assert cert.max_m == 2

    def test_n_not_greater_3k_rejected(self):
        with pytest.raises(Exception):
            section64_game(3, k=1)


class TestLibrarySpecs:
    def test_consensus_mediator_recommends_common_bit(self):
        import random

        spec = consensus_game(4)
        rec = spec.mediator_fn((0,) * 4, random.Random(0))
        assert len(set(rec)) == 1

    def test_byzantine_agreement_majority(self):
        import random

        spec = byzantine_agreement_game(5)
        rec = spec.mediator_fn((1, 1, 1, 0, 0), random.Random(0))
        assert rec == (1,) * 5
        rec = spec.mediator_fn((0, 0, 0, 1, 1), random.Random(0))
        assert rec == (0,) * 5

    def test_chicken_correlated_distribution(self):
        import random

        spec = chicken_game()
        rng = random.Random(0)
        seen = {spec.mediator_fn((0, 0), rng) for _ in range(100)}
        assert seen == {("C", "C"), ("C", "D"), ("D", "C")}

    def test_chicken_obedience_beats_defection(self):
        """Given recommendation C, defecting to D is not profitable."""
        spec = chicken_game()
        u = spec.game.utility
        # Conditional on "C": other is C w.p. 1/2, D w.p. 1/2.
        follow = 0.5 * u((0, 0), ("C", "C"))[0] + 0.5 * u((0, 0), ("C", "D"))[0]
        defect = 0.5 * u((0, 0), ("D", "C"))[0] + 0.5 * u((0, 0), ("D", "D"))[0]
        assert follow >= defect

    def test_shamir_secret_game_reconstruction(self):
        import random

        spec = shamir_secret_game(n=5, modulus=5, degree=2)
        types = spec.game.type_space.profiles()[17]
        rec = spec.mediator_fn(types, random.Random(0))
        # Recommendation equals the true secret.
        payoffs = spec.game.utility(types, rec)
        assert all(p >= 1.0 for p in payoffs)

    def test_shamir_secret_game_corrects_one_lie(self):
        import random

        spec = shamir_secret_game(n=5, modulus=5, degree=2)
        types = spec.game.type_space.profiles()[42]
        lied = list(types)
        lied[2] = (lied[2] + 1) % 5
        rec_honest = spec.mediator_fn(types, random.Random(0))
        rec_lied = spec.mediator_fn(tuple(lied), random.Random(0))
        assert rec_honest == rec_lied

    def test_free_rider_pivotality(self):
        spec = free_rider_game(4, sharers_needed=2)
        u = spec.game.utility
        # Two sharers meet the threshold; each sharer nets 1.0.
        assert u((0,) * 4, ("share", "share", "ride", "ride")) == (1.0, 1.0, 2.0, 2.0)
        # A sharer defecting breaks the threshold:
        assert u((0,) * 4, ("ride", "share", "ride", "ride"))[0] == 0.0

    def test_free_rider_punishment(self):
        spec = free_rider_game(4, sharers_needed=2)
        # Equilibrium payoff: benefit 2 minus expected duty cost m/n = 0.5.
        report = check_punishment_strategy(
            spec.game, spec.punishment, m=1, equilibrium_payoff=lambda i, x: 1.5
        )
        assert report.holds
