"""Quickstart: the declarative experiment API in 30 seconds.

We take the consensus coordination game — players are paid for matching
the majority action, and a trusted mediator would fix the symmetry by
recommending a common random bit — and replace the mediator with the
paper's Theorem 4.1 cheap-talk protocol (n > 4k + 4t, errorless).

Everything is one ScenarioSpec: name the game, the theorem, (k, t), the
environments, and the seed grid; the ExperimentRunner does the rest.

Run:  python examples/quickstart.py
"""

from repro.analysis.reporting import format_table
from repro.experiments import (
    ExperimentResult,
    ExperimentRunner,
    ScenarioSpec,
    get_scenario,
)


def main() -> None:
    # --- a registered canonical scenario, trimmed for a quick demo -------
    spec = get_scenario("thm41-honest").replace(
        schedulers=("fifo", "random"), seed_count=1
    )
    print(f"Scenario: {spec.name} — {spec.description}")
    print(f"Game: {spec.game}(n={spec.n}), theorem {spec.theorem}, "
          f"robustness target ({spec.k},{spec.t}), "
          f"{spec.grid_size()} runs\n")

    result = ExperimentRunner().run(spec)
    print(format_table(ExperimentResult.SUMMARY_HEADERS,
                       result.summary_rows()))
    agg = result.aggregate()
    print(f"\nagreement rate: {agg['agreement_rate']:.2f}  "
          f"mean messages: {agg['messages']['mean']:.0f}  "
          f"mean payoff: {agg['payoff']['mean']:.3f}")

    # --- the same API handles the ideal world for comparison --------------
    ideal = ScenarioSpec(
        name="quickstart-mediator",
        game="consensus",
        n=spec.n,
        theorem="mediator",
        k=spec.k,
        t=spec.t,
        schedulers=("fifo", "random"),
        seed_count=1,
        description="The trusted-mediator baseline the cheap talk implements.",
    )
    ideal_result = ExperimentRunner().run(ideal)
    premium = (agg["messages"]["mean"]
               / max(ideal_result.aggregate()["messages"]["mean"], 1))
    print(f"\nWith the trusted mediator: "
          f"{ideal_result.aggregate()['messages']['mean']:.0f} messages/run;"
          f" the cheap talk pays x{premium:.0f} messages to replace it.")
    print("Every environment yields a coordinated profile — the cheap talk")
    print("implements the mediator without any trusted party.")


if __name__ == "__main__":
    main()
