"""Quickstart: implement a mediator with asynchronous cheap talk.

We take the consensus coordination game — players are paid for matching
the majority action, and a trusted mediator would fix the symmetry by
recommending a common random bit — and replace the mediator with the
paper's Theorem 4.1 cheap-talk protocol (n > 4k + 4t, errorless).

Run:  python examples/quickstart.py
"""

from repro.cheaptalk import compile_theorem41
from repro.games.library import consensus_game
from repro.mediator import MediatorGame
from repro.sim import scheduler_zoo


def main() -> None:
    n, k, t = 9, 1, 1
    spec = consensus_game(n)

    print(f"Game: {spec.name} — {spec.notes}")
    print(f"Robustness target: ({k},{t})-robust, n = {n} > 4k+4t = {4*k+4*t}")

    # --- the mediator game (the ideal world) -----------------------------
    mediator = MediatorGame(spec, k, t)
    med_run = mediator.run((0,) * n, scheduler_zoo(seed=1)[0], seed=7)
    print(f"\nWith the trusted mediator: actions = {med_run.actions}")
    print(f"  messages used: {med_run.message_count()}")

    # --- the cheap-talk implementation (no mediator) ---------------------
    protocol = compile_theorem41(spec, k, t)
    print(f"\nCompiled: {protocol.describe()}")

    for scheduler in scheduler_zoo(seed=3, parties=range(n))[:4]:
        run = protocol.game.run((0,) * n, scheduler, seed=11)
        agreed = len(set(run.actions)) == 1
        print(
            f"  scheduler {scheduler.name:<14} actions={run.actions} "
            f"agreed={agreed} messages={run.message_count()}"
        )

    payoff = spec.game.utility((0,) * n, run.actions)
    print(f"\nPayoffs under the last run: {payoff}")
    print("Every environment yields a coordinated profile — the cheap talk")
    print("implements the mediator without any trusted party.")


if __name__ == "__main__":
    main()
