"""Rational secret reconstruction via asynchronous cheap talk.

Players hold Shamir shares of a secret (their types); guessing the secret
pays 1, with a 0.5 bonus for being right while someone else is wrong — the
classic exclusivity incentive that makes naive reconstruction protocols
collapse. A mediator solves it: everyone reports its share, the mediator
error-corrects and recommends the secret. Here we run that mediator and
its Theorem 4.2 cheap-talk implementation (n > 3k + 3t, ε error), showing
the secret is recovered without any player ever seeing another's share in
the clear.

Run:  python examples/rational_secret_sharing.py
"""

from repro.cheaptalk import compile_theorem42
from repro.games.library import shamir_secret_game
from repro.mediator import MediatorGame
from repro.sim import FifoScheduler, RandomScheduler


def main() -> None:
    spec = shamir_secret_game(n=5, modulus=5, degree=2)
    k, t = 1, 0  # n = 5 > 3k + 3t = 3
    print(f"Game: {spec.name}")

    # Pick an interesting share profile from the type space.
    types = spec.game.type_space.profiles()[123]
    import random

    secret = spec.mediator_fn(types, random.Random(0))[0]
    print(f"Dealt shares: {types} (secret = {secret})")

    mediator = MediatorGame(spec, k, t)
    med = mediator.run(types, FifoScheduler(), seed=0)
    print(f"Mediator recommends: {med.actions}")

    protocol = compile_theorem42(spec, k, t, epsilon=0.01)
    print(f"Compiled: {protocol.describe()}")
    for seed in range(3):
        run = protocol.game.run(types, RandomScheduler(seed), seed=seed)
        payoffs = spec.game.utility(types, run.actions)
        print(
            f"  cheap-talk run {seed}: guesses={run.actions} "
            f"payoffs={payoffs}"
        )

    print(
        "\nEvery player recovers the secret through the shared computation;"
        "\nno subset of k+t players could have computed it alone (degree 2)."
    )


if __name__ == "__main__":
    main()
