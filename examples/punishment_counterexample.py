"""The Section 6.4 counterexample: why mediators must be minimally informative.

The {0,1,⊥} game: the mediator recommends a common random bit b (payoff 1
if b=0, 2 if b=1; expected 1.5), and all-⊥ is a punishment giving 1.1. The
paper's *leaky* mediator also tells player i the value a + b·i (mod 2).
A coalition {i, j} with i − j odd pools its leaks, learns b early, and —
exactly when b = 0 — engineers a deadlock (with a colluding environment),
so every honest will executes the ⊥ punishment and the coalition pockets
1.1 instead of 1.0.

Against the minimally informative transform f(σ_d) (Lemma 6.8) the same
machinery earns nothing: there is no leak to condition on.

Run:  python examples/punishment_counterexample.py
"""

from statistics import mean

from repro.analysis.section64 import run_attack
from repro.games.library import section64_game
from repro.mediator import LeakySection64Mediator, MediatorGame, minimally_informative
from repro.sim import FifoScheduler


def main() -> None:
    n, k = 7, 2
    spec = section64_game(n, k=k)
    coalition = (0, 1)  # difference is odd
    print(f"Game: {spec.name}; coalition {coalition}; equilibrium payoff 1.5")

    leaky = MediatorGame(
        spec, k, 0, approach="ah",
        will=lambda pid, ty: "⊥",
        mediator_factory=lambda: LeakySection64Mediator(spec, k, 0),
    )

    honest = leaky.run((0,) * n, FifoScheduler(), seed=0)
    print(f"\nHonest play under the leaky mediator: {honest.actions}")

    attacked = run_attack(leaky, coalition, runs=40)
    print(
        f"Attack vs LEAKY mediator:   payoffs {sorted(set(attacked))} "
        f"(mean {mean(attacked):.3f} > 1.5 — the equilibrium is broken)"
    )

    minimal = minimally_informative(leaky, rounds=2)
    defended = run_attack(minimal, coalition, runs=40)
    print(
        f"Attack vs MINIMAL mediator: payoffs {sorted(set(defended))} "
        f"(mean {mean(defended):.3f} — no conditioning, no profit)"
    )

    print(
        "\nThe coalition converts every b=0 run into the 1.1 punishment"
        "\noutcome when the mediator leaks, and cannot distinguish b at all"
        "\nonce the mediator is minimally informative (Lemma 6.8)."
    )


if __name__ == "__main__":
    main()
