"""The cost of asynchrony: synchronous R1 vs asynchronous Theorem 4.1.

The paper's headline finding is that asynchrony costs an extra k + t in
the resilience bound: the synchronous cheap-talk result R1 needs only
n > 3k + 3t, while the asynchronous Theorem 4.1 needs n > 4k + 4t. This
example makes the gap concrete with the two registered
``cost-asynchrony-*`` scenarios: at n = 7 (k = t = 1) the synchronous
implementation works while the asynchronous compiler provably refuses,
and at n = 9 both work but asynchrony pays a large message premium for
earning broadcast and agreement (RBC/ABA/ACS) instead of assuming them.

Run:  python examples/cost_of_asynchrony.py
"""

from repro.cheaptalk import compile_theorem41
from repro.errors import CompilationError
from repro.experiments import get_scenario, run_scenario
from repro.games.registry import make_game


def main() -> None:
    k = t = 1

    print("== n = 7: between the bounds (3k+3t < n <= 4k+4t) ==")
    sync7 = run_scenario("r1-baseline")
    rec = sync7.records[0]
    print(f"synchronous R1:  actions={rec.actions} "
          f"({rec.steps} rounds, {rec.messages_sent} messages)")
    try:
        compile_theorem41(make_game("consensus", 7), k, t)
    except CompilationError as exc:
        print(f"async Thm 4.1:   REFUSED — {exc}")

    print("\n== n = 9: both feasible — the message premium ==")
    sync9 = run_scenario("cost-asynchrony-sync")
    async9 = run_scenario("cost-asynchrony-async")
    s_msgs = sync9.message_stats()["mean"]
    a_msgs = async9.message_stats()["mean"]
    print(f"synchronous R1:  actions={sync9.records[0].actions} "
          f"messages={s_msgs:.0f}")
    print(f"async Thm 4.1:   actions={async9.records[0].actions} "
          f"messages={a_msgs:.0f}")
    premium = a_msgs / max(s_msgs, 1)
    print(f"\nasynchrony premium at n=9: x{premium:.0f} messages "
          f"(reliable broadcast, binary agreement, and common-subset\n"
          f"machinery replacing the synchronous model's free broadcast).")

    print("\n== the premium is protocol machinery, not network timing ==")
    # Run the *asynchronous* Theorem 4.1 protocol under the LockStep timing
    # model: even granted perfectly synchronous rounds, the compiled
    # protocol still earns broadcast/agreement and pays the same messages —
    # the extra cost comes from not being allowed to *assume* synchrony.
    lock9 = run_scenario(
        get_scenario("cost-asynchrony-async").replace(timings=("lockstep",))
    )
    l_msgs = lock9.message_stats()["mean"]
    print(f"async Thm 4.1 under lock-step timing: "
          f"actions={lock9.records[0].actions} messages={l_msgs:.0f}")
    print(f"(identical x{l_msgs / max(s_msgs, 1):.0f} premium: the bound "
          f"n > 4k+4t buys tolerance to timing the protocol "
          f"cannot observe)")


if __name__ == "__main__":
    main()
