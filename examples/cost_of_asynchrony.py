"""The cost of asynchrony: synchronous R1 vs asynchronous Theorem 4.1.

The paper's headline finding is that asynchrony costs an extra k + t in
the resilience bound: the synchronous cheap-talk result R1 needs only
n > 3k + 3t, while the asynchronous Theorem 4.1 needs n > 4k + 4t. This
example makes the gap concrete: at n = 7 (k = t = 1) the synchronous
implementation works while the asynchronous compiler provably refuses,
and at n = 9 both work but asynchrony pays a large message premium for
earning broadcast and agreement (RBC/ABA/ACS) instead of assuming them.

Run:  python examples/cost_of_asynchrony.py
"""

from repro.cheaptalk import compile_theorem41
from repro.cheaptalk.sync import compile_r1
from repro.errors import CompilationError
from repro.games.library import consensus_game
from repro.sim import FifoScheduler


def main() -> None:
    k = t = 1

    print("== n = 7: between the bounds (3k+3t < n <= 4k+4t) ==")
    sync = compile_r1(consensus_game(7), k, t)
    actions, result = sync.run((0,) * 7, seed=1)
    print(f"synchronous R1:  actions={actions} "
          f"({result.rounds} rounds, {result.messages_sent} messages)")
    try:
        compile_theorem41(consensus_game(7), k, t)
    except CompilationError as exc:
        print(f"async Thm 4.1:   REFUSED — {exc}")

    print("\n== n = 9: both feasible — the message premium ==")
    sync9 = compile_r1(consensus_game(9), k, t)
    s_actions, s_result = sync9.run((0,) * 9, seed=2)
    proto = compile_theorem41(consensus_game(9), k, t)
    a_run = proto.game.run((0,) * 9, FifoScheduler(), seed=2)
    print(f"synchronous R1:  actions={s_actions} "
          f"messages={s_result.messages_sent}")
    print(f"async Thm 4.1:   actions={a_run.actions} "
          f"messages={a_run.message_count()}")
    premium = a_run.message_count() / max(s_result.messages_sent, 1)
    print(f"\nasynchrony premium at n=9: x{premium:.0f} messages "
          f"(reliable broadcast, binary agreement, and common-subset\n"
          f"machinery replacing the synchronous model's free broadcast).")


if __name__ == "__main__":
    main()
