"""Byzantine agreement as a game (paper, introduction).

"A problem such as Byzantine agreement becomes trivial with a mediator:
agents send their initial input to the mediator, and the mediator sends
the majority value back." This example runs exactly that mediator, then
replaces it with the Theorem 4.1 cheap-talk protocol and shows that the
implementation (a) preserves the majority outcome, (b) survives crash
faults and wrong shares from up to t parties, and (c) is scheduler-proof.

Run:  python examples/byzantine_agreement.py
"""

from repro.analysis.deviations import ct_crash, ct_lying_shares
from repro.analysis.robustness import scheduler_proofness_spread
from repro.cheaptalk import compile_theorem41
from repro.games.library import byzantine_agreement_game
from repro.mediator import MediatorGame
from repro.sim import FifoScheduler, scheduler_zoo


def main() -> None:
    n, k, t = 9, 1, 1
    spec = byzantine_agreement_game(n)
    types = (1, 1, 1, 1, 1, 1, 0, 0, 0)  # majority input is 1

    mediator = MediatorGame(spec, k, t)
    med = mediator.run(types, FifoScheduler(), seed=0)
    print(f"Mediator game:   inputs={types} -> outputs={med.actions}")

    protocol = compile_theorem41(spec, k, t)
    ct = protocol.game.run(types, FifoScheduler(), seed=0)
    print(f"Cheap talk:      inputs={types} -> outputs={ct.actions}")

    # Crash faults: two parties (= k + t) fail from the start.
    crashed = protocol.game.run(
        types, FifoScheduler(), seed=1,
        deviations={7: ct_crash(), 8: ct_crash()},
    )
    print(f"With 2 crashes:  honest outputs={crashed.actions[:7]}")

    # A party distributing corrupted shares is error-corrected away.
    lied = protocol.game.run(
        types, FifoScheduler(), seed=2,
        deviations={8: ct_lying_shares(spec)},
    )
    print(f"With wrong shares from party 8: honest outputs={lied.actions[:8]}")

    # Scheduler-proofness (Corollary 6.3): payoffs do not depend on the
    # environment.
    spread = scheduler_proofness_spread(
        protocol.game,
        scheduler_zoo(seed=5, parties=range(n))[:4],
        samples_per_scheduler=4,
    )
    print(f"Utility spread across schedulers: {spread['spread']:.3f}")


if __name__ == "__main__":
    main()
