"""Asynchronous binary Byzantine agreement (t < n/3).

The protocol is the Mostéfaoui–Moumen–Raynal (MMR) style binary agreement
driven by the dealt common coin of :mod:`repro.broadcast.coin`:

Per round ``r`` with current estimate ``est``:

1. *BV-broadcast*: send ``BVAL(r, est)``. Upon ``BVAL(r, v)`` from ``t+1``
   distinct senders, relay ``BVAL(r, v)`` (at most once per value). Upon
   ``2t+1`` distinct senders, add ``v`` to ``bin_values[r]`` — every value
   in ``bin_values`` was proposed by at least one honest party.
2. *AUX*: once ``bin_values[r]`` is non-empty, send ``AUX(r, w)`` for the
   first such ``w``. Wait for ``n - t`` AUX messages whose values lie in
   ``bin_values[r]``; let ``vals`` be the set of those values.
3. *Coin*: ``c = coin(sid, r)``. If ``vals == {v}``: decide ``v`` when
   ``v == c``, else set ``est = v``. If ``|vals| == 2``: set ``est = c``.
   Advance to round ``r + 1``.

Termination gadget: upon deciding, broadcast ``DECIDE(v)``; upon ``t+1``
``DECIDE(v)`` relay it; upon ``2t+1`` finish. This lets parties that fall
behind terminate without running further rounds.

Sid shape: ``("aba", tag)``. Input arrives via :meth:`propose` (parents call
it when their precondition becomes true); messages arriving before the
local proposal are buffered by the normal state machine.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.broadcast.base import Session, register_session
from repro.broadcast.coin import coin_value
from repro.errors import ProtocolError


def aba_sid(tag: Any) -> tuple:
    return ("aba", tag)


class _Round:
    """Per-round message state."""

    __slots__ = ("bval_sent", "bval_recv", "bin_values", "bin_order",
                 "aux_sent", "aux_recv", "advanced")

    def __init__(self) -> None:
        self.bval_sent: set[int] = set()
        self.bval_recv: dict[int, set[int]] = {0: set(), 1: set()}
        self.bin_values: set[int] = set()
        self.bin_order: list[int] = []
        self.aux_sent = False
        self.aux_recv: dict[int, int] = {}
        self.advanced = False


@register_session("aba")
class BinaryAgreement(Session):
    """One endpoint of an MMR binary-agreement instance."""

    def __init__(self, host, sid) -> None:
        super().__init__(host, sid)
        self.est: Optional[int] = None
        self.round = 0
        self.rounds: dict[int, _Round] = {}
        self.decided: Optional[int] = None
        self.decide_recv: dict[int, set[int]] = {0: set(), 1: set()}
        self.decide_sent = False

    def _round(self, r: int) -> _Round:
        if r not in self.rounds:
            self.rounds[r] = _Round()
        return self.rounds[r]

    # -- input -----------------------------------------------------------------

    def propose(self, value: int) -> None:
        """Supply this party's input bit (idempotent; first call wins)."""
        if value not in (0, 1):
            raise ProtocolError(f"ABA input must be a bit, got {value!r}")
        if self.est is not None:
            return
        self.est = value
        self._send_bval(0, value)
        self._try_progress(0)

    # -- messaging ---------------------------------------------------------------

    def _send_bval(self, r: int, v: int) -> None:
        state = self._round(r)
        if v not in state.bval_sent:
            state.bval_sent.add(v)
            self.send_all(("bval", r, v))

    def handle(self, sender: int, payload: Any) -> None:
        kind = payload[0]
        if kind == "bval":
            _, r, v = payload
            if v not in (0, 1):
                return
            state = self._round(r)
            state.bval_recv[v].add(sender)
            if len(state.bval_recv[v]) >= self.t + 1:
                self._send_bval(r, v)  # amplification (safe pre-proposal too)
            if len(state.bval_recv[v]) >= 2 * self.t + 1:
                if v not in state.bin_values:
                    state.bin_values.add(v)
                    state.bin_order.append(v)
            self._try_progress(r)
        elif kind == "aux":
            _, r, v = payload
            if v in (0, 1) and sender not in self._round(r).aux_recv:
                self._round(r).aux_recv[sender] = v
            self._try_progress(r)
        elif kind == "decide":
            _, v = payload
            if v not in (0, 1):
                return
            self.decide_recv[v].add(sender)
            if len(self.decide_recv[v]) >= self.t + 1:
                self._broadcast_decide(v)
            if len(self.decide_recv[v]) >= 2 * self.t + 1:
                self.decided = v
                self.finish(v)

    # -- round progression ----------------------------------------------------------

    def _try_progress(self, r: int) -> None:
        if self.est is None or self.finished or self.decided is not None:
            return
        if r != self.round:
            return
        state = self._round(r)
        if not state.aux_sent and state.bin_values:
            state.aux_sent = True
            self.send_all(("aux", r, state.bin_order[0]))
        if not state.aux_sent or state.advanced:
            return
        valid = {
            sender: v
            for sender, v in state.aux_recv.items()
            if v in state.bin_values
        }
        if len(valid) < self.n - self.t:
            return
        vals = set(valid.values())
        coin = coin_value(self.config("coin_seed"), (self.sid, r))
        state.advanced = True
        if len(vals) == 1:
            (v,) = vals
            if v == coin:
                self._decide(v)
                return
            self.est = v
        else:
            self.est = coin
        self.round = r + 1
        self._send_bval(self.round, self.est)
        self._try_progress(self.round)

    def _decide(self, v: int) -> None:
        self.decided = v
        self._broadcast_decide(v)
        self.finish(v)

    def _broadcast_decide(self, v: int) -> None:
        if not self.decide_sent:
            self.decide_sent = True
            self.send_all(("decide", v))
