"""Session multiplexing: many protocol instances inside one process.

The MPC engines run n parallel AVSS instances, each of which runs reliable
broadcasts, while n binary-agreement instances run beside them. Rather than
one simulated process per protocol instance, a player runs one
:class:`SessionHost` process and any number of :class:`Session` objects
inside it, each addressed by a structured *session id* (sid).

Sids are tuples whose first element names the protocol type (registered in
:data:`SESSION_REGISTRY`), so a host can lazily instantiate the local
endpoint of a session the first time a message for it arrives — necessary
in an asynchronous network, where a peer's message can precede any local
decision to participate.

Sessions communicate through ``self.send`` / ``self.send_all`` (payloads are
automatically tagged with the sid) and report their result with
``self.finish(value)``. Anyone (typically a parent protocol) can subscribe
to a session's result with ``host.await_session(sid, callback)``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import ProtocolError
from repro.sim.process import Context, Process

SESSION_REGISTRY: dict[str, type] = {}
"""Maps sid[0] to the Session subclass implementing that protocol."""


def register_session(name: str):
    """Class decorator: make a Session type instantiable from its sid."""

    def decorator(cls):
        if name in SESSION_REGISTRY and SESSION_REGISTRY[name] is not cls:
            raise ProtocolError(f"duplicate session type {name!r}")
        SESSION_REGISTRY[name] = cls
        cls.protocol_name = name
        return cls

    return decorator


class Session:
    """One protocol instance inside a :class:`SessionHost`.

    Subclasses implement :meth:`start` (called once, when the session is
    created locally or on first incoming message) and :meth:`handle`.
    State that must be reconstructible by a remote endpoint has to be
    derivable from the sid plus the host's shared ``config``.
    """

    protocol_name = "session"

    def __init__(self, host: "SessionHost", sid: tuple) -> None:
        self.host = host
        self.sid = sid
        self.result: Any = None
        self.finished = False

    # -- environment shortcuts ----------------------------------------------

    @property
    def me(self) -> int:
        return self.host.me

    @property
    def peers(self) -> list[int]:
        return self.host.peers

    @property
    def n(self) -> int:
        return len(self.host.peers)

    @property
    def t(self) -> int:
        return self.host.config["t"]

    @property
    def rng(self):
        return self.host.current_rng()

    def config(self, key: str, default: Any = None) -> Any:
        return self.host.config.get(key, default)

    # -- messaging -----------------------------------------------------------

    def send(self, recipient: int, payload: Any) -> None:
        self.host.session_send(self.sid, recipient, payload)

    def send_all(self, payload: Any) -> None:
        """Send to every peer, including ourselves (simplifies thresholds)."""
        for peer in self.peers:
            self.send(peer, payload)

    def finish(self, result: Any) -> None:
        """Record this session's result and notify subscribers (idempotent)."""
        if self.finished:
            return
        self.finished = True
        self.result = result
        self.host._session_finished(self.sid, result)

    # -- protocol hooks --------------------------------------------------------

    def start(self) -> None:
        """Called exactly once when the session comes into existence."""

    def handle(self, sender: int, payload: Any) -> None:
        raise NotImplementedError


class SessionHost(Process):
    """The per-player process multiplexing protocol sessions.

    ``config`` is shared by all sessions on this host and must agree across
    honest hosts on: ``t`` (fault bound), ``field``, and any dealt setup
    material. ``on_ready`` (if given) is called with the host once the
    process has started — used by top-level drivers to kick off root
    sessions.
    """

    def __init__(
        self,
        me: int,
        peers: list[int],
        config: dict,
        on_ready: Optional[Callable[["SessionHost"], None]] = None,
    ) -> None:
        self.me = me
        self.peers = list(peers)
        self.config = dict(config)
        self.config.setdefault("t", 0)
        self.on_ready = on_ready
        self.sessions: dict[tuple, Session] = {}
        self.results: dict[tuple, Any] = {}
        self._subscribers: dict[tuple, list[Callable[[tuple, Any], None]]] = {}
        self._ctx: Optional[Context] = None
        self._pending_sends: list[tuple[tuple, int, Any]] = []

    # -- session management ----------------------------------------------------

    def open_session(self, sid: tuple, cls: Optional[type] = None) -> Session:
        """Get or lazily create the local endpoint of session ``sid``."""
        session = self.sessions.get(sid)
        if session is not None:
            return session
        if cls is None:
            cls = SESSION_REGISTRY.get(sid[0])
            if cls is None:
                raise ProtocolError(f"unknown session type in sid {sid!r}")
        session = cls(self, sid)
        self.sessions[sid] = session
        session.start()
        return session

    def await_session(
        self, sid: tuple, callback: Callable[[tuple, Any], None],
        create: bool = True,
    ) -> None:
        """Invoke ``callback(sid, result)`` when session ``sid`` finishes."""
        if sid in self.results:
            callback(sid, self.results[sid])
            return
        if create:
            self.open_session(sid)
        self._subscribers.setdefault(sid, []).append(callback)

    def _session_finished(self, sid: tuple, result: Any) -> None:
        self.results[sid] = result
        for callback in self._subscribers.pop(sid, []):
            callback(sid, result)

    # -- messaging plumbing ------------------------------------------------------

    def session_send(self, sid: tuple, recipient: int, payload: Any) -> None:
        if self._ctx is None:
            # Sends can be triggered before/outside an activation (e.g. by a
            # driver callback); they are flushed on the next activation.
            self._pending_sends.append((sid, recipient, payload))
            return
        self._ctx.send(recipient, (sid, payload))

    def current_rng(self):
        if self._ctx is None:
            raise ProtocolError("no active context (rng unavailable)")
        return self._ctx.rng

    def _flush_pending(self) -> None:
        if not self._pending_sends:
            return
        pending, self._pending_sends = self._pending_sends, []
        for sid, recipient, payload in pending:
            self._ctx.send(recipient, (sid, payload))

    # -- Process interface ---------------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        self._ctx = ctx
        try:
            if self.on_ready is not None:
                self.on_ready(self)
            self._flush_pending()
        finally:
            self._ctx = None

    def on_message(self, ctx: Context, sender: int, payload: Any) -> None:
        self._ctx = ctx
        try:
            self._flush_pending()
            if (
                not isinstance(payload, tuple)
                or len(payload) != 2
                or not isinstance(payload[0], tuple)
            ):
                self.on_plain_message(ctx, sender, payload)
                return
            sid, inner = payload
            session = self.sessions.get(sid)
            if session is None:
                session = self.open_session(sid)
            session.handle(sender, inner)
            self._flush_pending()
        finally:
            self._ctx = None

    def on_plain_message(self, ctx: Context, sender: int, payload: Any) -> None:
        """Hook for non-session messages; default is to reject loudly."""
        raise ProtocolError(
            f"host {self.me} got non-session message {payload!r} from {sender}"
        )
