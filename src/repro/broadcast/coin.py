"""Common coin from dealt setup randomness.

The ABA protocol needs, per round, a random bit that all honest parties
agree on and that the adversary cannot bias. BCG obtain it from AVSS-based
secret-sharing machinery; per DESIGN.md §3 we substitute a *dealt common
random sequence*: the trusted offline setup places a seed in every host's
config, and the coin for tag ``x`` is a hash of (seed, x). This preserves
the property the theorems consume — ABA terminates with probability 1, in
expected O(1) rounds — under our adversary model (schedulers cannot read
host configs; deviating players learning coins early can bias *their own*
messages but cannot stall honest parties, whose round structure does not
depend on predicting the coin).
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.broadcast.base import Session, register_session
from repro.errors import ProtocolError


def coin_value(seed: int, tag: Any, modulus: int = 2) -> int:
    """The dealt common coin for ``tag``: uniform in range(modulus)."""
    digest = hashlib.sha256(f"{seed}|{tag!r}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % modulus


@register_session("coin")
class CommonCoin(Session):
    """Session wrapper around the dealt coin (finishes immediately)."""

    def start(self) -> None:
        seed = self.config("coin_seed")
        if seed is None:
            raise ProtocolError("host config lacks 'coin_seed' setup material")
        _, tag = self.sid[0], self.sid[1:]
        self.finish(coin_value(seed, tag))

    def handle(self, sender: int, payload: Any) -> None:  # pragma: no cover
        pass
