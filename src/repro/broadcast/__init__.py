"""Asynchronous broadcast-layer protocols: RBC, common coin, ABA, ACS.

All protocols are *sessions* hosted inside a :class:`SessionHost` process,
so a single simulated player can run many protocol instances concurrently
(as the MPC engines require).
"""

from repro.broadcast.base import Session, SessionHost, SESSION_REGISTRY, register_session
from repro.broadcast.rbc import ReliableBroadcast
from repro.broadcast.coin import CommonCoin, coin_value
from repro.broadcast.aba import BinaryAgreement
from repro.broadcast.acs import CommonSubset

__all__ = [
    "Session",
    "SessionHost",
    "SESSION_REGISTRY",
    "register_session",
    "ReliableBroadcast",
    "CommonCoin",
    "coin_value",
    "BinaryAgreement",
    "CommonSubset",
]
