"""Bracha reliable broadcast (t < n/3).

Sid shape: ``("rbc", dealer_pid, tag)``. The dealer's value is any hashable
payload. Guarantees (with at most t Byzantine parties out of n > 3t):

* *validity* — if the dealer is honest, every honest party delivers the
  dealer's value;
* *agreement* — no two honest parties deliver different values;
* *totality* — if any honest party delivers, all honest parties do.

A Byzantine dealer can prevent delivery entirely (no termination guarantee)
— exactly the behaviour the ACS layer is designed to tolerate.
"""

from __future__ import annotations

from typing import Any

from repro.broadcast.base import Session, register_session


def rbc_sid(dealer: int, tag: Any) -> tuple:
    return ("rbc", dealer, tag)


@register_session("rbc")
class ReliableBroadcast(Session):
    """One endpoint of a Bracha broadcast instance."""

    def __init__(self, host, sid) -> None:
        super().__init__(host, sid)
        _, self.dealer, self.tag = sid
        self.value_to_send: Any = None
        self.sent_echo = False
        self.sent_ready = False
        self.echoes: dict[Any, set[int]] = {}
        self.readies: dict[Any, set[int]] = {}

    # Thresholds (standard Bracha):
    #   echo quorum   : floor((n + t) / 2) + 1   (any two quorums intersect
    #                   in an honest party)
    #   ready support : t + 1   (amplification: at least one honest sent it)
    #   delivery      : 2t + 1  (at least t+1 honest sent ready)

    @property
    def _echo_quorum(self) -> int:
        return (self.n + self.t) // 2 + 1

    def input(self, value: Any) -> None:
        """Dealer-side entry point: broadcast ``value``."""
        if self.me != self.dealer:
            raise RuntimeError("only the dealer inputs to an RBC")
        self.send_all(("init", value))

    def start(self) -> None:
        value = self.config(("rbc-input", self.sid))
        if self.me == self.dealer and value is not None:
            self.send_all(("init", value))

    def handle(self, sender: int, payload: Any) -> None:
        kind, value = payload
        if kind == "init":
            if sender != self.dealer or self.sent_echo:
                return  # forged or duplicate init: ignore
            self.sent_echo = True
            self.send_all(("echo", value))
        elif kind == "echo":
            holders = self.echoes.setdefault(value, set())
            holders.add(sender)
            if len(holders) >= self._echo_quorum and not self.sent_ready:
                self.sent_ready = True
                self.send_all(("ready", value))
        elif kind == "ready":
            holders = self.readies.setdefault(value, set())
            holders.add(sender)
            if len(holders) >= self.t + 1 and not self.sent_ready:
                self.sent_ready = True
                self.send_all(("ready", value))
            if len(holders) >= 2 * self.t + 1 and not self.finished:
                self.finish(value)
