"""Agreement on a common subset (ACS), in the BCG/BKR style.

Every party observes asynchronous "party j's contribution is complete"
events (in the MPC engines: AVSS from dealer j terminated locally) and the
parties must agree on a set S of at least ``n - t`` contributors such that
every j in S really contributed (at least one honest party saw completion).

Construction: one binary agreement per party. A party proposes 1 in ABA_j
when it observes j's completion; once ``n - t`` ABAs have decided 1, it
proposes 0 in every ABA it has not yet voted in. S is the set of indices
whose ABA decided 1. (ABA validity — decisions are some honest party's
input — gives the "really contributed" guarantee.)

Sid shape: ``("acs", tag)``; the ABA children are ``("aba", (sid, j))``.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.broadcast.aba import BinaryAgreement
from repro.broadcast.base import Session, register_session


def acs_sid(tag: Any) -> tuple:
    return ("acs", tag)


@register_session("acs")
class CommonSubset(Session):
    """One endpoint of an ACS instance."""

    def __init__(self, host, sid) -> None:
        super().__init__(host, sid)
        self.voted: set[int] = set()
        self.decisions: dict[int, int] = {}
        self._started_children = False

    def start(self) -> None:
        # Instantiate (and subscribe to) all ABA children up front so that
        # their messages route correctly even before any local vote.
        self._started_children = True
        for j in self.peers:
            self.host.await_session(self._aba_sid(j), self._on_aba)

    def _aba_sid(self, j: int) -> tuple:
        return ("aba", (self.sid, j))

    def _aba(self, j: int) -> BinaryAgreement:
        return self.host.open_session(self._aba_sid(j))

    # -- inputs ------------------------------------------------------------------

    def provide_input(self, j: int) -> None:
        """Report that party j's contribution completed locally."""
        if j in self.voted or self.finished:
            return
        self.voted.add(j)
        self._aba(j).propose(1)

    # -- ABA results --------------------------------------------------------------

    def _on_aba(self, sid: tuple, decision: int) -> None:
        j = sid[1][1]
        self.decisions[j] = decision
        ones = [i for i, d in self.decisions.items() if d == 1]
        if len(ones) >= self.n - self.t:
            for i in self.peers:
                if i not in self.voted:
                    self.voted.add(i)
                    self._aba(i).propose(0)
        if len(self.decisions) == len(self.peers) and not self.finished:
            subset = tuple(sorted(i for i, d in self.decisions.items() if d == 1))
            self.finish(subset)

    def handle(self, sender: int, payload: Any) -> None:
        # All traffic flows through the ABA children; ACS itself is silent.
        raise NotImplementedError("ACS has no direct messages")
