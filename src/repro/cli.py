"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — run one registered scenario and print per-run rows + aggregate
  (``--timing`` overrides the timing grid, ``--record-payloads`` captures
  full traces);
* ``sweep`` — run one or more scenario grids (optionally in parallel) and
  print aggregate tables (JSON with ``--json``, flat per-cell CSV rows
  with ``--csv``);
* ``scenarios`` — list the scenario registry (``--json`` for specs, each
  augmented with its run mode and supported deviation profiles);
* ``audit`` — robustness audits: ``audit list`` shows the canonical
  audits, ``audit run`` searches one (k,t) cell for profitable deviations,
  ``audit frontier`` sweeps the (k,t,ε) frontier (both take ``--json`` /
  ``--csv``);
* ``demo`` — run the quickstart pipeline (mediator vs cheap talk) on a
  chosen library game;
* ``games`` — the game library: ``games list`` shows registered games and
  parameterized families (``--json`` mirrors ``scenarios --json`` with
  player counts, type-space sizes, and punishment availability);
  ``games show <name>`` prints one game's detail, including its
  declarative ``GameDef`` JSON when the game is defined as data
  (``consensus@n5``, ``random@n4s123``, ``file:my_game.json`` all work);
* ``bench`` — run the unified quick-benchmark suite and emit one
  ``bench_suite.json`` (``--baseline`` soft-warns on throughput
  regressions without failing);
* ``lint`` — run the repo's AST-based static analyzer (determinism,
  protocol-contract, and multiprocessing-safety rules) over source
  trees; ``--list-rules`` documents the rules, ``--diff <ref>`` restricts
  findings to lines changed since a git ref, ``--json`` / ``--out``
  emit the machine-readable report (exit 1 on any active finding);
* ``check`` — run the exact ideal-mediator robustness checker on a game;
* ``compile`` — compile a game through one of the four theorems and run it;
* ``attack`` — mount the Section 6.4 leak attack (leaky vs minimal);
* ``serve`` — the experiment service daemon: drain the job spool onto one
  persistent runner, answering repeated submissions from the result store
  (``--metrics-port`` exposes the live telemetry registry over HTTP);
* ``jobs`` — the service client: ``submit`` / ``status`` / ``list`` /
  ``logs`` / ``cancel`` / ``result`` / ``wait`` / ``stats`` against the
  same spool;
* ``profile`` — run any other repro command under cProfile and print the
  top functions (``repro profile -- sweep chicken-mediator``);
* ``metrics`` — scrape a running ``serve --metrics-port`` endpoint and
  print the Prometheus text (or ``--json`` for the snapshot document);
* ``store`` — inspect a result store: ``summary`` aggregates, ``query``
  filters stored run records, ``path`` prints the resolved location.

Store path precedence everywhere: ``--store PATH`` beats the
``REPRO_STORE`` environment variable, which beats the command's default
(no store for one-shot commands; ``~/.repro-store/store.sqlite`` for the
service and for ``store`` inspection). The spool follows the same shape:
``--spool`` > ``REPRO_SPOOL`` > ``~/.repro-store/spool``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import contextmanager
from statistics import mean

from repro.analysis.reporting import format_run, format_solution_report, format_table
from repro.errors import ExperimentError, GameError
from repro.games.library import BOT, section64_game
from repro.games.registry import GAME_REGISTRY, iter_games, make_game

# Back-compat alias: the game registry used to live here as a private dict.
GAMES = GAME_REGISTRY

THEOREMS = {"4.1", "4.2", "4.4", "4.5", "r1"}


def _spec(args):
    try:
        return make_game(args.game, args.n)
    except GameError as exc:
        sys.exit(str(exc))


def _game_entry(name: str, spec) -> dict:
    """The JSON summary of one built game (``games list/show --json``)."""
    game = spec.game
    definition = spec.definition
    return {
        "name": name,
        "game": game.name,
        "players": game.n,
        "type_profiles": len(game.type_space.profiles()),
        "type_space_sizes": [
            len(game.type_space.player_types(i)) for i in range(game.n)
        ],
        "action_set_sizes": [len(a) for a in game.action_sets],
        "has_punishment": spec.punishment is not None,
        "punishment_strength": spec.punishment_strength,
        "has_default_moves": spec.default_moves is not None,
        "mediator_rule": (
            definition.mediator.get("rule") if definition is not None else None
        ),
        "has_definition": definition is not None,
        "notes": spec.notes,
    }


def cmd_games_list(args) -> None:
    from repro.games.families import iter_families

    entries = []
    for name, maker in iter_games():
        try:
            spec = maker(args.n)
        except Exception as exc:  # some games pin their own n
            entries.append({"name": name, "error": f"n={args.n}: {exc}"})
            continue
        entries.append(_game_entry(name, spec))
    families = [
        {
            "family": name,
            "params": params,
            "example": f"{name}@" + "".join(
                f"{k}{v}" for k, v in params.items()
            ),
        }
        for name, params in iter_families()
    ]
    if getattr(args, "json", False):
        print(json.dumps(
            {"games": entries, "families": families},
            indent=2,
            sort_keys=True,
        ))
        return
    rows = []
    for e in entries:
        if "error" in e:
            rows.append((e["name"], "-", "-", "-", "-", f"({e['error']})"))
            continue
        rows.append((
            e["name"],
            e["players"],
            "x".join(str(s) for s in e["type_space_sizes"]),
            "x".join(str(s) for s in e["action_set_sizes"]),
            "yes" if e["has_punishment"] else "no",
            e["notes"],
        ))
    print(format_table(
        ["game", "n", "types", "actions", "punish", "notes"], rows
    ))
    print("\nparameterized families (use as game names, e.g. "
          "`repro games show consensus@n5`):")
    print(format_table(
        ["family", "example"],
        [(f["family"], f["example"]) for f in families],
    ))


def cmd_games_show(args) -> None:
    try:
        spec = make_game(args.name, args.n)
    except GameError as exc:
        sys.exit(str(exc))
    entry = _game_entry(args.name, spec)
    definition = spec.definition
    if getattr(args, "json", False):
        entry["definition"] = (
            definition.to_dict() if definition is not None else None
        )
        print(json.dumps(entry, indent=2, sort_keys=True))
        return
    for key in (
        "name", "game", "players", "type_profiles", "type_space_sizes",
        "action_set_sizes", "has_punishment", "punishment_strength",
        "has_default_moves", "mediator_rule", "notes",
    ):
        print(f"{key:20} {entry[key]}")
    if definition is not None:
        print("\nGameDef JSON:")
        print(definition.to_json(indent=2))


def cmd_scenarios(args) -> None:
    from repro.experiments import (
        MODE_FOR_THEOREM,
        deviations_for_mode,
        iter_scenarios,
    )

    if getattr(args, "json", False):
        entries = []
        for spec in iter_scenarios():
            mode = MODE_FOR_THEOREM[spec.theorem]
            entries.append({
                **spec.to_dict(),
                # Derived, audit-facing metadata (ScenarioSpec.from_dict
                # drops these on parse, so the entries still round-trip):
                "mode": mode,
                "supported_deviations": deviations_for_mode(mode),
            })
        print(json.dumps(entries, indent=2, sort_keys=True))
        return
    rows = [
        (
            spec.name,
            spec.game,
            spec.theorem,
            spec.n,
            f"({spec.k},{spec.t})",
            ",".join(spec.timings),
            spec.grid_size(),
            spec.description,
        )
        for spec in iter_scenarios()
    ]
    print(format_table(
        ["scenario", "game", "theorem", "n", "(k,t)", "timing", "runs",
         "description"],
        rows,
    ))


def _resolve_scenarios(args):
    from repro.experiments import get_scenario

    specs = []
    for name in args.scenarios:
        try:
            spec = get_scenario(name)
            if args.seeds is not None:
                spec = spec.replace(seed_count=args.seeds)
            if getattr(args, "timing", None):
                spec = spec.replace(timings=(args.timing,))
            if getattr(args, "game", None):
                spec = spec.replace(game=args.game, games=())
            if getattr(args, "record_payloads", False):
                spec = spec.replace(record_payloads=True)
            runtime = getattr(args, "runtime", None)
            latency = getattr(args, "latency", None)
            if runtime or latency is not None:
                # One combined replace: setting runtime and latency
                # separately would trip the spec's cross-field validation
                # mid-way (e.g. a latency model on a still-sim spec).
                changes = {}
                if runtime:
                    changes["runtime"] = runtime
                    if runtime == "sim" and latency is None:
                        changes["latency"] = "zero"
                if latency is not None:
                    changes["latency"] = latency
                spec = spec.replace(**changes)
            if getattr(args, "faults", None):
                spec = spec.replace(
                    faults=tuple(args.faults.split(","))
                )
            if getattr(args, "seed", None) is not None:
                spec = spec.replace(seed_start=args.seed)
        except ExperimentError as exc:
            sys.exit(str(exc))
        specs.append(spec)
    return specs


def _write_csv(path: str, results) -> None:
    """Write results (ExperimentResult or AuditResult) as flat CSV rows."""
    import csv

    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(type(results[0]).CSV_FIELDS)
        for result in results:
            writer.writerows(result.csv_rows())


def _print_json(results) -> None:
    if len(results) == 1:
        print(results[0].to_json(indent=2))
    else:
        print(json.dumps([r.to_dict() for r in results], indent=2,
                         sort_keys=True))


def _print_result(result, per_run: bool) -> None:
    from repro.experiments import ExperimentResult

    spec = result.spec
    mode = "parallel" if result.parallel else "serial"
    print(
        f"\n== {spec.name} — {spec.game} via {spec.theorem} "
        f"(n={spec.n}, k={spec.k}, t={spec.t}) "
        f"[{len(result.records)} runs, {mode}, {result.elapsed_s:.1f}s] =="
    )
    if per_run:
        rows = [
            (
                r.game or spec.game,
                r.timing,
                r.scheduler,
                r.deviation,
                r.seed,
                "" if r.ok else (r.error or "?"),
                r.actions if r.ok else "-",
                f"{r.mean_payoff():.3f}" if r.ok else "-",
                r.messages_sent,
            )
            for r in result.records
        ]
        print(format_table(
            ["game", "timing", "scheduler", "deviation", "seed", "error",
             "actions", "payoff", "messages"],
            rows,
        ))
        print()
    print(format_table(ExperimentResult.SUMMARY_HEADERS, result.summary_rows()))
    agg = result.aggregate()
    print(
        f"agreement={agg['agreement_rate']:.2f} "
        f"messages(mean)={agg['messages']['mean']:.0f} "
        f"steps(mean)={agg['steps']['mean']:.0f} "
        f"payoff(mean)={agg['payoff']['mean']:.3f} "
        f"errors={agg['errors']} timeouts={agg['timeouts']}"
    )


def _print_profile(result) -> None:
    """The ``--profile`` breakdown: prepare vs run vs payoff, cache, pool."""
    stats = result.stats
    if not stats:
        print("(no runner stats recorded)")
        return
    phases = stats.get("phases", {})
    cache = stats.get("cache", {})
    pool = stats.get("pool", {})
    accounted = sum(phases.values())
    rows = [
        (phase, f"{seconds:.3f}s",
         f"{seconds / accounted * 100:.0f}%" if accounted else "-")
        for phase, seconds in (
            ("prepare (game+compile+deviations)", phases.get("prepare_s", 0.0)),
            ("run (simulation)", phases.get("run_s", 0.0)),
            ("payoff", phases.get("payoff_s", 0.0)),
        )
    ]
    print(f"\nprofile — {result.spec.name}:")
    print(format_table(["phase", "time", "share"], rows))
    hits, misses = cache.get("hits", 0), cache.get("misses", 0)
    rate = f"{hits / (hits + misses) * 100:.0f}%" if hits + misses else "-"
    print(
        f"artifact cache: {hits} hits / {misses} misses ({rate} hit rate); "
        f"pool: {'reused' if pool.get('reused') else 'fresh' if pool.get('used') else 'serial'}"
        f" ({pool.get('processes', 1)} process(es))"
    )
    if "store" in stats:
        entry = stats["store"]
        print(
            f"result store: {entry.get('hits', 0)} cell(s) answered from "
            f"the store, {entry.get('misses', 0)} simulated, "
            f"{entry.get('stored', 0)} newly stored"
        )


def _open_store(args, default=None):
    """The command's store per the documented precedence, or ``None``."""
    from repro.errors import StoreError
    from repro.store import open_store

    try:
        return open_store(getattr(args, "store", None), default=default)
    except StoreError as exc:
        sys.exit(str(exc))


@contextmanager
def _trace_scope(args):
    """Activate a tracer for the command when ``--trace-out`` was given.

    On exit the collected spans — including the ones merged back from
    pool workers — are written as a Chrome trace-event file, loadable in
    ``chrome://tracing`` / Perfetto.
    """
    path = getattr(args, "trace_out", None)
    if not path:
        yield None
        return
    from repro.obs import Tracer, activate, deactivate

    tracer = Tracer()
    activate(tracer)
    try:
        yield tracer
    finally:
        deactivate()
        events = tracer.write_chrome_trace(path)
        print(
            f"wrote {events} span(s) to {path} "
            "(open in chrome://tracing or ui.perfetto.dev)",
            file=sys.stderr,
        )


def _run_and_report(args, per_run: bool) -> None:
    from repro.experiments import ExperimentRunner

    specs = _resolve_scenarios(args)
    store = _open_store(args)
    try:
        with _trace_scope(args), ExperimentRunner(
            parallel=args.parallel,
            processes=args.processes,
            timeout_s=args.timeout,
            store=store,
        ) as runner:
            if store is not None:
                # Result-level dedup: a spec already answered by this
                # store comes back as the stored document (byte-stable
                # across invocations), not a fresh simulation.
                results = [
                    store.get_or_run(spec, runner=runner).result
                    for spec in specs
                ]
            else:
                results = [runner.run(spec) for spec in specs]
    except ExperimentError as exc:
        sys.exit(str(exc))
    finally:
        if store is not None:
            store.close()
    if getattr(args, "csv", None):
        _write_csv(args.csv, results)
        total = sum(len(r.records) for r in results)
        print(f"wrote {total} rows to {args.csv}", file=sys.stderr)
    if args.json:
        _print_json(results)
        return
    for result in results:
        _print_result(result, per_run=per_run)
        if getattr(args, "profile", False):
            _print_profile(result)


def cmd_run(args) -> None:
    _run_and_report(args, per_run=True)


def cmd_sweep(args) -> None:
    _run_and_report(args, per_run=False)


def cmd_demo(args) -> None:
    from repro.cheaptalk import compile_theorem41
    from repro.mediator import MediatorGame
    from repro.sim import scheduler_zoo

    spec = _spec(args)
    types = spec.game.type_space.profiles()[0]
    mediator = MediatorGame(spec, args.k, args.t)
    run = mediator.run(types, scheduler_zoo(seed=1)[0], seed=args.seed)
    print("mediator game: ", format_run(run, spec.game.utility))
    protocol = compile_theorem41(spec, args.k, args.t)
    print("compiled:      ", protocol.describe())
    for scheduler in scheduler_zoo(seed=2, parties=range(spec.game.n))[:3]:
        run = protocol.game.run(types, scheduler, seed=args.seed)
        print(f"cheap talk [{scheduler.name}]:", format_run(run, spec.game.utility))


def cmd_check(args) -> None:
    from repro.mediator import check_ideal_mediator_robustness

    spec = _spec(args)
    report = check_ideal_mediator_robustness(spec, args.k, args.t)
    print(format_solution_report(report))


def cmd_compile(args) -> None:
    from repro.cheaptalk import (
        compile_theorem41,
        compile_theorem42,
        compile_theorem44,
        compile_theorem45,
    )
    from repro.cheaptalk.sync import compile_r1
    from repro.sim import FifoScheduler

    spec = _spec(args)
    types = spec.game.type_space.profiles()[0]
    if args.theorem == "4.1":
        proto = compile_theorem41(spec, args.k, args.t)
    elif args.theorem == "4.2":
        proto = compile_theorem42(spec, args.k, args.t, epsilon=args.epsilon)
    elif args.theorem == "4.4":
        proto = compile_theorem44(spec, args.k, args.t)
    elif args.theorem == "4.5":
        proto = compile_theorem45(spec, args.k, args.t, epsilon=args.epsilon)
    elif args.theorem == "r1":
        sync = compile_r1(spec, args.k, args.t)
        actions, result = sync.run(types, seed=args.seed)
        print(
            f"R1 synchronous baseline: actions={actions} "
            f"rounds={result.rounds} messages={result.messages_sent}"
        )
        return
    else:  # pragma: no cover
        sys.exit(f"unknown theorem {args.theorem!r}")
    print(proto.describe())
    run = proto.game.run(types, FifoScheduler(), seed=args.seed)
    print(format_run(run, spec.game.utility))


def cmd_attack(args) -> None:
    from repro.analysis.section64 import run_attack
    from repro.mediator import (
        LeakySection64Mediator,
        MediatorGame,
        minimally_informative,
    )

    n, k = max(args.n, 7), 2
    spec = section64_game(n, k=k)
    leaky = MediatorGame(
        spec, k, 0, approach="ah", will=lambda pid, ty: BOT,
        mediator_factory=lambda: LeakySection64Mediator(spec, k, 0),
    )
    attacked = run_attack(leaky, (0, 1), runs=args.runs, seed=args.seed)
    minimal = minimally_informative(leaky, rounds=2)
    defended = run_attack(minimal, (0, 1), runs=args.runs, seed=args.seed)
    print(format_table(
        ["mediator", "coalition outcomes", "mean payoff"],
        [
            ("leaky (a+b·i)", sorted(set(attacked)), f"{mean(attacked):.3f}"),
            ("minimal f(σd)", sorted(set(defended)), f"{mean(defended):.3f}"),
        ],
    ))
    print("\nequilibrium payoff is 1.5; leaky converts 1.0-runs into 1.1.")


def _resolve_audits(args):
    from repro.audit import get_audit

    overrides = {}
    if getattr(args, "seeds", None) is not None:
        overrides["seed_count"] = args.seeds
    if getattr(args, "budget", None) is not None:
        overrides["budget"] = args.budget
    if getattr(args, "method", None):
        overrides["method"] = args.method
    if getattr(args, "game", None):
        overrides["game"] = args.game
    specs = []
    for name in args.audits:
        try:
            specs.append(get_audit(name).replace(**overrides))
        except ExperimentError as exc:
            sys.exit(str(exc))
    return specs


def _print_audit(result, per_candidate: bool) -> None:
    from repro.audit import AuditResult

    spec = result.spec
    mode = "parallel" if result.parallel else "serial"
    print(
        f"\n== audit {spec.name} — scenario {spec.scenario} "
        f"[{len(result.cells)} cell(s), {result.evaluations()} evaluations, "
        f"{mode}, {result.elapsed_s:.1f}s] =="
    )
    print(format_table(AuditResult.SUMMARY_HEADERS, result.summary_rows()))
    if per_candidate:
        for cell in result.cells:
            if not cell.top:
                continue
            print(f"\ntop deviations at (k={cell.k}, t={cell.t}):")
            rows = [
                (
                    f"{score.gain:+.4f}",
                    f"{score.outsider_harm:+.4f}",
                    f"{score.failures}/{score.runs}",
                    score.label,
                )
                for score in cell.top
            ]
            print(format_table(
                ["coalition gain", "outsider harm", "failed", "deviation"],
                rows,
            ))
    agg = result.aggregate()
    verdict = "ROBUST" if agg["robust"] else "NOT ROBUST"
    print(
        f"\nverdict: {verdict} — max observed coalition gain "
        f"{agg['max_gain']:+.4f} over {agg['evaluations']} evaluated "
        f"deviations"
    )


def _audit_and_report(args, results) -> None:
    if getattr(args, "csv", None):
        _write_csv(args.csv, results)
        total = sum(len(r.cells) for r in results)
        print(f"wrote {total} cell rows to {args.csv}", file=sys.stderr)
    if args.json:
        _print_json(results)
        return
    for result in results:
        _print_audit(result, per_candidate=True)


def cmd_audit_list(args) -> None:
    from repro.audit import iter_audits

    if getattr(args, "json", False):
        print(json.dumps(
            [spec.to_dict() for spec in iter_audits()],
            indent=2,
            sort_keys=True,
        ))
        return
    rows = [
        (
            spec.name,
            spec.scenario,
            spec.method,
            spec.budget,
            ",".join(spec.atoms) if spec.atoms else "(all)",
            spec.description,
        )
        for spec in iter_audits()
    ]
    print(format_table(
        ["audit", "scenario", "method", "budget", "atoms", "description"],
        rows,
    ))


def _audit_runner(args):
    """One shared runner for every audit of an invocation: the worker pool
    and artifact caches stay warm across specs and across search batches."""
    from repro.experiments import ExperimentRunner

    return ExperimentRunner(
        parallel=args.parallel,
        processes=args.processes,
        timeout_s=args.timeout,
    )


def cmd_audit_run(args) -> None:
    from repro.audit import run_audit

    specs = _resolve_audits(args)
    store = _open_store(args)
    try:
        with _trace_scope(args), _audit_runner(args) as runner:
            results = [
                run_audit(spec, runner=runner, store=store) for spec in specs
            ]
    except (ExperimentError, GameError) as exc:
        sys.exit(str(exc))
    finally:
        if store is not None:
            store.close()
    _audit_and_report(args, results)


def cmd_audit_fuzz(args) -> None:
    from repro.audit import fuzz_summary, run_fuzz

    store = _open_store(args)
    try:
        with _audit_runner(args) as runner:
            results = run_fuzz(
                count=args.count,
                seed=args.seed,
                n=args.n,
                actions=args.actions,
                types=args.types,
                k=args.k,
                t=args.t,
                budget=args.budget if args.budget is not None else 32,
                seed_count=args.seeds if args.seeds is not None else 3,
                method=args.method or "auto",
                games=args.games or None,
                runner=runner,
                store=store,
            )
    except (ExperimentError, GameError) as exc:
        sys.exit(str(exc))
    finally:
        if store is not None:
            store.close()
    if getattr(args, "csv", None):
        _write_csv(args.csv, results)
        total = sum(len(r.cells) for r in results)
        print(f"wrote {total} cell rows to {args.csv}", file=sys.stderr)
    if args.json:
        _print_json(results)
        return
    rows = []
    for result in results:
        agg = result.aggregate()
        cell = result.cells[0]
        rows.append((
            result.spec.game,
            cell.method,
            f"{cell.evaluated}/{cell.space_size}",
            f"{agg['max_gain']:+.4f}",
            "yes" if agg["robust"] else "NO",
            cell.best.label if cell.best is not None else "-",
        ))
    print(format_table(
        ["game", "method", "searched", "max gain", "robust",
         "best deviation"],
        rows,
    ))
    summary = fuzz_summary(results)
    print(
        f"\nfuzzed {summary['games']} generated game(s): "
        f"{summary['robust']} robust, worst gain {summary['max_gain']:+.4f} "
        f"({summary['worst_game']}) over {summary['evaluations']} evaluations"
    )


def cmd_lint(args) -> None:
    from repro.errors import LintError
    from repro.lint import (
        changed_lines,
        lint_paths,
        rule_descriptions,
    )

    if args.list_rules:
        descriptions = rule_descriptions()
        if args.json:
            print(json.dumps(descriptions, indent=2, sort_keys=True))
            return
        for name in sorted(descriptions):
            print(f"{name}\n    {descriptions[name]}")
        return
    paths = args.paths or ["src"]
    rules = (
        [name for group in args.rules for name in group.split(",") if name]
        if args.rules is not None else None
    )
    try:
        report = lint_paths(paths, rules=rules)
        if args.diff:
            report = report.restrict_to_lines(changed_lines(args.diff, paths))
    except LintError as exc:
        sys.exit(str(exc))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report.to_json(indent=2))
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        print(report.to_json(indent=2))
    else:
        print(report.format_text(show_suppressed=args.show_suppressed))
    if report.exit_code:
        raise SystemExit(report.exit_code)


def cmd_faults_list(args) -> None:
    from repro.faults.masking import BREAKING_PLANS, crash_budget
    from repro.faults.plan import _KNOWN_FORMS, fault_names
    from repro.experiments.registry import get_scenario

    if args.json:
        print(json.dumps({
            "registered": fault_names(),
            "forms": list(_KNOWN_FORMS),
            "faultcheck": {
                name: {
                    "budget": crash_budget(get_scenario(name)),
                    "masking": [
                        p for p in get_scenario(name).faults if p != "none"
                    ],
                    "breaking": list(plans),
                }
                for name, plans in sorted(BREAKING_PLANS.items())
            },
        }, indent=2, sort_keys=True))
        return
    print("registered plans:", ", ".join(fault_names()))
    print("parameterized forms:")
    for form in _KNOWN_FORMS:
        print(f"  {form}")
    print()
    print("faultcheck scenarios (repro faults check):")
    for name, plans in sorted(BREAKING_PLANS.items()):
        spec = get_scenario(name)
        masking = [p for p in spec.faults if p != "none"]
        print(f"  {name} (crash budget {crash_budget(spec)})")
        print(f"    must mask:  {', '.join(masking)}")
        print(f"    must break: {', '.join(plans)}")


def cmd_faults_check(args) -> None:
    from repro.errors import ReproError
    from repro.faults.masking import run_faultcheck

    names = args.scenarios or None
    try:
        results = run_faultcheck(names)
    except ReproError as exc:
        sys.exit(str(exc))
    failed = 0
    for result in results:
        for report in result.reports:
            print(report.describe())
            if not report.ok:
                failed += 1
                for mismatch in report.mismatches[:5]:
                    print(f"    {mismatch.describe()}")
    total = sum(len(result.reports) for result in results)
    verdict = "ok" if failed == 0 else "FAILED"
    print(f"masking oracle: {total - failed}/{total} plans behaved "
          f"as claimed [{verdict}]")
    if failed:
        raise SystemExit(1)


def cmd_bench(args) -> None:
    from repro.bench import (
        bench_names,
        compare_to_baseline,
        load_suite,
        run_suite,
    )

    try:
        suite = run_suite(names=args.benches or None, quick=not args.full)
    except ExperimentError as exc:
        sys.exit(str(exc))
    warnings = []
    if args.baseline:
        try:
            warnings = compare_to_baseline(suite, load_suite(args.baseline))
        except ExperimentError as exc:
            sys.exit(str(exc))
        suite["regressions"] = warnings
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(suite, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(suite, indent=2, sort_keys=True))
    else:
        rows = [
            (
                row["name"],
                row["cells"],
                f"{row['wall_s']:.3f}s",
                f"{row['cells_per_s']:.1f}",
                f"{row['speedup']:.2f}x" if "speedup" in row else "-",
            )
            for row in suite["benches"]
        ]
        print(format_table(
            ["bench", "cells", "wall", "cells/s", "speedup vs cold"], rows
        ))
        totals = suite["totals"]
        print(
            f"\n{totals['benches']} bench(es) in {totals['wall_s']:.1f}s, "
            f"geomean warm-over-cold speedup "
            f"{totals['speedup_geomean']:.2f}x "
            f"(known benches: {', '.join(bench_names())})"
        )
    # The regression check is a *soft* warn: report, never fail — CI decides
    # what to do with the annotation.
    for warning in warnings:
        print(f"WARNING: bench regression — {warning}", file=sys.stderr)
        if os.environ.get("GITHUB_ACTIONS"):
            print(f"::warning title=bench regression::{warning}")
    # Telemetry must stay cheap: the obs-overhead bench measures the same
    # grid with metrics on and off; soft-warn past the budget, never fail.
    from repro.bench import OBS_OVERHEAD_TOLERANCE

    for row in suite["benches"]:
        pct = row.get("overhead_pct")
        if pct is not None and pct > 100 * OBS_OVERHEAD_TOLERANCE:
            warning = (
                f"{row['name']}: telemetry overhead {pct:.1f}% exceeds "
                f"the {100 * OBS_OVERHEAD_TOLERANCE:.0f}% budget"
            )
            print(f"WARNING: {warning}", file=sys.stderr)
            if os.environ.get("GITHUB_ACTIONS"):
                print(f"::warning title=obs overhead::{warning}")


def cmd_audit_frontier(args) -> None:
    from repro.audit import run_frontier

    specs = _resolve_audits(args)
    store = _open_store(args)
    try:
        with _trace_scope(args), _audit_runner(args) as runner:
            results = [
                run_frontier(
                    spec,
                    ks=(range(1, args.k_max + 1)
                        if args.k_max is not None else None),
                    ts=(range(0, args.t_max + 1)
                        if args.t_max is not None else None),
                    runner=runner,
                    store=store,
                )
                for spec in specs
            ]
    except (ExperimentError, GameError) as exc:
        sys.exit(str(exc))
    finally:
        if store is not None:
            store.close()
    _audit_and_report(args, results)


# -- the experiment service ---------------------------------------------------

def _service_client(args):
    from repro.service import JobClient, Spool, resolve_spool_path

    return JobClient(Spool(resolve_spool_path(getattr(args, "spool", None))))


def _print_job_status(status, as_json: bool) -> None:
    if as_json:
        print(status.to_json(indent=2))
        return
    progress = f"{status.done}/{status.total}" if status.total else "-"
    line = (
        f"{status.id}  {status.kind:8} {status.title:24} "
        f"{status.state:9} {progress}"
    )
    if status.attempts > 1 or status.max_attempts > 1:
        line += f"  attempt {status.attempts}/{status.max_attempts}"
    if status.error:
        line += f"  {status.error}"
    print(line)
    if status.state == "running":
        beat = "-"
        if status.heartbeat_at is not None:
            beat = f"{max(time.time() - status.heartbeat_at, 0.0):.1f}s ago"
        print(f"  phase: {status.phase or '-'}  heartbeat: {beat}")
    if status.finished and status.stats:
        print(f"  stats: {json.dumps(status.stats, sort_keys=True)}")


def cmd_serve(args) -> None:
    from repro.errors import ServiceError, StoreError
    from repro.service import JobServer, Spool, resolve_spool_path
    from repro.store import ResultStore, default_store_path, resolve_store_path

    try:
        spool = Spool(resolve_spool_path(args.spool))
    except OSError as exc:
        sys.exit(f"cannot open spool: {exc}")
    store = None
    if not args.no_store:
        try:
            store = ResultStore(
                resolve_store_path(args.store, default_store_path())
            )
        except StoreError as exc:
            sys.exit(str(exc))
    print(
        f"repro serve: spool {spool.root}, "
        f"store {store.path if store is not None else '(disabled)'}",
        file=sys.stderr,
    )
    metrics_server = None
    if args.metrics_port is not None:
        from repro.errors import ObsError
        from repro.obs import MetricsServer

        metrics_server = MetricsServer(port=args.metrics_port)
        try:
            metrics_server.start()
        except ObsError as exc:
            sys.exit(str(exc))
        print(
            f"repro serve: metrics at {metrics_server.url}",
            file=sys.stderr,
        )
    served = 0
    try:
        with JobServer(
            spool,
            store=store,
            parallel=args.parallel,
            processes=args.processes,
            timeout_s=args.timeout,
            poll_s=args.poll,
            orphan_after_s=args.orphan_after,
        ) as server:
            served = server.serve_forever(
                max_jobs=args.max_jobs, idle_timeout_s=args.idle_timeout
            )
    except KeyboardInterrupt:
        pass
    except ServiceError as exc:
        sys.exit(str(exc))
    finally:
        if metrics_server is not None:
            metrics_server.stop()
        if store is not None:
            store.close()
    print(f"repro serve: executed {served} job(s)", file=sys.stderr)


def cmd_jobs_submit(args) -> None:
    from repro.errors import ServiceError
    from repro.service import JobSpec

    def _load_json_arg(path, what):
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            sys.exit(f"cannot read {what} from {path}: {exc}")
        if not isinstance(data, dict):
            sys.exit(f"{what} file {path} must hold a JSON object")
        return data

    spec_dict = (
        _load_json_arg(args.spec_file, "inline spec")
        if args.spec_file else None
    )
    game_def = (
        _load_json_arg(args.game_def, "GameDef")
        if args.game_def else None
    )
    ks = tuple(range(1, args.k_max + 1)) if args.k_max is not None else None
    ts = tuple(range(0, args.t_max + 1)) if args.t_max is not None else None
    client = _service_client(args)
    try:
        job = JobSpec(
            kind=args.kind,
            name=args.name,
            spec=spec_dict,
            game_def=game_def,
            ks=ks,
            ts=ts,
            priority=args.priority,
            description=args.description,
            max_attempts=args.max_attempts,
        ).validate()
        status = client.submit(job)
        if args.wait:
            status = client.wait(status.id, timeout_s=args.wait_timeout)
    except ServiceError as exc:
        sys.exit(str(exc))
    _print_job_status(status, args.json)


def cmd_jobs_status(args) -> None:
    from repro.errors import ServiceError

    try:
        status = _service_client(args).status(args.job_id)
    except ServiceError as exc:
        sys.exit(str(exc))
    _print_job_status(status, args.json)


def cmd_jobs_list(args) -> None:
    from repro.errors import ServiceError

    try:
        statuses = _service_client(args).list_jobs()
    except ServiceError as exc:
        sys.exit(str(exc))
    if args.json:
        print(json.dumps(
            [s.to_dict() for s in statuses], indent=2, sort_keys=True
        ))
        return
    rows = [
        (
            s.id,
            s.kind,
            s.title,
            s.state,
            s.priority,
            f"{s.done}/{s.total}" if s.total else "-",
            s.error or "",
        )
        for s in statuses
    ]
    print(format_table(
        ["job", "kind", "title", "state", "pri", "progress", "error"], rows
    ))


def cmd_jobs_logs(args) -> None:
    from repro.errors import ServiceError

    try:
        print(_service_client(args).logs(args.job_id), end="")
    except ServiceError as exc:
        sys.exit(str(exc))


def cmd_jobs_cancel(args) -> None:
    from repro.errors import ServiceError

    try:
        status = _service_client(args).cancel(args.job_id)
    except ServiceError as exc:
        sys.exit(str(exc))
    _print_job_status(status, args.json)


def cmd_jobs_wait(args) -> None:
    from repro.errors import ServiceError

    try:
        status = _service_client(args).wait(
            args.job_id, timeout_s=args.wait_timeout
        )
    except ServiceError as exc:
        sys.exit(str(exc))
    _print_job_status(status, args.json)


def cmd_jobs_result(args) -> None:
    from repro.errors import ServiceError

    client = _service_client(args)
    try:
        if args.json:
            # The stored document, verbatim: byte-identical across
            # dedup'd submissions of the same spec.
            print(client.result_text(args.job_id))
            return
        status = client.status(args.job_id)
        result = client.result(args.job_id)
    except ServiceError as exc:
        sys.exit(str(exc))
    if status.kind == "scenario":
        _print_result(result, per_run=False)
    else:
        _print_audit(result, per_candidate=False)


def cmd_jobs_stats(args) -> None:
    """Aggregate the spool: per-state counts, progress, liveness."""
    from repro.errors import ServiceError
    from repro.service.jobs import JOB_STATES

    try:
        statuses = _service_client(args).list_jobs()
    except ServiceError as exc:
        sys.exit(str(exc))
    now = time.time()
    by_state = {state: 0 for state in JOB_STATES}
    for status in statuses:
        by_state[status.state] = by_state.get(status.state, 0) + 1
    running = [
        {
            "id": s.id,
            "title": s.title,
            "phase": s.phase,
            "done": s.done,
            "total": s.total,
            "heartbeat_age_s": (
                round(max(now - s.heartbeat_at, 0.0), 3)
                if s.heartbeat_at is not None else None
            ),
        }
        for s in statuses if s.state == "running"
    ]
    summary = {
        "jobs": len(statuses),
        "by_state": by_state,
        "queue_depth": by_state.get("queued", 0),
        "cells_done": sum(s.done for s in statuses),
        "result_hits": sum(
            1 for s in statuses if s.stats.get("result_hit")
        ),
        "retries": sum(max(s.attempts - 1, 0) for s in statuses),
        "running": running,
    }
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return
    states = "  ".join(
        f"{state}: {by_state[state]}" for state in JOB_STATES
    )
    print(f"{summary['jobs']} job(s)  [{states}]")
    print(
        f"queue depth {summary['queue_depth']}, "
        f"{summary['cells_done']} cell(s) done, "
        f"{summary['result_hits']} full store hit(s), "
        f"{summary['retries']} retried attempt(s)"
    )
    for job in running:
        age = (
            f"{job['heartbeat_age_s']:.1f}s ago"
            if job["heartbeat_age_s"] is not None else "-"
        )
        print(
            f"  running {job['id']} {job['title']}: "
            f"phase {job['phase'] or '-'}, {job['done']}/{job['total']}, "
            f"heartbeat {age}"
        )


def cmd_profile(args) -> None:
    """Run another repro command under cProfile and report the hot spots."""
    from repro.errors import ObsError
    from repro.obs import format_profile, profile_cli

    command = list(args.profile_command)
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        sys.exit(
            "repro profile needs a command to run, e.g. "
            "`repro profile -- sweep chicken-mediator`"
        )
    if command[0] == "profile":
        sys.exit("refusing to profile `repro profile` recursively")
    try:
        summary = profile_cli(command, top=args.top, sort=args.sort)
    except ObsError as exc:
        sys.exit(str(exc))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(format_profile(summary))
    if summary["exit_code"]:
        raise SystemExit(summary["exit_code"])


def cmd_metrics(args) -> None:
    """Scrape a running ``serve --metrics-port`` endpoint."""
    from repro.errors import ObsError
    from repro.obs import scrape

    path = "/metrics.json" if args.json else "/metrics"
    try:
        text = scrape(
            url=args.url, host=args.host, port=args.port, path=path
        )
    except ObsError as exc:
        sys.exit(str(exc))
    print(text, end="" if text.endswith("\n") else "\n")


def cmd_store_path(args) -> None:
    from repro.store import default_store_path, resolve_store_path

    print(resolve_store_path(args.store, default_store_path()))


def _open_inspect_store(args):
    from repro.errors import StoreError
    from repro.store import ResultStore, default_store_path, resolve_store_path

    path = resolve_store_path(getattr(args, "store", None), default_store_path())
    if path != ":memory:" and not os.path.exists(path):
        sys.exit(f"no store at {path}")
    try:
        return ResultStore(path)
    except StoreError as exc:
        sys.exit(str(exc))


def cmd_store_summary(args) -> None:
    store = _open_inspect_store(args)
    try:
        summary = store.summary()
    finally:
        store.close()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return
    print(f"store {summary['path']} (schema v{summary['schema_version']})")
    print(
        f"{summary['runs']} run record(s), "
        f"{summary['results']} result document(s)"
    )
    if summary["by_scenario"]:
        print(format_table(
            ["scenario", "runs"], sorted(summary["by_scenario"].items())
        ))
    if summary["by_kind"]:
        print(format_table(
            ["result kind", "documents"], sorted(summary["by_kind"].items())
        ))


def cmd_store_query(args) -> None:
    store = _open_inspect_store(args)
    try:
        records = store.query_records(
            scenario=args.scenario,
            game=args.game,
            theorem=args.theorem,
            timing=args.timing,
            scheduler=args.scheduler,
            deviation=args.deviation,
            seed_min=args.seed_min,
            seed_max=args.seed_max,
            limit=args.limit,
        )
    finally:
        store.close()
    if args.json:
        print(json.dumps(
            [r.to_dict() for r in records], indent=2, sort_keys=True
        ))
        return
    rows = [
        (
            r.scenario,
            r.game,
            r.timing,
            r.scheduler,
            r.deviation,
            r.seed,
            "ok" if r.ok else (r.error or "?"),
            f"{r.mean_payoff():.3f}" if r.ok else "-",
        )
        for r in records
    ]
    print(format_table(
        ["scenario", "game", "timing", "scheduler", "deviation", "seed",
         "status", "payoff"],
        rows,
    ))
    print(f"\n{len(records)} stored record(s) matched", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Implementing Mediators with Asynchronous Cheap Talk",
    )
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--game", default="consensus")
        p.add_argument("-n", type=int, default=9)
        p.add_argument("-k", type=int, default=1)
        p.add_argument("-t", type=int, default=1)

    def experiment_options(p):
        p.add_argument("scenarios", nargs="+", metavar="scenario",
                       help="registered scenario name(s); see `scenarios`")
        p.add_argument("--parallel", action="store_true",
                       help="fan runs out over a process pool")
        p.add_argument("--processes", type=int, default=None)
        p.add_argument("--timeout", type=float, default=None,
                       help="per-run timeout in seconds")
        p.add_argument("--seeds", type=int, default=None,
                       help="override the scenario's seed count")
        p.add_argument("--timing", default=None, metavar="MODEL",
                       help="override the scenario's timing grid with one "
                            "model: async, lockstep, bounded-<d>[@<gst>]")
        p.add_argument("--game", default=None, metavar="NAME",
                       help="override the scenario's game (registry name, "
                            "family@params like consensus@n5, or "
                            "file:<path> to a GameDef JSON file)")
        p.add_argument("--record-payloads", action="store_true",
                       help="capture full traces (with payloads) into the "
                            "run records")
        p.add_argument("--runtime", default=None,
                       choices=("sim", "net", "net-tcp"),
                       help="override the execution substrate: the "
                            "simulated kernel (sim), the deterministic "
                            "in-memory asyncio substrate (net), or real "
                            "localhost TCP sockets (net-tcp)")
        p.add_argument("--latency", default=None, metavar="MODEL",
                       help="latency model for net runtimes: zero, "
                            "fixed-<d>, lognormal@m<median>s<sigma>, "
                            "gst-<pre>-<post>@<t>")
        p.add_argument("--faults", default=None, metavar="PLANS",
                       help="override the scenario's fault axis with a "
                            "comma-separated list of fault-plan names "
                            "(none, crash@p<pid>s<step>, drop-<p>, "
                            "dup-<p>, partition@{<pids>}t<s>h<h>, "
                            "crash-restart@p<pid>s<s>r<r>, "
                            "corrupt-tcp-<p>, +-joined compounds); "
                            "see `repro faults list`")
        p.add_argument("--seed", type=int, default=None,
                       help="override the scenario's first seed "
                            "(seed_start)")
        p.add_argument("--profile", action="store_true",
                       help="print the prepare/run/payoff timing breakdown "
                            "plus cache and pool statistics per scenario")
        p.add_argument("--json", action="store_true",
                       help="emit ExperimentResult JSON instead of tables")
        p.add_argument("--store", default=None, metavar="PATH",
                       help="answer already-simulated cells from this "
                            "result store and persist fresh ones "
                            "(precedence: --store > REPRO_STORE > off)")
        p.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write a Chrome trace-event file of the run's "
                            "spans (open in chrome://tracing)")

    p_games = sub.add_parser(
        "games", help="the game library (list / show subcommands)"
    )
    p_games.add_argument("-n", type=int, default=9)
    p_games.add_argument("--json", action="store_true",
                         help="emit game metadata as JSON")
    # Bare `repro games` keeps its historical behaviour: list.
    p_games.set_defaults(func=cmd_games_list)
    games_sub = p_games.add_subparsers(dest="games_command")

    # SUPPRESS keeps the parent parser's already-parsed values
    # (`repro games -n 5 list` and `repro games list -n 5` both work).
    p_games_list = games_sub.add_parser(
        "list", help="list registered games and parameterized families"
    )
    p_games_list.add_argument("-n", type=int, default=argparse.SUPPRESS)
    p_games_list.add_argument("--json", action="store_true",
                              default=argparse.SUPPRESS,
                              help="emit game metadata as JSON")
    p_games_list.set_defaults(func=cmd_games_list)

    p_games_show = games_sub.add_parser(
        "show", help="show one game (registry name, family@params, or "
                     "file:<path>)"
    )
    p_games_show.add_argument("name")
    p_games_show.add_argument("-n", type=int, default=argparse.SUPPRESS)
    p_games_show.add_argument("--json", action="store_true",
                              default=argparse.SUPPRESS,
                              help="emit metadata plus the GameDef JSON")
    p_games_show.set_defaults(func=cmd_games_show)

    p_scen = sub.add_parser("scenarios", help="list the scenario registry")
    p_scen.add_argument("--json", action="store_true",
                        help="emit the registry as ScenarioSpec JSON")
    p_scen.set_defaults(func=cmd_scenarios)

    p_run = sub.add_parser("run", help="run one scenario with per-run rows")
    experiment_options(p_run)
    p_run.set_defaults(func=cmd_run)

    p_sweep = sub.add_parser("sweep", help="run scenario grids (aggregates)")
    experiment_options(p_sweep)
    p_sweep.add_argument("--csv", default=None, metavar="PATH",
                         help="also write per-cell summary rows as CSV")
    p_sweep.set_defaults(func=cmd_sweep)

    p_audit = sub.add_parser(
        "audit", help="search for profitable deviations (robustness audits)"
    )
    audit_sub = p_audit.add_subparsers(dest="audit_command", required=True)

    def audit_options(p):
        p.add_argument("audits", nargs="+", metavar="audit",
                       help="registered audit name(s); see `audit list`")
        p.add_argument("--parallel", action="store_true",
                       help="fan candidate evaluation out over a process pool")
        p.add_argument("--processes", type=int, default=None)
        p.add_argument("--timeout", type=float, default=None,
                       help="per-run timeout in seconds")
        p.add_argument("--seeds", type=int, default=None,
                       help="override the audit's seed count")
        p.add_argument("--budget", type=int, default=None,
                       help="override the audit's evaluation budget")
        p.add_argument("--method", default=None,
                       choices=("auto", "exhaustive", "random", "greedy"),
                       help="override the audit's search method")
        p.add_argument("--game", default=None, metavar="NAME",
                       help="override the audited game (family@params or "
                            "file:<path>)")
        p.add_argument("--json", action="store_true",
                       help="emit AuditResult JSON instead of tables")
        p.add_argument("--csv", default=None, metavar="PATH",
                       help="also write per-cell frontier rows as CSV")
        p.add_argument("--store", default=None, metavar="PATH",
                       help="dedup identical audits through this result "
                            "store (precedence: --store > REPRO_STORE > off)")
        p.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write a Chrome trace-event file of the "
                            "audit's spans (open in chrome://tracing)")

    p_audit_list = audit_sub.add_parser("list", help="list registered audits")
    p_audit_list.add_argument("--json", action="store_true",
                              help="emit the registry as AuditSpec JSON")
    p_audit_list.set_defaults(func=cmd_audit_list)

    p_audit_run = audit_sub.add_parser(
        "run", help="audit one (k,t) cell with top-deviation rows"
    )
    audit_options(p_audit_run)
    p_audit_run.set_defaults(func=cmd_audit_run)

    p_audit_fuzz = audit_sub.add_parser(
        "fuzz", help="audit seeded random games nobody hand-wrote"
    )
    p_audit_fuzz.add_argument("--count", type=int, default=4,
                              help="how many generated games to audit")
    p_audit_fuzz.add_argument("--seed", type=int, default=0,
                              help="first generation seed (games use "
                                   "seed..seed+count-1)")
    p_audit_fuzz.add_argument("-n", type=int, default=4,
                              help="players per generated game")
    p_audit_fuzz.add_argument("--actions", type=int, default=2,
                              help="actions per player")
    p_audit_fuzz.add_argument("--types", type=int, default=1,
                              help="type values per player (1: complete "
                                   "information)")
    p_audit_fuzz.add_argument("-k", type=int, default=1)
    p_audit_fuzz.add_argument("-t", type=int, default=0)
    p_audit_fuzz.add_argument("--games", nargs="*", default=None,
                              metavar="NAME",
                              help="fuzz exactly these game names instead "
                                   "of generating them")
    p_audit_fuzz.add_argument("--parallel", action="store_true",
                              help="fan candidate evaluation out over a "
                                   "process pool")
    p_audit_fuzz.add_argument("--processes", type=int, default=None)
    p_audit_fuzz.add_argument("--timeout", type=float, default=None,
                              help="per-run timeout in seconds")
    p_audit_fuzz.add_argument("--seeds", type=int, default=None,
                              help="run seeds per evaluation (default 3)")
    p_audit_fuzz.add_argument("--budget", type=int, default=None,
                              help="evaluation budget per game (default 32)")
    p_audit_fuzz.add_argument("--method", default=None,
                              choices=("auto", "exhaustive", "random",
                                       "greedy"),
                              help="search method (default auto)")
    p_audit_fuzz.add_argument("--json", action="store_true",
                              help="emit the AuditResult list as JSON")
    p_audit_fuzz.add_argument("--csv", default=None, metavar="PATH",
                              help="also write per-game frontier rows as CSV")
    p_audit_fuzz.add_argument("--store", default=None, metavar="PATH",
                              help="dedup identical fuzz targets through "
                                   "this result store")
    p_audit_fuzz.set_defaults(func=cmd_audit_fuzz)

    p_audit_frontier = audit_sub.add_parser(
        "frontier", help="sweep the (k,t,ε) robustness frontier"
    )
    audit_options(p_audit_frontier)
    p_audit_frontier.add_argument("--k-max", type=int, default=None,
                                  help="sweep k from 1 to K (default: the "
                                       "audit's k)")
    p_audit_frontier.add_argument("--t-max", type=int, default=None,
                                  help="sweep t from 0 to T (default: the "
                                       "audit's t)")
    p_audit_frontier.set_defaults(func=cmd_audit_frontier)

    p_bench = sub.add_parser(
        "bench", help="run the unified benchmark suite (bench_suite.json)"
    )
    p_bench.add_argument("benches", nargs="*", metavar="bench",
                         help="bench name(s) to run (default: all)")
    p_bench.add_argument("--quick", action="store_true", default=True,
                         help="quick mode: small grids (the default)")
    p_bench.add_argument("--full", action="store_true",
                         help="full mode: the larger measurement grids")
    p_bench.add_argument("--json", action="store_true",
                         help="print the bench_suite JSON document")
    p_bench.add_argument("--out", default=None, metavar="PATH",
                         help="also write the suite JSON to PATH")
    p_bench.add_argument("--baseline", default=None, metavar="PATH",
                         help="compare cells/sec against a committed "
                              "baseline suite and soft-warn on >30%% "
                              "regressions (never fails)")
    p_bench.set_defaults(func=cmd_bench)

    p_lint = sub.add_parser(
        "lint",
        help="AST determinism & protocol-contract linter (the CI gate)",
    )
    p_lint.add_argument("paths", nargs="*", metavar="path",
                        help="files/directories to lint (default: src)")
    p_lint.add_argument("--json", action="store_true",
                        help="emit the LintReport JSON instead of text")
    p_lint.add_argument("--rules", action="append", default=None,
                        metavar="RULE[,RULE]",
                        help="run only these rules (repeatable, "
                             "comma-separable; see --list-rules)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="list registered rules with descriptions")
    p_lint.add_argument("--diff", default=None, metavar="REF",
                        help="report only findings on lines changed since "
                             "the git ref (fast incremental mode)")
    p_lint.add_argument("--out", default=None, metavar="PATH",
                        help="also write the LintReport JSON to PATH")
    p_lint.add_argument("--show-suppressed", action="store_true",
                        help="include suppressed findings in text output")
    p_lint.set_defaults(func=cmd_lint)

    p_faults = sub.add_parser(
        "faults",
        help="fault-injection plans and the masking oracle",
    )
    p_faults.set_defaults(func=cmd_faults_list, json=False)
    faults_sub = p_faults.add_subparsers(dest="faults_command")

    p_faults_list = faults_sub.add_parser(
        "list",
        help="registered fault plans, name grammar, and oracle scenarios",
    )
    p_faults_list.add_argument("--json", action="store_true",
                               help="emit the listing as JSON")
    p_faults_list.set_defaults(func=cmd_faults_list)

    p_faults_check = faults_sub.add_parser(
        "check",
        help="run the masking oracle: within-budget plans must leave "
             "honest records identical, over-budget plans must break",
    )
    p_faults_check.add_argument(
        "scenarios", nargs="*", metavar="scenario",
        help="faultcheck scenarios to run (default: all registered)")
    p_faults_check.set_defaults(func=cmd_faults_check)

    p_demo = sub.add_parser("demo", help="mediator vs cheap talk")
    common(p_demo)
    p_demo.set_defaults(func=cmd_demo)

    p_check = sub.add_parser("check", help="exact ideal robustness check")
    common(p_check)
    p_check.set_defaults(func=cmd_check)

    p_compile = sub.add_parser("compile", help="compile via a theorem and run")
    common(p_compile)
    p_compile.add_argument("--theorem", default="4.1", choices=sorted(THEOREMS))
    p_compile.add_argument("--epsilon", type=float, default=0.01)
    p_compile.set_defaults(func=cmd_compile)

    p_attack = sub.add_parser("attack", help="Section 6.4 leak attack")
    p_attack.add_argument("-n", type=int, default=7)
    p_attack.add_argument("--runs", type=int, default=40)
    p_attack.set_defaults(func=cmd_attack)

    def spool_option(p):
        p.add_argument("--spool", default=None, metavar="PATH",
                       help="job spool directory (precedence: --spool > "
                            "REPRO_SPOOL > ~/.repro-store/spool)")

    p_serve = sub.add_parser(
        "serve", help="experiment service daemon over the job spool"
    )
    spool_option(p_serve)
    p_serve.add_argument("--store", default=None, metavar="PATH",
                         help="result store path (precedence: --store > "
                              "REPRO_STORE > ~/.repro-store/store.sqlite)")
    p_serve.add_argument("--no-store", action="store_true",
                         help="serve without a result store (every job "
                              "simulates from scratch)")
    p_serve.add_argument("--parallel", action="store_true",
                         help="run job grids over the persistent worker pool")
    p_serve.add_argument("--processes", type=int, default=None)
    p_serve.add_argument("--timeout", type=float, default=None,
                         help="per-run timeout in seconds")
    p_serve.add_argument("--max-jobs", type=int, default=None, metavar="N",
                         help="exit after executing N jobs (CI smoke)")
    p_serve.add_argument("--idle-timeout", type=float, default=None,
                         metavar="S",
                         help="exit after S seconds with an empty queue")
    p_serve.add_argument("--poll", type=float, default=0.2, metavar="S",
                         help="queue poll interval in seconds")
    p_serve.add_argument("--orphan-after", type=float, default=10.0,
                         metavar="S",
                         help="startup scan: requeue claimed jobs whose "
                              "heartbeat is at least S seconds stale "
                              "(a dead server's orphans; default 10)")
    p_serve.add_argument("--metrics-port", type=int, default=None,
                         metavar="PORT",
                         help="serve the live telemetry registry over HTTP "
                              "on 127.0.0.1:PORT (/metrics Prometheus "
                              "text, /metrics.json snapshot, /healthz; "
                              "0 picks a free port)")
    p_serve.set_defaults(func=cmd_serve)

    p_jobs = sub.add_parser(
        "jobs", help="service client: submit and follow spool jobs"
    )
    jobs_sub = p_jobs.add_subparsers(dest="jobs_command", required=True)

    def jobs_common(p):
        spool_option(p)
        p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON")

    p_jobs_submit = jobs_sub.add_parser(
        "submit", help="submit a scenario/audit/frontier job"
    )
    p_jobs_submit.add_argument("name", nargs="?", default=None,
                               help="registered scenario or audit name "
                                    "(omit when using --spec-file)")
    p_jobs_submit.add_argument("--kind", default="scenario",
                               choices=("scenario", "audit", "frontier"))
    p_jobs_submit.add_argument("--spec-file", default=None, metavar="PATH",
                               help="inline ScenarioSpec/AuditSpec JSON "
                                    "instead of a registry name")
    p_jobs_submit.add_argument("--game-def", default=None, metavar="PATH",
                               help="inline GameDef JSON; the server stamps "
                                    "it into the spec as a file: game")
    p_jobs_submit.add_argument("--priority", type=int, default=10,
                               help="0..99; higher runs sooner (default 10)")
    p_jobs_submit.add_argument("--description", default="")
    p_jobs_submit.add_argument("--max-attempts", type=int, default=3,
                               metavar="N",
                               help="execution budget: failed or orphaned "
                                    "attempts are requeued with seeded "
                                    "backoff until N is spent (default 3)")
    p_jobs_submit.add_argument("--k-max", type=int, default=None,
                               help="frontier jobs: sweep k from 1 to K")
    p_jobs_submit.add_argument("--t-max", type=int, default=None,
                               help="frontier jobs: sweep t from 0 to T")
    p_jobs_submit.add_argument("--wait", action="store_true",
                               help="block until the job finishes")
    p_jobs_submit.add_argument("--wait-timeout", type=float, default=300.0,
                               metavar="S",
                               help="--wait deadline in seconds (default 300)")
    jobs_common(p_jobs_submit)
    p_jobs_submit.set_defaults(func=cmd_jobs_submit)

    p_jobs_status = jobs_sub.add_parser("status", help="one job's status")
    p_jobs_status.add_argument("job_id")
    jobs_common(p_jobs_status)
    p_jobs_status.set_defaults(func=cmd_jobs_status)

    p_jobs_list = jobs_sub.add_parser("list", help="every job in the spool")
    jobs_common(p_jobs_list)
    p_jobs_list.set_defaults(func=cmd_jobs_list)

    p_jobs_logs = jobs_sub.add_parser("logs", help="one job's log")
    p_jobs_logs.add_argument("job_id")
    spool_option(p_jobs_logs)
    p_jobs_logs.set_defaults(func=cmd_jobs_logs)

    p_jobs_cancel = jobs_sub.add_parser(
        "cancel", help="cancel a queued or running job"
    )
    p_jobs_cancel.add_argument("job_id")
    jobs_common(p_jobs_cancel)
    p_jobs_cancel.set_defaults(func=cmd_jobs_cancel)

    p_jobs_wait = jobs_sub.add_parser(
        "wait", help="block until a job reaches a terminal state"
    )
    p_jobs_wait.add_argument("job_id")
    p_jobs_wait.add_argument("--wait-timeout", type=float, default=300.0,
                             metavar="S",
                             help="deadline in seconds (default 300)")
    jobs_common(p_jobs_wait)
    p_jobs_wait.set_defaults(func=cmd_jobs_wait)

    p_jobs_result = jobs_sub.add_parser(
        "result", help="a finished job's result (--json: verbatim document)"
    )
    p_jobs_result.add_argument("job_id")
    jobs_common(p_jobs_result)
    p_jobs_result.set_defaults(func=cmd_jobs_result)

    p_jobs_stats = jobs_sub.add_parser(
        "stats", help="aggregate the spool: per-state counts and liveness"
    )
    jobs_common(p_jobs_stats)
    p_jobs_stats.set_defaults(func=cmd_jobs_stats)

    p_profile = sub.add_parser(
        "profile", help="run another repro command under cProfile"
    )
    p_profile.add_argument("--top", type=int, default=20, metavar="N",
                           help="how many functions to report (default 20)")
    p_profile.add_argument("--sort", default="cumulative",
                           choices=("cumulative", "tottime", "calls"),
                           help="pstats sort order (default cumulative)")
    p_profile.add_argument("--json", action="store_true",
                           help="emit the profile summary as JSON")
    p_profile.add_argument("--out", default=None, metavar="PATH",
                           help="also write the summary JSON to PATH")
    p_profile.add_argument("profile_command", nargs=argparse.REMAINDER,
                           metavar="command",
                           help="the repro command to profile, e.g. "
                                "`-- sweep chicken-mediator`")
    p_profile.set_defaults(func=cmd_profile)

    p_metrics = sub.add_parser(
        "metrics", help="scrape a running serve --metrics-port endpoint"
    )
    p_metrics.add_argument("--url", default=None,
                           help="full endpoint URL (overrides host/port)")
    p_metrics.add_argument("--host", default="127.0.0.1")
    p_metrics.add_argument("--port", type=int, default=9464,
                           help="metrics port (default 9464)")
    p_metrics.add_argument("--json", action="store_true",
                           help="fetch the /metrics.json snapshot instead "
                                "of Prometheus text")
    p_metrics.set_defaults(func=cmd_metrics)

    p_store = sub.add_parser(
        "store", help="inspect a result store (summary / query / path)"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    def store_common(p):
        p.add_argument("--store", default=None, metavar="PATH",
                       help="store path (precedence: --store > REPRO_STORE "
                            "> ~/.repro-store/store.sqlite)")
        p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON")

    p_store_summary = store_sub.add_parser(
        "summary", help="counts per scenario and result kind"
    )
    store_common(p_store_summary)
    p_store_summary.set_defaults(func=cmd_store_summary)

    p_store_query = store_sub.add_parser(
        "query", help="filter stored run records"
    )
    store_common(p_store_query)
    p_store_query.add_argument("--scenario", default=None)
    p_store_query.add_argument("--game", default=None)
    p_store_query.add_argument("--theorem", default=None)
    p_store_query.add_argument("--timing", default=None)
    p_store_query.add_argument("--scheduler", default=None)
    p_store_query.add_argument("--deviation", default=None)
    p_store_query.add_argument("--seed-min", type=int, default=None)
    p_store_query.add_argument("--seed-max", type=int, default=None)
    p_store_query.add_argument("--limit", type=int, default=None)
    p_store_query.set_defaults(func=cmd_store_query)

    p_store_path = store_sub.add_parser(
        "path", help="print the resolved store path"
    )
    p_store_path.add_argument("--store", default=None, metavar="PATH")
    p_store_path.set_defaults(func=cmd_store_path)

    return parser


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    args.func(args)


if __name__ == "__main__":  # pragma: no cover
    main()
