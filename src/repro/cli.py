"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — run the quickstart pipeline (mediator vs cheap talk) on a
  chosen library game;
* ``games`` — list the game library with its certified properties;
* ``check`` — run the exact ideal-mediator robustness checker on a game;
* ``compile`` — compile a game through one of the four theorems and run it;
* ``attack`` — mount the Section 6.4 leak attack (leaky vs minimal).
"""

from __future__ import annotations

import argparse
import sys
from statistics import mean

from repro.analysis.reporting import format_run, format_solution_report, format_table
from repro.games.library import (
    BOT,
    byzantine_agreement_game,
    chicken_game,
    consensus_game,
    free_rider_game,
    section64_game,
    shamir_secret_game,
)
from repro.games.library_extra import (
    battle_of_sexes,
    minority_game,
    public_goods_game,
    volunteer_game,
)

GAMES = {
    "consensus": lambda n: consensus_game(n),
    "byz-agreement": lambda n: byzantine_agreement_game(n),
    "section64": lambda n: section64_game(n, k=max(1, (n - 1) // 3)),
    "chicken": lambda n: chicken_game(),
    "free-rider": lambda n: free_rider_game(n),
    "shamir-secret": lambda n: shamir_secret_game(),
    "volunteer": lambda n: volunteer_game(n),
    "battle-of-sexes": lambda n: battle_of_sexes(),
    "public-goods": lambda n: public_goods_game(
        max(n, 4), max(2, n // 3), pot=1.5 * max(n, 4), cost=1.0
    ),
    "minority": lambda n: minority_game(n if n % 2 else n + 1),
}

THEOREMS = {"4.1", "4.2", "4.4", "4.5", "r1"}


def _spec(args):
    maker = GAMES.get(args.game)
    if maker is None:
        sys.exit(f"unknown game {args.game!r}; try: {', '.join(sorted(GAMES))}")
    return maker(args.n)


def cmd_games(args) -> None:
    rows = []
    for name, maker in sorted(GAMES.items()):
        try:
            spec = maker(args.n)
        except Exception as exc:  # some games pin their own n
            rows.append((name, "-", f"(n={args.n} unsupported: {exc})"))
            continue
        rows.append((name, spec.game.n, spec.notes))
    print(format_table(["game", "n", "notes"], rows))


def cmd_demo(args) -> None:
    from repro.cheaptalk import compile_theorem41
    from repro.mediator import MediatorGame
    from repro.sim import scheduler_zoo

    spec = _spec(args)
    types = spec.game.type_space.profiles()[0]
    mediator = MediatorGame(spec, args.k, args.t)
    run = mediator.run(types, scheduler_zoo(seed=1)[0], seed=args.seed)
    print("mediator game: ", format_run(run, spec.game.utility))
    protocol = compile_theorem41(spec, args.k, args.t)
    print("compiled:      ", protocol.describe())
    for scheduler in scheduler_zoo(seed=2, parties=range(spec.game.n))[:3]:
        run = protocol.game.run(types, scheduler, seed=args.seed)
        print(f"cheap talk [{scheduler.name}]:", format_run(run, spec.game.utility))


def cmd_check(args) -> None:
    from repro.mediator import check_ideal_mediator_robustness

    spec = _spec(args)
    report = check_ideal_mediator_robustness(spec, args.k, args.t)
    print(format_solution_report(report))


def cmd_compile(args) -> None:
    from repro.cheaptalk import (
        compile_theorem41,
        compile_theorem42,
        compile_theorem44,
        compile_theorem45,
    )
    from repro.cheaptalk.sync import compile_r1
    from repro.sim import FifoScheduler

    spec = _spec(args)
    types = spec.game.type_space.profiles()[0]
    if args.theorem == "4.1":
        proto = compile_theorem41(spec, args.k, args.t)
    elif args.theorem == "4.2":
        proto = compile_theorem42(spec, args.k, args.t, epsilon=args.epsilon)
    elif args.theorem == "4.4":
        proto = compile_theorem44(spec, args.k, args.t)
    elif args.theorem == "4.5":
        proto = compile_theorem45(spec, args.k, args.t, epsilon=args.epsilon)
    elif args.theorem == "r1":
        sync = compile_r1(spec, args.k, args.t)
        actions, result = sync.run(types, seed=args.seed)
        print(
            f"R1 synchronous baseline: actions={actions} "
            f"rounds={result.rounds} messages={result.messages_sent}"
        )
        return
    else:  # pragma: no cover
        sys.exit(f"unknown theorem {args.theorem!r}")
    print(proto.describe())
    run = proto.game.run(types, FifoScheduler(), seed=args.seed)
    print(format_run(run, spec.game.utility))


def cmd_attack(args) -> None:
    from repro.analysis.section64 import run_attack
    from repro.mediator import (
        LeakySection64Mediator,
        MediatorGame,
        minimally_informative,
    )

    n, k = max(args.n, 7), 2
    spec = section64_game(n, k=k)
    leaky = MediatorGame(
        spec, k, 0, approach="ah", will=lambda pid, ty: BOT,
        mediator_factory=lambda: LeakySection64Mediator(spec, k, 0),
    )
    attacked = run_attack(leaky, (0, 1), runs=args.runs, seed=args.seed)
    minimal = minimally_informative(leaky, rounds=2)
    defended = run_attack(minimal, (0, 1), runs=args.runs, seed=args.seed)
    print(format_table(
        ["mediator", "coalition outcomes", "mean payoff"],
        [
            ("leaky (a+b·i)", sorted(set(attacked)), f"{mean(attacked):.3f}"),
            ("minimal f(σd)", sorted(set(defended)), f"{mean(defended):.3f}"),
        ],
    ))
    print("\nequilibrium payoff is 1.5; leaky converts 1.0-runs into 1.1.")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Implementing Mediators with Asynchronous Cheap Talk",
    )
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--game", default="consensus")
        p.add_argument("-n", type=int, default=9)
        p.add_argument("-k", type=int, default=1)
        p.add_argument("-t", type=int, default=1)

    p_games = sub.add_parser("games", help="list the game library")
    p_games.add_argument("-n", type=int, default=9)
    p_games.set_defaults(func=cmd_games)

    p_demo = sub.add_parser("demo", help="mediator vs cheap talk")
    common(p_demo)
    p_demo.set_defaults(func=cmd_demo)

    p_check = sub.add_parser("check", help="exact ideal robustness check")
    common(p_check)
    p_check.set_defaults(func=cmd_check)

    p_compile = sub.add_parser("compile", help="compile via a theorem and run")
    common(p_compile)
    p_compile.add_argument("--theorem", default="4.1", choices=sorted(THEOREMS))
    p_compile.add_argument("--epsilon", type=float, default=0.01)
    p_compile.set_defaults(func=cmd_compile)

    p_attack = sub.add_parser("attack", help="Section 6.4 leak attack")
    p_attack.add_argument("-n", type=int, default=7)
    p_attack.add_argument("--runs", type=int, default=40)
    p_attack.set_defaults(func=cmd_attack)

    return parser


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    args.func(args)


if __name__ == "__main__":  # pragma: no cover
    main()
