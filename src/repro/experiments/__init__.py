"""The declarative experiment API — the one public way to run anything.

Describe *what* to run as a frozen :class:`ScenarioSpec` (game, theorem,
``(k, t)``, schedulers, deviation profiles, seed range); hand it — or the
name of a registered canonical scenario — to an :class:`ExperimentRunner`;
get back an :class:`ExperimentResult` of structured :class:`RunRecord`\\ s
with aggregation and lossless JSON round-trip. The runner fans the grid
out over ``multiprocessing`` when asked and falls back to (identical)
serial execution otherwise.

    >>> from repro.experiments import run_scenario
    >>> result = run_scenario("thm41-honest", parallel=True)
    >>> result.agreement_rate()
    1.0
"""

from repro.experiments.spec import (
    MEDIATOR_VARIANTS,
    THEOREMS,
    ScenarioSpec,
)
from repro.experiments.cache import (
    DEFAULT_CACHE_SIZE,
    ArtifactCache,
    CellKey,
    PreparedCell,
    prepare_cell,
)
from repro.experiments.results import ExperimentResult, RunRecord
from repro.experiments.registry import (
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)
from repro.experiments.runner import (
    ExperimentRunner,
    RunTask,
    execute_task,
    expand_grid,
    run_scenario,
)
from repro.experiments.schedulers import (
    register_scheduler,
    scheduler_from_name,
    scheduler_names,
)
from repro.experiments.deviations import (
    MODE_FOR_THEOREM,
    deviation_modes,
    deviation_names,
    deviation_profile,
    deviations_for_mode,
    register_deviation,
)

__all__ = [
    "THEOREMS",
    "MEDIATOR_VARIANTS",
    "ScenarioSpec",
    "RunRecord",
    "ExperimentResult",
    "ExperimentRunner",
    "RunTask",
    "ArtifactCache",
    "CellKey",
    "PreparedCell",
    "prepare_cell",
    "DEFAULT_CACHE_SIZE",
    "expand_grid",
    "execute_task",
    "run_scenario",
    "get_scenario",
    "iter_scenarios",
    "register_scenario",
    "scenario_names",
    "scheduler_from_name",
    "scheduler_names",
    "register_scheduler",
    "MODE_FOR_THEOREM",
    "deviation_modes",
    "deviation_names",
    "deviation_profile",
    "deviations_for_mode",
    "register_deviation",
]
