"""Declarative experiment scenarios.

A :class:`ScenarioSpec` is a frozen, JSON-round-trippable description of a
grid of runs: which game, through which theorem (or directly against the
mediator / the raw game matrix), at which ``(k, t)``, under which timing
models and environments and deviation profiles, over which seed range.
Specs carry no live objects — only names resolved at run time through the
game, timing, scheduler, deviation, and scenario registries — so they
pickle cheaply across worker processes and serialize losslessly to JSON.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import (
    ExperimentError,
    FaultError,
    NetError,
    SimulationError,
    SpecError,
)
from repro.faults.plan import fault_from_name
from repro.net.latency import latency_from_name
from repro.sim.timing import timing_from_name

THEOREMS = ("4.1", "4.2", "4.4", "4.5", "r1", "mediator", "raw-game")
"""Legal values of :attr:`ScenarioSpec.theorem`.

The four numbered entries are the paper's cheap-talk compilers; ``r1`` is
the synchronous baseline; ``mediator`` runs the ideal mediator game itself;
``raw-game`` evaluates the underlying game matrix on explicit action
profiles without any simulation.
"""

RUNTIMES = ("sim", "net", "net-tcp")
"""Legal values of :attr:`ScenarioSpec.runtime`.

``sim`` is the step-scheduled kernel (:mod:`repro.sim`); ``net`` runs the
same processes over the deterministic in-memory asyncio substrate
(:mod:`repro.net`) under the spec's ``latency`` model; ``net-tcp`` uses
real localhost TCP sockets (wall-clock, not byte-deterministic).
"""

MEDIATOR_VARIANTS = ("standard", "leaky-sec64", "minimal-sec64")
"""Mediator implementations for ``theorem="mediator"`` runs.

``leaky-sec64`` is the paper's Section 6.4 counterexample mediator (leaks
``a + b·i``); ``minimal-sec64`` is its minimally-informative transform.
"""


def _tuplize(value: Any) -> Any:
    """Recursively convert lists/tuples to tuples (JSON gives us lists)."""
    if isinstance(value, (list, tuple)):
        return tuple(_tuplize(v) for v in value)
    return value


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative experiment: a named grid of runs.

    The grid is the cross product ``games × timings × schedulers ×
    deviations × faults × seeds`` — except for ``r1`` (synchronous by construction:
    no scheduler or timing grid, honest only; ``games × seeds``) and
    ``raw-game`` (one evaluation per entry of ``action_profiles``). Timing
    names are resolved through :func:`repro.sim.timing.timing_from_name`
    (``"async"``, ``"lockstep"``, ``"bounded-<d>[@<gst>]"``); game names
    through :func:`repro.games.registry.make_game` (registry names,
    ``family@params`` instances, ``file:<path>`` GameDef files).
    """

    name: str
    game: str
    n: int
    theorem: str = "4.1"
    k: int = 1
    t: int = 1
    epsilon: Optional[float] = None
    games: tuple[str, ...] = ()
    """Optional game axis: ``family@params`` (or registry / ``file:``)
    names the grid crosses with the other axes, so one sweep can scan
    game size the way it scans timing models. Empty means the single
    ``game``. Parameters in an entry win over ``n`` (``consensus@n5``
    is 5-player regardless), exactly as in
    :func:`repro.games.registry.make_game`."""

    timings: tuple[str, ...] = ("async",)
    schedulers: tuple[str, ...] = ("fifo",)
    deviations: tuple[str, ...] = ("honest",)
    seed_start: int = 0
    seed_count: int = 1
    type_profile: Optional[tuple] = None
    action_profiles: tuple[tuple, ...] = ()
    mediator_variant: str = "standard"
    runtime: str = "sim"
    """Which substrate executes the grid: the step-scheduled kernel
    (``sim``), the deterministic in-memory asyncio substrate (``net``),
    or real localhost TCP sockets (``net-tcp``). See :data:`RUNTIMES`."""

    latency: str = "zero"
    """Latency model for net runtimes, by
    :func:`repro.net.latency.latency_from_name` name (``zero``,
    ``fixed-<d>``, ``lognormal@m<median>s<sigma>``,
    ``gst-<pre>-<post>@<t>``). Must stay ``zero`` for ``runtime="sim"`` —
    the kernel models delay through ``timings`` instead."""

    faults: tuple[str, ...] = ("none",)
    """Fault-plan axis, by :func:`repro.faults.plan.fault_from_name` name
    (``none``, ``crash@p<pid>s<step>``, ``drop-<p>``, ``dup-<p>``,
    ``partition@{<pids>}t<start>h<heal>``,
    ``crash-restart@p<pid>s<step>r<restart>``, ``corrupt-tcp-<p>``, and
    ``+``-joined compounds). The grid crosses it with the other axes, so
    one scenario can sweep a protocol across fault intensities the way it
    sweeps schedulers."""

    step_limit: Optional[int] = None
    timeout_s: Optional[float] = None
    record_payloads: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "games", _tuplize(self.games))
        object.__setattr__(self, "timings", _tuplize(self.timings))
        object.__setattr__(self, "schedulers", _tuplize(self.schedulers))
        object.__setattr__(self, "deviations", _tuplize(self.deviations))
        object.__setattr__(self, "faults", _tuplize(self.faults))
        object.__setattr__(self, "type_profile", _tuplize(self.type_profile))
        object.__setattr__(self, "action_profiles", _tuplize(self.action_profiles))
        for timing in self.timings:
            try:
                timing_from_name(timing)
            except SimulationError as exc:
                raise ExperimentError(str(exc)) from None
        if self.theorem not in THEOREMS:
            raise ExperimentError(
                f"unknown theorem {self.theorem!r}; one of: {', '.join(THEOREMS)}"
            )
        if self.mediator_variant not in MEDIATOR_VARIANTS:
            raise ExperimentError(
                f"unknown mediator variant {self.mediator_variant!r}; "
                f"one of: {', '.join(MEDIATOR_VARIANTS)}"
            )
        if self.runtime not in RUNTIMES:
            raise ExperimentError(
                f"unknown runtime {self.runtime!r}; one of: "
                f"{', '.join(RUNTIMES)}"
            )
        try:
            latency_from_name(self.latency)
        except NetError as exc:
            raise ExperimentError(str(exc)) from None
        if self.runtime == "sim":
            if self.latency != "zero":
                raise ExperimentError(
                    "latency models apply to net runtimes; the simulated "
                    "kernel models delay through the timings axis"
                )
        else:
            if self.theorem in ("r1", "raw-game"):
                raise ExperimentError(
                    f"theorem {self.theorem!r} has no asynchronous message "
                    f"schedule; it only runs on the simulated kernel"
                )
            if self.timings != ("async",):
                raise ExperimentError(
                    "timing models belong to the simulated kernel; net "
                    "runs take a latency model instead"
                )
        for fault in self.faults:
            try:
                fault_from_name(fault)
            except FaultError as exc:
                raise ExperimentError(str(exc)) from None
        if self.faults != ("none",) and self.theorem in ("r1", "raw-game"):
            raise ExperimentError(
                f"theorem {self.theorem!r} has no asynchronous message "
                f"schedule to inject faults into; drop the faults axis"
            )
        if self.seed_count < 1:
            raise ExperimentError("seed_count must be >= 1")
        if not self.timings or not self.schedulers or not self.deviations:
            raise ExperimentError(
                "timings, schedulers and deviations must be non-empty"
            )
        if not self.faults:
            raise ExperimentError(
                "faults must be non-empty (use ('none',) for fault-free)"
            )
        if self.theorem == "raw-game" and not self.action_profiles:
            raise ExperimentError("raw-game scenarios need action_profiles")
        if self.games:
            if self.theorem == "raw-game":
                raise ExperimentError(
                    "raw-game scenarios evaluate one explicit payoff "
                    "matrix; a games axis does not apply"
                )
            from repro.errors import GameError
            from repro.games.families import is_family_name, parse_game_name

            for game in self.games:
                if not isinstance(game, str) or not game:
                    raise ExperimentError(
                        f"games axis entries must be names, got {game!r}"
                    )
                if is_family_name(game):
                    try:
                        parse_game_name(game)
                    except GameError as exc:
                        raise ExperimentError(str(exc)) from None

    # -- grid geometry -------------------------------------------------------

    @property
    def seeds(self) -> tuple[int, ...]:
        return tuple(range(self.seed_start, self.seed_start + self.seed_count))

    @property
    def game_axis(self) -> tuple[str, ...]:
        """The effective game axis: ``games`` or the single ``game``."""
        return self.games or (self.game,)

    def grid_size(self) -> int:
        if self.theorem == "raw-game":
            return len(self.action_profiles)
        if self.theorem == "r1":
            return len(self.game_axis) * self.seed_count
        return (
            len(self.game_axis)
            * len(self.timings)
            * len(self.schedulers)
            * len(self.deviations)
            * len(self.faults)
            * self.seed_count
        )

    def replace(self, **changes) -> "ScenarioSpec":
        """A copy with ``changes`` applied (convenience for overrides)."""
        return dataclasses.replace(self, **changes)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    DERIVED_FIELDS = ("mode", "supported_deviations")
    """Read-only keys ``repro scenarios --json`` adds alongside the spec
    fields (run mode and the deviation profiles available to it); dropped
    on parse so the emitted JSON still round-trips through ``from_dict``."""

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        data = {k: v for k, v in data.items() if k not in cls.DERIVED_FIELDS}
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SpecError(
                f"unknown ScenarioSpec field(s): {', '.join(sorted(unknown))}"
                f"; accepted fields: {', '.join(sorted(known))}"
            )
        return cls(**{key: _tuplize(value) for key, value in data.items()})

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))
