"""Named deviation profiles for declarative scenarios.

A *deviation profile* maps a name (carried by the JSON spec) to the
concrete per-player deviation factories of
:mod:`repro.analysis.deviations`. Factories have different arities in the
two run modes — mediator-game deviations take ``(pid, own_type)``,
cheap-talk deviations take ``(pid, own_type, config)`` — so every profile
declares which modes it supports and the runner resolves the mode from the
scenario's theorem. Resolved profiles are wrapped in
:class:`~repro.analysis.deviations.UniformDeviation`, giving every factory
one call shape regardless of its native arity.

Besides registered names, ``audit:{…}`` names are accepted: they carry a
serialized :class:`~repro.audit.strategy_space.CandidateDeviation` and are
materialized on the fly, which is how the audit engine evaluates searched
candidates through ordinary scenario grids (including across
``multiprocessing`` workers — the name is plain data).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ExperimentError
from repro.games.library import GameSpec

MODE_FOR_THEOREM = {
    "4.1": "cheaptalk",
    "4.2": "cheaptalk",
    "4.4": "cheaptalk",
    "4.5": "cheaptalk",
    "mediator": "mediator",
    "r1": "none",
    "raw-game": "none",
}

ProfileBuilder = Callable[[GameSpec, int, int, str], dict]

_PROFILES: dict[str, tuple[frozenset[str], ProfileBuilder]] = {}


def register_deviation(name: str, modes: tuple[str, ...]):
    """Decorator registering a ``(spec, k, t, mode) -> {pid: factory}``."""

    def _register(fn: ProfileBuilder) -> ProfileBuilder:
        if name in _PROFILES:
            raise ExperimentError(f"deviation {name!r} is already registered")
        _PROFILES[name] = (frozenset(modes), fn)
        return fn

    return _register


def deviation_names() -> list[str]:
    return sorted(_PROFILES)


def deviation_modes(name: str) -> tuple[str, ...]:
    """The run modes a registered profile supports."""
    try:
        modes, _ = _PROFILES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown deviation profile {name!r}; known profiles: "
            f"{', '.join(deviation_names())}"
        ) from None
    return tuple(sorted(modes))


def deviations_for_mode(mode: str) -> list[str]:
    """All registered profile names available in ``mode`` runs."""
    return sorted(
        name for name, (modes, _) in _PROFILES.items() if mode in modes
    )


def deviation_profile(name: str, spec: GameSpec, k: int, t: int, mode: str) -> dict:
    """Resolve profile ``name`` into ``{pid: factory}`` for ``mode``.

    Every factory is wrapped in the uniform-arity adapter, so the returned
    profile works unchanged in both the mediator and cheap-talk run paths.
    """
    from repro.analysis.deviations import unify_profile

    if name.startswith("audit:"):
        from repro.audit.strategy_space import candidate_from_name

        if mode not in ("cheaptalk", "mediator"):
            raise ExperimentError(
                f"audit deviations are not available for {mode!r} runs"
            )
        return candidate_from_name(name).build(spec, mode)
    try:
        modes, builder = _PROFILES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown deviation profile {name!r}; known profiles: "
            f"{', '.join(deviation_names())}"
        ) from None
    if mode not in modes:
        raise ExperimentError(
            f"deviation profile {name!r} is not available for "
            f"{mode!r} runs (supports: {', '.join(sorted(modes))})"
        )
    return unify_profile(builder(spec, k, t, mode))


@register_deviation("honest", ("cheaptalk", "mediator", "none"))
def _honest(spec, k, t, mode):
    return {}


@register_deviation("crash-last", ("cheaptalk", "mediator"))
def _crash_last(spec, k, t, mode):
    from repro.analysis.deviations import crash, ct_crash

    n = spec.game.n
    return {n - 1: ct_crash() if mode == "cheaptalk" else crash()}


@register_deviation("lying-last", ("cheaptalk",))
def _lying_last(spec, k, t, mode):
    from repro.analysis.deviations import ct_lying_shares

    return {spec.game.n - 1: ct_lying_shares(spec)}


@register_deviation("crash+liar", ("cheaptalk",))
def _crash_liar(spec, k, t, mode):
    from repro.analysis.deviations import ct_crash, ct_lying_shares

    n = spec.game.n
    return {n - 2: ct_crash(), n - 1: ct_lying_shares(spec)}


@register_deviation("stall-last", ("cheaptalk", "mediator"))
def _stall_last(spec, k, t, mode):
    from repro.analysis.deviations import ct_stall_after, stall_after_messages

    n = spec.game.n
    if mode == "cheaptalk":
        return {n - 1: ct_stall_after(spec, limit=12)}
    return {n - 1: stall_after_messages(spec, limit=2)}


@register_deviation("leak-attack", ("mediator",))
def _leak_attack(spec, k, t, mode):
    from repro.analysis.section64 import leak_attack

    return leak_attack(spec, (0, 1))
