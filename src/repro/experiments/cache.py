"""Compile-once/run-many: the per-process artifact cache.

Across a sweep only the *slow axes* of a grid cell vary — ``(game, n,
theorem, k, t, epsilon, mediator_variant)`` and the deviation profile —
while ``(seed, scheduler, timing)`` vary fast. Everything derived from the
slow axes is a pure function of names: the built :class:`GameSpec`, the
compiled Thm 4.1/4.2/4.4/4.5 cheap-talk protocol (or mediator game, or R1
baseline), the resolved deviation-profile factories, and the default type
profile. :func:`prepare_cell` materializes exactly that bundle — the
*prepare phase* — and :class:`ArtifactCache` memoizes it per process with a
bounded LRU, so a 200-seed × 4-scheduler sweep compiles each protocol once
instead of 800 times.

Correctness contract (pinned by ``tests/test_perf_cache.py``): every cached
artifact is stateless across runs — games build fresh processes and a fresh
``TrustedSetup`` per ``run()`` call, and deviation profiles are factories
invoked per run — so warm-cache and cold-cache sweeps produce identical
records. Per-run state (schedulers, timing models) is *not* cached here.

``file:`` games additionally key on the file's ``(mtime_ns, size)`` stamp,
so editing a GameDef JSON between runs invalidates its cache entries.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.experiments.deviations import MODE_FOR_THEOREM, deviation_profile
from repro.games.registry import FILE_GAME_PREFIX, make_game

DEFAULT_CACHE_SIZE = 64
"""Default LRU bound of a per-process :class:`ArtifactCache`."""


def _file_stamp(game_name: str) -> Optional[tuple]:
    """Invalidation stamp for ``file:`` games (None for registry names)."""
    if not game_name.startswith(FILE_GAME_PREFIX):
        return None
    path = game_name[len(FILE_GAME_PREFIX):]
    try:
        st = os.stat(path)
    except OSError:
        return ("missing",)
    return (st.st_mtime_ns, st.st_size)


@dataclass(frozen=True)
class CellKey:
    """The slow axes of a grid cell — everything the prepare phase needs.

    Two cells with equal keys share one prepared artifact bundle; the fast
    axes (seed, scheduler, timing) never appear here.
    """

    game: str
    n: int
    theorem: str
    k: int
    t: int
    epsilon: Optional[float]
    mediator_variant: str
    deviation: str
    type_profile: Optional[tuple]
    file_stamp: Optional[tuple] = None
    runtime: str = "sim"
    latency: str = "zero"
    """Execution substrate axes. Prepared artifacts are substrate-blind
    (the same compiled protocol runs on either runtime), but the key
    carries them so store-level cell identity — and anything else keyed
    on a whole ``CellKey`` — never conflates a simulated cell with a net
    cell; the sub-keys below deliberately omit them so the artifact
    cache still shares compilations across substrates."""

    faults: str = "none"
    """The injected fault plan: a run axis like ``runtime``/``latency``
    above — carried for whole-key cell identity, omitted from the
    sub-keys because prepared artifacts are fault-blind."""

    @classmethod
    def for_task(cls, spec, task) -> "CellKey":
        game_name = task.game or spec.game
        return cls(
            game=game_name,
            n=spec.n,
            theorem=spec.theorem,
            k=spec.k,
            t=spec.t,
            epsilon=spec.epsilon,
            mediator_variant=spec.mediator_variant,
            deviation=task.deviation,
            type_profile=spec.type_profile,
            file_stamp=_file_stamp(game_name),
            runtime=task.runtime,
            latency=task.latency,
            faults=task.faults,
        )

    # Sub-keys let independent layers share entries: all deviations of one
    # protocol share its compiled game; all (k, t) cells of one game share
    # its GameSpec.

    def game_key(self) -> tuple:
        return ("game", self.game, self.n, self.file_stamp)

    def protocol_key(self) -> tuple:
        return (
            "protocol", self.game, self.n, self.file_stamp, self.theorem,
            self.k, self.t, self.epsilon, self.mediator_variant,
        )

    def deviation_key(self) -> tuple:
        return (
            "deviation", self.game, self.n, self.file_stamp, self.theorem,
            self.k, self.t, self.deviation,
        )


class ArtifactCache:
    """A bounded, insertion-ordered LRU memo for prepared artifacts.

    ``maxsize <= 0`` disables caching entirely (every lookup is a miss and
    nothing is stored) — that is the *cold* reference path benchmarks and
    determinism tests compare against.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        self.maxsize = maxsize
        self._store: OrderedDict[tuple, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple, build: Callable[[], Any]) -> Any:
        if self.maxsize <= 0:
            self.misses += 1
            return build()
        try:
            value = self._store[key]
        except KeyError:
            self.misses += 1
            value = build()
            self._store[key] = value
            if len(self._store) > self.maxsize:
                self._store.popitem(last=False)
            return value
        self.hits += 1
        self._store.move_to_end(key)
        return value

    def clear(self) -> None:
        self._store.clear()

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._store)}

    def take_stats(self) -> dict:
        """Stats since the last call (hit/miss deltas for one grid)."""
        out = {"hits": self.hits, "misses": self.misses,
               "entries": len(self._store)}
        self.hits = 0
        self.misses = 0
        return out


@dataclass(frozen=True)
class PreparedCell:
    """The output of the prepare phase: run-ready, run-stateless artifacts."""

    key: CellKey
    game_spec: Any
    types: tuple
    game: Any = None
    """The compiled cheap-talk protocol game, mediator game, or R1
    baseline — ``None`` for ``raw-game`` cells (no simulation)."""

    deviations: dict = field(default_factory=dict)
    mode: str = "none"


def _build_protocol(spec, game_spec):
    """Compile the spec's theorem over ``game_spec`` (slow, cacheable)."""
    from repro.cheaptalk import (
        compile_theorem41,
        compile_theorem42,
        compile_theorem44,
        compile_theorem45,
    )

    if spec.theorem == "4.1":
        return compile_theorem41(game_spec, spec.k, spec.t).game
    if spec.theorem == "4.2":
        kwargs = {} if spec.epsilon is None else {"epsilon": spec.epsilon}
        return compile_theorem42(game_spec, spec.k, spec.t, **kwargs).game
    if spec.theorem == "4.4":
        return compile_theorem44(game_spec, spec.k, spec.t).game
    kwargs = {} if spec.epsilon is None else {"epsilon": spec.epsilon}
    return compile_theorem45(game_spec, spec.k, spec.t, **kwargs).game


def _build_mediator(spec, game_spec):
    from repro.mediator import MediatorGame

    if spec.mediator_variant == "standard":
        return MediatorGame(game_spec, spec.k, spec.t)

    from repro.games.library import BOT
    from repro.mediator import LeakySection64Mediator, minimally_informative

    leaky = MediatorGame(
        game_spec,
        spec.k,
        spec.t,
        approach="ah",
        will=lambda pid, ty: BOT,
        mediator_factory=lambda: LeakySection64Mediator(
            game_spec, spec.k, spec.t
        ),
    )
    if spec.mediator_variant == "leaky-sec64":
        return leaky
    return minimally_informative(leaky, rounds=2)


def prepare_cell(spec, task, cache: Optional[ArtifactCache] = None) -> PreparedCell:
    """Run the prepare phase for one grid cell, through ``cache`` if given.

    The returned bundle is everything :func:`repro.experiments.runner` needs
    to execute the cheap per-seed run phase; with ``cache=None`` every
    artifact is built from scratch (the cold reference path).
    """
    if cache is None:
        cache = ArtifactCache(maxsize=0)
    key = CellKey.for_task(spec, task)
    game_spec = cache.get(key.game_key(), lambda: make_game(key.game, key.n))
    types = (
        spec.type_profile
        if spec.type_profile is not None
        else tuple(game_spec.game.type_space.profiles()[0])
    )

    if spec.theorem == "raw-game":
        return PreparedCell(key=key, game_spec=game_spec, types=tuple(types))

    if spec.theorem == "r1":
        from repro.cheaptalk.sync import compile_r1

        game = cache.get(
            key.protocol_key(), lambda: compile_r1(game_spec, spec.k, spec.t)
        )
        return PreparedCell(
            key=key, game_spec=game_spec, types=tuple(types), game=game,
            mode="none",
        )

    mode = MODE_FOR_THEOREM[spec.theorem]
    deviations = cache.get(
        key.deviation_key(),
        lambda: deviation_profile(
            task.deviation, game_spec, spec.k, spec.t, mode
        ),
    )
    if spec.theorem == "mediator":
        game = cache.get(
            key.protocol_key(), lambda: _build_mediator(spec, game_spec)
        )
    else:
        game = cache.get(
            key.protocol_key(), lambda: _build_protocol(spec, game_spec)
        )
    return PreparedCell(
        key=key,
        game_spec=game_spec,
        types=tuple(types),
        game=game,
        deviations=deviations,
        mode=mode,
    )
