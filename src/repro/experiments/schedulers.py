"""Named environment strategies for declarative scenarios.

Scenario specs reference schedulers by name so they stay JSON-serializable;
this registry turns a name plus the game size into a live
:class:`~repro.sim.scheduler.Scheduler`. Stochastic schedulers are built
with a fixed constructor seed — per-run variation comes from
``Scheduler.reset(seed)``, which the runtime calls with the run seed, so a
fresh instance per task is fully deterministic.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ExperimentError
from repro.sim.scheduler import (
    BatchRandomScheduler,
    EagerScheduler,
    FifoScheduler,
    LaggardScheduler,
    RandomScheduler,
    RushingScheduler,
    Scheduler,
)

SchedulerBuilder = Callable[[int], Scheduler]

SCHEDULER_BUILDERS: dict[str, SchedulerBuilder] = {}


def register_scheduler(name: str, builder: SchedulerBuilder | None = None):
    """Register a ``(n) -> Scheduler`` builder; usable as a decorator."""

    def _register(fn: SchedulerBuilder) -> SchedulerBuilder:
        if name in SCHEDULER_BUILDERS:
            raise ExperimentError(f"scheduler {name!r} is already registered")
        SCHEDULER_BUILDERS[name] = fn
        return fn

    if builder is not None:
        return _register(builder)
    return _register


def scheduler_from_name(name: str, n: int) -> Scheduler:
    try:
        builder = SCHEDULER_BUILDERS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scheduler {name!r}; known schedulers: "
            f"{', '.join(scheduler_names())}"
        ) from None
    return builder(n)


def scheduler_names() -> list[str]:
    return sorted(SCHEDULER_BUILDERS)


def _colluding(n: int) -> Scheduler:
    from repro.analysis.section64 import ColludingScheduler

    return ColludingScheduler((0, 1))


register_scheduler("fifo", lambda n: FifoScheduler())
register_scheduler("random", lambda n: RandomScheduler(0))
register_scheduler("random-2", lambda n: RandomScheduler(1))
register_scheduler("eager", lambda n: EagerScheduler())
register_scheduler("batch-random", lambda n: BatchRandomScheduler(0))
register_scheduler("laggard-first", lambda n: LaggardScheduler([0]))
register_scheduler(
    "laggard-quarter", lambda n: LaggardScheduler(range(max(1, n // 4)))
)
register_scheduler("rushing-last", lambda n: RushingScheduler([n - 1]))
register_scheduler("colluding", _colluding)
