"""Structured experiment results with aggregation and JSON round-trip.

A :class:`RunRecord` captures everything observable about one grid cell;
an :class:`ExperimentResult` bundles a spec with its records and offers the
aggregations every report in the repo used to hand-roll: agreement rate,
message/step statistics, payoff summaries, and per-(scheduler, deviation)
breakdown rows ready for ``format_table``.

Wall-clock fields (``duration_s``, ``elapsed_s``) are excluded from
equality so that a JSON round trip — and a parallel re-run on the same seed
grid — compares equal to the original.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from statistics import mean
from typing import Iterable, Optional

from repro.errors import ExperimentError
from repro.experiments.spec import ScenarioSpec, _tuplize


@dataclass(frozen=True)
class RunRecord:
    """One completed (or failed) run of a scenario grid cell."""

    scenario: str
    theorem: str
    scheduler: str
    deviation: str
    seed: int
    timing: str = "async"
    game: str = ""
    """The resolved game name this cell ran (a games-axis entry, a
    ``family@params`` instance, or the spec's single ``game``)."""
    runtime: str = "sim"
    latency: str = "zero"
    """Which substrate produced this record (``sim``/``net``/``net-tcp``)
    and, for net runtimes, under which latency model — defaults keep
    pre-net stored documents parseable."""
    faults: str = "none"
    """The fault plan injected into this cell (``"none"`` fault-free) —
    the default keeps pre-faults stored documents parseable."""
    types: tuple = ()
    actions: tuple = ()
    payoffs: tuple = ()
    agreed: bool = False
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    steps: int = 0
    deadlocked: bool = False
    error: Optional[str] = None
    timed_out: bool = False
    trace: tuple = ()
    """JSON-safe per-event tuples, populated only for
    ``record_payloads`` scenarios: (step, kind, pid, sender, recipient,
    uid, payload)."""
    duration_s: float = field(default=0.0, compare=False)

    @property
    def ok(self) -> bool:
        return self.error is None and not self.timed_out

    def mean_payoff(self) -> float:
        return mean(self.payoffs) if self.payoffs else 0.0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ExperimentError(
                f"unknown RunRecord fields: {', '.join(sorted(unknown))}"
            )
        coerced = {
            key: _tuplize(value)
            if key in ("types", "actions", "payoffs", "trace")
            else value
            for key, value in data.items()
        }
        return cls(**coerced)


def _stats(values: Iterable[float]) -> dict:
    values = list(values)
    if not values:
        return {"mean": 0.0, "min": 0.0, "max": 0.0}
    return {
        "mean": float(mean(values)),
        "min": float(min(values)),
        "max": float(max(values)),
    }


@dataclass(frozen=True)
class ExperimentResult:
    """All records of one scenario grid, with aggregation helpers."""

    spec: ScenarioSpec
    records: tuple[RunRecord, ...]
    elapsed_s: float = field(default=0.0, compare=False)
    parallel: bool = field(default=False, compare=False)
    stats: dict = field(default_factory=dict, compare=False)
    """Execution bookkeeping from the runner (excluded from equality, like
    the wall-clock fields): artifact-cache hits/misses, the
    prepare/run/payoff phase timing breakdown, and pool usage/reuse."""

    # -- selections ----------------------------------------------------------

    def succeeded(self) -> list[RunRecord]:
        return [r for r in self.records if r.ok]

    def failed(self) -> list[RunRecord]:
        return [r for r in self.records if not r.ok]

    # -- aggregations --------------------------------------------------------

    def agreement_rate(self) -> float:
        ok = self.succeeded()
        if not ok:
            return 0.0
        return sum(1 for r in ok if r.agreed) / len(ok)

    def message_stats(self) -> dict:
        return _stats(r.messages_sent for r in self.succeeded())

    def step_stats(self) -> dict:
        return _stats(r.steps for r in self.succeeded())

    def payoff_stats(self) -> dict:
        return _stats(r.mean_payoff() for r in self.succeeded())

    def payoff_by_player(self) -> tuple[float, ...]:
        """Mean payoff per player position across successful runs."""
        ok = [r for r in self.succeeded() if r.payoffs]
        if not ok:
            return ()
        width = max(len(r.payoffs) for r in ok)
        return tuple(
            float(mean(r.payoffs[i] for r in ok if len(r.payoffs) > i))
            for i in range(width)
        )

    def aggregate(self) -> dict:
        """One dict summarizing the whole grid (what reports print)."""
        return {
            "scenario": self.spec.name,
            "runs": len(self.records),
            "errors": sum(1 for r in self.records if r.error and not r.timed_out),
            "timeouts": sum(1 for r in self.records if r.timed_out),
            "agreement_rate": self.agreement_rate(),
            "messages": self.message_stats(),
            "steps": self.step_stats(),
            "payoff": self.payoff_stats(),
        }

    def summary_rows(self) -> list[tuple]:
        """Per-(game, timing, scheduler, deviation) rows for a table.

        The game column groups in spec order (a ``games`` axis sweeps in
        the order the spec lists, e.g. ascending size), not
        alphabetically.
        """
        order = {name: i for i, name in enumerate(self.spec.game_axis)}
        groups: dict[tuple, list[RunRecord]] = {}
        for record in self.records:
            game = record.game or self.spec.game
            key = (
                (order.get(game, len(order)), game),
                record.timing,
                record.scheduler,
                record.deviation,
            )
            groups.setdefault(key, []).append(record)
        rows = []
        for ((_, game), timing, scheduler, deviation), members in sorted(
            groups.items()
        ):
            ok = [r for r in members if r.ok]
            agreement = (
                f"{sum(1 for r in ok if r.agreed) / len(ok):.2f}" if ok else "-"
            )
            msgs = f"{mean(r.messages_sent for r in ok):.0f}" if ok else "-"
            payoff = f"{mean(r.mean_payoff() for r in ok):.3f}" if ok else "-"
            rows.append(
                (
                    game,
                    timing,
                    scheduler,
                    deviation,
                    len(members),
                    len(members) - len(ok),
                    agreement,
                    msgs,
                    payoff,
                )
            )
        return rows

    SUMMARY_HEADERS = (
        "game",
        "timing",
        "scheduler",
        "deviation",
        "runs",
        "failed",
        "agreement",
        "messages",
        "mean payoff",
    )

    CSV_FIELDS = (
        "scenario",
        "theorem",
        "game",
        "n",
        "k",
        "t",
        "timing",
        "scheduler",
        "deviation",
        "seed",
        "runtime",
        "latency",
        "faults",
        "ok",
        "agreed",
        "deadlocked",
        "timed_out",
        "actions",
        "mean_payoff",
        "messages_sent",
        "messages_delivered",
        "messages_dropped",
        "steps",
        "error",
        "duration_s",
    )

    def csv_rows(self) -> list[tuple]:
        """One plain-value row per grid cell, aligned with CSV_FIELDS.

        This is the flat per-cell view plotting pipelines consume
        (``repro sweep --csv``): spec identity columns are repeated on
        every row so concatenating several scenarios' rows stays
        self-describing.
        """
        spec = self.spec
        rows = []
        for r in self.records:
            rows.append(
                (
                    r.scenario,
                    r.theorem,
                    r.game or spec.game,
                    spec.n,
                    spec.k,
                    spec.t,
                    r.timing,
                    r.scheduler,
                    r.deviation,
                    r.seed,
                    r.runtime,
                    r.latency,
                    r.faults,
                    int(r.ok),
                    int(r.agreed),
                    int(r.deadlocked),
                    int(r.timed_out),
                    " ".join(str(a) for a in r.actions),
                    f"{r.mean_payoff():.6g}",
                    r.messages_sent,
                    r.messages_delivered,
                    r.messages_dropped,
                    r.steps,
                    r.error or "",
                    f"{r.duration_s:.6g}",
                )
            )
        return rows

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "records": [r.to_dict() for r in self.records],
            "elapsed_s": self.elapsed_s,
            "parallel": self.parallel,
            "stats": self.stats,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        try:
            spec_data = data["spec"]
            record_data = data["records"]
        except (KeyError, TypeError):
            raise ExperimentError(
                "ExperimentResult JSON needs 'spec' and 'records'"
            ) from None
        return cls(
            spec=ScenarioSpec.from_dict(spec_data),
            records=tuple(RunRecord.from_dict(r) for r in record_data),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            parallel=bool(data.get("parallel", False)),
            stats=dict(data.get("stats") or {}),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))
