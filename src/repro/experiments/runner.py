"""Grid expansion and the parallel experiment runner.

:func:`expand_grid` turns a :class:`ScenarioSpec` into concrete
:class:`RunTask` cells; :func:`execute_task` runs one cell from scratch
(game construction through payoff computation) so that a task needs nothing
but the picklable spec — which is what makes the ``multiprocessing``
fan-out correct: every worker rebuilds the same deterministic objects from
the same names and seeds, so parallel and serial sweeps produce identical
records.

Per-run timeouts use ``SIGALRM`` (available in workers and in the serial
main thread on POSIX); a run that exceeds the budget yields a
``timed_out`` record instead of poisoning the sweep. Any other exception
is likewise captured into the record's ``error`` field.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from repro.errors import ExperimentError
from repro.experiments.deviations import MODE_FOR_THEOREM, deviation_profile
from repro.experiments.results import ExperimentResult, RunRecord
from repro.experiments.schedulers import scheduler_from_name
from repro.experiments.spec import ScenarioSpec
from repro.games.registry import make_game
from repro.sim.timing import timing_from_name


@dataclass(frozen=True)
class RunTask:
    """One cell of a scenario grid."""

    scheduler: str
    deviation: str
    seed: int
    index: int
    profile_index: Optional[int] = None
    timing: str = "async"
    game: str = ""
    """The game-axis entry this cell runs (empty: the spec's ``game``)."""


def expand_grid(spec: ScenarioSpec) -> tuple[RunTask, ...]:
    """Expand a spec into its ordered run tasks (games axis outermost)."""
    if spec.theorem == "raw-game":
        if len(spec.schedulers) > 1 or tuple(spec.deviations) != ("honest",):
            raise ExperimentError(
                "raw-game scenarios evaluate the payoff matrix directly; "
                "schedulers and deviations do not apply (leave the defaults)"
            )
        if tuple(spec.timings) != ("async",):
            raise ExperimentError(
                "raw-game scenarios evaluate the payoff matrix directly; "
                "a timing grid does not apply (leave the default)"
            )
        return tuple(
            RunTask("none", "honest", spec.seed_start, i, profile_index=i,
                    timing="none", game=spec.game)
            for i in range(len(spec.action_profiles))
        )
    if spec.theorem == "r1":
        if tuple(spec.deviations) != ("honest",):
            raise ExperimentError(
                "r1 scenarios support only the 'honest' deviation profile"
            )
        if len(spec.schedulers) > 1:
            raise ExperimentError(
                "r1 runs are synchronous (lock-step rounds); a scheduler "
                "grid does not apply — leave the default single entry"
            )
        if tuple(spec.timings) != ("async",):
            raise ExperimentError(
                "r1 runs are synchronous by construction; a timing grid "
                "does not apply — leave the default single entry"
            )
        return tuple(
            RunTask("sync", "honest", seed, i * len(spec.seeds) + j,
                    timing="lockstep", game=game)
            for i, game in enumerate(spec.game_axis)
            for j, seed in enumerate(spec.seeds)
        )
    tasks = []
    index = 0
    for game in spec.game_axis:
        for timing in spec.timings:
            for scheduler in spec.schedulers:
                for deviation in spec.deviations:
                    for seed in spec.seeds:
                        tasks.append(
                            RunTask(scheduler, deviation, seed, index,
                                    timing=timing, game=game)
                        )
                        index += 1
    return tuple(tasks)


# -- per-run timeout ---------------------------------------------------------

class _RunTimeout(Exception):
    pass


@contextmanager
def _time_limit(seconds: Optional[float]):
    requested = seconds is not None and seconds > 0
    usable = (
        requested
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        if requested:
            warnings.warn(
                "per-run timeout requested but SIGALRM is unavailable "
                "(non-POSIX platform or non-main thread); running without "
                "a time limit",
                RuntimeWarning,
                stacklevel=3,
            )
        yield
        return

    def _handler(signum, frame):
        raise _RunTimeout()

    previous = signal.signal(signal.SIGALRM, _handler)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


# -- single-cell execution ---------------------------------------------------

def _compile_protocol(spec: ScenarioSpec, game_spec):
    from repro.cheaptalk import (
        compile_theorem41,
        compile_theorem42,
        compile_theorem44,
        compile_theorem45,
    )

    if spec.theorem == "4.1":
        return compile_theorem41(game_spec, spec.k, spec.t)
    if spec.theorem == "4.2":
        kwargs = {} if spec.epsilon is None else {"epsilon": spec.epsilon}
        return compile_theorem42(game_spec, spec.k, spec.t, **kwargs)
    if spec.theorem == "4.4":
        return compile_theorem44(game_spec, spec.k, spec.t)
    kwargs = {} if spec.epsilon is None else {"epsilon": spec.epsilon}
    return compile_theorem45(game_spec, spec.k, spec.t, **kwargs)


def _mediator_game(spec: ScenarioSpec, game_spec):
    from repro.mediator import MediatorGame

    if spec.mediator_variant == "standard":
        return MediatorGame(game_spec, spec.k, spec.t)

    from repro.games.library import BOT
    from repro.mediator import LeakySection64Mediator, minimally_informative

    leaky = MediatorGame(
        game_spec,
        spec.k,
        spec.t,
        approach="ah",
        will=lambda pid, ty: BOT,
        mediator_factory=lambda: LeakySection64Mediator(
            game_spec, spec.k, spec.t
        ),
    )
    if spec.mediator_variant == "leaky-sec64":
        return leaky
    return minimally_informative(leaky, rounds=2)


def _json_safe(value):
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def _serialize_trace(trace) -> tuple:
    """Flatten a Trace into JSON-safe per-event tuples for RunRecord."""
    return tuple(
        (e.step, e.kind, e.pid, e.sender, e.recipient, e.uid,
         _json_safe(e.payload))
        for e in trace.events
    )


def _execute(spec: ScenarioSpec, task: RunTask) -> RunRecord:
    game_name = task.game or spec.game
    game_spec = make_game(game_name, spec.n)
    types = (
        spec.type_profile
        if spec.type_profile is not None
        else tuple(game_spec.game.type_space.profiles()[0])
    )
    base = dict(
        scenario=spec.name,
        theorem=spec.theorem,
        game=game_name,
        timing=task.timing,
        scheduler=task.scheduler,
        deviation=task.deviation,
        seed=task.seed,
        types=tuple(types),
    )

    if spec.theorem == "raw-game":
        actions = spec.action_profiles[task.profile_index]
        payoffs = tuple(float(u) for u in game_spec.game.utility(types, actions))
        return RunRecord(
            actions=tuple(actions),
            payoffs=payoffs,
            agreed=len(set(actions)) == 1,
            **base,
        )

    if spec.theorem == "r1":
        from repro.cheaptalk.sync import compile_r1

        sync = compile_r1(game_spec, spec.k, spec.t)
        actions, result = sync.run(types, seed=task.seed)
        payoffs = tuple(float(u) for u in game_spec.game.utility(types, actions))
        return RunRecord(
            actions=tuple(actions),
            payoffs=payoffs,
            agreed=len(set(actions)) == 1,
            messages_sent=result.messages_sent,
            messages_delivered=result.messages_sent,
            steps=result.rounds,
            **base,
        )

    mode = MODE_FOR_THEOREM[spec.theorem]
    deviations = deviation_profile(task.deviation, game_spec, spec.k, spec.t, mode)
    # Size-aware schedulers follow the game actually being run, which a
    # games-axis entry (or a file:/family name) may size differently from
    # the spec's nominal ``n``.
    scheduler = scheduler_from_name(task.scheduler, game_spec.game.n)
    timing = timing_from_name(task.timing)
    run_kwargs = {}
    if spec.step_limit is not None:
        run_kwargs["step_limit"] = spec.step_limit

    if spec.theorem == "mediator":
        game = _mediator_game(spec, game_spec)
    else:
        game = _compile_protocol(spec, game_spec).game
    run = game.run(
        types, scheduler, seed=task.seed, deviations=deviations or None,
        timing=timing, record_payloads=spec.record_payloads,
        **run_kwargs,
    )
    payoffs = tuple(
        float(u) for u in game_spec.game.utility(types, run.actions)
    )
    result = run.result
    return RunRecord(
        actions=tuple(run.actions),
        payoffs=payoffs,
        agreed=len(set(run.actions)) == 1,
        messages_sent=result.messages_sent,
        messages_delivered=result.messages_delivered,
        messages_dropped=result.messages_dropped,
        steps=result.steps,
        deadlocked=result.deadlocked,
        trace=(
            _serialize_trace(result.trace) if spec.record_payloads else ()
        ),
        **base,
    )


def execute_task(
    spec: ScenarioSpec, task: RunTask, timeout_s: Optional[float] = None
) -> RunRecord:
    """Run one grid cell, converting failures into error records."""
    limit = timeout_s if timeout_s is not None else spec.timeout_s
    start = time.perf_counter()
    try:
        with _time_limit(limit):
            record = _execute(spec, task)
    except _RunTimeout:
        record = RunRecord(
            scenario=spec.name,
            theorem=spec.theorem,
            game=task.game or spec.game,
            timing=task.timing,
            scheduler=task.scheduler,
            deviation=task.deviation,
            seed=task.seed,
            error=f"timed out after {limit}s",
            timed_out=True,
        )
    except ExperimentError:
        raise  # spec-level problems should fail the sweep loudly
    except Exception as exc:  # noqa: BLE001 — capture per-run failures
        record = RunRecord(
            scenario=spec.name,
            theorem=spec.theorem,
            game=task.game or spec.game,
            timing=task.timing,
            scheduler=task.scheduler,
            deviation=task.deviation,
            seed=task.seed,
            error=f"{type(exc).__name__}: {exc}",
        )
    duration = time.perf_counter() - start
    return RunRecord(**{**record.to_dict(), "duration_s": duration})


def _pool_worker(payload) -> RunRecord:
    spec, task, timeout_s = payload
    return execute_task(spec, task, timeout_s=timeout_s)


# -- the runner --------------------------------------------------------------

class ExperimentRunner:
    """Expand a scenario grid and run it, optionally over processes.

    ``parallel=True`` fans the grid out over a ``multiprocessing`` pool
    (the runs are pure Python and seed-deterministic, so this is an
    embarrassingly parallel speedup); serial execution is both the
    fallback and the reference semantics — the two produce identical
    records for identical specs.
    """

    def __init__(
        self,
        parallel: bool = False,
        processes: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ) -> None:
        if processes is not None and processes < 1:
            raise ExperimentError("processes must be >= 1")
        self.parallel = parallel
        self.processes = processes
        self.timeout_s = timeout_s

    def run(self, scenario: Union[str, ScenarioSpec]) -> ExperimentResult:
        if isinstance(scenario, str):
            from repro.experiments.registry import get_scenario

            spec = get_scenario(scenario)
        else:
            spec = scenario
        tasks = expand_grid(spec)
        processes = self.processes
        if processes is None:
            processes = os.cpu_count() or 1
            if self.parallel:
                processes = max(2, processes)
        use_parallel = self.parallel and len(tasks) > 1 and processes > 1
        start = time.perf_counter()
        if use_parallel:
            try:
                records = self._run_parallel(spec, tasks, processes)
            except (OSError, PermissionError):
                # Sandboxes without working process pools: fall back.
                use_parallel = False
                records = [
                    execute_task(spec, task, self.timeout_s) for task in tasks
                ]
        else:
            records = [
                execute_task(spec, task, self.timeout_s) for task in tasks
            ]
        elapsed = time.perf_counter() - start
        return ExperimentResult(
            spec=spec,
            records=tuple(records),
            elapsed_s=elapsed,
            parallel=use_parallel,
        )

    def sweep(
        self, scenarios: Iterable[Union[str, ScenarioSpec]]
    ) -> list[ExperimentResult]:
        return [self.run(scenario) for scenario in scenarios]

    def _run_parallel(
        self,
        spec: ScenarioSpec,
        tasks: Sequence[RunTask],
        processes: int,
    ) -> list[RunRecord]:
        payloads = [(spec, task, self.timeout_s) for task in tasks]
        ctx = multiprocessing.get_context()
        with ctx.Pool(min(processes, len(tasks))) as pool:
            return pool.map(_pool_worker, payloads)


def run_scenario(
    scenario: Union[str, ScenarioSpec],
    parallel: bool = False,
    processes: Optional[int] = None,
    timeout_s: Optional[float] = None,
) -> ExperimentResult:
    """One-call convenience wrapper around :class:`ExperimentRunner`."""
    runner = ExperimentRunner(
        parallel=parallel, processes=processes, timeout_s=timeout_s
    )
    return runner.run(scenario)
