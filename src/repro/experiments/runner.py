"""Grid expansion and the compile-once/run-many experiment runner.

:func:`expand_grid` turns a :class:`ScenarioSpec` into concrete
:class:`RunTask` cells. Cell execution is split into two phases:

* a *prepare phase* (:func:`repro.experiments.cache.prepare_cell`) — game
  construction, protocol/mediator compilation, deviation-profile
  resolution — keyed by a frozen
  :class:`~repro.experiments.cache.CellKey` and memoized in a bounded
  per-process :class:`~repro.experiments.cache.ArtifactCache`;
* a cheap *run phase* — one seeded simulation plus payoff computation.

A task still needs nothing but the picklable spec — workers rebuild (or
cache-hit) the same deterministic objects from the same names and seeds, so
parallel and serial sweeps, and warm- and cold-cache sweeps, produce
identical records.

:class:`ExperimentRunner` owns a *persistent* worker pool: it is created
lazily on the first parallel ``run()``, reused across ``run()``/``sweep()``
calls (each worker keeps its own warm artifact cache between grids), and
torn down by :meth:`ExperimentRunner.close` / the context-manager exit.
Grids are dispatched with chunked ``imap_unordered`` and re-ordered by task
index, so records stay byte-identical to serial while results stream back
to the optional progress callback.

Per-run timeouts use ``SIGALRM`` (available in workers and in the serial
main thread on POSIX); a run that exceeds the budget yields a
``timed_out`` record instead of poisoning the sweep. Any other exception
is likewise captured into the record's ``error`` field.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.errors import ExperimentError
from repro.experiments.cache import (
    DEFAULT_CACHE_SIZE,
    ArtifactCache,
    prepare_cell,
)
from repro.experiments.results import ExperimentResult, RunRecord
from repro.experiments.schedulers import scheduler_from_name
from repro.experiments.spec import ScenarioSpec
from repro.obs.metrics import registry as obs_registry
from repro.obs.tracing import (
    Tracer,
    activate,
    current_tracer,
    deactivate,
    span as obs_span,
)
from repro.sim.timing import timing_from_name


@dataclass(frozen=True)
class RunTask:
    """One cell of a scenario grid."""

    scheduler: str
    deviation: str
    seed: int
    index: int
    profile_index: Optional[int] = None
    timing: str = "async"
    game: str = ""
    """The game-axis entry this cell runs (empty: the spec's ``game``)."""

    runtime: str = "sim"
    latency: str = "zero"
    """Which substrate executes the cell and, for net runtimes, under
    which latency model — copied from the spec so pool workers and store
    fingerprints see the axes without re-reading the spec."""

    faults: str = "none"
    """The fault plan injected into this cell, by
    :func:`repro.faults.plan.fault_from_name` name (``"none"`` fault-free)."""


def expand_grid(spec: ScenarioSpec) -> tuple[RunTask, ...]:
    """Expand a spec into its ordered run tasks (games axis outermost)."""
    if spec.theorem == "raw-game":
        if len(spec.schedulers) > 1 or tuple(spec.deviations) != ("honest",):
            raise ExperimentError(
                "raw-game scenarios evaluate the payoff matrix directly; "
                "schedulers and deviations do not apply (leave the defaults)"
            )
        if tuple(spec.timings) != ("async",):
            raise ExperimentError(
                "raw-game scenarios evaluate the payoff matrix directly; "
                "a timing grid does not apply (leave the default)"
            )
        return tuple(
            RunTask("none", "honest", spec.seed_start, i, profile_index=i,
                    timing="none", game=spec.game)
            for i in range(len(spec.action_profiles))
        )
    if spec.theorem == "r1":
        if tuple(spec.deviations) != ("honest",):
            raise ExperimentError(
                "r1 scenarios support only the 'honest' deviation profile"
            )
        if len(spec.schedulers) > 1:
            raise ExperimentError(
                "r1 runs are synchronous (lock-step rounds); a scheduler "
                "grid does not apply — leave the default single entry"
            )
        if tuple(spec.timings) != ("async",):
            raise ExperimentError(
                "r1 runs are synchronous by construction; a timing grid "
                "does not apply — leave the default single entry"
            )
        return tuple(
            RunTask("sync", "honest", seed, i * len(spec.seeds) + j,
                    timing="lockstep", game=game)
            for i, game in enumerate(spec.game_axis)
            for j, seed in enumerate(spec.seeds)
        )
    tasks = []
    index = 0
    for game in spec.game_axis:
        for timing in spec.timings:
            for scheduler in spec.schedulers:
                for deviation in spec.deviations:
                    for faults in spec.faults:
                        for seed in spec.seeds:
                            tasks.append(
                                RunTask(scheduler, deviation, seed, index,
                                        timing=timing, game=game,
                                        runtime=spec.runtime,
                                        latency=spec.latency,
                                        faults=faults)
                            )
                            index += 1
    return tuple(tasks)


# -- per-run timeout ---------------------------------------------------------

class _RunTimeout(Exception):
    pass


@contextmanager
def _time_limit(seconds: Optional[float]):
    requested = seconds is not None and seconds > 0
    usable = (
        requested
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        if requested:
            warnings.warn(
                "per-run timeout requested but SIGALRM is unavailable "
                "(non-POSIX platform or non-main thread); running without "
                "a time limit",
                RuntimeWarning,
                stacklevel=3,
            )
        yield
        return

    def _handler(signum, frame):
        raise _RunTimeout()

    previous = signal.signal(signal.SIGALRM, _handler)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


# -- single-cell execution ---------------------------------------------------

def _json_safe(value):
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def _serialize_trace(trace) -> tuple:
    """Flatten a Trace into JSON-safe per-event tuples for RunRecord."""
    return tuple(
        (e.step, e.kind, e.pid, e.sender, e.recipient, e.uid,
         _json_safe(e.payload))
        for e in trace.events
    )


def _execute(
    spec: ScenarioSpec,
    task: RunTask,
    cache: Optional[ArtifactCache] = None,
    phases: Optional[list] = None,
) -> RunRecord:
    """One grid cell: cached prepare phase, then the per-seed run phase.

    ``phases`` (a 3-slot ``[prepare, run, payoff]`` accumulator in seconds)
    is filled in when provided — the ``--profile`` timing breakdown.
    """
    t0 = time.perf_counter()
    with obs_span("prepare"):
        prepared = prepare_cell(spec, task, cache)
    game_spec = prepared.game_spec
    types = prepared.types
    t1 = time.perf_counter()

    base = dict(
        scenario=spec.name,
        theorem=spec.theorem,
        game=prepared.key.game,
        timing=task.timing,
        scheduler=task.scheduler,
        deviation=task.deviation,
        seed=task.seed,
        runtime=task.runtime,
        latency=task.latency,
        faults=task.faults,
        types=types,
    )

    if spec.theorem == "raw-game":
        actions = spec.action_profiles[task.profile_index]
        with obs_span("payoff"):
            payoffs = tuple(
                float(u) for u in game_spec.game.utility(types, actions)
            )
        t2 = time.perf_counter()
        if phases is not None:
            phases[0] += t1 - t0
            phases[2] += t2 - t1
        return RunRecord(
            actions=tuple(actions),
            payoffs=payoffs,
            agreed=len(set(actions)) == 1,
            **base,
        )

    if spec.theorem == "r1":
        with obs_span("run"):
            actions, result = prepared.game.run(types, seed=task.seed)
        t2 = time.perf_counter()
        with obs_span("payoff"):
            payoffs = tuple(
                float(u) for u in game_spec.game.utility(types, actions)
            )
        t3 = time.perf_counter()
        if phases is not None:
            phases[0] += t1 - t0
            phases[1] += t2 - t1
            phases[2] += t3 - t2
        return RunRecord(
            actions=tuple(actions),
            payoffs=payoffs,
            agreed=len(set(actions)) == 1,
            messages_sent=result.messages_sent,
            messages_delivered=result.messages_sent,
            steps=result.rounds,
            **base,
        )

    # Size-aware schedulers follow the game actually being run, which a
    # games-axis entry (or a file:/family name) may size differently from
    # the spec's nominal ``n``. Scheduler and timing instances are cached
    # per (name, size): ``Runtime.run`` resets both with the run seed
    # before every run, which is their documented per-run contract.
    n = game_spec.game.n
    if cache is not None:
        scheduler = cache.get(
            ("scheduler", task.scheduler, n),
            lambda: scheduler_from_name(task.scheduler, n),
        )
        timing = cache.get(
            ("timing", task.timing), lambda: timing_from_name(task.timing)
        )
    else:
        scheduler = scheduler_from_name(task.scheduler, n)
        timing = timing_from_name(task.timing)
    run_kwargs = {}
    if spec.step_limit is not None:
        run_kwargs["step_limit"] = spec.step_limit

    # Trace events are only consumed when the spec captures payloads;
    # otherwise skip recording them — counters come from the network and
    # the records stay byte-identical.
    with obs_span("run"):
        run = prepared.game.run(
            types, scheduler, seed=task.seed,
            deviations=prepared.deviations or None,
            timing=timing, record_payloads=spec.record_payloads,
            record_trace=spec.record_payloads,
            runtime=task.runtime, latency=task.latency,
            faults=task.faults,
            **run_kwargs,
        )
    t2 = time.perf_counter()
    with obs_span("payoff"):
        payoffs = tuple(
            float(u) for u in game_spec.game.utility(types, run.actions)
        )
    result = run.result
    record = RunRecord(
        actions=tuple(run.actions),
        payoffs=payoffs,
        agreed=len(set(run.actions)) == 1,
        messages_sent=result.messages_sent,
        messages_delivered=result.messages_delivered,
        messages_dropped=result.messages_dropped,
        steps=result.steps,
        deadlocked=result.deadlocked,
        trace=(
            _serialize_trace(result.trace) if spec.record_payloads else ()
        ),
        **base,
    )
    t3 = time.perf_counter()
    if phases is not None:
        phases[0] += t1 - t0
        phases[1] += t2 - t1
        phases[2] += t3 - t2
    return record


def execute_task(
    spec: ScenarioSpec,
    task: RunTask,
    timeout_s: Optional[float] = None,
    cache: Optional[ArtifactCache] = None,
    phases: Optional[list] = None,
) -> RunRecord:
    """Run one grid cell, converting failures into error records."""
    limit = timeout_s if timeout_s is not None else spec.timeout_s
    start = time.perf_counter()
    try:
        with obs_span(
            "cell",
            scenario=spec.name,
            game=task.game or spec.game,
            timing=task.timing,
            scheduler=task.scheduler,
            deviation=task.deviation,
            seed=task.seed,
            runtime=task.runtime,
        ), _time_limit(limit):
            record = _execute(spec, task, cache=cache, phases=phases)
    except _RunTimeout:
        record = RunRecord(
            scenario=spec.name,
            theorem=spec.theorem,
            game=task.game or spec.game,
            timing=task.timing,
            scheduler=task.scheduler,
            deviation=task.deviation,
            seed=task.seed,
            runtime=task.runtime,
            latency=task.latency,
            faults=task.faults,
            error=f"timed out after {limit}s",
            timed_out=True,
        )
    except ExperimentError:
        raise  # spec-level problems should fail the sweep loudly
    except Exception as exc:  # noqa: BLE001 — capture per-run failures
        record = RunRecord(
            scenario=spec.name,
            theorem=spec.theorem,
            game=task.game or spec.game,
            timing=task.timing,
            scheduler=task.scheduler,
            deviation=task.deviation,
            seed=task.seed,
            runtime=task.runtime,
            latency=task.latency,
            faults=task.faults,
            error=f"{type(exc).__name__}: {exc}",
        )
    duration = time.perf_counter() - start
    return dataclasses.replace(record, duration_s=duration)


# -- worker-side state -------------------------------------------------------

_WORKER_CACHE: Optional[ArtifactCache] = None
"""The per-worker artifact cache; persists across tasks *and* across
``run()`` calls because the pool itself persists."""

_WORKER_TRACER: Optional[Tracer] = None
"""Lazily created per-worker span buffer: the worker records cell spans
into its own tracer and drains them into the (picklable) result payload,
so the parent can merge them in task-index order — trace structure stays
deterministic no matter which worker finishes first."""


def _init_worker(cache_size: int) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = ArtifactCache(maxsize=cache_size)


def _worker_tracer() -> Tracer:
    global _WORKER_TRACER
    if _WORKER_TRACER is None:
        _WORKER_TRACER = Tracer()
    return _WORKER_TRACER


def _pool_worker(payload):
    spec, task, timeout_s, trace = payload
    phases = [0.0, 0.0, 0.0]
    cache = _WORKER_CACHE
    before = (cache.hits, cache.misses) if cache is not None else (0, 0)
    spans: tuple = ()
    if trace:
        tracer = _worker_tracer()
        activate(tracer)
    try:
        record = execute_task(
            spec, task, timeout_s=timeout_s, cache=cache, phases=phases
        )
    finally:
        if trace:
            deactivate()
    if trace:
        spans = tuple(tracer.drain())
    after = (cache.hits, cache.misses) if cache is not None else (0, 0)
    stats = (
        phases[0], phases[1], phases[2],
        after[0] - before[0], after[1] - before[1],
    )
    return task.index, record, stats, spans


# -- the runner --------------------------------------------------------------

class ExperimentRunner:
    """Expand a scenario grid and run it, optionally over processes.

    ``parallel=True`` fans the grid out over a persistent
    ``multiprocessing`` pool (the runs are pure Python and
    seed-deterministic, so this is an embarrassingly parallel speedup);
    serial execution is both the fallback and the reference semantics —
    the two produce identical records for identical specs.

    The runner owns warm state worth reusing: a per-runner
    :class:`~repro.experiments.cache.ArtifactCache` for serial runs, and
    the worker pool (each worker carrying its own cache) for parallel
    ones. Use the runner as a context manager — or call :meth:`close` —
    when a parallel runner's lifetime matters; serial runners hold no
    external resources. ``cache_size=0`` disables artifact caching (the
    cold reference path).
    """

    def __init__(
        self,
        parallel: bool = False,
        processes: Optional[int] = None,
        timeout_s: Optional[float] = None,
        cache_size: Optional[int] = None,
        store=None,
    ) -> None:
        if processes is not None and processes < 1:
            raise ExperimentError("processes must be >= 1")
        if cache_size is None:
            cache_size = DEFAULT_CACHE_SIZE
        if cache_size < 0:
            raise ExperimentError("cache_size must be >= 0")
        self.parallel = parallel
        self.processes = processes
        self.timeout_s = timeout_s
        self.cache_size = cache_size
        self.store = store
        """Optional :class:`repro.store.ResultStore`: cells already in the
        store are answered from it instead of being simulated, and fresh
        ``ok`` records are written back *as each cell completes* — so a
        process killed mid-grid keeps every finished cell, and the retry
        only simulates the remainder. The store stays in this process —
        workers never see it."""
        self._cache = ArtifactCache(maxsize=cache_size)
        self._pool = None
        self._pool_size = 0
        self._pool_broken = False

    # -- pool lifecycle ------------------------------------------------------

    def _ensure_pool(self, processes: int):
        """The persistent pool, recreated only when it needs to *grow*.

        A pool larger than the grid is harmless (idle workers), so a
        smaller request reuses the existing pool and keeps its warm
        caches; only a larger request pays the teardown + refork.
        """
        if self._pool is not None and self._pool_size < processes:
            self._teardown_pool()
        if self._pool is None:
            ctx = multiprocessing.get_context()
            self._pool = ctx.Pool(
                processes,
                initializer=_init_worker,
                initargs=(self.cache_size,),
            )
            self._pool_size = processes
        return self._pool

    def _teardown_pool(self) -> None:
        pool, self._pool = self._pool, None
        self._pool_size = 0
        if pool is not None:
            pool.terminate()
            pool.join()

    def close(self) -> None:
        """Tear down the persistent worker pool (idempotent)."""
        self._teardown_pool()

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover — GC-timing dependent
        try:
            self._teardown_pool()
        except Exception:
            pass

    # -- running -------------------------------------------------------------

    def run(
        self,
        scenario: Union[str, ScenarioSpec],
        progress: Optional[Callable[[int, int], None]] = None,
        store=None,
    ) -> ExperimentResult:
        """Run one scenario grid; ``progress(done, total)`` streams status.

        With a store (the ``store`` argument, falling back to the
        runner's own), each cell is fingerprinted first: cells the store
        already holds are answered from it — reported to ``progress``
        immediately, placed at their grid index, never simulated — and
        only the missing subset is executed. Fresh ``ok`` records are
        written back as each cell completes (a killed process keeps its
        finished cells), and ``stats["store"]`` reports the hit/miss
        split. Hit or miss, the assembled records are identical
        to a storeless run of the same spec (wall-clock fields aside).

        Telemetry: each ``run()`` opens a ``scenario`` span on the active
        tracer (if any) and feeds the process-global metrics registry from
        the same numbers that land in ``stats`` — strictly out-of-band, so
        records are byte-identical with telemetry on or off.
        """
        if isinstance(scenario, str):
            from repro.experiments.registry import get_scenario

            spec = get_scenario(scenario)
        else:
            spec = scenario
        tasks = expand_grid(spec)
        with obs_span(
            "scenario", scenario=spec.name, cells=len(tasks)
        ) as scenario_span:
            trace_root = (
                scenario_span.span_id if scenario_span is not None else None
            )
            result = self._run_grid(
                spec, tasks, progress, store, trace_root=trace_root
            )
        self._record_metrics(spec, result)
        return result

    def _run_grid(
        self,
        spec: ScenarioSpec,
        tasks: Sequence[RunTask],
        progress: Optional[Callable[[int, int], None]] = None,
        store=None,
        trace_root: Optional[int] = None,
    ) -> ExperimentResult:
        active_store = store if store is not None else self.store
        records: list[Optional[RunRecord]] = [None] * len(tasks)
        fingerprints: dict[int, str] = {}
        run_tasks: Sequence[RunTask] = tasks
        flushed = [0]
        on_record = None
        if active_store is not None:
            # Lazy import: repro.store imports this module at package
            # import time, so the reverse edge must not run at load.
            from repro.store.fingerprint import run_fingerprint

            fingerprints = {
                task.index: run_fingerprint(spec, task) for task in tasks
            }
            stored = active_store.fetch_records(fingerprints.values())
            missing = []
            for task in tasks:
                hit = stored.get(fingerprints[task.index])
                if hit is not None:
                    records[task.index] = hit
                else:
                    missing.append(task)
            run_tasks = tuple(missing)

            def on_record(index: int, record: RunRecord) -> None:
                # Flush each fresh ok record the moment it exists: a
                # SIGKILL mid-grid then loses only the in-flight cells,
                # and the requeued job's retry dedups the rest.
                if record.ok:
                    flushed[0] += active_store.put_records(
                        [(fingerprints[index], record)]
                    )

        hit_count = len(tasks) - len(run_tasks)
        if progress is not None and hit_count:
            progress(hit_count, len(tasks))
        processes = self.processes
        if processes is None:
            processes = os.cpu_count() or 1
            if self.parallel:
                processes = max(2, processes)
        use_parallel = (
            self.parallel and len(run_tasks) > 1 and processes > 1
            and not self._pool_broken
        )
        pool_reused = use_parallel and self._pool is not None
        start = time.perf_counter()
        stats: dict = {}
        if use_parallel:
            try:
                records, stats = self._run_parallel(
                    spec, run_tasks, processes, progress,
                    records=records, done=hit_count, total=len(tasks),
                    trace_root=trace_root, on_record=on_record,
                )
            except (OSError, PermissionError):
                # Sandboxes without working process pools: fall back for
                # good — retrying every run() would pay the failed-fork
                # cost each time.
                self._pool_broken = True
                self._teardown_pool()
                use_parallel = False
                pool_reused = False
        if not use_parallel:
            records, stats = self._run_serial(
                spec, run_tasks, progress,
                records=records, done=hit_count, total=len(tasks),
                on_record=on_record,
            )
        elapsed = time.perf_counter() - start
        if active_store is not None:
            stats["store"] = {
                "hits": hit_count,
                "misses": len(run_tasks),
                "stored": flushed[0],
            }
        stats["pool"] = {
            "used": use_parallel,
            "processes": self._pool_size if use_parallel else 1,
            "reused": pool_reused,
        }
        return ExperimentResult(
            spec=spec,
            records=tuple(records),
            elapsed_s=elapsed,
            parallel=use_parallel,
            stats=stats,
        )

    @staticmethod
    def _record_metrics(spec: ScenarioSpec, result: ExperimentResult) -> None:
        """Feed the global registry from the run's ``stats`` numbers.

        The registry is the cross-run view of the same telemetry that
        ``stats`` reports per result — callers of the PR 5 ``stats`` dict
        see exactly what they always did.
        """
        metrics = obs_registry()
        metrics.counter(
            "repro_runner_runs_total", "ExperimentRunner.run() calls"
        ).inc(scenario=spec.name)
        metrics.counter(
            "repro_runner_cells_total",
            "grid cells produced (store hits included)",
        ).inc(len(result.records), scenario=spec.name)
        metrics.histogram(
            "repro_runner_run_seconds", "wall-clock time per run() call"
        ).observe(result.elapsed_s)
        cache = result.stats.get("cache", {})
        metrics.counter(
            "repro_runner_cache_hits_total", "artifact-cache hits"
        ).inc(cache.get("hits", 0))
        metrics.counter(
            "repro_runner_cache_misses_total", "artifact-cache misses"
        ).inc(cache.get("misses", 0))
        phase_seconds = metrics.counter(
            "repro_runner_phase_seconds_total",
            "cumulative simulation time by phase",
        )
        phases = result.stats.get("phases", {})
        phase_seconds.inc(phases.get("prepare_s", 0.0), phase="prepare")
        phase_seconds.inc(phases.get("run_s", 0.0), phase="run")
        phase_seconds.inc(phases.get("payoff_s", 0.0), phase="payoff")
        pool = result.stats.get("pool", {})
        metrics.counter(
            "repro_runner_mode_total", "run() calls by execution mode"
        ).inc(mode="parallel" if pool.get("used") else "serial")

    def sweep(
        self,
        scenarios: Iterable[Union[str, ScenarioSpec]],
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> list[ExperimentResult]:
        return [self.run(scenario, progress=progress) for scenario in scenarios]

    def _run_serial(
        self,
        spec: ScenarioSpec,
        tasks: Sequence[RunTask],
        progress: Optional[Callable[[int, int], None]] = None,
        records: Optional[list] = None,
        done: int = 0,
        total: Optional[int] = None,
        on_record: Optional[Callable[[int, RunRecord], None]] = None,
    ) -> tuple[list[RunRecord], dict]:
        """Execute ``tasks``, placing each record at its grid index.

        ``records``/``done``/``total`` let a store-aware ``run()`` hand in
        a grid-sized list pre-filled with store hits: the subset executed
        here still lands at ``task.index``, and progress continues from
        the hits already reported. ``on_record`` fires once per freshly
        executed cell (the store's incremental flush hook).
        """
        if records is None:
            records = [None] * len(tasks)
        if total is None:
            total = len(tasks)
        phases = [0.0, 0.0, 0.0]
        before = (self._cache.hits, self._cache.misses)
        for task in tasks:
            record = execute_task(
                spec, task, self.timeout_s,
                cache=self._cache, phases=phases,
            )
            records[task.index] = record
            if on_record is not None:
                on_record(task.index, record)
            done += 1
            if progress is not None:
                progress(done, total)
        stats = {
            "cache": {
                "hits": self._cache.hits - before[0],
                "misses": self._cache.misses - before[1],
                "entries": len(self._cache),
            },
            "phases": {
                "prepare_s": phases[0],
                "run_s": phases[1],
                "payoff_s": phases[2],
            },
        }
        return records, stats

    def _run_parallel(
        self,
        spec: ScenarioSpec,
        tasks: Sequence[RunTask],
        processes: int,
        progress: Optional[Callable[[int, int], None]] = None,
        records: Optional[list] = None,
        done: int = 0,
        total: Optional[int] = None,
        trace_root: Optional[int] = None,
        on_record: Optional[Callable[[int, RunRecord], None]] = None,
    ) -> tuple[list[RunRecord], dict]:
        # Never fork more workers than the grid has cells (but at least 2
        # — a 1-worker "pool" is just slower serial).
        pool = self._ensure_pool(max(2, min(processes, len(tasks))))
        tracer = current_tracer()
        trace = tracer is not None
        payloads = [(spec, task, self.timeout_s, trace) for task in tasks]
        # Chunking amortizes IPC without starving workers at the tail;
        # order is restored from task indices afterwards, so records are
        # byte-identical to serial whatever the completion order.
        chunksize = max(1, min(16, len(tasks) // (processes * 4) or 1))
        if records is None:
            records = [None] * len(tasks)
        if total is None:
            total = len(tasks)
        phases = [0.0, 0.0, 0.0]
        hits = misses = 0
        span_buffers: dict[int, tuple] = {}
        for index, record, cell_stats, cell_spans in pool.imap_unordered(
            _pool_worker, payloads, chunksize=chunksize
        ):
            records[index] = record
            if on_record is not None:
                on_record(index, record)
            phases[0] += cell_stats[0]
            phases[1] += cell_stats[1]
            phases[2] += cell_stats[2]
            hits += cell_stats[3]
            misses += cell_stats[4]
            if cell_spans:
                span_buffers[index] = cell_spans
            done += 1
            if progress is not None:
                progress(done, total)
        if trace:
            # Merge in task-index order, not completion order: span ids
            # are remapped on merge, so the assembled trace structure is
            # deterministic no matter which worker finished first.
            for index in sorted(span_buffers):
                tracer.merge(list(span_buffers[index]), root_id=trace_root)
        stats = {
            "cache": {"hits": hits, "misses": misses},
            "phases": {
                "prepare_s": phases[0],
                "run_s": phases[1],
                "payoff_s": phases[2],
            },
            "chunksize": chunksize,
        }
        return records, stats


def run_scenario(
    scenario: Union[str, ScenarioSpec],
    parallel: bool = False,
    processes: Optional[int] = None,
    timeout_s: Optional[float] = None,
) -> ExperimentResult:
    """One-call convenience wrapper around :class:`ExperimentRunner`."""
    with ExperimentRunner(
        parallel=parallel, processes=processes, timeout_s=timeout_s
    ) as runner:
        return runner.run(scenario)
