"""The scenario registry: the paper's claims as named, runnable grids.

Each canonical scenario encodes one claim of AbrahamDGH19 (or one standard
comparison workload) as a :class:`~repro.experiments.spec.ScenarioSpec`.
``python -m repro scenarios`` lists them; ``python -m repro sweep <name>``
runs them; library users call :func:`get_scenario` /
:func:`register_scenario`.
"""

from __future__ import annotations

from typing import Callable, Iterator, Union

from repro.errors import ExperimentError
from repro.experiments.spec import ScenarioSpec

_SCENARIOS: dict[str, ScenarioSpec] = {}


def register_scenario(
    scenario: Union[ScenarioSpec, Callable[[], ScenarioSpec]]
) -> Union[ScenarioSpec, Callable[[], ScenarioSpec]]:
    """Register a spec, or decorate a zero-arg factory returning one."""
    spec = scenario() if callable(scenario) else scenario
    if not isinstance(spec, ScenarioSpec):
        raise ExperimentError(
            "register_scenario needs a ScenarioSpec or a factory returning one"
        )
    if spec.name in _SCENARIOS:
        raise ExperimentError(f"scenario {spec.name!r} is already registered")
    _SCENARIOS[spec.name] = spec
    return scenario


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scenario {name!r}; known scenarios: "
            f"{', '.join(scenario_names())}"
        ) from None


def scenario_names() -> list[str]:
    return sorted(_SCENARIOS)


def iter_scenarios() -> Iterator[ScenarioSpec]:
    for name in scenario_names():
        yield _SCENARIOS[name]


# ---------------------------------------------------------------------------
# Canonical scenarios (one per paper claim / comparison workload)
# ---------------------------------------------------------------------------

register_scenario(ScenarioSpec(
    name="thm41-honest",
    game="consensus",
    n=9,
    theorem="4.1",
    k=1,
    t=1,
    schedulers=("fifo", "random", "eager"),
    deviations=("honest",),
    seed_count=3,
    description="Thm 4.1 (n>4k+4t): honest play coordinates under every "
                "environment.",
))

register_scenario(ScenarioSpec(
    name="thm41-crash-liar",
    game="consensus",
    n=9,
    theorem="4.1",
    k=1,
    t=1,
    schedulers=("fifo", "random"),
    deviations=("honest", "crash+liar"),
    seed_count=2,
    description="Thm 4.1 tolerates k+t arbitrary deviators (crash + wrong "
                "shares).",
))

register_scenario(ScenarioSpec(
    name="thm42-epsilon",
    game="consensus",
    n=7,
    theorem="4.2",
    k=1,
    t=1,
    epsilon=1e-3,
    schedulers=("fifo", "random"),
    deviations=("honest", "lying-last"),
    seed_count=2,
    description="Thm 4.2 (n>3k+3t, ε via MAC field): liars are rejected.",
))

register_scenario(ScenarioSpec(
    name="thm44-punishment",
    game="consensus",
    n=8,
    theorem="4.4",
    k=1,
    t=1,
    schedulers=("fifo", "batch-random"),
    deviations=("honest", "stall-last"),
    seed_count=2,
    description="Thm 4.4 (n>3k+4t): punishment wills deter stalling.",
))

register_scenario(ScenarioSpec(
    name="thm45-punishment",
    game="consensus",
    n=6,
    theorem="4.5",
    k=1,
    t=0,
    epsilon=1e-3,
    schedulers=("fifo",),
    deviations=("honest", "stall-last"),
    seed_count=2,
    description="Thm 4.5 (n>2k+3t, ε): statistical substrate plus "
                "punishment wills.",
))

register_scenario(ScenarioSpec(
    name="r1-baseline",
    game="consensus",
    n=7,
    theorem="r1",
    k=1,
    t=1,
    seed_count=4,
    description="Synchronous R1 baseline at n>3k+3t (works where async "
                "Thm 4.1 refuses).",
))

register_scenario(ScenarioSpec(
    name="cost-asynchrony-sync",
    game="consensus",
    n=9,
    theorem="r1",
    k=1,
    t=1,
    seed_count=2,
    description="Cost of asynchrony, synchronous leg: R1 at n=9.",
))

register_scenario(ScenarioSpec(
    name="cost-asynchrony-async",
    game="consensus",
    n=9,
    theorem="4.1",
    k=1,
    t=1,
    schedulers=("fifo",),
    deviations=("honest",),
    seed_count=2,
    description="Cost of asynchrony, asynchronous leg: Thm 4.1 at n=9 "
                "(compare message counts with the sync leg).",
))

register_scenario(ScenarioSpec(
    name="thm41-timing-models",
    game="consensus",
    n=9,
    theorem="4.1",
    k=1,
    t=1,
    timings=("async", "lockstep", "bounded-4", "bounded-32"),
    schedulers=("fifo", "random"),
    deviations=("honest",),
    seed_count=2,
    description="Thm 4.1 across timing models: the async protocol still "
                "coordinates under lock-step rounds and bounded-delay "
                "partial synchrony.",
))

register_scenario(ScenarioSpec(
    name="mediator-honest",
    game="consensus",
    n=9,
    theorem="mediator",
    k=1,
    t=1,
    schedulers=("fifo", "random", "laggard-first"),
    deviations=("honest",),
    seed_count=3,
    description="The ideal mediator game itself (the target the cheap talk "
                "implements).",
))

register_scenario(ScenarioSpec(
    name="sec64-leak-attack",
    game="section64",
    n=7,
    theorem="mediator",
    k=2,
    t=0,
    mediator_variant="leaky-sec64",
    schedulers=("colluding",),
    deviations=("leak-attack",),
    seed_count=10,
    description="Sec 6.4 counterexample: leaky mediator + colluding "
                "environment converts 1.0-runs into 1.1.",
))

register_scenario(ScenarioSpec(
    name="sec64-leaky-honest",
    game="section64",
    n=7,
    theorem="mediator",
    k=2,
    t=0,
    mediator_variant="leaky-sec64",
    schedulers=("colluding",),
    deviations=("honest",),
    seed_count=10,
    description="Sec 6.4 leaky mediator, honest play under the colluding "
                "environment — the audit baseline the searched coalition "
                "attack must beat.",
))

register_scenario(ScenarioSpec(
    name="sec64-minimal-honest",
    game="section64",
    n=7,
    theorem="mediator",
    k=2,
    t=0,
    mediator_variant="minimal-sec64",
    schedulers=("colluding",),
    deviations=("honest",),
    seed_count=10,
    description="Sec 6.4 minimally-informative mediator, honest play — the "
                "audit baseline against which no searched deviation "
                "profits.",
))

register_scenario(ScenarioSpec(
    name="sec64-minimal-defense",
    game="section64",
    n=7,
    theorem="mediator",
    k=2,
    t=0,
    mediator_variant="minimal-sec64",
    schedulers=("colluding",),
    deviations=("leak-attack",),
    seed_count=10,
    description="Sec 6.4 fix: against the minimally-informative transform "
                "the identical attack earns nothing.",
))

register_scenario(ScenarioSpec(
    name="consensus-scaling",
    game="consensus",
    n=9,
    theorem="mediator",
    k=1,
    t=0,
    games=("consensus@n3", "consensus@n5", "consensus@n7", "consensus@n9"),
    schedulers=("fifo",),
    deviations=("honest",),
    seed_count=2,
    description="The games axis scanning game size: the ideal consensus "
                "mediator from n=3 to n=9 in one grid.",
))

register_scenario(ScenarioSpec(
    name="mediator-fuzz",
    game="random@n4s0",
    n=4,
    theorem="mediator",
    k=1,
    t=0,
    schedulers=("fifo",),
    deviations=("honest",),
    seed_count=3,
    description="Seeded random mediator game (the audit-fuzz baseline "
                "template: `repro audit fuzz` swaps the game per seed).",
))

register_scenario(ScenarioSpec(
    name="byz-agreement-thm41",
    game="byz-agreement",
    n=9,
    theorem="4.1",
    k=1,
    t=1,
    schedulers=("fifo", "random"),
    deviations=("honest",),
    seed_count=2,
    description="Byzantine agreement with input bits through the Thm 4.1 "
                "compiler (the introduction's motivating example).",
))

register_scenario(ScenarioSpec(
    name="chicken-mediator",
    game="chicken",
    n=2,
    theorem="mediator",
    k=1,
    t=0,
    schedulers=("fifo", "random"),
    deviations=("honest",),
    seed_count=6,
    description="Aumann's chicken under the correlated-equilibrium "
                "mediator (EGL comparison workload).",
))

# -- netcheck family: the real-network substrate vs. the simulated kernel --

register_scenario(ScenarioSpec(
    name="thm41-equivalence",
    game="consensus",
    n=9,
    theorem="4.1",
    k=1,
    t=1,
    schedulers=("fifo",),
    deviations=("honest",),
    seed_count=1,
    description="Netcheck reference cell: Thm 4.1 honest play, single "
                "fifo/seed leg. Run it as-is for the simulated kernel, or "
                "with --runtime net --latency ... for the asyncio "
                "substrate; payoffs and outcome taxonomy must match "
                "(invariant 9).",
))

register_scenario(ScenarioSpec(
    name="netcheck-thm41",
    game="consensus",
    n=9,
    theorem="4.1",
    k=1,
    t=1,
    schedulers=("fifo",),
    deviations=("honest", "crash+liar"),
    seed_count=2,
    runtime="net",
    latency="lognormal@m5s2",
    description="Thm 4.1 over the in-memory asyncio substrate under "
                "seeded lognormal latency — deterministic, and "
                "record-equivalent to the simulated kernel.",
))

register_scenario(ScenarioSpec(
    name="netcheck-sec64",
    game="section64",
    n=7,
    theorem="mediator",
    k=2,
    t=0,
    mediator_variant="minimal-sec64",
    schedulers=("fifo",),
    deviations=("honest",),
    seed_count=3,
    runtime="net",
    latency="gst-8-1@50",
    description="Sec 6.4 minimally-informative mediator over the wire: "
                "chaotic pre-GST latency settling to a fixed bound, same "
                "payoffs as the kernel's colluding-free baseline.",
))

register_scenario(ScenarioSpec(
    name="netcheck-tcp",
    game="consensus",
    n=5,
    theorem="4.1",
    k=1,
    t=0,
    schedulers=("fifo",),
    deviations=("honest",),
    seed_count=1,
    runtime="net-tcp",
    latency="fixed-2",
    description="n=5 localhost TCP smoke: every protocol message crosses "
                "a real socket; payoff/outcome parity with the simulated "
                "kernel (timing fields relaxed).",
))

# -- faultcheck family: the masking oracle's grids (repro faults check) --
#
# Every plan on these faults axes is *within budget* and must leave the
# honest players' records byte-identical to the fault-free leg; the
# over-budget plans expected to break live in
# repro.faults.masking.BREAKING_PLANS.

register_scenario(ScenarioSpec(
    name="faultcheck-thm41",
    game="consensus",
    n=9,
    theorem="4.1",
    k=1,
    t=1,
    schedulers=("fifo",),
    deviations=("honest",),
    seed_count=2,
    faults=(
        "none",
        "crash@p0s5",
        "crash@p0s5+crash@p8s9",
        "crash-restart@p2s6r40",
        "drop-0.05",
        "dup-0.1",
        "partition@{0,1}t10h60",
    ),
    description="Masking oracle, Thm 4.1 (n > 4k+4t): up to k+t crashes, "
                "a crash-restart, 5% loss, duplication, and a healed "
                "partition all leave honest records identical to the "
                "fault-free leg; k+t+1 crashes must break "
                "(`repro faults check`).",
))

register_scenario(ScenarioSpec(
    name="faultcheck-sec64",
    game="section64",
    n=7,
    theorem="mediator",
    k=2,
    t=0,
    mediator_variant="minimal-sec64",
    schedulers=("fifo",),
    deviations=("honest",),
    seed_count=2,
    faults=(
        "none",
        "crash@p0s5",
        "crash@p0s5+crash@p1s5",
    ),
    description="Masking oracle, Sec 6.4 mediator: up to k player crashes "
                "mask (the payoff table is flat in ≤k ⊥s), but crashing "
                "the mediator itself, a k+1-th crash, or mere 5% message "
                "loss breaks it — the single point of failure cheap talk "
                "removes (`repro faults check`).",
))

register_scenario(ScenarioSpec(
    name="raw-chicken-matrix",
    game="chicken",
    n=2,
    theorem="raw-game",
    k=1,
    t=0,
    action_profiles=(("D", "D"), ("D", "C"), ("C", "D"), ("C", "C")),
    description="The raw chicken payoff matrix (no simulation): the hull "
                "the correlated equilibrium beats.",
))
