"""Shamir secret sharing over GF(p).

Party ``pid`` evaluates at the fixed point ``x_of(pid) = pid + 1`` (zero is
reserved for the secret). Reconstruction comes in two strengths:

* :func:`reconstruct` — exact interpolation, for clean share sets;
* :func:`robust_reconstruct` — the online-error-correction wrapper used by
  asynchronous openings, which never returns a wrong polynomial as long as
  at most ``max_faulty`` of the provided shares are corrupted.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ProtocolError
from repro.field import GF, GFElement, Polynomial, lagrange_interpolate, robust_interpolate


def x_of(pid: int) -> int:
    """The evaluation point assigned to party ``pid``."""
    return pid + 1


def share_secret(
    field: GF, secret, degree: int, parties: Sequence[int], rng
) -> dict[int, GFElement]:
    """Deal a fresh degree-``degree`` sharing of ``secret``.

    Returns {pid: share}. Requires len(parties) > degree so the sharing is
    actually reconstructible.
    """
    if len(parties) <= degree:
        raise ProtocolError(
            f"cannot share at degree {degree} among {len(parties)} parties"
        )
    poly = Polynomial.random(field, degree, rng, constant=field(secret))
    return {pid: poly(x_of(pid)) for pid in parties}


def reconstruct(field: GF, shares: dict[int, GFElement], degree: int) -> GFElement:
    """Exact reconstruction from (at least) degree+1 clean shares."""
    items = sorted(shares.items())[: degree + 1]
    if len(items) < degree + 1:
        raise ProtocolError(
            f"need {degree + 1} shares to reconstruct degree {degree}, "
            f"got {len(items)}"
        )
    points = [(x_of(pid), y) for pid, y in items]
    return lagrange_interpolate(field, points)(0)


def robust_reconstruct(
    field: GF,
    shares: dict[int, GFElement],
    degree: int,
    total_parties: int,
    max_faulty: int,
) -> Optional[GFElement]:
    """Error-corrected reconstruction; ``None`` until enough shares arrived.

    Guaranteed never to return a wrong value when at most ``max_faulty``
    shares are corrupted (see :func:`repro.field.robust_interpolate`).
    """
    points = [(x_of(pid), y) for pid, y in sorted(shares.items())]
    poly = robust_interpolate(field, points, degree, total_parties, max_faulty)
    if poly is None:
        return None
    return poly(0)
