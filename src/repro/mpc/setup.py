"""Trusted offline setup: dealt masks, Beaver triples, randomness, MACs.

This module is the documented substitution (DESIGN.md §3) for the offline
subprotocols of BCG/BKR: a dealer — run *before* the asynchronous game
starts, and never again — deals

* an *input mask* ``r_p`` per input player p: a degree-t sharing of a random
  value whose cleartext is also given privately to p (the SPDZ-style input
  trick: p later broadcasts ``x_p − r_p``);
* one Beaver triple (degree-t sharings of a, b, ab) per multiplication gate;
* one shared random field element / bit per rand/randbit gate;
* pairwise information-theoretic MAC material (BDOZ-style): verifier j holds
  a global key α_j and per-(sender, base-value) offsets β; sender i holds
  the tag ``m = α_j · y_i + β`` for its share ``y_i`` of every base value.
  MACs are linear, so they extend to every wire of the circuit (each wire is
  an affine combination of base values, tracked by the engine).

The dealt material is *per-host*: :meth:`TrustedSetup.pack_for` returns what
one party may see. Malicious parties receive their packs too (the adversary
knows its own shares and keys), but honest packs never leave the honest
hosts — the simulation enforces this because packs live in process-local
config, which schedulers and other processes cannot read.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.circuits import Circuit
from repro.errors import ProtocolError
from repro.field import GF, GFElement, Polynomial
from repro.mpc.shamir import share_secret, x_of
from repro.utils.rng import derive_seed

BaseLabel = tuple
"""Labels: ("mask", player) | ("triple", k, "a"/"b"/"c") | ("rand", wire)
| ("randbit", wire)."""


@dataclass
class SetupPack:
    """The slice of setup material one party is allowed to hold."""

    pid: int
    shares: dict[BaseLabel, GFElement] = field(default_factory=dict)
    macs: dict[BaseLabel, dict[int, GFElement]] = field(default_factory=dict)
    """macs[label][j]: MAC on *my* share of label, verifiable by party j."""

    alpha: Optional[GFElement] = None
    """My global verification key (for checking others' shares)."""

    betas: dict[tuple[int, BaseLabel], GFElement] = field(default_factory=dict)
    """betas[(i, label)]: my offset key for party i's share of label."""

    private_values: dict[BaseLabel, GFElement] = field(default_factory=dict)
    """Cleartext values whispered to me alone (my input mask)."""

    coin_seed: int = 0


class TrustedSetup:
    """Deal everything a circuit evaluation will consume."""

    def __init__(
        self,
        field_: GF,
        parties: Sequence[int],
        t: int,
        seed: int = 0,
        with_macs: bool = True,
    ) -> None:
        self.field = field_
        self.parties = list(parties)
        self.t = t
        self.with_macs = with_macs
        self._rng = random.Random(derive_seed(seed, "trusted-setup"))
        self.coin_seed = derive_seed(seed, "coin")
        self._packs: dict[int, SetupPack] = {
            pid: SetupPack(pid=pid, coin_seed=self.coin_seed) for pid in self.parties
        }
        if with_macs:
            for pid in self.parties:
                self._packs[pid].alpha = self.field.random(self._rng)
        self.base_values: dict[BaseLabel, GFElement] = {}

    # -- dealing ---------------------------------------------------------------

    def deal_base(
        self, label: BaseLabel, value=None, bit: bool = False,
        modulus: Optional[int] = None,
    ) -> GFElement:
        """Deal one degree-t sharing (with MACs) of ``value`` (random if None)."""
        if label in self.base_values:
            raise ProtocolError(f"base value {label!r} already dealt")
        if value is None:
            if bit:
                value = self.field(self._rng.randrange(2))
            elif modulus is not None:
                value = self.field(self._rng.randrange(modulus))
            else:
                value = self.field.random(self._rng)
        value = self.field(value)
        self.base_values[label] = value
        shares = share_secret(self.field, value, self.t, self.parties, self._rng)
        for pid, y in shares.items():
            self._packs[pid].shares[label] = y
        if self.with_macs:
            for verifier in self.parties:
                alpha = self._packs[verifier].alpha
                for sender in self.parties:
                    beta = self.field.random(self._rng)
                    self._packs[verifier].betas[(sender, label)] = beta
                    mac = alpha * shares[sender] + beta
                    self._packs[sender].macs.setdefault(label, {})[verifier] = mac
        return value

    def deal_input_mask(self, player: int) -> None:
        value = self.deal_base(("mask", player))
        self._packs[player].private_values[("mask", player)] = value

    def deal_triple(self, index: int) -> None:
        a = self.deal_base(("triple", index, "a"))
        b = self.deal_base(("triple", index, "b"))
        self.deal_base(("triple", index, "c"), value=a * b)

    def deal_for_circuit(self, circuit: Circuit) -> None:
        """Deal everything ``circuit`` consumes (masks, triples, randomness)."""
        for player in circuit.input_players():
            self.deal_input_mask(player)
        mul_index = 0
        for wire, gate in enumerate(circuit.gates):
            if gate.op == "mul":
                self.deal_triple(mul_index)
                mul_index += 1
            elif gate.op == "rand":
                self.deal_base(("rand", wire))
            elif gate.op == "randbit":
                self.deal_base(("randbit", wire), bit=True)
            elif gate.op == "randint":
                self.deal_base(("randint", wire), modulus=gate.param)

    # -- distribution -------------------------------------------------------------

    def pack_for(self, pid: int) -> SetupPack:
        if pid not in self._packs:
            raise ProtocolError(f"party {pid} unknown to setup")
        return self._packs[pid]

    def host_config(self, pid: int) -> dict:
        """Config fragment to merge into a SessionHost's config."""
        return {
            "setup": self.pack_for(pid),
            "coin_seed": self.coin_seed,
            "t": self.t,
            "field": self.field,
        }
