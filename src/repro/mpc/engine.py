"""The asynchronous MPC engine: evaluates a circuit on shared state.

One :class:`MpcEngine` session runs per party per circuit evaluation. The
dataflow follows BCG/BKR:

1. **Input phase.** Every input player broadcasts (via reliable broadcast)
   the difference δ_p = x_p − r_p between its input and its dealt mask; the
   parties run ACS to agree on the set S of players whose broadcast
   completed. Input wires become [x_p] = [r_p] + δ_p for p ∈ S and the
   public default for p ∉ S. (No honest player is ever excluded *silently*:
   ACS guarantees |S| ≥ n − t and RBC totality delivers δ_p for all p ∈ S.)

2. **Evaluation.** Every wire is an *affine combination* of dealt base
   values (masks, triple components, shared randomness) plus a public
   constant — linear gates are local bookkeeping; multiplications consume a
   Beaver triple and two public openings (d = x − a, e = y − b), after which
   [xy] = de + d[b] + e[a] + [c] is again affine.

3. **Openings.** mode ``"bcg"`` (t < n/4): shares are collected and decoded
   with online Berlekamp–Welch error correction — wrong shares from up to t
   parties are corrected, never trusted. mode ``"bkr"`` (t < n/3): every
   share arrives with its pairwise information-theoretic MAC; the receiver
   verifies against its keys and reconstructs from any t+1 *verified*
   shares (a forged share passes with probability 2/|F|).

4. **Outputs.** Each output wire is opened privately to its recipient. The
   session finishes with {output label: int value} once all local outputs
   are reconstructed (other parties' openings keep being served afterwards).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.broadcast.base import Session, register_session
from repro.circuits import Circuit
from repro.errors import ProtocolError
from repro.field import GF, GFElement, lagrange_interpolate
from repro.mpc.setup import SetupPack
from repro.mpc.shamir import robust_reconstruct, x_of


def mpc_sid(tag: Any) -> tuple:
    return ("mpc", tag)


@dataclass(frozen=True)
class WireShare:
    """An affine combination of dealt base values plus a public constant."""

    combo: tuple[tuple[Any, GFElement], ...]
    const: GFElement

    @staticmethod
    def constant(field: GF, value) -> "WireShare":
        return WireShare((), field(value))

    @staticmethod
    def base(field: GF, label, coeff=1) -> "WireShare":
        return WireShare(((label, field(coeff)),), field.zero())

    def _merge(self, other: "WireShare", sign: int) -> "WireShare":
        acc: dict[Any, GFElement] = dict(self.combo)
        for label, coeff in other.combo:
            signed = coeff if sign > 0 else -coeff
            if label in acc:
                acc[label] = acc[label] + signed
            else:
                acc[label] = signed
        combo = tuple(
            (label, coeff) for label, coeff in acc.items() if coeff.value != 0
        )
        const = self.const + other.const if sign > 0 else self.const - other.const
        return WireShare(combo, const)

    def __add__(self, other: "WireShare") -> "WireShare":
        return self._merge(other, +1)

    def __sub__(self, other: "WireShare") -> "WireShare":
        return self._merge(other, -1)

    def scale(self, scalar: GFElement) -> "WireShare":
        if scalar.value == 0:
            return WireShare((), scalar)
        return WireShare(
            tuple((label, coeff * scalar) for label, coeff in self.combo),
            self.const * scalar,
        )

    def shift(self, scalar: GFElement) -> "WireShare":
        return WireShare(self.combo, self.const + scalar)

    def my_value(self, pack: SetupPack) -> GFElement:
        value = self.const
        for label, coeff in self.combo:
            share = pack.shares.get(label)
            if share is None:
                raise ProtocolError(f"setup pack lacks share for {label!r}")
            value = value + coeff * share
        return value

    def my_mac_for(self, verifier: int, pack: SetupPack) -> GFElement:
        """MAC on my share of this wire, checkable by ``verifier``."""
        total = None
        for label, coeff in self.combo:
            mac = pack.macs.get(label, {}).get(verifier)
            if mac is None:
                raise ProtocolError(f"setup pack lacks MAC for {label!r}")
            term = coeff * mac
            total = term if total is None else total + term
        if total is None:
            total = self.const.field.zero() if hasattr(self.const, "field") else None
        return total if total is not None else self.const * 0

    def verify_mac(
        self, sender: int, value: GFElement, mac: GFElement, pack: SetupPack
    ) -> bool:
        """Check ``sender``'s claimed share of this wire against my keys."""
        expected = pack.alpha * (value - self.const)
        offset = None
        for label, coeff in self.combo:
            beta = pack.betas.get((sender, label))
            if beta is None:
                return False
            term = coeff * beta
            offset = term if offset is None else offset + term
        if offset is not None:
            expected = expected + offset
        return mac == expected


class _Opening:
    """State of one (public or private) opening."""

    __slots__ = ("mine", "contributions", "value", "private_to", "announced")

    def __init__(self, private_to: Optional[int]) -> None:
        self.mine: Optional[WireShare] = None
        self.contributions: dict[int, tuple[GFElement, Optional[GFElement]]] = {}
        self.value: Optional[GFElement] = None
        self.private_to = private_to
        self.announced = False


@register_session("mpc")
class MpcEngine(Session):
    """One party's endpoint of a circuit evaluation."""

    def __init__(self, host, sid) -> None:
        super().__init__(host, sid)
        self.circuit: Circuit = self.config("circuit")
        if self.circuit is None:
            raise ProtocolError("host config lacks 'circuit'")
        self.field: GF = self.config("field")
        self.mode: str = self.config("engine_mode", "bcg")
        self.pack: SetupPack = self.config("setup")
        if self.pack is None:
            raise ProtocolError("host config lacks 'setup' pack")
        self._check_bounds()

        self.input_players = self.circuit.input_players()
        self.deltas: dict[int, GFElement] = {}
        self.agreed_inputs: Optional[tuple[int, ...]] = None
        self.wires: list[Optional[WireShare]] = [None] * self.circuit.size
        self.openings: dict[Any, _Opening] = {}
        self._mul_index: dict[int, int] = {}
        self._assign_triples()
        self.my_outputs = {
            out.label: None for out in self.circuit.outputs if out.player == self.me
        }
        self._output_requested: set[str] = set()

    # -- setup ------------------------------------------------------------------

    def _check_bounds(self) -> None:
        """Enforce soundness bounds.

        ``bcg`` openings are *sound* (never reconstruct a wrong value) as
        long as the error-correction agreement threshold 2t+1 is reachable
        from honest shares alone, i.e. n > 3t. Guaranteed liveness against
        t parties that simultaneously stall *and* lie needs n > 4t — the
        Theorem 4.1 regime; the punishment-based compilers (Theorem 4.4)
        deliberately run at 3t < n ≤ 4t, where a coalition can force a
        deadlock but never a wrong output, and deadlock is deterred by the
        wills. ``bkr`` reconstruction takes t+1 MAC-verified shares out of
        n − t ≥ 2t+1 honest ones, so n > 3t covers both soundness and
        honest-path liveness (RBC/ABA also need n > 3t).
        """
        n, t = self.n, self.t
        if self.mode not in ("bcg", "bkr"):
            raise ProtocolError(f"unknown engine mode {self.mode!r}")
        if n <= 3 * t and t > 0:
            raise ProtocolError(
                f"{self.mode} engine needs n > 3t (n={n}, t={t})"
            )

    def _assign_triples(self) -> None:
        k = 0
        for wire, gate in enumerate(self.circuit.gates):
            if gate.op == "mul":
                self._mul_index[wire] = k
                k += 1

    # -- session lifecycle ----------------------------------------------------------

    def start(self) -> None:
        self.circuit.validate()
        acs = self.host.open_session(("acs", (self.sid, "inputs")))
        self.host.await_session(("acs", (self.sid, "inputs")), self._on_acs)
        for p in self.peers:
            if p not in self.input_players:
                acs.provide_input(p)
        for p in self.input_players:
            rbc_sid = ("rbc", p, (self.sid, "delta"))
            self.host.await_session(rbc_sid, self._on_delta)
        if self.me in self.input_players:
            my_input = self.config("mpc_input")
            if my_input is None:
                raise ProtocolError(f"party {self.me} has no 'mpc_input'")
            mask = self.pack.private_values.get(("mask", self.me))
            if mask is None:
                raise ProtocolError(f"party {self.me} lacks its input mask")
            delta = self.field(my_input) - mask
            rbc = self.host.open_session(("rbc", self.me, (self.sid, "delta")))
            rbc.input(int(delta))

    def _on_delta(self, sid: tuple, value: Any) -> None:
        dealer = sid[1]
        self.deltas[dealer] = self.field(int(value))
        acs = self.host.open_session(("acs", (self.sid, "inputs")))
        acs.provide_input(dealer)
        self._pump()

    def _on_acs(self, sid: tuple, subset: tuple) -> None:
        self.agreed_inputs = subset
        self._pump()

    # -- wire evaluation ---------------------------------------------------------------

    def _input_wire(self, player: int) -> Optional[WireShare]:
        if self.agreed_inputs is None:
            return None
        if player in self.agreed_inputs:
            delta = self.deltas.get(player)
            if delta is None:
                return None  # RBC totality will deliver it
            return WireShare.base(self.field, ("mask", player)).shift(delta)
        defaults = self.config("default_inputs", {})
        return WireShare.constant(self.field, defaults.get(player, 0))

    def _resolve_gate(self, wire: int) -> Optional[WireShare]:
        gate = self.circuit.gates[wire]
        op = gate.op
        if op == "input":
            return self._input_wire(gate.param)
        if op == "const":
            return WireShare.constant(self.field, gate.param)
        if op in ("add", "sub"):
            a, b = self.wires[gate.args[0]], self.wires[gate.args[1]]
            if a is None or b is None:
                return None
            return a + b if op == "add" else a - b
        if op == "smul":
            a = self.wires[gate.args[0]]
            return None if a is None else a.scale(gate.param)
        if op == "sadd":
            a = self.wires[gate.args[0]]
            return None if a is None else a.shift(gate.param)
        if op == "rand":
            return WireShare.base(self.field, ("rand", wire))
        if op == "randbit":
            return WireShare.base(self.field, ("randbit", wire))
        if op == "randint":
            return WireShare.base(self.field, ("randint", wire))
        if op == "mul":
            return self._resolve_mul(wire, gate)
        raise ProtocolError(f"unknown gate op {op!r}")  # pragma: no cover

    def _resolve_mul(self, wire: int, gate) -> Optional[WireShare]:
        x, y = self.wires[gate.args[0]], self.wires[gate.args[1]]
        if x is None or y is None:
            return None
        k = self._mul_index[wire]
        a = WireShare.base(self.field, ("triple", k, "a"))
        b = WireShare.base(self.field, ("triple", k, "b"))
        c = WireShare.base(self.field, ("triple", k, "c"))
        d_key = ("mul", wire, "d")
        e_key = ("mul", wire, "e")
        self._ensure_open(d_key, x - a)
        self._ensure_open(e_key, y - b)
        d = self.openings[d_key].value
        e = self.openings[e_key].value
        if d is None or e is None:
            return None
        return (
            b.scale(d) + a.scale(e) + c
        ).shift(d * e)

    # -- openings ----------------------------------------------------------------------

    def _opening(self, key: Any, private_to: Optional[int] = None) -> _Opening:
        opening = self.openings.get(key)
        if opening is None:
            opening = _Opening(private_to)
            self.openings[key] = opening
        return opening

    def _ensure_open(self, key: Any, share: WireShare,
                     private_to: Optional[int] = None) -> None:
        opening = self._opening(key, private_to)
        if opening.announced:
            return
        opening.announced = True
        opening.mine = share
        value = share.my_value(self.pack)
        recipients = [private_to] if private_to is not None else self.peers
        for recipient in recipients:
            mac: Optional[GFElement] = None
            if self.mode == "bkr":
                mac = share.my_mac_for(recipient, self.pack)
            self.send(
                recipient,
                ("osh", key, int(value), None if mac is None else int(mac)),
            )
        self._try_resolve(key)

    def handle(self, sender: int, payload: Any) -> None:
        if not isinstance(payload, tuple) or payload[0] != "osh":
            return  # unknown message shape: ignore (Byzantine noise)
        _, key, value, mac = payload
        if not isinstance(value, int):
            return
        opening = self._opening(key)
        if sender not in opening.contributions:
            opening.contributions[sender] = (
                self.field(value),
                None if mac is None else self.field(mac),
            )
        self._try_resolve(key)
        self._pump()

    def _try_resolve(self, key: Any) -> None:
        opening = self.openings[key]
        if opening.value is not None or opening.mine is None:
            return
        if opening.private_to is not None and opening.private_to != self.me:
            return
        shares: dict[int, GFElement] = {}
        if self.mode == "bkr":
            for sender, (value, mac) in opening.contributions.items():
                if sender == self.me:
                    continue
                if mac is None:
                    continue
                if opening.mine.verify_mac(sender, value, mac, self.pack):
                    shares[sender] = value
            shares[self.me] = opening.mine.my_value(self.pack)
            if len(shares) >= self.t + 1:
                points = [(x_of(pid), y) for pid, y in sorted(shares.items())]
                poly = lagrange_interpolate(self.field, points[: self.t + 1])
                opening.value = poly(0)
        elif self.config("naive_openings", False):
            # Ablation mode (DESIGN.md §6): trust the first t+1 shares and
            # interpolate exactly, with no error correction. A single
            # wrong-share adversary corrupts the opening — the benchmarks
            # use this to show why robust decoding is load-bearing.
            for sender, (value, _mac) in sorted(opening.contributions.items()):
                shares[sender] = value
            shares[self.me] = opening.mine.my_value(self.pack)
            if len(shares) >= self.t + 1:
                points = [(x_of(pid), y) for pid, y in sorted(shares.items())]
                poly = lagrange_interpolate(self.field, points[: self.t + 1])
                opening.value = poly(0)
        else:
            for sender, (value, _mac) in opening.contributions.items():
                shares[sender] = value
            shares[self.me] = opening.mine.my_value(self.pack)
            opening.value = robust_reconstruct(
                self.field, shares, self.t, len(self.peers), self.t
            )

    # -- the pump -------------------------------------------------------------------------

    def _pump(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for wire in range(self.circuit.size):
                if self.wires[wire] is not None:
                    continue
                resolved = self._resolve_gate(wire)
                if resolved is not None:
                    self.wires[wire] = resolved
                    progressed = True
            for out in self.circuit.outputs:
                share = self.wires[out.wire]
                if share is None or out.label in self._output_requested:
                    continue
                self._output_requested.add(out.label)
                self._ensure_open(("out", out.label), share, private_to=out.player)
                progressed = True
            for out in self.circuit.outputs:
                if out.player != self.me or self.my_outputs[out.label] is not None:
                    continue
                opening = self.openings.get(("out", out.label))
                if opening is not None and opening.value is not None:
                    self.my_outputs[out.label] = int(opening.value)
                    progressed = True
        if (
            not self.finished
            and self.agreed_inputs is not None
            and all(v is not None for v in self.my_outputs.values())
        ):
            self.finish(dict(self.my_outputs))
