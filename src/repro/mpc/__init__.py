"""Asynchronous secure multiparty computation substrate.

Two engines evaluate :class:`repro.circuits.Circuit` objects over
secret-shared state:

* :class:`MpcEngine` in mode ``"bcg"`` — the errorless t < n/4 engine in the
  style of Ben-Or–Canetti–Goldreich: openings are Berlekamp–Welch
  error-corrected, so up to t parties sending wrong shares are simply
  corrected away and output delivery is guaranteed.
* mode ``"bkr"`` — the statistical t < n/3 engine in the style of
  Ben-Or–Kelmer–Rabin: every dealt share carries pairwise
  information-theoretic MACs; wrong shares are *rejected* (forgery
  probability 2/|F| per attempt), and reconstruction uses any t+1 verified
  shares.

Offline material (input masks, Beaver triples, shared randomness, MAC keys)
comes from :class:`TrustedSetup` — the documented substitution for the
papers' offline subprotocols (DESIGN.md §3).
"""

from repro.mpc.shamir import share_secret, reconstruct, robust_reconstruct, x_of
from repro.mpc.setup import TrustedSetup, SetupPack
from repro.mpc.engine import MpcEngine, mpc_sid
from repro.mpc.avss import AsyncVerifiableSS, avss_sid

__all__ = [
    "share_secret",
    "reconstruct",
    "robust_reconstruct",
    "x_of",
    "TrustedSetup",
    "SetupPack",
    "MpcEngine",
    "mpc_sid",
    "AsyncVerifiableSS",
    "avss_sid",
]
