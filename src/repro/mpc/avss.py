"""Asynchronous verifiable secret sharing (bivariate echo protocol, t < n/4).

Sid shape: ``("avss", dealer, tag)``. The dealer embeds its secret in a
random *symmetric* bivariate polynomial F of degree t in each variable
(``F(0,0) = secret``) and sends party p its row ``f_p(y) = F(x_p, y)``.
Parties echo evaluation points to each other (``f_i(x_j) = f_j(x_i)`` by
symmetry), send READY — carrying their full row — once their row matches
``3t+1`` echo points, and complete with share ``f_p(0)`` upon ``2t+1``
READYs. A party whose row never arrives recovers it from any pairwise-
consistent subset of ``2t+1`` READY rows (such a subset lies on a single
bivariate polynomial by the standard pairwise-consistency lemma).

Guarantees, under the adversary model exercised by our deviation library
(crash / omission / selective dealers, arbitrary wrong points and READY
rows from up to t non-dealer parties):

* honest dealer ⇒ every honest party completes, with correct shares, under
  every (fair) scheduler;
* no honest party completes with a share inconsistent with the web of
  honest rows;
* totality: if one honest party completes, all honest parties do.

The full BCG machinery for arbitrarily inconsistent dealers (consistency-
graph clique finding) is *not* reproduced; the MPC engines therefore take
their inputs through the dealt-mask + reliable-broadcast path instead
(DESIGN.md §3), and AVSS stands as an independently tested substrate.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.broadcast.base import Session, register_session
from repro.errors import ProtocolError
from repro.field import GF, GFElement, Polynomial, lagrange_interpolate
from repro.mpc.shamir import x_of


def avss_sid(dealer: int, tag: Any) -> tuple:
    return ("avss", dealer, tag)


def avss_open_sid(dealer: int, tag: Any) -> tuple:
    return ("avss-open", dealer, tag)


@register_session("avss-open")
class AvssReconstruction(Session):
    """Public reconstruction of an AVSS-shared secret.

    Each party contributes its share (call :meth:`contribute`, typically
    from an ``await_session`` callback on the AVSS completion); shares are
    exchanged and decoded with online error correction, so up to t wrong
    shares are tolerated at n > 4t (and detected-but-waiting at n > 3t).
    """

    def __init__(self, host, sid) -> None:
        super().__init__(host, sid)
        self.field: GF = self.config("field")
        if self.field is None:
            raise ProtocolError("host config lacks 'field' for reconstruction")
        self.shares: dict[int, GFElement] = {}
        self.sent = False

    def contribute(self, share) -> None:
        if self.sent:
            return
        self.sent = True
        self.send_all(("share", int(share)))

    def handle(self, sender: int, payload: Any) -> None:
        if not isinstance(payload, tuple) or payload[0] != "share":
            return
        if sender in self.shares or not isinstance(payload[1], int):
            return
        self.shares[sender] = self.field(payload[1])
        if self.finished:
            return
        from repro.field import robust_interpolate
        from repro.mpc.shamir import x_of as _x

        points = [(_x(pid), y) for pid, y in sorted(self.shares.items())]
        poly = robust_interpolate(
            self.field, points, self.t, len(self.peers), self.t
        )
        if poly is not None:
            self.finish(int(poly(0)))


def deal_symmetric_bivariate(field: GF, secret, t: int, rng) -> list[list[GFElement]]:
    """Coefficient matrix c[i][j] of a random symmetric F with F(0,0)=secret."""
    size = t + 1
    coeffs = [[field.zero()] * size for _ in range(size)]
    for i in range(size):
        for j in range(i, size):
            value = field.random(rng)
            coeffs[i][j] = value
            coeffs[j][i] = value
    coeffs[0][0] = field(secret)
    return coeffs


def row_polynomial(field: GF, coeffs: list[list[GFElement]], x: int) -> Polynomial:
    """f_x(y) = F(x, y) for the given coefficient matrix."""
    xe = field(x)
    out = []
    for j in range(len(coeffs)):
        acc = field.zero()
        xpow = field.one()
        for i in range(len(coeffs)):
            acc = acc + coeffs[i][j] * xpow
            xpow = xpow * xe
        out.append(acc)
    return Polynomial(field, tuple(out)).normalized()


@register_session("avss")
class AsyncVerifiableSS(Session):
    """One endpoint of an AVSS instance."""

    def __init__(self, host, sid) -> None:
        super().__init__(host, sid)
        _, self.dealer, self.tag = sid
        self.field: GF = self.config("field")
        if self.field is None:
            raise ProtocolError("host config lacks 'field' for AVSS")
        self.row: Optional[Polynomial] = None
        self.points: dict[int, GFElement] = {}
        self.ready_rows: dict[int, Polynomial] = {}
        self.sent_points = False
        self.sent_ready = False

    # -- dealer ------------------------------------------------------------------

    def input(self, secret) -> None:
        if self.me != self.dealer:
            raise ProtocolError("only the dealer inputs to AVSS")
        coeffs = deal_symmetric_bivariate(self.field, secret, self.t, self.rng)
        for p in self.peers:
            row = row_polynomial(self.field, coeffs, x_of(p))
            self.send(p, ("row", tuple(int(c) for c in row.coeffs)))

    # -- protocol ------------------------------------------------------------------

    def _adopt_row(self, row: Polynomial) -> None:
        if self.row is not None:
            return
        self.row = row
        if not self.sent_points:
            self.sent_points = True
            for p in self.peers:
                self.send(p, ("pt", int(self.row(x_of(p)))))
        self._progress()

    def handle(self, sender: int, payload: Any) -> None:
        kind = payload[0]
        if kind == "row":
            if sender != self.dealer:
                return
            coeffs = payload[1]
            if not isinstance(coeffs, tuple) or len(coeffs) > self.t + 1:
                return
            self._adopt_row(
                Polynomial(self.field, tuple(self.field(c) for c in coeffs))
            )
        elif kind == "pt":
            if sender not in self.points and isinstance(payload[1], int):
                self.points[sender] = self.field(payload[1])
                self._progress()
        elif kind == "ready":
            coeffs = payload[1]
            if sender in self.ready_rows or not isinstance(coeffs, tuple):
                return
            if len(coeffs) > self.t + 1:
                return
            self.ready_rows[sender] = Polynomial(
                self.field, tuple(self.field(c) for c in coeffs)
            )
            self._progress()

    # -- state machine -----------------------------------------------------------------

    def _matches(self) -> int:
        assert self.row is not None
        count = 0
        for sender, value in self.points.items():
            if self.row(x_of(sender)) == value:
                count += 1
        return count

    def _progress(self) -> None:
        if self.row is None and len(self.ready_rows) >= 2 * self.t + 1:
            recovered = self._recover_row()
            if recovered is not None:
                self._adopt_row(recovered)
                return
        if self.row is not None and not self.sent_ready:
            if self._matches() >= 3 * self.t + 1:
                self.sent_ready = True
                self.send_all(
                    ("ready", tuple(int(c) for c in self.row.coeffs))
                )
        if (
            self.row is not None
            and len(self.ready_rows) >= 2 * self.t + 1
            and not self.finished
        ):
            self.finish(int(self.row(0)))

    def _recover_row(self) -> Optional[Polynomial]:
        """Find 2t+1 pairwise-consistent READY rows; interpolate my row."""
        ids = sorted(self.ready_rows)
        need = 2 * self.t + 1
        for subset in itertools.combinations(ids, need):
            rows = {i: self.ready_rows[i] for i in subset}
            consistent = all(
                rows[a](x_of(b)) == rows[b](x_of(a))
                for a, b in itertools.combinations(subset, 2)
            )
            if not consistent:
                continue
            points = [(x_of(i), rows[i](x_of(self.me))) for i in subset]
            return lagrange_interpolate(self.field, points[: self.t + 1])
        return None
