"""Synchronous BGW-style MPC engine (the R1 baseline substrate).

Evaluates the same :class:`repro.circuits.Circuit` objects as the
asynchronous engines, but in lock-step rounds over the synchronous runtime:

* round 0 — every input player broadcasts δ_p = x_p − r_p over the model's
  broadcast channel (no RBC needed: synchrony grants agreement);
* one round per multiplication *layer* — parties exchange their d = x − a
  and e = y − b shares for every multiplication in the layer; reconstruction
  uses Berlekamp–Welch error correction, so t < n/3 wrong shares are
  corrected (the sync model receives all honest shares every round, which
  is why the synchronous bound is a full k+t better than Theorem 4.1's);
* final round — output shares are sent privately to their recipients.

Shares, triples, randomness, and the affine wire representation are shared
with the asynchronous engines (:class:`~repro.mpc.engine.WireShare`,
:class:`~repro.mpc.setup.TrustedSetup`).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.circuits import Circuit
from repro.errors import ProtocolError
from repro.field import GF
from repro.mpc.engine import WireShare
from repro.mpc.setup import SetupPack
from repro.mpc.shamir import robust_reconstruct, x_of
from repro.sim.sync import SyncContext, SyncProcess


def multiplication_layers(circuit: Circuit) -> list[list[int]]:
    """Group mul gates by multiplicative depth (wires of earlier layers
    plus linear combinations feed later layers)."""
    depth = [0] * circuit.size
    layers: dict[int, list[int]] = {}
    for wire, gate in enumerate(circuit.gates):
        arg_depth = max((depth[a] for a in gate.args), default=0)
        if gate.op == "mul":
            depth[wire] = arg_depth + 1
            layers.setdefault(arg_depth + 1, []).append(wire)
        else:
            depth[wire] = arg_depth
    return [layers[d] for d in sorted(layers)]


class BgwParty(SyncProcess):
    """One party of the synchronous engine."""

    def __init__(
        self,
        pid: int,
        n: int,
        t: int,
        field: GF,
        circuit: Circuit,
        pack: SetupPack,
        my_input: Optional[int],
        default_inputs: dict[int, int],
    ) -> None:
        if n <= 3 * t and t > 0:
            raise ProtocolError(f"bgw engine needs n > 3t (n={n}, t={t})")
        self.pid = pid
        self.n = n
        self.t = t
        self.field = field
        self.circuit = circuit
        self.pack = pack
        self.my_input = my_input
        self.default_inputs = default_inputs
        self.deltas: dict[int, Any] = {}
        self.wires: list[Optional[WireShare]] = [None] * circuit.size
        self.layers = multiplication_layers(circuit)
        self.layer_index = 0
        self.opened: dict[tuple, Any] = {}
        self._mul_triple: dict[int, int] = {}
        k = 0
        for wire, gate in enumerate(circuit.gates):
            if gate.op == "mul":
                self._mul_triple[wire] = k
                k += 1
        self.result: Optional[dict[str, int]] = None
        self._out_shares: dict[str, dict[int, Any]] = {}
        self._outputs_sent = False

    # -- linear evaluation up to the current frontier -----------------------

    def _evaluate_available(self) -> None:
        for wire, gate in enumerate(self.circuit.gates):
            if self.wires[wire] is not None:
                continue
            op = gate.op
            if op == "input":
                if gate.param in self.deltas:
                    self.wires[wire] = WireShare.base(
                        self.field, ("mask", gate.param)
                    ).shift(self.deltas[gate.param])
                continue
            if op == "const":
                self.wires[wire] = WireShare.constant(self.field, gate.param)
            elif op in ("add", "sub"):
                a, b = self.wires[gate.args[0]], self.wires[gate.args[1]]
                if a is not None and b is not None:
                    self.wires[wire] = a + b if op == "add" else a - b
            elif op == "smul":
                a = self.wires[gate.args[0]]
                if a is not None:
                    self.wires[wire] = a.scale(gate.param)
            elif op == "sadd":
                a = self.wires[gate.args[0]]
                if a is not None:
                    self.wires[wire] = a.shift(gate.param)
            elif op in ("rand", "randbit", "randint"):
                self.wires[wire] = WireShare.base(self.field, (op, wire))
            elif op == "mul":
                d = self.opened.get(("d", wire))
                e = self.opened.get(("e", wire))
                if d is None or e is None:
                    continue
                k = self._mul_triple[wire]
                a = WireShare.base(self.field, ("triple", k, "a"))
                b = WireShare.base(self.field, ("triple", k, "b"))
                c = WireShare.base(self.field, ("triple", k, "c"))
                self.wires[wire] = (b.scale(d) + a.scale(e) + c).shift(d * e)

    # -- round protocol ------------------------------------------------------

    def on_round(self, ctx: SyncContext, inbox: list[tuple[int, Any]]) -> None:
        collected: dict[tuple, dict[int, Any]] = {}
        for sender, payload in inbox:
            if not isinstance(payload, tuple):
                continue
            kind = payload[0]
            if kind == "delta":
                self.deltas[payload[1]] = self.field(int(payload[2]))
            elif kind == "dsh":
                _, key, value = payload
                collected.setdefault(tuple(key), {})[sender] = self.field(
                    int(value)
                )
            elif kind == "osh":
                _, label, value = payload
                self._out_shares.setdefault(label, {})[sender] = self.field(
                    int(value)
                )

        for key, shares in collected.items():
            if key in self.opened:
                continue
            value = robust_reconstruct(
                self.field, shares, self.t, self.n, self.t
            )
            if value is None:
                raise ProtocolError(
                    f"sync opening {key} unreconstructible (round {ctx.round})"
                )
            self.opened[key] = value

        if ctx.round == 0:
            input_players = self.circuit.input_players()
            for p in input_players:
                if p not in self.default_inputs:
                    self.default_inputs[p] = 0
            if self.pid in input_players:
                if self.my_input is None:
                    raise ProtocolError(f"party {self.pid} has no input")
                mask = self.pack.private_values.get(("mask", self.pid))
                if mask is None:
                    raise ProtocolError(f"party {self.pid} lacks its mask")
                delta = self.field(self.my_input) - mask
                ctx.broadcast(("delta", self.pid, int(delta)))
            if input_players:
                return  # wait for the delta round before evaluating

        if ctx.round == 1:
            # A player that failed to broadcast its delta in round 0 is
            # crashed (synchrony detects this): its input wire becomes the
            # public default constant.
            for p in self.circuit.input_players():
                if p in self.deltas:
                    continue
                for wire, gate in enumerate(self.circuit.gates):
                    if gate.op == "input" and gate.param == p:
                        self.wires[wire] = WireShare.constant(
                            self.field, self.default_inputs[p]
                        )

        # Advance through multiplication layers: evaluate what is local,
        # publish the next layer's d/e shares once its operands are ready,
        # and consume opened layers immediately so one round can both close
        # a layer and publish the next one's shares.
        while True:
            self._evaluate_available()
            if self.layer_index >= len(self.layers):
                break
            layer = self.layers[self.layer_index]
            published = all(("d", w) in self.opened for w in layer)
            if published:
                self.layer_index += 1
                continue
            ready = all(
                self.wires[self.circuit.gates[w].args[0]] is not None
                and self.wires[self.circuit.gates[w].args[1]] is not None
                for w in layer
            )
            if ready:
                for w in layer:
                    gate = self.circuit.gates[w]
                    x = self.wires[gate.args[0]]
                    y = self.wires[gate.args[1]]
                    k = self._mul_triple[w]
                    a = WireShare.base(self.field, ("triple", k, "a"))
                    b = WireShare.base(self.field, ("triple", k, "b"))
                    d_share = (x - a).my_value(self.pack)
                    e_share = (y - b).my_value(self.pack)
                    for pid in range(self.n):
                        ctx.send(pid, ("dsh", ("d", w), int(d_share)))
                        ctx.send(pid, ("dsh", ("e", w), int(e_share)))
            return

        # Output phase once all wires are computed.
        if all(w is not None for w in self.wires) and not self._outputs_sent:
            self._outputs_sent = True
            for out in self.circuit.outputs:
                share = self.wires[out.wire].my_value(self.pack)
                ctx.send(out.player, ("osh", out.label, int(share)))
            return

        if self._outputs_sent and self.result is None:
            mine = {
                out.label: None
                for out in self.circuit.outputs
                if out.player == self.pid
            }
            for label in mine:
                shares = dict(self._out_shares.get(label, {}))
                value = robust_reconstruct(
                    self.field, shares, self.t, self.n, self.t
                )
                if value is None:
                    return  # wait one more round
                mine[label] = int(value)
            self.result = mine
            ctx.halt()
