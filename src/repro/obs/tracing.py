"""Span tracing with lossless JSON round-trip and Chrome trace export.

Second pillar of ``repro.obs``. A :class:`Tracer` records nested
:class:`Span`\\ s — named intervals with wall-clock start, monotonic
duration, process/thread ids and free-form attributes. Spans serialize
losslessly to JSON (:meth:`Tracer.to_json` / :meth:`Tracer.from_json`)
and export to the Chrome trace-event format understood by
``chrome://tracing`` and Perfetto (:meth:`Tracer.chrome_trace`).

Cross-process propagation: the multiprocessing pool boundary is crossed
by *buffering* — a worker activates its own process-local tracer, runs
the cell, then :meth:`Tracer.drain`\\ s its spans into the picklable
result payload; the parent :meth:`Tracer.merge`\\ s each buffer back in
**task-index order**, remapping span ids so merged traces are
deterministic in structure no matter which worker finished first.

Instrumented code does not thread a tracer through call signatures — it
asks :func:`current_tracer` (or uses the module-level :func:`span`
helper, which is a reusable null context manager when tracing is off, so
the disabled-path overhead is one global read).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import ObsError

TRACE_VERSION = 1

_SPAN_FIELDS = frozenset(
    {"name", "span_id", "parent_id", "pid", "tid", "ts_us", "dur_us", "attrs"}
)


@dataclass
class Span:
    """One named interval; ``ts_us`` is epoch µs, ``dur_us`` monotonic µs."""

    name: str
    span_id: int
    parent_id: Optional[int]
    pid: int
    tid: int
    ts_us: int
    dur_us: int = 0
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "tid": self.tid,
            "ts_us": self.ts_us,
            "dur_us": self.dur_us,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        unknown = set(data) - _SPAN_FIELDS
        if unknown:
            raise ObsError(f"unknown span field(s): {sorted(unknown)}")
        try:
            return cls(**data)
        except TypeError as exc:
            raise ObsError(f"malformed span document: {exc}") from None


class Tracer:
    """Collects spans; thread-safe, with a per-thread open-span stack."""

    def __init__(self):
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._next_id = 1
        self._local = threading.local()

    # -- recording --------------------------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a nested span; closes (and records) it on exit."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        parent_id = stack[-1] if stack else None
        record = Span(
            name=name,
            span_id=span_id,
            parent_id=parent_id,
            pid=os.getpid(),
            tid=threading.get_native_id(),
            ts_us=time.time_ns() // 1_000,
            attrs={k: v for k, v in attrs.items() if v is not None},
        )
        stack.append(span_id)
        t0 = time.perf_counter_ns()
        try:
            yield record
        finally:
            record.dur_us = max((time.perf_counter_ns() - t0) // 1_000, 1)
            stack.pop()
            with self._lock:
                self._spans.append(record)

    # -- access -----------------------------------------------------------

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def drain(self) -> list[dict]:
        """Pop all recorded spans as JSON-safe dicts (worker -> parent)."""
        with self._lock:
            drained = self._spans
            self._spans = []
        return [record.to_dict() for record in drained]

    def merge(self, span_dicts: list[dict], root_id: Optional[int] = None):
        """Append a drained buffer, remapping ids into this tracer.

        ``root_id`` reparents the buffer's top-level spans (those whose
        parent is ``None`` or missing from the buffer) under an existing
        span of *this* tracer — e.g. the parent's per-scenario span. Id
        remapping keeps merged traces deterministic: merging the same
        buffers in the same order always yields the same span ids, no
        matter what ids the workers assigned.
        """
        spans = [Span.from_dict(entry) for entry in span_dicts]
        local_ids = {record.span_id for record in spans}
        mapping: dict[int, int] = {}
        with self._lock:
            for record in spans:
                mapping[record.span_id] = self._next_id
                self._next_id += 1
            for record in spans:
                parent = record.parent_id
                if parent in local_ids:
                    parent = mapping[parent]
                else:
                    parent = root_id
                self._spans.append(
                    Span(
                        name=record.name,
                        span_id=mapping[record.span_id],
                        parent_id=parent,
                        pid=record.pid,
                        tid=record.tid,
                        ts_us=record.ts_us,
                        dur_us=record.dur_us,
                        attrs=dict(record.attrs),
                    )
                )

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": TRACE_VERSION,
            "spans": [record.to_dict() for record in self.spans()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Tracer":
        version = data.get("version")
        if version != TRACE_VERSION:
            raise ObsError(f"unsupported trace version: {version!r}")
        tracer = cls()
        spans = [Span.from_dict(entry) for entry in data.get("spans", [])]
        with tracer._lock:
            tracer._spans = spans
            tracer._next_id = max(
                (record.span_id for record in spans), default=0
            ) + 1
        return tracer

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Tracer":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ObsError(f"malformed trace JSON: {exc}") from None
        return cls.from_dict(data)

    # -- Chrome trace-event export ----------------------------------------

    def chrome_trace(self) -> dict:
        """``chrome://tracing`` / Perfetto trace-event document.

        Every span becomes a complete ("X") event; each distinct pid gets
        a process_name metadata ("M") event so worker processes are
        labelled in the timeline.
        """
        spans = self.spans()
        events = []
        own_pid = os.getpid()
        for pid in sorted({record.pid for record in spans}):
            role = "repro" if pid == own_pid else f"repro worker {pid}"
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": role},
            })
        for record in spans:
            args = dict(record.attrs)
            args["span_id"] = record.span_id
            if record.parent_id is not None:
                args["parent_id"] = record.parent_id
            events.append({
                "name": record.name,
                "cat": "repro",
                "ph": "X",
                "ts": record.ts_us,
                "dur": record.dur_us,
                "pid": record.pid,
                "tid": record.tid,
                "args": args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> int:
        """Write the Chrome trace document to ``path``; returns span count."""
        document = self.chrome_trace()
        with open(path, "w") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return len([e for e in document["traceEvents"] if e["ph"] == "X"])


# ---------------------------------------------------------------------------
# Active-tracer plumbing
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None

_NULL_SPAN = nullcontext()
"""Reusable no-op context: the whole cost of ``span()`` when tracing is off."""


def activate(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide active tracer."""
    global _ACTIVE
    _ACTIVE = tracer
    return tracer


def deactivate() -> None:
    global _ACTIVE
    _ACTIVE = None


def current_tracer() -> Optional[Tracer]:
    return _ACTIVE


def span(name: str, **attrs):
    """Span on the active tracer, or a shared null context when inactive."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)
