"""Profiling hooks: cProfile + pstats rendered as a top-N JSON document.

Third pillar of ``repro.obs``. :func:`profile_call` wraps any callable in
``cProfile`` and distills the result into a JSON-safe summary (top-N
functions by cumulative time); :func:`profile_cli` is the engine behind
``repro profile -- <subcommand...>``, which re-enters the repro CLI under
the profiler so any existing command line can be profiled unchanged.

Like everything in ``repro.obs``, profiling is strictly out-of-band: the
wrapped call's return value (or ``SystemExit`` code) is reported next to
the profile, never altered.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Callable, Optional

from repro.errors import ObsError

PROFILE_VERSION = 1


def _function_label(func: tuple) -> str:
    filename, lineno, name = func
    if filename == "~":  # built-in
        return name
    return f"{filename}:{lineno}({name})"


def profile_call(
    fn: Callable[[], object],
    top: int = 20,
    sort: str = "cumulative",
) -> dict:
    """Run ``fn`` under cProfile; return a JSON-safe top-N summary.

    ``SystemExit`` raised by ``fn`` (argparse's exit path) is captured
    into the summary as ``exit_code`` instead of propagating, so CLI
    entry points can be profiled directly.
    """
    if top < 1:
        raise ObsError(f"profile top must be >= 1, got {top}")
    profiler = cProfile.Profile()
    exit_code: Optional[int] = 0
    profiler.enable()
    try:
        returned = fn()
        if isinstance(returned, int):
            exit_code = returned
    except SystemExit as exc:
        exit_code = exc.code if isinstance(exc.code, int) else 1
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler, stream=io.StringIO())
    stats.sort_stats(sort)
    rows = []
    # pstats keeps (cc, nc, tt, ct, callers) per (file, line, func); its
    # sorted order lives in fcn_list after sort_stats.
    ordered = stats.fcn_list or list(stats.stats)
    for func in ordered[:top]:
        cc, nc, tt, ct, _callers = stats.stats[func]
        rows.append({
            "function": _function_label(func),
            "calls": nc,
            "primitive_calls": cc,
            "time_s": round(tt, 6),
            "cumtime_s": round(ct, 6),
        })
    return {
        "version": PROFILE_VERSION,
        "sort": sort,
        "exit_code": exit_code,
        "total_calls": int(stats.total_calls),
        "total_time_s": round(stats.total_tt, 6),
        "top": rows,
    }


def profile_cli(argv: list[str], top: int = 20, sort: str = "cumulative"):
    """Profile one repro CLI invocation (``repro profile -- sweep ...``)."""
    if not argv:
        raise ObsError("repro profile needs a command to profile")
    from repro.cli import main as cli_main

    return profile_call(lambda: cli_main(argv), top=top, sort=sort)


def format_profile(summary: dict) -> str:
    """Human-readable table for the non-``--json`` CLI path."""
    lines = [
        f"profiled {summary['total_calls']} calls "
        f"in {summary['total_time_s']:.3f}s "
        f"(exit code {summary['exit_code']}), "
        f"top {len(summary['top'])} by {summary['sort']}:",
        f"{'cumtime':>10} {'tottime':>10} {'calls':>9}  function",
    ]
    for row in summary["top"]:
        lines.append(
            f"{row['cumtime_s']:>10.4f} {row['time_s']:>10.4f} "
            f"{row['calls']:>9}  {row['function']}"
        )
    return "\n".join(lines)
