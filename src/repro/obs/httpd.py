"""Stdlib HTTP endpoint serving the metrics registry.

``repro serve --metrics-port N`` starts a :class:`MetricsServer` next to
the job loop: a daemon-threaded ``http.server`` exposing

* ``/metrics`` — Prometheus text exposition format,
* ``/metrics.json`` — the deterministic JSON snapshot,
* ``/healthz`` — liveness probe (``ok``).

The server binds to localhost by default and reads the process-global
registry on every request, so scrapes always see live counters. Port 0
asks the OS for a free port; :meth:`MetricsServer.start` returns the
bound port either way. :func:`scrape` is the matching client used by
``repro metrics``.
"""

from __future__ import annotations

import threading
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.errors import ObsError
from repro.obs.metrics import MetricsRegistry, registry

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 9464  # conventional Prometheus exporter range


class _MetricsHandler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"

    def do_GET(self):  # noqa: N802 - http.server API
        reg: MetricsRegistry = self.server.repro_registry  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = reg.render_prometheus().encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            body = (reg.snapshot_json(indent=2) + "\n").encode()
            content_type = "application/json"
        elif path == "/healthz":
            body = b"ok\n"
            content_type = "text/plain; charset=utf-8"
        else:
            self.send_error(404, "unknown path (try /metrics)")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        pass  # scrapes are high-frequency; keep the job log clean


class MetricsServer:
    """Background /metrics endpoint over a registry (default: the global)."""

    def __init__(
        self,
        port: int = 0,
        host: str = DEFAULT_HOST,
        metrics_registry: Optional[MetricsRegistry] = None,
    ):
        self.host = host
        self.port = port
        self.registry = metrics_registry or registry()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> int:
        """Bind and serve in a daemon thread; returns the bound port."""
        if self._httpd is not None:
            raise ObsError("metrics server is already running")
        try:
            httpd = ThreadingHTTPServer(
                (self.host, self.port), _MetricsHandler
            )
        except OSError as exc:
            raise ObsError(
                f"cannot bind metrics endpoint on "
                f"{self.host}:{self.port}: {exc}"
            ) from None
        httpd.daemon_threads = True
        httpd.repro_registry = self.registry  # type: ignore[attr-defined]
        self._httpd = httpd
        self.port = httpd.server_address[1]
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-metrics-httpd",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def scrape(
    url: Optional[str] = None,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    path: str = "/metrics",
    timeout_s: float = 5.0,
) -> str:
    """Fetch a metrics document from a running endpoint (``repro metrics``)."""
    target = url or f"http://{host}:{port}{path}"
    if not target.startswith(("http://", "https://")):
        raise ObsError(f"metrics URL must be http(s): {target!r}")
    try:
        with urllib.request.urlopen(target, timeout=timeout_s) as response:
            return response.read().decode()
    except OSError as exc:
        raise ObsError(
            f"cannot scrape {target!r}: {exc} "
            "(is `repro serve --metrics-port` running?)"
        ) from None
