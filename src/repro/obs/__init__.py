"""Unified telemetry layer: metrics, span tracing, profiling hooks.

``repro.obs`` is the observability subsystem shared by every layer of the
repro stack — the experiment runner, the audit engine, the result store
and the job service all report into one process-global
:class:`MetricsRegistry` and (when a tracer is active) one span stream.

The layer is *strictly out-of-band* (CONTRIBUTING invariant 8): nothing
observable may alter a ``RunRecord``, a stored document, or the
``parallel == serial`` byte-identity guarantee. ``REPRO_OBS=off`` (or
:func:`set_enabled`) turns every metric mutation into a no-op; tracing is
opt-in per run (``--trace-out`` / :func:`activate`); profiling wraps the
CLI from the outside. All wall-clock reads live inside the lint rule's
scoped clock exemption — OS entropy stays banned here like everywhere.

Three pillars:

* :mod:`repro.obs.metrics` — counters/gauges/histograms with labels,
  deterministic JSON snapshots, Prometheus text rendering, mark/delta.
* :mod:`repro.obs.tracing` — nested spans, lossless JSON round-trip,
  Chrome trace-event export, cross-pool span buffering/merge.
* :mod:`repro.obs.profiling` — cProfile top-N JSON for ``repro profile``.
* :mod:`repro.obs.httpd` — the stdlib ``/metrics`` endpoint behind
  ``repro serve --metrics-port`` and the ``repro metrics`` scraper.

Exports resolve lazily (module ``__getattr__``, mirroring the top-level
``repro`` package) so pool workers importing the runner do not pay for
``http.server`` / ``cProfile`` imports they never use.
"""

from __future__ import annotations

import importlib

_METRICS_EXPORTS = (
    "ENV_OBS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "enabled",
    "registry",
    "set_enabled",
)

_TRACING_EXPORTS = (
    "Span",
    "Tracer",
    "activate",
    "current_tracer",
    "deactivate",
    "span",
)

_PROFILING_EXPORTS = ("format_profile", "profile_call", "profile_cli")

_HTTPD_EXPORTS = ("DEFAULT_PORT", "MetricsServer", "scrape")

_EXPORT_MODULES = {
    **{name: "repro.obs.metrics" for name in _METRICS_EXPORTS},
    **{name: "repro.obs.tracing" for name in _TRACING_EXPORTS},
    **{name: "repro.obs.profiling" for name in _PROFILING_EXPORTS},
    **{name: "repro.obs.httpd" for name in _HTTPD_EXPORTS},
}

__all__ = sorted(_EXPORT_MODULES)


def __getattr__(name: str):
    module_name = _EXPORT_MODULES.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
