"""Process-global metrics registry: counters, gauges, histograms.

This is the first pillar of the ``repro.obs`` telemetry layer. A
:class:`MetricsRegistry` holds named instruments, each of which may carry
label sets (``counter.inc(1, scenario="thm41-honest")``); one process-wide
default registry (:func:`registry`) is shared by the runner, the audit
engine, the result store and the job service so a single scrape sees the
whole picture.

Design constraints, in priority order:

* **Out-of-band.** Nothing here may influence simulation results. The
  instrumented layers only *report* into the registry; they never read
  telemetry back into control flow. Disabling telemetry entirely
  (``REPRO_OBS=off`` or :func:`set_enabled`) turns every mutation into a
  no-op and must leave every ``RunRecord`` byte-identical.
* **Deterministic rendering.** :meth:`MetricsRegistry.snapshot` and
  :meth:`MetricsRegistry.render_prometheus` sort metrics by name and
  samples by label so two snapshots of equal state are equal strings.
* **Dependency-free and cheap.** Pure stdlib; one lock per registry;
  an instrument mutation is a dict update.

Wall-clock reads are legal here: ``repro.obs`` is inside the lint rule's
scoped clock exemption (telemetry measures real time by definition), while
OS entropy remains banned everywhere.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Iterator, Optional

from repro.errors import ObsError

ENV_OBS = "REPRO_OBS"
"""Environment switch: set to ``off``/``0``/``false`` to disable telemetry."""

_OFF_VALUES = frozenset({"off", "0", "false", "no", "disabled"})

_OVERRIDE: Optional[bool] = None
"""Programmatic override (set_enabled); ``None`` defers to ``REPRO_OBS``."""


def enabled() -> bool:
    """Is telemetry collection on? (default: yes, unless ``REPRO_OBS=off``)."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get(ENV_OBS, "").strip().lower() not in _OFF_VALUES


def set_enabled(value: Optional[bool]) -> None:
    """Force telemetry on/off from code; ``None`` restores the env default."""
    global _OVERRIDE
    _OVERRIDE = value


LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: LabelKey, extra: str = "") -> str:
    """Prometheus label block: ``{a="x",b="y"}`` (empty string if none)."""
    parts = [f'{name}="{_escape(value)}"' for name, value in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Render integers without a trailing ``.0`` (Prometheus-friendly)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Instrument:
    """Common name/help/label-set machinery for all three metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str, registry: "MetricsRegistry"):
        self.name = name
        self.help = help
        self._registry = registry
        self._lock = registry._lock

    def _samples(self) -> list[dict]:
        raise NotImplementedError

    def describe(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "samples": self._samples(),
        }


class Counter(_Instrument):
    """Monotonically increasing count (events, cells, cache hits)."""

    kind = "counter"

    def __init__(self, name: str, help: str, registry: "MetricsRegistry"):
        super().__init__(name, help, registry)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ObsError(f"counter {self.name!r} cannot decrease")
        if not enabled():
            return
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def _samples(self) -> list[dict]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            {"labels": dict(key), "value": value} for key, value in items
        ]


class Gauge(_Instrument):
    """Point-in-time level (queue depth, live workers)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, registry: "MetricsRegistry"):
        super().__init__(name, help, registry)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        if not enabled():
            return
        key = _label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not enabled():
            return
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def _samples(self) -> list[dict]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            {"labels": dict(key), "value": value} for key, value in items
        ]


DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
"""Latency-oriented bucket bounds in seconds (plus the implicit +Inf)."""


class Histogram(_Instrument):
    """Bucketed distribution (latencies, batch throughput)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        registry: "MetricsRegistry",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, registry)
        self.buckets = tuple(sorted(buckets))
        # label key -> [per-bucket counts..., +Inf count, sum, count]
        self._series: dict[LabelKey, list[float]] = {}

    def observe(self, value: float, **labels) -> None:
        if not enabled():
            return
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [0.0] * (len(self.buckets) + 3)
                self._series[key] = series
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series[i] += 1
            series[-3] += 1  # +Inf bucket
            series[-2] += value  # sum
            series[-1] += 1  # count

    def count(self, **labels) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series[-1] if series else 0.0

    def sum(self, **labels) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series[-2] if series else 0.0

    def _samples(self) -> list[dict]:
        with self._lock:
            items = sorted(
                (key, list(series)) for key, series in self._series.items()
            )
        samples = []
        for key, series in items:
            buckets = {
                _format_value(bound): series[i]
                for i, bound in enumerate(self.buckets)
            }
            buckets["+Inf"] = series[-3]
            samples.append({
                "labels": dict(key),
                "count": series[-1],
                "sum": series[-2],
                "buckets": buckets,
            })
        return samples


class MetricsRegistry:
    """Named instruments with get-or-create semantics and sorted exports."""

    def __init__(self):
        self._lock = threading.RLock()
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ObsError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            instrument = cls(name, help, self, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def reset(self) -> None:
        """Drop every instrument (tests and ``repro serve`` restarts)."""
        with self._lock:
            self._instruments.clear()

    # -- exports ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Deterministic JSON-safe snapshot, sorted by name and labels."""
        with self._lock:
            instruments = [
                self._instruments[name] for name in sorted(self._instruments)
            ]
        return {
            "version": 1,
            "metrics": {
                instrument.name: instrument.describe()
                for instrument in instruments
            },
        }

    def snapshot_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name, described in self.snapshot()["metrics"].items():
            if described["help"]:
                lines.append(f"# HELP {name} {described['help']}")
            lines.append(f"# TYPE {name} {described['type']}")
            for sample in described["samples"]:
                key = _label_key(sample["labels"])
                if described["type"] == "histogram":
                    for bound, count in sample["buckets"].items():
                        block = _format_labels(key, f'le="{bound}"')
                        lines.append(
                            f"{name}_bucket{block} {_format_value(count)}"
                        )
                    block = _format_labels(key)
                    lines.append(
                        f"{name}_sum{block} {_format_value(sample['sum'])}"
                    )
                    lines.append(
                        f"{name}_count{block} {_format_value(sample['count'])}"
                    )
                else:
                    block = _format_labels(key)
                    lines.append(
                        f"{name}{block} {_format_value(sample['value'])}"
                    )
        return "\n".join(lines) + "\n"

    # -- deltas -----------------------------------------------------------

    def _flat(self) -> dict[str, float]:
        """Flatten cumulative series to ``name{labels}`` -> value."""
        flat: dict[str, float] = {}
        for name, described in self.snapshot()["metrics"].items():
            for sample in described["samples"]:
                block = _format_labels(_label_key(sample["labels"]))
                if described["type"] == "histogram":
                    flat[f"{name}_count{block}"] = sample["count"]
                    flat[f"{name}_sum{block}"] = sample["sum"]
                else:
                    flat[f"{name}{block}"] = sample["value"]
        return flat

    def mark(self) -> dict[str, float]:
        """Capture current cumulative values for :meth:`delta_since`."""
        return self._flat()

    def delta_since(self, mark: dict[str, float]) -> dict[str, float]:
        """Per-series change since :meth:`mark` (new series included).

        Gauges report their *current* value rather than a difference —
        a level has no meaningful delta. Unchanged series are omitted.
        """
        deltas: dict[str, float] = {}
        gauges = {
            name for name, described in self.snapshot()["metrics"].items()
            if described["type"] == "gauge"
        }
        for series, value in self._flat().items():
            base = series.split("{", 1)[0]
            if base in gauges:
                deltas[series] = value
                continue
            change = value - mark.get(series, 0.0)
            if change:
                deltas[series] = change
        return deltas


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global default registry shared by all repro layers."""
    return _REGISTRY


def iter_instruments() -> Iterator[_Instrument]:
    reg = registry()
    with reg._lock:
        names = sorted(reg._instruments)
    for name in names:
        yield reg._instruments[name]
