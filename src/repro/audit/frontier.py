"""The (k, t, ε) robustness frontier and the structured audit result.

:func:`run_audit` audits one (k, t) cell; :func:`run_frontier` sweeps the
whole rectangle ``1 ≤ k ≤ K, 0 ≤ t ≤ T`` and records, per cell, the
maximum coalition gain the search observed — the empirical robustness
frontier. Both return an :class:`AuditResult`, which bundles the audit
spec with its cells and round-trips losslessly through JSON exactly like
:class:`~repro.experiments.results.ExperimentResult` (wall-clock fields
are excluded from equality).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.audit.registry import AuditSpec, get_audit
from repro.audit.search import AuditEngine, FrontierCell
from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentRunner


@dataclass(frozen=True)
class AuditResult:
    """All frontier cells of one audit, with aggregation and JSON round-trip."""

    spec: AuditSpec
    cells: tuple[FrontierCell, ...]
    elapsed_s: float = field(default=0.0, compare=False)
    parallel: bool = field(default=False, compare=False)

    # -- aggregations --------------------------------------------------------

    def ok_cells(self) -> list[FrontierCell]:
        return [c for c in self.cells if c.ok]

    def max_gain(self) -> float:
        gains = [c.max_gain for c in self.ok_cells()]
        return max(gains) if gains else 0.0

    def robust(self) -> bool:
        """Every auditable cell within its ε + tolerance bound."""
        return all(c.robust for c in self.ok_cells())

    def evaluations(self) -> int:
        return sum(c.evaluated for c in self.cells)

    def aggregate(self) -> dict:
        return {
            "audit": self.spec.name,
            "scenario": self.spec.scenario,
            "cells": len(self.cells),
            "unsupported": sum(1 for c in self.cells if not c.ok),
            "evaluations": self.evaluations(),
            "max_gain": self.max_gain(),
            "robust": self.robust(),
        }

    SUMMARY_HEADERS = (
        "k",
        "t",
        "method",
        "space",
        "evaluated",
        "max gain",
        "epsilon",
        "robust",
        "best deviation",
    )

    def summary_rows(self) -> list[tuple]:
        rows = []
        for cell in self.cells:
            if not cell.ok:
                rows.append(
                    (cell.k, cell.t, cell.method, cell.space_size, 0, "-",
                     f"{cell.epsilon:.3g}", "n/a", cell.error)
                )
                continue
            rows.append(
                (
                    cell.k,
                    cell.t,
                    cell.method,
                    cell.space_size,
                    cell.evaluated,
                    f"{cell.max_gain:+.4f}",
                    f"{cell.epsilon:.3g}",
                    "yes" if cell.robust else "NO",
                    cell.best.label if cell.best is not None else "-",
                )
            )
        return rows

    CSV_FIELDS = (
        "audit",
        "scenario",
        "k",
        "t",
        "epsilon",
        "tolerance",
        "method",
        "space_size",
        "evaluated",
        "max_gain",
        "robust",
        "best_deviation",
        "best_rational",
        "best_malicious",
        "best_outsider_harm",
        "error",
    )

    def csv_rows(self) -> list[tuple]:
        """One plain-value row per frontier cell, aligned with CSV_FIELDS."""
        rows = []
        for cell in self.cells:
            best = cell.best
            rows.append(
                (
                    self.spec.name,
                    self.spec.scenario,
                    cell.k,
                    cell.t,
                    f"{cell.epsilon:.6g}",
                    f"{cell.tolerance:.6g}",
                    cell.method,
                    cell.space_size,
                    cell.evaluated,
                    f"{cell.max_gain:.6g}",
                    int(cell.robust) if cell.ok else "",
                    best.label if best is not None else "",
                    " ".join(str(p) for p in best.rational) if best else "",
                    " ".join(str(p) for p in best.malicious) if best else "",
                    f"{best.outsider_harm:.6g}" if best is not None else "",
                    cell.error or "",
                )
            )
        return rows

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "cells": [cell.to_dict() for cell in self.cells],
            "elapsed_s": self.elapsed_s,
            "parallel": self.parallel,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AuditResult":
        try:
            spec_data = data["spec"]
            cell_data = data["cells"]
        except (KeyError, TypeError):
            raise ExperimentError(
                "AuditResult JSON needs 'spec' and 'cells'"
            ) from None
        return cls(
            spec=AuditSpec.from_dict(spec_data),
            cells=tuple(FrontierCell.from_dict(c) for c in cell_data),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            parallel=bool(data.get("parallel", False)),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AuditResult":
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------

@contextmanager
def runner_for(
    parallel: bool = False,
    processes: Optional[int] = None,
    timeout_s: Optional[float] = None,
    runner: Optional[ExperimentRunner] = None,
):
    """``runner`` as-is, or an owned one closed when the block exits.

    A caller-supplied ``runner`` is reused and left open: sharing one
    runner across many audits is exactly how a frontier sweep or fuzz
    campaign keeps its worker pool and artifact caches warm between
    batches. Passing a runner *and* runner-construction arguments is a
    contradiction (the arguments would be silently ignored) and raises.
    """
    if runner is not None:
        if parallel or processes is not None or timeout_s is not None:
            raise ExperimentError(
                "pass either runner= or the parallel/processes/timeout_s "
                "construction arguments, not both — a shared runner "
                "already carries its own configuration"
            )
        yield runner
        return
    with ExperimentRunner(
        parallel=parallel, processes=processes, timeout_s=timeout_s
    ) as owned:
        yield owned


@contextmanager
def _engine_for(
    audit: Union[str, AuditSpec],
    parallel: bool,
    processes: Optional[int],
    timeout_s: Optional[float],
    runner: Optional[ExperimentRunner],
):
    """An :class:`AuditEngine` over the shared-or-owned runner."""
    spec = get_audit(audit) if isinstance(audit, str) else audit
    with runner_for(parallel, processes, timeout_s, runner) as active:
        yield AuditEngine(spec, runner=active)


def _stored_audit(store, spec, ks, ts, kind: str):
    """(fingerprint, stored AuditResult or None) for a store-aware driver."""
    from repro.store.fingerprint import audit_fingerprint

    fingerprint = audit_fingerprint(spec, ks=ks, ts=ts, kind=kind)
    text = store.fetch_result(fingerprint)
    if text is not None:
        store.result_hits += 1
        return fingerprint, AuditResult.from_json(text)
    store.result_misses += 1
    return fingerprint, None


def _store_audit(store, fingerprint: str, result: AuditResult, kind: str) -> None:
    store.put_result(
        fingerprint,
        kind,
        result.spec.name,
        result.to_json(indent=2),
        len(result.cells),
    )


def run_audit(
    audit: Union[str, AuditSpec],
    parallel: bool = False,
    processes: Optional[int] = None,
    timeout_s: Optional[float] = None,
    runner: Optional[ExperimentRunner] = None,
    store=None,
) -> AuditResult:
    """Audit the spec's own (k, t) cell; return a one-cell result.

    With a ``store`` (:class:`repro.store.ResultStore`), an identical
    audit spec is answered from the stored document without evaluating
    anything; a miss runs normally and stores its result verbatim.
    """
    spec = get_audit(audit) if isinstance(audit, str) else audit
    fingerprint = None
    if store is not None:
        fingerprint, stored = _stored_audit(
            store, spec, ks=None, ts=None, kind="audit"
        )
        if stored is not None:
            return stored
    with _engine_for(spec, parallel, processes, timeout_s, runner) as engine:
        start = time.perf_counter()
        cell = engine.run_cell()
        result = AuditResult(
            spec=engine.spec,
            cells=(cell,),
            elapsed_s=time.perf_counter() - start,
            parallel=engine.runner.parallel,
        )
    if store is not None:
        _store_audit(store, fingerprint, result, "audit")
    return result


def run_frontier(
    audit: Union[str, AuditSpec],
    ks: Optional[Sequence[int]] = None,
    ts: Optional[Sequence[int]] = None,
    parallel: bool = False,
    processes: Optional[int] = None,
    timeout_s: Optional[float] = None,
    runner: Optional[ExperimentRunner] = None,
    store=None,
) -> AuditResult:
    """Sweep the (k, t) rectangle; return the max observed gain per cell.

    Defaults: ``k`` from 1 to the audit's (or scenario's) k, ``t`` from 0
    to its t. Cells whose honest baseline cannot run (e.g. a theorem bound
    violation) are reported with ``error`` set instead of failing the sweep.
    A ``store`` dedups whole frontier documents exactly like
    :func:`run_audit` — the (k, t) ranges participate in the fingerprint,
    so the defaulted rectangle and an explicit identical one are distinct
    keys only when they genuinely differ.
    """
    with _engine_for(audit, parallel, processes, timeout_s, runner) as engine:
        if ks is None:
            ks = range(1, max(engine.k, 1) + 1)
        if ts is None:
            ts = range(0, engine.t + 1)
        ks = tuple(ks)
        ts = tuple(ts)
        if not ks or not ts:
            raise ExperimentError(
                "frontier needs at least one k and one t value"
            )
        fingerprint = None
        if store is not None:
            fingerprint, stored = _stored_audit(
                store, engine.spec, ks=ks, ts=ts, kind="frontier"
            )
            if stored is not None:
                return stored
        start = time.perf_counter()
        cells = tuple(engine.run_cell(k, t) for k in ks for t in ts)
        result = AuditResult(
            spec=engine.spec,
            cells=cells,
            elapsed_s=time.perf_counter() - start,
            parallel=engine.runner.parallel,
        )
    if store is not None:
        _store_audit(store, fingerprint, result, "frontier")
    return result
