"""Coalition enumeration with symmetry reduction.

An ε-(k,t)-robustness claim quantifies over every split of the players into
a rational coalition K (|K| ≤ k), a malicious set T (|T| ≤ t, disjoint from
K), and honest outsiders. Enumerating the splits naively is O(n^(k+t));
most of them are redundant because players of the same type are
interchangeable in the games we audit. The reduction below keeps one
representative per *signature* orbit, where a player's signature is its
``(type, pid parity)`` pair: the type captures game-level symmetry, the
index parity captures the position sensitivity of mediators that condition
on the player index — the Section 6.4 leak ``a + b·i (mod 2)`` distinguishes
exactly the parity classes, so collapsing them would hide the paper's own
counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Optional, Sequence

from repro.errors import ExperimentError


@dataclass(frozen=True)
class Coalition:
    """One deviating split: rational members K and malicious members T."""

    rational: tuple[int, ...] = ()
    malicious: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rational", tuple(sorted(self.rational)))
        object.__setattr__(self, "malicious", tuple(sorted(self.malicious)))
        overlap = set(self.rational) & set(self.malicious)
        if overlap:
            raise ExperimentError(
                f"coalition members {sorted(overlap)} cannot be both "
                "rational and malicious"
            )

    @property
    def members(self) -> tuple[int, ...]:
        return tuple(sorted(self.rational + self.malicious))

    @property
    def size(self) -> int:
        return len(self.rational) + len(self.malicious)

    def outsiders(self, n: int) -> tuple[int, ...]:
        inside = set(self.members)
        return tuple(pid for pid in range(n) if pid not in inside)

    def describe(self) -> str:
        parts = [f"K={list(self.rational)}"]
        if self.malicious:
            parts.append(f"T={list(self.malicious)}")
        return " ".join(parts)


def coalition_signature(
    coalition: Coalition, types: Sequence
) -> tuple[tuple, tuple]:
    """The symmetry-orbit key: sorted (type, parity) multisets of K and T."""
    return (
        tuple(sorted((repr(types[i]), i % 2) for i in coalition.rational)),
        tuple(sorted((repr(types[i]), i % 2) for i in coalition.malicious)),
    )


def enumerate_coalitions(
    n: int,
    k: int,
    t: int,
    types: Optional[Sequence] = None,
    symmetry: bool = True,
    include_empty: bool = False,
) -> tuple[Coalition, ...]:
    """All (representative) coalitions with |K| ≤ k and |T| ≤ t.

    ``types`` is the type profile used for the symmetry signature (defaults
    to all-identical, the complete-information case). With ``symmetry=True``
    only the lexicographically-first coalition of each signature orbit is
    kept; passing ``symmetry=False`` returns the full enumeration.
    ``include_empty`` additionally yields splits with no rational member
    (pure-malice trials, scored for t-immunity rather than gain).
    """
    if k < 0 or t < 0:
        raise ExperimentError("coalition bounds k and t must be >= 0")
    if k + t > n:
        raise ExperimentError(
            f"coalition bounds (k={k}, t={t}) exceed the player count n={n}"
        )
    if types is None:
        types = (0,) * n
    if len(types) != n:
        raise ExperimentError(
            f"type profile has {len(types)} entries for n={n} players"
        )
    players = range(n)
    minimum_rational = 0 if include_empty else 1
    seen: set[tuple[tuple, tuple]] = set()
    out: list[Coalition] = []
    for r_size in range(minimum_rational, k + 1):
        for rational in combinations(players, r_size):
            remaining = [p for p in players if p not in rational]
            for m_size in range(0, t + 1):
                if r_size == 0 and m_size == 0:
                    continue
                for malicious in combinations(remaining, m_size):
                    coalition = Coalition(rational, malicious)
                    if symmetry:
                        key = coalition_signature(coalition, types)
                        if key in seen:
                            continue
                        seen.add(key)
                    out.append(coalition)
    return tuple(out)
