"""Search drivers: score candidate deviations against a cached baseline.

The :class:`AuditEngine` turns "is this an ε-equilibrium?" into a search
problem. Candidates are serialized into ``audit:{…}`` deviation names and
evaluated in batches through the ordinary
:class:`~repro.experiments.runner.ExperimentRunner` — one batch is one
scenario grid (``timings × schedulers × candidates × seeds``), so parallel
evaluation, per-run timeouts, and error capture all come for free, and
parallel and serial audits produce identical scores because parallel and
serial sweeps produce identical records.

A candidate's *gain* is the minimum over its rational members of the mean
payoff improvement against the honest baseline on the identical
``(timing, scheduler, seed)`` grid: the coalition's guaranteed profit, the
quantity ε-(k,t)-robustness bounds. Three drivers are provided —
exhaustive enumeration for small spaces, seeded random sampling, and
greedy best-response hill climbing for large ones; ``auto`` picks
exhaustive exactly when the space fits the budget.
"""

from __future__ import annotations

import dataclasses
import random
import time
from dataclasses import dataclass, field
from statistics import mean
from typing import Iterable, Optional, Union

from repro.audit.coalitions import enumerate_coalitions
from repro.audit.registry import AuditSpec, get_audit
from repro.audit.strategy_space import (
    HONEST_CANDIDATE,
    CandidateDeviation,
    StrategySpace,
    candidate_from_name,
)
from repro.errors import ExperimentError
from repro.experiments.deviations import MODE_FOR_THEOREM
from repro.experiments.runner import ExperimentRunner
from repro.experiments.spec import ScenarioSpec, _tuplize
from repro.games.registry import make_game
from repro.obs.metrics import registry as obs_registry
from repro.obs.tracing import span as obs_span

EVAL_BATCH = 16
"""Candidates evaluated per runner call (one scenario grid per batch)."""


@dataclass(frozen=True)
class CandidateScore:
    """One evaluated candidate: its coalition, gain, and bookkeeping."""

    candidate: str
    label: str
    rational: tuple[int, ...] = ()
    malicious: tuple[int, ...] = ()
    gain: float = 0.0
    member_gains: tuple[float, ...] = ()
    outsider_harm: float = 0.0
    runs: int = 0
    failures: int = 0
    scored: bool = True
    """False when every run of the candidate (or its baseline) failed."""

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CandidateScore":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ExperimentError(
                f"unknown CandidateScore fields: {', '.join(sorted(unknown))}"
            )
        return cls(**{key: _tuplize(value) for key, value in data.items()})


@dataclass(frozen=True)
class FrontierCell:
    """The audit verdict for one (k, t) cell of the robustness frontier."""

    k: int
    t: int
    epsilon: float
    tolerance: float
    method: str
    space_size: int = 0
    evaluated: int = 0
    max_gain: float = 0.0
    robust: bool = True
    best: Optional[CandidateScore] = None
    top: tuple[CandidateScore, ...] = ()
    error: Optional[str] = None
    elapsed_s: float = field(default=0.0, compare=False)

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> dict:
        return {
            **{
                f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)
                if f.name not in ("best", "top")
            },
            "best": None if self.best is None else self.best.to_dict(),
            "top": [score.to_dict() for score in self.top],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FrontierCell":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ExperimentError(
                f"unknown FrontierCell fields: {', '.join(sorted(unknown))}"
            )
        data = dict(data)
        best = data.pop("best", None)
        top = data.pop("top", ())
        return cls(
            best=None if best is None else CandidateScore.from_dict(best),
            top=tuple(CandidateScore.from_dict(s) for s in top),
            **data,
        )


class _CellError(ExperimentError):
    """Baseline failure: the cell cannot be audited (e.g. bound violation).

    Derives from :class:`ExperimentError` so that, when it escapes through
    the public ``baseline``/``evaluate`` API, callers keep the package-wide
    ``except ReproError`` contract; ``run_cell`` catches it and turns it
    into an errored :class:`FrontierCell` instead.
    """


class AuditEngine:
    """Evaluate and search candidate deviations for one audit spec."""

    def __init__(
        self,
        spec: Union[str, AuditSpec],
        runner: Optional[ExperimentRunner] = None,
    ) -> None:
        if isinstance(spec, str):
            spec = get_audit(spec)
        from repro.experiments.registry import get_scenario

        self.spec = spec
        self.base = get_scenario(spec.scenario)
        if spec.game is not None:
            # The audit's game override wins over the scenario template
            # (and collapses any games axis the template declares).
            self.base = self.base.replace(game=spec.game, games=())
        elif self.base.games:
            raise ExperimentError(
                f"scenario {self.base.name!r} sweeps a games axis; audits "
                "score one game at a time — set the audit's `game` override"
            )
        self.mode = MODE_FOR_THEOREM[self.base.theorem]
        if self.mode == "none":
            raise ExperimentError(
                f"scenario {self.base.name!r} (theorem "
                f"{self.base.theorem!r}) takes no deviations and cannot be "
                "audited"
            )
        self.runner = runner or ExperimentRunner()
        self.game_spec = make_game(self.base.game, self.base.n)
        # The built game's size wins over the scenario's nominal ``n``:
        # family params (consensus@n3) and file: games size themselves.
        self.n = self.game_spec.game.n
        self.types = (
            self.base.type_profile
            if self.base.type_profile is not None
            else tuple(self.game_spec.game.type_space.profiles()[0])
        )
        self.k = spec.k if spec.k is not None else self.base.k
        self.t = spec.t if spec.t is not None else self.base.t
        base_epsilon = self.base.epsilon if self.base.epsilon is not None else 0.0
        self.epsilon = (
            spec.epsilon if spec.epsilon is not None else base_epsilon
        )
        self._baselines: dict[tuple[int, int], dict] = {}

    # -- plumbing ------------------------------------------------------------

    def scenario_for(
        self, k: int, t: int, deviations: tuple[str, ...]
    ) -> ScenarioSpec:
        overrides: dict = {
            "name": f"{self.spec.name}[k={k},t={t}]",
            "k": k,
            "t": t,
            "deviations": deviations,
        }
        if self.spec.seed_count is not None:
            overrides["seed_count"] = self.spec.seed_count
        if self.spec.schedulers is not None:
            overrides["schedulers"] = self.spec.schedulers
        if self.spec.timings is not None:
            overrides["timings"] = self.spec.timings
        return self.base.replace(**overrides)

    def strategy_space(self, k: int, t: int) -> StrategySpace:
        # The symmetry signature must distinguish players whose realized
        # types coincide but whose *potential* type sets differ — only the
        # latter decide which misreport atoms a member gets — so each
        # player's signature value pairs its realized type with its
        # marginal type set.
        type_space = self.game_spec.game.type_space
        signature_types = tuple(
            (realized, tuple(sorted(map(repr, type_space.player_types(i)))))
            for i, realized in enumerate(self.types)
        )
        coalitions = enumerate_coalitions(
            self.n, k, t, types=signature_types,
            symmetry=self.spec.symmetry,
        )
        return StrategySpace(
            self.game_spec,
            self.mode,
            coalitions,
            atoms=self.spec.atoms,
            stall_limits=self.spec.stall_limits,
        )

    def _grouped_records(
        self, k: int, t: int, deviations: tuple[str, ...]
    ) -> dict[str, dict]:
        """Run the grid; group records as {deviation: {(timing, sched, seed)}}."""
        result = self.runner.run(self.scenario_for(k, t, deviations))
        grouped: dict[str, dict] = {name: {} for name in deviations}
        for record in result.records:
            grouped.setdefault(record.deviation, {})[
                (record.timing, record.scheduler, record.seed)
            ] = record
        return grouped

    def baseline(self, k: int, t: int) -> dict:
        """Honest records for cell (k, t), keyed by grid cell (cached)."""
        key = (k, t)
        baseline_cache = obs_registry().counter(
            "repro_audit_baseline_cache_total",
            "honest-baseline lookups by cache outcome",
        )
        if key in self._baselines:
            baseline_cache.inc(outcome="hit")
        if key not in self._baselines:
            baseline_cache.inc(outcome="miss")
            grouped = self._grouped_records(k, t, ("honest",))
            records = grouped.get("honest", {})
            failures = [r for r in records.values() if not r.ok]
            if not records or len(failures) == len(records):
                detail = failures[0].error if failures else "no records"
                raise _CellError(
                    f"honest baseline failed at (k={k}, t={t}): {detail}"
                )
            self._baselines[key] = records
        return self._baselines[key]

    # -- scoring -------------------------------------------------------------

    def _score(
        self,
        candidate: CandidateDeviation,
        runs: dict,
        baseline: dict,
    ) -> CandidateScore:
        pairs = [
            (record, baseline[key])
            for key, record in sorted(runs.items())
            if record.ok and key in baseline and baseline[key].ok
        ]
        failures = sum(1 for record in runs.values() if not record.ok)
        outsiders = candidate.coalition.outsiders(self.n)
        if not pairs:
            return CandidateScore(
                candidate=candidate.name,
                label=candidate.describe(),
                rational=candidate.rational,
                malicious=candidate.malicious,
                runs=len(runs),
                failures=failures,
                scored=False,
            )
        member_gains = tuple(
            float(mean(dev.payoffs[i] - base.payoffs[i] for dev, base in pairs))
            for i in candidate.rational
        )
        outsider_harm = max(
            (
                float(mean(
                    base.payoffs[i] - dev.payoffs[i] for dev, base in pairs
                ))
                for i in outsiders
            ),
            default=0.0,
        )
        return CandidateScore(
            candidate=candidate.name,
            label=candidate.describe(),
            rational=candidate.rational,
            malicious=candidate.malicious,
            gain=min(member_gains) if member_gains else 0.0,
            member_gains=member_gains,
            outsider_harm=outsider_harm,
            runs=len(runs),
            failures=failures,
        )

    def evaluate(
        self,
        candidates: Iterable[CandidateDeviation],
        k: Optional[int] = None,
        t: Optional[int] = None,
    ) -> list[CandidateScore]:
        """Score candidates against the cell's cached honest baseline."""
        k = self.k if k is None else k
        t = self.t if t is None else t
        baseline = self.baseline(k, t)
        candidates = list(candidates)
        scores: list[CandidateScore] = []
        metrics = obs_registry()
        for start in range(0, len(candidates), EVAL_BATCH):
            batch = candidates[start:start + EVAL_BATCH]
            t0 = time.perf_counter()
            with obs_span(
                "audit-batch",
                audit=self.spec.name,
                k=k,
                t=t,
                candidates=len(batch),
            ):
                names = tuple(
                    c.name if c.atoms else "honest" for c in batch
                )
                # The empty deviation *is* the baseline: score it from the
                # cached records instead of re-running the honest grid.
                fresh = tuple(
                    name for name in dict.fromkeys(names) if name != "honest"
                )
                grouped = (
                    self._grouped_records(k, t, fresh) if fresh else {}
                )
                grouped["honest"] = baseline
                for candidate, name in zip(batch, names):
                    scores.append(
                        self._score(candidate, grouped.get(name, {}), baseline)
                    )
            batch_s = time.perf_counter() - t0
            metrics.counter(
                "repro_audit_candidates_total", "candidate deviations scored"
            ).inc(len(batch), audit=self.spec.name)
            metrics.counter(
                "repro_audit_batches_total", "evaluation batches run"
            ).inc(audit=self.spec.name)
            metrics.histogram(
                "repro_audit_batch_seconds", "evaluation batch latency"
            ).observe(batch_s)
            if batch_s > 0:
                metrics.histogram(
                    "repro_audit_batch_throughput",
                    "candidates per second per evaluation batch",
                    buckets=(1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0,
                             250.0, 500.0, 1000.0),
                ).observe(len(batch) / batch_s)
        return scores

    # -- search drivers ------------------------------------------------------

    def _search_exhaustive(self, space, budget: int, k: int, t: int):
        out = []
        for index, candidate in enumerate(space.candidates()):
            if index >= budget:
                break
            out.append(candidate)
        return self.evaluate(out, k=k, t=t)

    def _search_random(
        self, space, budget: int, rng, k: int, t: int
    ) -> list[CandidateScore]:
        seen: set[str] = set()
        picked: list[CandidateDeviation] = []
        attempts = 0
        cap = min(budget, space.size())
        while len(picked) < cap and attempts < budget * 10:
            attempts += 1
            candidate = space.sample(rng)
            if candidate is None:
                break
            if candidate.name in seen:
                continue
            seen.add(candidate.name)
            picked.append(candidate)
        return self.evaluate(picked, k=k, t=t)

    def _search_greedy(
        self, space, budget: int, rng, k: int, t: int
    ) -> list[CandidateScore]:
        scores: dict[str, CandidateScore] = {}

        def spend(candidates: list[CandidateDeviation]) -> None:
            fresh = [c for c in candidates if c.name not in scores]
            remaining = budget - len(scores)
            for candidate, score in zip(
                fresh[:remaining],
                self.evaluate(fresh[:remaining], k=k, t=t),
            ):
                scores[candidate.name] = score

        seed_size = max(2, min(budget // 4, 8))
        seeds: list[CandidateDeviation] = []
        attempts = 0
        while len(seeds) < min(seed_size, space.size()) and attempts < 50:
            attempts += 1
            candidate = space.sample(rng)
            if candidate is not None and candidate not in seeds:
                seeds.append(candidate)
        spend(seeds)
        if not scores:
            return []

        def best_name() -> str:
            ranked = sorted(
                (s for s in scores.values() if s.scored),
                key=lambda s: (-s.gain, s.candidate),
            )
            return ranked[0].candidate if ranked else next(iter(scores))

        current = best_name()
        while len(scores) < budget:
            neighborhood = space.neighbors(
                candidate_from_name(current), rng, limit=8
            )
            fresh = [c for c in neighborhood if c.name not in scores]
            if not fresh:
                # Local optimum: restart from a fresh random sample.
                restart = space.sample(rng)
                if restart is None or restart.name in scores:
                    break
                fresh = [restart]
            spend(fresh)
            improved = best_name()
            if improved == current:
                break
            current = improved
        return list(scores.values())

    # -- cells ---------------------------------------------------------------

    def run_cell(self, k: Optional[int] = None, t: Optional[int] = None) -> FrontierCell:
        """Audit one (k, t) cell: search the space, report the frontier point."""
        k = self.k if k is None else k
        t = self.t if t is None else t
        with obs_span("audit-cell", audit=self.spec.name, k=k, t=t):
            cell = self._run_cell(k, t)
        metrics = obs_registry()
        metrics.counter(
            "repro_audit_cells_total", "frontier cells audited by outcome"
        ).inc(audit=self.spec.name, outcome="error" if cell.error else "ok")
        metrics.histogram(
            "repro_audit_cell_seconds", "per-(k,t) audit cell latency"
        ).observe(cell.elapsed_s)
        return cell

    def _run_cell(self, k: int, t: int) -> FrontierCell:
        spec = self.spec
        start = time.perf_counter()
        space = self.strategy_space(k, t)
        method = spec.method
        if method == "auto":
            method = "exhaustive" if space.size() <= spec.budget else "greedy"
        try:
            self.baseline(k, t)
        except _CellError as exc:
            return FrontierCell(
                k=k, t=t, epsilon=self.epsilon, tolerance=spec.tolerance,
                method=method, space_size=space.size(), error=str(exc),
                elapsed_s=time.perf_counter() - start,
            )
        rng = random.Random(f"audit:{spec.name}:{spec.seed}:{k}:{t}")
        if method == "exhaustive":
            scores = self._search_exhaustive(space, spec.budget, k, t)
        elif method == "random":
            scores = self._search_random(space, spec.budget, rng, k, t)
        else:
            scores = self._search_greedy(space, spec.budget, rng, k, t)
        ranked = sorted(
            (s for s in scores if s.scored),
            key=lambda s: (-s.gain, s.candidate),
        )
        best = ranked[0] if ranked else None
        max_gain = best.gain if best is not None else 0.0
        return FrontierCell(
            k=k,
            t=t,
            epsilon=self.epsilon,
            tolerance=spec.tolerance,
            method=method,
            space_size=space.size(),
            evaluated=len(scores),
            max_gain=max_gain,
            robust=max_gain <= self.epsilon + spec.tolerance,
            best=best,
            top=tuple(ranked[:spec.top]),
            elapsed_s=time.perf_counter() - start,
        )

    def honest_score(
        self, k: Optional[int] = None, t: Optional[int] = None
    ) -> CandidateScore:
        """Score the empty deviation — must come back with gain exactly 0."""
        return self.evaluate([HONEST_CANDIDATE], k=k, t=t)[0]
