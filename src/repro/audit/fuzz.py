"""Generated-game fuzzing: robustness search on games nobody hand-wrote.

The audit engine of :mod:`repro.audit.search` scores deviations against a
*fixed* scenario; this module points it at streams of seeded random games
(the ``random@n<..>s<..>`` family of :mod:`repro.games.families`). Each
fuzz target stamps a generated game name into the ``game`` override of an
:class:`~repro.audit.registry.AuditSpec` built from the ``mediator-fuzz``
scenario template, so one fuzz campaign is just a list of ordinary audits
— parallel evaluation, per-run timeouts, JSON round-trip, and parallel ==
serial determinism all come from the existing machinery, and any finding
is reproducible from the game name alone (``repro audit run
mediator-fuzz-audit --game random@n4s123``).

A campaign's verdicts are *descriptive*, not a pass/fail: random games
have no theorem promising robustness, so the interesting output is the
frontier — which generated games admit profitable coalition deviations,
and by how much.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.audit.frontier import AuditResult, run_audit, runner_for
from repro.audit.registry import AuditSpec
from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentRunner

FUZZ_SCENARIO = "mediator-fuzz"
"""The scenario template fuzz audits override the game of."""


def fuzz_game_names(
    count: int = 4, seed: int = 0, n: int = 4, actions: int = 2, types: int = 1
) -> tuple[str, ...]:
    """The generated-game names of a fuzz campaign (seeds ``seed..+count``)."""
    if count < 1:
        raise ExperimentError("fuzz needs count >= 1")
    suffix = "" if types == 1 else f"m{types}"
    return tuple(
        f"random@n{n}s{seed + i}a{actions}{suffix}" for i in range(count)
    )


def fuzz_audit_spec(
    game: str,
    k: int = 1,
    t: int = 0,
    budget: int = 32,
    seed_count: int = 3,
    method: str = "auto",
    scenario: str = FUZZ_SCENARIO,
) -> AuditSpec:
    """One fuzz target: the scenario template with ``game`` stamped in."""
    return AuditSpec(
        name=f"fuzz:{game}",
        scenario=scenario,
        game=game,
        k=k,
        t=t,
        budget=budget,
        seed_count=seed_count,
        method=method,
        description=f"Generated-game fuzz target {game}.",
    )


def run_fuzz(
    count: int = 4,
    seed: int = 0,
    n: int = 4,
    actions: int = 2,
    types: int = 1,
    k: int = 1,
    t: int = 0,
    budget: int = 32,
    seed_count: int = 3,
    method: str = "auto",
    games: Optional[Sequence[str]] = None,
    parallel: bool = False,
    processes: Optional[int] = None,
    timeout_s: Optional[float] = None,
    runner: Optional[ExperimentRunner] = None,
    store=None,
) -> list[AuditResult]:
    """Audit a stream of generated games; one :class:`AuditResult` each.

    ``games`` overrides the generated name stream with explicit game
    names (family instances or ``file:`` paths) — the driver then fuzzes
    exactly those. The whole campaign shares one
    :class:`~repro.experiments.runner.ExperimentRunner` (``runner`` if
    given, else one owned by this call), so the worker pool and artifact
    caches stay warm from game to game. A ``store`` dedups per target:
    generated games already audited under identical parameters — in any
    previous campaign — are answered from the store.
    """
    names = (
        tuple(games) if games is not None
        else fuzz_game_names(count, seed, n, actions, types)
    )
    with runner_for(parallel, processes, timeout_s, runner) as shared:
        return [
            run_audit(
                fuzz_audit_spec(
                    game, k=k, t=t, budget=budget, seed_count=seed_count,
                    method=method,
                ),
                runner=shared,
                store=store,
            )
            for game in names
        ]


def fuzz_summary(results: Sequence[AuditResult]) -> dict:
    """Campaign aggregate: how many generated games resisted the search."""
    aggregates = [result.aggregate() for result in results]
    worst = None
    for agg in aggregates:
        if worst is None or agg["max_gain"] > worst["max_gain"]:
            worst = agg
    return {
        "games": len(aggregates),
        "robust": sum(1 for a in aggregates if a["robust"]),
        "evaluations": sum(a["evaluations"] for a in aggregates),
        "max_gain": worst["max_gain"] if worst else 0.0,
        "worst_game": worst["audit"] if worst else None,
    }
