"""The compositional deviation search space.

A *candidate deviation* assigns one parameterized :class:`DeviationAtom` to
every member of a coalition. Atoms are the deviation primitives the repo
already ships in :mod:`repro.analysis.deviations` — crashing, stalling
after a grid of activation limits, lying in openings, selective silence
toward target subsets, misreporting a forged type, covert signalling to
the environment — plus the joint leak-pooling family (two members pool the
mediator's per-player leaks and conditionally engineer a deadlock, the
shape of the paper's Section 6.4 attack, with the profitable conditioning
left for the search to find).

Candidates are pure data: they serialize to a ``audit:{…}`` *deviation
name* that the experiment layer resolves back into per-player factories,
which is what lets an :class:`~repro.experiments.runner.ExperimentRunner`
evaluate a whole batch of candidates as one ordinary scenario grid — in
parallel, with the same determinism guarantees as any other sweep.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from itertools import product
from typing import Any, Iterator, Optional, Sequence

from repro.audit.coalitions import Coalition
from repro.errors import ExperimentError

AUDIT_DEVIATION_PREFIX = "audit:"

ATOM_MODES: dict[str, frozenset[str]] = {
    "crash": frozenset({"cheaptalk", "mediator"}),
    "stall": frozenset({"cheaptalk", "mediator"}),
    "lie": frozenset({"cheaptalk"}),
    "silence": frozenset({"cheaptalk"}),
    "misreport": frozenset({"cheaptalk", "mediator"}),
    "covert": frozenset({"cheaptalk", "mediator"}),
    "leak-pool": frozenset({"mediator"}),
}
"""Atom kinds and the run modes in which each can be instantiated."""

DEFAULT_STALL_LIMITS = (2, 8, 24)


def atom_kinds() -> tuple[str, ...]:
    return tuple(sorted(ATOM_MODES))


@dataclass(frozen=True)
class DeviationAtom:
    """One parameterized deviation primitive assigned to one player."""

    kind: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ATOM_MODES:
            raise ExperimentError(
                f"unknown deviation atom {self.kind!r}; known atoms: "
                f"{', '.join(atom_kinds())}"
            )
        object.__setattr__(
            self,
            "params",
            tuple(sorted((str(k), _freeze(v)) for k, v in self.params)),
        )

    def param(self, key: str, default: Any = None) -> Any:
        for k, v in self.params:
            if k == key:
                return v
        return default

    def label(self) -> str:
        if not self.params:
            return self.kind
        inner = ",".join(f"{k}={_compact(v)}" for k, v in self.params)
        return f"{self.kind}({inner})"


def _freeze(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _compact(value: Any) -> str:
    if isinstance(value, tuple):
        return "[" + " ".join(_compact(v) for v in value) + "]"
    return str(value)


def _thaw(value: Any) -> Any:
    """JSON-safe form of a frozen param value."""
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


@dataclass(frozen=True)
class CandidateDeviation:
    """A coalition plus one atom per member — one point of the search space."""

    rational: tuple[int, ...] = ()
    malicious: tuple[int, ...] = ()
    atoms: tuple[tuple[int, DeviationAtom], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rational", tuple(sorted(self.rational)))
        object.__setattr__(self, "malicious", tuple(sorted(self.malicious)))
        object.__setattr__(
            self, "atoms", tuple(sorted(self.atoms, key=lambda pa: pa[0]))
        )
        members = set(self.rational) | set(self.malicious)
        assigned = [pid for pid, _ in self.atoms]
        if len(set(assigned)) != len(assigned):
            raise ExperimentError("candidate assigns several atoms to one pid")
        if set(assigned) - members:
            raise ExperimentError(
                "candidate assigns atoms to players outside the coalition"
            )

    @property
    def coalition(self) -> Coalition:
        return Coalition(self.rational, self.malicious)

    @property
    def name(self) -> str:
        """The ``audit:{…}`` deviation name carried by scenario specs."""
        payload = {
            "r": list(self.rational),
            "m": list(self.malicious),
            "atoms": [
                [pid, {"kind": atom.kind,
                       "params": {k: _thaw(v) for k, v in atom.params}}]
                for pid, atom in self.atoms
            ],
        }
        return AUDIT_DEVIATION_PREFIX + json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )

    def describe(self) -> str:
        if not self.atoms:
            return "honest"
        assignment = " ".join(
            f"{pid}:{atom.label()}" for pid, atom in self.atoms
        )
        return f"{self.coalition.describe()} {assignment}".strip()

    # -- factory materialization --------------------------------------------

    def build(self, game_spec, mode: str) -> dict:
        """Resolve into ``{pid: UniformDeviation}`` for a concrete run."""
        from repro.analysis.deviations import unify_profile

        profile = {}
        for pid, atom in self.atoms:
            profile[pid] = _build_atom(atom, game_spec, mode, pid)
        return unify_profile(profile)


def candidate_from_name(name: str) -> CandidateDeviation:
    """Parse an ``audit:{…}`` deviation name back into a candidate."""
    if not name.startswith(AUDIT_DEVIATION_PREFIX):
        raise ExperimentError(
            f"not an audit deviation name: {name!r} (expected the "
            f"{AUDIT_DEVIATION_PREFIX!r} prefix)"
        )
    try:
        payload = json.loads(name[len(AUDIT_DEVIATION_PREFIX):])
        atoms = tuple(
            (int(pid), DeviationAtom(
                kind=entry["kind"],
                params=tuple(entry.get("params", {}).items()),
            ))
            for pid, entry in payload["atoms"]
        )
        return CandidateDeviation(
            rational=tuple(payload.get("r", ())),
            malicious=tuple(payload.get("m", ())),
            atoms=atoms,
        )
    except ExperimentError:
        raise
    except Exception as exc:  # malformed JSON / wrong shape
        raise ExperimentError(
            f"malformed audit deviation name {name!r}: {exc}"
        ) from None


HONEST_CANDIDATE = CandidateDeviation()
"""The empty deviation: every player honest; the audit gain baseline."""


# ---------------------------------------------------------------------------
# Atom materialization
# ---------------------------------------------------------------------------

def _require_mode(atom: DeviationAtom, mode: str) -> None:
    if mode not in ATOM_MODES[atom.kind]:
        raise ExperimentError(
            f"deviation atom {atom.kind!r} is not available in {mode!r} "
            f"runs (supports: {', '.join(sorted(ATOM_MODES[atom.kind]))})"
        )


def _build_atom(atom: DeviationAtom, game_spec, mode: str, pid: int):
    from repro.analysis import deviations as dev

    _require_mode(atom, mode)
    kind = atom.kind
    if kind == "crash":
        return dev.ct_crash() if mode == "cheaptalk" else dev.crash()
    if kind == "stall":
        limit = int(atom.param("limit", DEFAULT_STALL_LIMITS[0]))
        if mode == "cheaptalk":
            return dev.ct_stall_after(game_spec, limit)
        return dev.stall_after_messages(game_spec, limit)
    if kind == "lie":
        return dev.ct_lying_shares(game_spec)
    if kind == "silence":
        victims = tuple(int(v) for v in atom.param("victims", ()))
        return dev.ct_selective_silence(game_spec, victims)
    if kind == "misreport":
        fake = atom.param("fake")
        if mode == "cheaptalk":
            return dev.ct_misreport(game_spec, fake)
        return dev.misreport(game_spec, fake)
    if kind == "covert":
        return _covert_factory(game_spec, mode)
    if kind == "leak-pool":
        partner = int(atom.param("partner", -1))
        stall_when = int(atom.param("when", 0))
        return _leak_pool_factory(game_spec, partner, stall_when)
    raise ExperimentError(f"unknown deviation atom {kind!r}")  # pragma: no cover


def _covert_factory(game_spec, mode: str):
    """Covert signalling (Section 6.1): honest play + countable self-messages."""
    from repro.analysis.deviations import CovertSignaller

    if mode == "mediator":
        from repro.mediator.protocol import HonestMediatorPlayer

        def factory(pid, own_type):
            return CovertSignaller(
                HonestMediatorPlayer(game_spec, pid, own_type),
                encode=lambda payload: 1,
            )

        return factory

    from repro.cheaptalk.game import CheapTalkPlayer

    def factory(pid, own_type, config):
        return CovertSignaller(
            CheapTalkPlayer(game_spec, pid, own_type, config),
            encode=lambda payload: 1,
        )

    return factory


def _leak_pool_factory(game_spec, partner: int, stall_when: int):
    from repro.analysis.section64 import LeakAttacker

    def factory(pid, own_type):
        return LeakAttacker(
            game_spec, pid, own_type, partner=partner, stall_when=stall_when
        )

    return factory


# ---------------------------------------------------------------------------
# The search space
# ---------------------------------------------------------------------------

class StrategySpace:
    """All candidate deviations over a set of coalitions.

    The space is the union, over each coalition, of (a) the *joint*
    templates that need coordinated members (leak-pooling pairs) and
    (b) the pointwise product of each member's atom menu. It supports lazy
    enumeration, O(1)-ish indexed access (mixed-radix decomposition over
    the menus, which is what makes seeded random sampling deterministic and
    cheap), and local mutation for hill-climbing.
    """

    def __init__(
        self,
        game_spec,
        mode: str,
        coalitions: Sequence[Coalition],
        atoms: Sequence[str] = (),
        stall_limits: Sequence[int] = DEFAULT_STALL_LIMITS,
    ) -> None:
        if mode not in ("cheaptalk", "mediator"):
            raise ExperimentError(
                f"strategy spaces exist for 'cheaptalk' and 'mediator' runs, "
                f"not {mode!r}"
            )
        for kind in atoms:
            if kind not in ATOM_MODES:
                raise ExperimentError(
                    f"unknown deviation atom {kind!r}; known atoms: "
                    f"{', '.join(atom_kinds())}"
                )
        self.game_spec = game_spec
        self.mode = mode
        self.coalitions = tuple(coalitions)
        self.kinds = tuple(
            kind for kind in (atoms or atom_kinds())
            if mode in ATOM_MODES[kind]
        )
        self.stall_limits = tuple(int(v) for v in stall_limits)
        self._blocks = [self._block(c) for c in self.coalitions]

    # -- per-coalition geometry ---------------------------------------------

    def menu(self, pid: int, coalition: Coalition) -> tuple[DeviationAtom, ...]:
        """The pointwise atom menu for one coalition member."""
        n = self.game_spec.game.n
        out: list[DeviationAtom] = []
        for kind in self.kinds:
            if kind == "crash":
                out.append(DeviationAtom("crash"))
            elif kind == "stall":
                out.extend(
                    DeviationAtom("stall", (("limit", limit),))
                    for limit in self.stall_limits
                )
            elif kind == "lie":
                out.append(DeviationAtom("lie"))
            elif kind == "silence":
                outsiders = coalition.outsiders(n)
                options = []
                if outsiders:
                    options.append((outsiders[0],))
                    if len(outsiders) > 1:
                        options.append(tuple(outsiders))
                out.extend(
                    DeviationAtom("silence", (("victims", victims),))
                    for victims in options
                )
            elif kind == "misreport":
                values = self.game_spec.game.type_space.player_types(pid)
                if len(values) > 1:
                    out.extend(
                        DeviationAtom("misreport", (("fake", value),))
                        for value in values
                    )
            elif kind == "covert":
                out.append(DeviationAtom("covert"))
            # "leak-pool" is joint-only: see _joint_candidates.
        return tuple(out)

    def _joint_candidates(
        self, coalition: Coalition
    ) -> tuple[CandidateDeviation, ...]:
        if (
            "leak-pool" not in self.kinds
            or self.mode != "mediator"
            or coalition.size != 2
        ):
            return ()
        i, j = coalition.members
        out = []
        for when in (0, 1):
            out.append(CandidateDeviation(
                rational=coalition.rational,
                malicious=coalition.malicious,
                atoms=(
                    (i, DeviationAtom(
                        "leak-pool", (("partner", j), ("when", when)))),
                    (j, DeviationAtom(
                        "leak-pool", (("partner", i), ("when", when)))),
                ),
            ))
        return tuple(out)

    def _block(self, coalition: Coalition):
        joints = self._joint_candidates(coalition)
        menus = tuple(self.menu(pid, coalition) for pid in coalition.members)
        pointwise = 1
        for menu in menus:
            pointwise *= len(menu)
        return (coalition, joints, menus, len(joints) + pointwise)

    # -- enumeration / indexing ---------------------------------------------

    def size(self) -> int:
        return sum(block[3] for block in self._blocks)

    def nth(self, index: int) -> CandidateDeviation:
        """The index-th candidate in enumeration order (deterministic)."""
        if index < 0:
            raise ExperimentError("candidate index must be >= 0")
        requested = index
        for coalition, joints, menus, block_size in self._blocks:
            if index >= block_size:
                index -= block_size
                continue
            if index < len(joints):
                return joints[index]
            index -= len(joints)
            picks = []
            for menu in reversed(menus):
                picks.append(menu[index % len(menu)])
                index //= len(menu)
            picks.reverse()
            return CandidateDeviation(
                rational=coalition.rational,
                malicious=coalition.malicious,
                atoms=tuple(zip(coalition.members, picks)),
            )
        raise ExperimentError(
            f"candidate index {requested} out of range for a space of "
            f"{self.size()} candidates"
        )

    def candidates(self) -> Iterator[CandidateDeviation]:
        for coalition, joints, menus, _ in self._blocks:
            yield from joints
            for picks in product(*menus):
                yield CandidateDeviation(
                    rational=coalition.rational,
                    malicious=coalition.malicious,
                    atoms=tuple(zip(coalition.members, picks)),
                )

    def sample(self, rng) -> Optional[CandidateDeviation]:
        total = self.size()
        if total == 0:
            return None
        return self.nth(rng.randrange(total))

    # -- local search moves --------------------------------------------------

    def neighbors(
        self, candidate: CandidateDeviation, rng, limit: int = 8
    ) -> list[CandidateDeviation]:
        """Single-mutation neighbors of ``candidate`` (for hill climbing)."""
        block = None
        for entry in self._blocks:
            if entry[0] == candidate.coalition:
                block = entry
                break
        if block is None:
            return []
        coalition, joints, menus, _ = block
        out: dict[str, CandidateDeviation] = {}
        for joint in joints:
            if joint.name != candidate.name:
                out[joint.name] = joint
        is_joint = any(atom.kind == "leak-pool" for _, atom in candidate.atoms)
        if is_joint:
            # Escape hatch out of the joint family: uniform pointwise
            # assignments over the first member's menu.
            for atom in menus[0] if menus else ():
                try:
                    neighbor = CandidateDeviation(
                        rational=coalition.rational,
                        malicious=coalition.malicious,
                        atoms=tuple(
                            (pid, atom) for pid in coalition.members
                        ),
                    )
                except ExperimentError:  # pragma: no cover
                    continue
                out[neighbor.name] = neighbor
        if not is_joint:
            current = dict(candidate.atoms)
            for slot, pid in enumerate(coalition.members):
                for atom in menus[slot]:
                    if atom == current.get(pid):
                        continue
                    atoms = tuple(
                        (p, atom if p == pid else a)
                        for p, a in candidate.atoms
                    )
                    neighbor = CandidateDeviation(
                        rational=coalition.rational,
                        malicious=coalition.malicious,
                        atoms=atoms,
                    )
                    out[neighbor.name] = neighbor
        ordered = [out[name] for name in sorted(out)]
        if len(ordered) > limit:
            ordered = rng.sample(ordered, limit)
            ordered.sort(key=lambda c: c.name)
        return ordered
