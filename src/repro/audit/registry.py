"""Audit specs and the registry of canonical audits.

An :class:`AuditSpec` is the audit-layer sibling of
:class:`~repro.experiments.spec.ScenarioSpec`: a frozen, JSON-round-trippable
description of one robustness query — *against which scenario, up to which
(k, t), searching which deviation atoms, by which method, under what
budget*. It carries only names and plain values; everything live (games,
schedulers, factories) is resolved at run time through the existing
registries, so audit specs pickle across worker processes and serialize
losslessly exactly like scenario specs.

The canonical audits registered at the bottom turn the paper's headline
claims into runnable queries: Theorems 4.1/4.2/4.4/4.5 must come back
robust (max found gain ≤ ε + tolerance), and the Section 6.4 leaky
mediator must come back *broken* — with the known covert-channel attack
rediscovered by the search rather than replayed from a named profile.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Union

from repro.audit.strategy_space import (
    ATOM_MODES,
    DEFAULT_STALL_LIMITS,
    atom_kinds,
)
from repro.errors import ExperimentError
from repro.experiments.spec import _tuplize

SEARCH_METHODS = ("auto", "exhaustive", "random", "greedy")
"""Legal values of :attr:`AuditSpec.method`.

``auto`` runs exhaustively when the strategy space fits the budget and
falls back to greedy best-response hill climbing otherwise.
"""


@dataclass(frozen=True)
class AuditSpec:
    """One declarative robustness audit over a registered scenario.

    ``k``/``t``/``epsilon``/``seed_count``/``schedulers``/``timings`` default
    to ``None`` meaning *inherit from the base scenario*. ``atoms`` empty
    means every atom kind available in the scenario's run mode.
    """

    name: str
    scenario: str
    game: Optional[str] = None
    """Override the base scenario's game — a registry name, a
    ``family@params`` instance, or a ``file:<path>`` GameDef file. This is
    what lets one scenario template audit many games: ``repro audit
    fuzz`` stamps seeded ``random@…`` names here, and ``repro audit run
    --game`` audits user-defined games."""

    k: Optional[int] = None
    t: Optional[int] = None
    epsilon: Optional[float] = None
    atoms: tuple[str, ...] = ()
    stall_limits: tuple[int, ...] = DEFAULT_STALL_LIMITS
    method: str = "auto"
    budget: int = 64
    seed: int = 0
    seed_count: Optional[int] = None
    schedulers: Optional[tuple[str, ...]] = None
    timings: Optional[tuple[str, ...]] = None
    tolerance: float = 0.05
    top: int = 5
    symmetry: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "atoms", _tuplize(self.atoms))
        object.__setattr__(self, "stall_limits", _tuplize(self.stall_limits))
        object.__setattr__(self, "schedulers", _tuplize(self.schedulers))
        object.__setattr__(self, "timings", _tuplize(self.timings))
        if self.game is not None:
            if not isinstance(self.game, str) or not self.game:
                raise ExperimentError(
                    f"audit game override must be a name, got {self.game!r}"
                )
            from repro.errors import GameError
            from repro.games.families import is_family_name, parse_game_name

            if is_family_name(self.game):
                try:
                    parse_game_name(self.game)
                except GameError as exc:
                    raise ExperimentError(str(exc)) from None
        if self.method not in SEARCH_METHODS:
            raise ExperimentError(
                f"unknown search method {self.method!r}; one of: "
                f"{', '.join(SEARCH_METHODS)}"
            )
        for kind in self.atoms:
            if kind not in ATOM_MODES:
                raise ExperimentError(
                    f"unknown deviation atom {kind!r}; known atoms: "
                    f"{', '.join(atom_kinds())}"
                )
        if self.budget < 1:
            raise ExperimentError("audit budget must be >= 1")
        if self.top < 1:
            raise ExperimentError("audit top must be >= 1")
        if not self.stall_limits or any(v < 1 for v in self.stall_limits):
            raise ExperimentError("stall_limits must be positive and non-empty")
        for bound, label in ((self.k, "k"), (self.t, "t")):
            if bound is not None and bound < 0:
                raise ExperimentError(f"audit {label} must be >= 0")
        if self.seed_count is not None and self.seed_count < 1:
            raise ExperimentError("seed_count must be >= 1")
        if self.tolerance < 0:
            raise ExperimentError("tolerance must be >= 0")

    def replace(self, **changes) -> "AuditSpec":
        """A copy with ``changes`` applied (convenience for overrides)."""
        return dataclasses.replace(self, **changes)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "AuditSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ExperimentError(
                f"unknown AuditSpec fields: {', '.join(sorted(unknown))}"
            )
        return cls(**{key: _tuplize(value) for key, value in data.items()})

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AuditSpec":
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_AUDITS: dict[str, AuditSpec] = {}


def register_audit(
    audit: Union[AuditSpec, Callable[[], AuditSpec]]
) -> Union[AuditSpec, Callable[[], AuditSpec]]:
    """Register a spec, or decorate a zero-arg factory returning one."""
    spec = audit() if callable(audit) else audit
    if not isinstance(spec, AuditSpec):
        raise ExperimentError(
            "register_audit needs an AuditSpec or a factory returning one"
        )
    if spec.name in _AUDITS:
        raise ExperimentError(f"audit {spec.name!r} is already registered")
    _AUDITS[spec.name] = spec
    return audit


def get_audit(name: str) -> AuditSpec:
    try:
        return _AUDITS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown audit {name!r}; known audits: {', '.join(audit_names())}"
        ) from None


def audit_names() -> list[str]:
    return sorted(_AUDITS)


def iter_audits() -> Iterator[AuditSpec]:
    for name in audit_names():
        yield _AUDITS[name]


# ---------------------------------------------------------------------------
# Canonical audits (one per headline robustness claim)
# ---------------------------------------------------------------------------

register_audit(AuditSpec(
    name="thm41-audit",
    scenario="thm41-honest",
    schedulers=("fifo",),
    seed_count=2,
    budget=24,
    tolerance=0.05,
    description="Thm 4.1 (n>4k+4t, ε=0): no searched coalition deviation "
                "may gain.",
))

register_audit(AuditSpec(
    name="thm42-audit",
    scenario="thm42-epsilon",
    schedulers=("fifo",),
    seed_count=2,
    budget=24,
    tolerance=0.05,
    description="Thm 4.2 (n>3k+3t): gains bounded by the MAC-forgery ε.",
))

register_audit(AuditSpec(
    name="thm44-audit",
    scenario="thm44-punishment",
    schedulers=("fifo",),
    seed_count=2,
    budget=24,
    tolerance=0.05,
    description="Thm 4.4 (n>3k+4t): punishment wills deter every searched "
                "stall/crash combination.",
))

register_audit(AuditSpec(
    name="thm45-audit",
    scenario="thm45-punishment",
    schedulers=("fifo",),
    seed_count=2,
    budget=24,
    tolerance=0.05,
    description="Thm 4.5 (n>2k+3t, ε): statistical substrate plus "
                "punishment stays robust under search.",
))

register_audit(AuditSpec(
    name="sec64-leak",
    scenario="sec64-leaky-honest",
    method="exhaustive",
    budget=128,
    seed_count=10,
    tolerance=0.01,
    description="Sec 6.4 counterexample: the leaky mediator must be found "
                "non-robust — the covert-channel coalition attack is "
                "rediscovered by search, not replayed.",
))

register_audit(AuditSpec(
    name="sec64-minimal-audit",
    scenario="sec64-minimal-honest",
    method="exhaustive",
    budget=128,
    seed_count=10,
    tolerance=0.01,
    description="Sec 6.4 fix: the identical search against the minimally-"
                "informative transform finds no profitable deviation.",
))

register_audit(AuditSpec(
    name="byz-audit",
    scenario="byz-agreement-thm41",
    schedulers=("fifo",),
    seed_count=1,
    budget=16,
    tolerance=0.05,
    description="Byzantine agreement through Thm 4.1: type misreports, "
                "lying shares and silence all searched — none profit.",
))

register_audit(AuditSpec(
    name="mediator-fuzz-audit",
    scenario="mediator-fuzz",
    schedulers=("fifo",),
    seed_count=3,
    budget=32,
    tolerance=0.05,
    description="Generated-game fuzz template: audits the mediator-fuzz "
                "scenario's seeded random game; `repro audit fuzz` (and "
                "`--game random@n4s123`) swap the game per target.",
))

register_audit(AuditSpec(
    name="mediator-audit",
    scenario="mediator-honest",
    schedulers=("fifo",),
    seed_count=2,
    budget=32,
    tolerance=0.05,
    description="The ideal consensus mediator game: utilities are capped at "
                "the honest payoff, so every searched gain is ≤ 0.",
))
