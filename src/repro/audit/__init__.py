"""The automated robustness-audit engine.

The paper's claims are ε-(k,t)-robustness statements: no coalition of up
to k rational players, even alongside t malicious ones, gains more than ε
by deviating from the protocol. This subsystem turns each such claim into
a runnable query instead of a spot check:

* :mod:`repro.audit.coalitions` enumerates rational/malicious splits up to
  (k, t) with symmetry reduction over player types;
* :mod:`repro.audit.strategy_space` composes the deviation primitives
  (crash, stall grids, lying, selective silence, misreports, covert
  signalling, joint leak-pooling) into a typed, seedable search space of
  JSON-serializable candidates;
* :mod:`repro.audit.search` scores candidates by expected-utility gain
  over a cached honest baseline, batching evaluation through the ordinary
  :class:`~repro.experiments.runner.ExperimentRunner` (exhaustive, random,
  and greedy hill-climbing drivers);
* :mod:`repro.audit.frontier` sweeps (k, t, ε) into the robustness
  frontier, returned as a JSON-round-trippable :class:`AuditResult`;
* :mod:`repro.audit.registry` holds the declarative :class:`AuditSpec` and
  the canonical audits for Theorems 4.1/4.2/4.4/4.5 and the Section 6.4
  leak counterexample (which the search must *rediscover*).

    >>> from repro.audit import run_audit
    >>> result = run_audit("sec64-leak")
    >>> result.robust()          # the leaky mediator is NOT robust
    False
    >>> result.max_gain() > 0    # the covert-channel attack was found
    True
"""

from repro.audit.coalitions import (
    Coalition,
    coalition_signature,
    enumerate_coalitions,
)
from repro.audit.strategy_space import (
    ATOM_MODES,
    AUDIT_DEVIATION_PREFIX,
    CandidateDeviation,
    DeviationAtom,
    HONEST_CANDIDATE,
    StrategySpace,
    atom_kinds,
    candidate_from_name,
)
from repro.audit.registry import (
    SEARCH_METHODS,
    AuditSpec,
    audit_names,
    get_audit,
    iter_audits,
    register_audit,
)
from repro.audit.search import AuditEngine, CandidateScore, FrontierCell
from repro.audit.frontier import AuditResult, run_audit, run_frontier
from repro.audit.fuzz import (
    FUZZ_SCENARIO,
    fuzz_audit_spec,
    fuzz_game_names,
    fuzz_summary,
    run_fuzz,
)

__all__ = [
    "ATOM_MODES",
    "AUDIT_DEVIATION_PREFIX",
    "AuditEngine",
    "AuditResult",
    "AuditSpec",
    "CandidateDeviation",
    "CandidateScore",
    "Coalition",
    "DeviationAtom",
    "FUZZ_SCENARIO",
    "FrontierCell",
    "HONEST_CANDIDATE",
    "SEARCH_METHODS",
    "StrategySpace",
    "atom_kinds",
    "audit_names",
    "candidate_from_name",
    "coalition_signature",
    "enumerate_coalitions",
    "fuzz_audit_spec",
    "fuzz_game_names",
    "fuzz_summary",
    "get_audit",
    "iter_audits",
    "register_audit",
    "run_audit",
    "run_frontier",
    "run_fuzz",
]
