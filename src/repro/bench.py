"""The unified quick-benchmark suite behind ``repro bench``.

Each registered bench exercises one hot path end to end and returns one
JSON-safe row; :func:`run_suite` aggregates the rows into a single
``bench_suite.json`` document so CI has one artifact to track instead of
scattered per-module pytest-benchmark files. The suite is self-validating:
benches that compare a *cold* path (fresh runner, artifact caching
disabled — the pre-cache behavior) against a *warm* path (persistent
runner, primed caches) assert record/score equality before reporting a
speedup, so a benchmark run doubles as a determinism check.

``compare_to_baseline`` implements the CI soft-warn: it never fails the
run, it only reports which benches regressed beyond the tolerance against
a committed baseline (``benchmarks/baseline_suite.json``).
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable, Optional

from repro.errors import ExperimentError

SUITE_VERSION = 1

REGRESSION_TOLERANCE = 0.30
"""Soft-warn when cells/sec drops more than this fraction below baseline."""

OBS_OVERHEAD_TOLERANCE = 0.05
"""Soft-warn when telemetry costs more than this fraction of wall-clock."""

BENCH_REGISTRY: dict[str, Callable[[bool], dict]] = {}


def register_bench(name: str):
    """Decorator registering a ``(quick: bool) -> row`` bench."""

    def _register(fn: Callable[[bool], dict]) -> Callable[[bool], dict]:
        if name in BENCH_REGISTRY:
            raise ExperimentError(f"bench {name!r} is already registered")
        BENCH_REGISTRY[name] = fn
        return fn

    return _register


def bench_names() -> list[str]:
    return sorted(BENCH_REGISTRY)


def _row(name: str, cells: int, after_s: float,
         before_s: Optional[float] = None, **extra) -> dict:
    row = {
        "name": name,
        "cells": cells,
        "wall_s": round(after_s, 6),
        "cells_per_s": round(cells / after_s, 3) if after_s > 0 else 0.0,
    }
    if before_s is not None:
        row["before_s"] = round(before_s, 6)
        row["speedup"] = round(before_s / after_s, 3) if after_s > 0 else 0.0
    row.update(extra)
    return row


# ---------------------------------------------------------------------------
# Benches
# ---------------------------------------------------------------------------

def _timed(fn, rounds: int) -> float:
    """Min wall-clock of ``rounds`` calls (robust against scheduler noise)."""
    best = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    return best


@register_bench("thm41-sweep")
def _bench_thm41_sweep(quick: bool) -> dict:
    """Multi-seed Thm 4.1 sweep: cold per-cell prepare vs warm cache."""
    from repro.experiments import ExperimentRunner, get_scenario

    seeds = 4 if quick else 12
    spec = get_scenario("thm41-honest").replace(
        schedulers=("fifo", "random"), seed_count=seeds
    )
    cold = None

    def run_cold():
        nonlocal cold
        with ExperimentRunner(cache_size=0) as cold_runner:
            cold = cold_runner.run(spec)

    before_s = _timed(run_cold, 2)
    with ExperimentRunner() as runner:
        warm = runner.run(spec)  # primes the artifact cache
        after_s = _timed(lambda: runner.run(spec), 3)
        warm = runner.run(spec)
    assert warm.records == cold.records, "warm-cache records diverged"
    return _row(
        "thm41-sweep", len(warm.records), after_s, before_s,
        cache=warm.stats.get("cache", {}),
    )


@register_bench("audit-batch")
def _bench_audit_batch(quick: bool) -> dict:
    """The bench_audit batch evaluation: per-call engines vs a shared one.

    *Before* mirrors the pre-pool behavior — every evaluation builds a
    fresh engine over a fresh caching-disabled runner (full game/protocol/
    deviation re-preparation per batch). *After* shares one engine over one
    warm persistent runner, the way ``run_audit`` now drives batches.
    """
    from repro.audit import get_audit
    from repro.audit.search import AuditEngine
    from repro.experiments import ExperimentRunner

    spec = get_audit("sec64-leak").replace(
        seed_count=4, budget=16 if quick else 32
    )
    rounds = 3

    def candidates_for(engine):
        space = engine.strategy_space(engine.k, engine.t)
        return [
            c for i, c in enumerate(space.candidates()) if i < spec.budget
        ]

    before_scores = []

    def run_cold():
        before_scores.clear()
        with ExperimentRunner(cache_size=0) as runner:
            engine = AuditEngine(spec, runner=runner)
            before_scores.extend(engine.evaluate(candidates_for(engine)))

    before_s = _timed(run_cold, rounds)

    after_scores = []
    with ExperimentRunner() as runner:
        engine = AuditEngine(spec, runner=runner)
        candidates = candidates_for(engine)
        engine.evaluate(candidates)  # prime caches + baseline

        def run_warm():
            after_scores.clear()
            after_scores.extend(engine.evaluate(candidates))

        after_s = _timed(run_warm, rounds)

    assert after_scores == before_scores, "warm audit scores diverged"
    cells = sum(score.runs for score in after_scores)
    return _row(
        "audit-batch", cells, after_s, before_s,
        evaluations=len(after_scores),
    )


@register_bench("mediator-sweep")
def _bench_mediator_sweep(quick: bool) -> dict:
    """Mediator-game grid (Section 6.4 leaky variant): cold vs warm."""
    from repro.experiments import ExperimentRunner, get_scenario

    spec = get_scenario("sec64-leaky-honest").replace(
        seed_count=20 if quick else 60
    )
    cold = None

    def run_cold():
        nonlocal cold
        with ExperimentRunner(cache_size=0) as cold_runner:
            cold = cold_runner.run(spec)

    before_s = _timed(run_cold, 3)
    with ExperimentRunner() as runner:
        warm = runner.run(spec)
        after_s = _timed(lambda: runner.run(spec), 3)
    assert warm.records == cold.records, "warm-cache records diverged"
    return _row("mediator-sweep", len(warm.records), after_s, before_s)


@register_bench("games-construct")
def _bench_games_construct(quick: bool) -> dict:
    """Game-family construction throughput (DSL compile, no caching)."""
    from repro.games.registry import make_game

    names = ["consensus@n3", "consensus@n5", "consensus@n7", "ba@n7t2",
             "sec64@n7k2", "random@n4s123"]
    rounds = 5 if quick else 20
    t0 = time.perf_counter()
    for _ in range(rounds):
        for name in names:
            make_game(name, 0)
    wall_s = time.perf_counter() - t0
    return _row("games-construct", rounds * len(names), wall_s)


@register_bench("store-hit")
def _bench_store_hit(quick: bool) -> dict:
    """Result-store dedup: fresh simulation vs answering from the store.

    *Before* is the cold path — an empty store per round, so every round
    simulates the full grid and persists it. *After* is a pure result
    hit: the populated store answers ``get_or_run`` with the stored
    document and zero simulation work.
    """
    import os
    import shutil
    import tempfile

    from repro.experiments import ExperimentRunner, get_scenario
    from repro.store import ResultStore

    spec = get_scenario("chicken-mediator").replace(
        seed_count=4 if quick else 12
    )
    tmp = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        cold = None
        round_no = [0]

        def run_cold():
            round_no[0] += 1
            nonlocal cold
            path = os.path.join(tmp, f"cold-{round_no[0]}.sqlite")
            with ResultStore(path) as fresh, ExperimentRunner() as runner:
                cold = fresh.get_or_run(spec, runner=runner)

        before_s = _timed(run_cold, 2)

        warm = None
        with ResultStore(os.path.join(tmp, "warm.sqlite")) as store:
            with ExperimentRunner(store=store) as runner:
                store.get_or_run(spec, runner=runner)  # populate

                def run_warm():
                    nonlocal warm
                    warm = store.get_or_run(spec, runner=runner)

                after_s = _timed(run_warm, 5)
            hits = store.counters()["result_hits"]
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    assert warm.hit, "populated store did not answer from the store"
    assert warm.result.records == cold.result.records, (
        "store-hit records diverged from a fresh simulation"
    )
    return _row(
        "store-hit", len(warm.result.records), after_s, before_s,
        result_hits=hits,
    )


@register_bench("audit-frontier")
def _bench_audit_frontier(quick: bool) -> dict:
    """(k, t) frontier sweep with one shared runner across cells."""
    from repro.audit import get_audit, run_frontier
    from repro.experiments import ExperimentRunner

    spec = get_audit("thm41-audit").replace(budget=4 if quick else 12)
    with ExperimentRunner() as runner:
        t0 = time.perf_counter()
        result = run_frontier(spec, runner=runner)
        wall_s = time.perf_counter() - t0
    return _row(
        "audit-frontier", result.evaluations(), wall_s,
        frontier_cells=len(result.cells),
    )


@register_bench("obs-overhead")
def _bench_obs_overhead(quick: bool) -> dict:
    """Telemetry cost: the same warm grid with metrics on vs ``REPRO_OBS=off``.

    *Before* runs with telemetry disabled (every metric mutation a no-op),
    *after* with the instrumented default — so ``speedup`` is the fraction
    of throughput telemetry leaves, and ``overhead_pct`` is what it takes.
    The record-equality assert doubles as the out-of-band proof: metrics
    on or off, the simulated records are identical.
    """
    from repro.experiments import ExperimentRunner, get_scenario
    from repro.obs.metrics import set_enabled

    spec = get_scenario("chicken-mediator").replace(
        seed_count=6 if quick else 24
    )
    rounds = 3
    with ExperimentRunner() as runner:
        on = runner.run(spec)  # warm the artifact caches first
        try:
            set_enabled(False)
            off = runner.run(spec)
            off_s = _timed(lambda: runner.run(spec), rounds)
        finally:
            set_enabled(None)  # back to the REPRO_OBS default
        on_s = _timed(lambda: runner.run(spec), rounds)
    assert on.records == off.records, "telemetry altered the run records"
    overhead = (on_s - off_s) / off_s if off_s > 0 else 0.0
    return _row(
        "obs-overhead", len(on.records), on_s, off_s,
        overhead_pct=round(overhead * 100, 2),
    )


@register_bench("net-sweep")
def _bench_net_sweep(quick: bool) -> dict:
    """Substrate cost: the simulated kernel vs the in-memory asyncio net.

    *Before* is the simulated-kernel leg, *after* the same grid over the
    in-memory net substrate under seeded lognormal latency — so
    ``speedup`` reads as the fraction of kernel throughput the asyncio
    event loop leaves. The conformance assert doubles as invariant 9:
    the two substrates produce record-equivalent payoffs and outcomes.
    """
    from repro.experiments import ExperimentRunner, get_scenario
    from repro.net.conformance import conformance_diff

    seeds = 2 if quick else 6
    net_spec = get_scenario("netcheck-thm41").replace(
        deviations=("honest",), seed_count=seeds
    )
    sim_spec = net_spec.replace(runtime="sim", latency="zero")
    rounds = 2
    sim = net = None
    with ExperimentRunner() as runner:
        sim = runner.run(sim_spec)  # warm the artifact caches first
        before_s = _timed(lambda: runner.run(sim_spec), rounds)
        net = runner.run(net_spec)
        after_s = _timed(lambda: runner.run(net_spec), rounds)
    diffs = conformance_diff(sim.records, net.records)
    assert not diffs, f"net records diverged from the kernel: {diffs}"
    return _row(
        "net-sweep", len(net.records), after_s, before_s,
        latency=net_spec.latency,
    )


@register_bench("faults-overhead")
def _bench_faults_overhead(quick: bool) -> dict:
    """Fault-injection cost: the fault-free fast path vs an active plan.

    *Before* is the fault-free leg (``faults="none"`` normalizes to no
    injector at all — the hook-free fast path), *after* the same grid
    under ``drop-0.1+dup-0.05``, so ``speedup`` reads as the fraction of
    fault-free throughput that per-send fate draws leave. Both legs are
    run twice and asserted byte-identical first: chaos stays a pure
    function of ``(spec, seed)``.
    """
    from repro.experiments import ExperimentRunner, get_scenario

    seeds = 2 if quick else 8
    plan = "drop-0.1+dup-0.05"
    base_spec = get_scenario("faultcheck-thm41").replace(
        seed_count=seeds, faults=("none",)
    )
    fault_spec = base_spec.replace(faults=(plan,))
    rounds = 3
    with ExperimentRunner() as runner:
        base = runner.run(base_spec)  # warm the artifact caches
        assert base.records == runner.run(base_spec).records
        faulted = runner.run(fault_spec)
        assert faulted.records == runner.run(fault_spec).records
        before_s = _timed(lambda: runner.run(base_spec), rounds)
        after_s = _timed(lambda: runner.run(fault_spec), rounds)
    return _row(
        "faults-overhead", len(faulted.records), after_s, before_s,
        plan=plan,
    )


# ---------------------------------------------------------------------------
# Suite driver
# ---------------------------------------------------------------------------

def run_suite(
    names: Optional[list[str]] = None,
    quick: bool = True,
) -> dict:
    """Run the (selected) benches; return the ``bench_suite.json`` document."""
    selected = names or bench_names()
    unknown = sorted(set(selected) - set(BENCH_REGISTRY))
    if unknown:
        raise ExperimentError(
            f"unknown bench(es): {', '.join(unknown)}; "
            f"known: {', '.join(bench_names())}"
        )
    rows = []
    t0 = time.perf_counter()
    for name in selected:
        rows.append(BENCH_REGISTRY[name](quick))
    total_s = time.perf_counter() - t0
    speedups = [row["speedup"] for row in rows if "speedup" in row]
    geomean = 1.0
    if speedups:
        product = 1.0
        for value in speedups:
            product *= max(value, 1e-9)
        geomean = product ** (1.0 / len(speedups))
    return {
        "suite": "repro-bench",
        "version": SUITE_VERSION,
        "quick": quick,
        "python": platform.python_version(),
        "benches": rows,
        "totals": {
            "wall_s": round(total_s, 3),
            "benches": len(rows),
            "speedup_geomean": round(geomean, 3),
        },
    }


def compare_to_baseline(
    suite: dict, baseline: dict, tolerance: float = REGRESSION_TOLERANCE
) -> list[str]:
    """Soft-warn regression check: cells/sec vs a committed baseline.

    Returns warning strings (empty: no regression). Missing benches on
    either side are skipped — adding or retiring a bench is not a
    regression. Throughput *above* baseline is silently fine.
    """
    base_rows = {
        row.get("name"): row for row in baseline.get("benches", [])
    }
    warnings = []
    for row in suite.get("benches", []):
        base = base_rows.get(row["name"])
        if base is None:
            continue
        base_rate = base.get("cells_per_s") or 0.0
        rate = row.get("cells_per_s") or 0.0
        if base_rate <= 0:
            continue
        if rate < base_rate * (1.0 - tolerance):
            warnings.append(
                f"{row['name']}: {rate:.1f} cells/s is "
                f"{(1 - rate / base_rate) * 100:.0f}% below the baseline "
                f"{base_rate:.1f} cells/s (tolerance {tolerance * 100:.0f}%)"
            )
    return warnings


def load_suite(path: str) -> dict:
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        raise ExperimentError(
            f"cannot read bench suite {path!r}: {exc}"
        ) from None
