"""Arithmetic circuits over GF(p).

The paper measures mediator complexity by "an arithmetic circuit with at
most c gates"; we take that literally. A mediator strategy is compiled to a
:class:`Circuit`: inputs are the players' reported types (one field element
per player), internal gates are +, −, ×, scalar ops, and dealt randomness
(uniform field elements or uniform bits), and each output wire is privately
revealed to one player, who decodes it to an action.

Circuits evaluate in two worlds:

* *in the clear* (:meth:`Circuit.evaluate`) — reference semantics, used by
  the abstract mediator game;
* *under MPC* (:mod:`repro.mpc`) — the cheap-talk implementations evaluate
  the same object on secret-shared wires.

Builders for common mediator patterns are provided: boolean helpers
(xor/and/or/not over {0,1} wires), equality-to-constant indicators over a
small domain, table lookup (univariate Lagrange polynomial), and threshold
/ majority circuits.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.errors import MediatorError
from repro.field import GF, GFElement, Polynomial, lagrange_interpolate


@dataclass(frozen=True)
class Gate:
    """One circuit gate. ``args`` are wire indices; semantics per ``op``."""

    op: str  # input | const | add | sub | mul | smul | sadd | rand | randbit
    args: tuple[int, ...] = ()
    param: Any = None  # player for input; constant for const/smul/sadd


@dataclass(frozen=True)
class OutputSpec:
    """A wire privately revealed to ``player`` under label ``label``."""

    wire: int
    player: int
    label: str


class Circuit:
    """An arithmetic circuit over a prime field (append-only builder)."""

    def __init__(self, field_: GF, name: str = "circuit") -> None:
        self.field = field_
        self.name = name
        self.gates: list[Gate] = []
        self.outputs: list[OutputSpec] = []

    # -- construction ------------------------------------------------------

    def _push(self, gate: Gate) -> int:
        self.gates.append(gate)
        return len(self.gates) - 1

    def input(self, player: int) -> int:
        """A wire carrying ``player``'s (encoded) reported type."""
        return self._push(Gate("input", (), player))

    def const(self, value) -> int:
        return self._push(Gate("const", (), self.field(value)))

    def add(self, a: int, b: int) -> int:
        return self._push(Gate("add", (a, b)))

    def sub(self, a: int, b: int) -> int:
        return self._push(Gate("sub", (a, b)))

    def mul(self, a: int, b: int) -> int:
        return self._push(Gate("mul", (a, b)))

    def smul(self, a: int, scalar) -> int:
        """Multiply a wire by a public scalar (free under MPC)."""
        return self._push(Gate("smul", (a,), self.field(scalar)))

    def sadd(self, a: int, scalar) -> int:
        """Add a public scalar to a wire (free under MPC)."""
        return self._push(Gate("sadd", (a,), self.field(scalar)))

    def rand(self) -> int:
        """A uniformly random field element (dealt randomness)."""
        return self._push(Gate("rand", ()))

    def randbit(self) -> int:
        """A uniformly random bit (dealt randomness)."""
        return self._push(Gate("randbit", ()))

    def randint(self, modulus: int) -> int:
        """A uniformly random value in range(modulus) (dealt randomness)."""
        if modulus < 1:
            raise MediatorError("randint modulus must be >= 1")
        return self._push(Gate("randint", (), modulus))

    def output(self, wire: int, player: int, label: Optional[str] = None) -> None:
        label = label if label is not None else f"out{len(self.outputs)}"
        self.outputs.append(OutputSpec(wire, player, label))

    def output_all(self, wire: int, players: Sequence[int],
                   label: Optional[str] = None) -> None:
        label = label if label is not None else f"out{len(self.outputs)}"
        for player in players:
            self.outputs.append(OutputSpec(wire, player, f"{label}@{player}"))

    # -- boolean / lookup helpers (wires assumed to carry {0,1}) -----------

    def b_not(self, a: int) -> int:
        return self.sub(self.const(1), a)

    def b_and(self, a: int, b: int) -> int:
        return self.mul(a, b)

    def b_or(self, a: int, b: int) -> int:
        return self.sub(self.add(a, b), self.mul(a, b))

    def b_xor(self, a: int, b: int) -> int:
        two_ab = self.smul(self.mul(a, b), 2)
        return self.sub(self.add(a, b), two_ab)

    def xor_many(self, wires: Sequence[int]) -> int:
        if not wires:
            raise MediatorError("xor_many needs at least one wire")
        acc = wires[0]
        for w in wires[1:]:
            acc = self.b_xor(acc, w)
        return acc

    def sum_many(self, wires: Sequence[int]) -> int:
        if not wires:
            raise MediatorError("sum_many needs at least one wire")
        acc = wires[0]
        for w in wires[1:]:
            acc = self.add(acc, w)
        return acc

    def mux(self, bit: int, if_one: int, if_zero: int) -> int:
        """bit·if_one + (1−bit)·if_zero."""
        return self.add(self.mul(bit, if_one), self.mul(self.b_not(bit), if_zero))

    def powers(self, a: int, max_power: int) -> list[int]:
        """Wires carrying a^0 (const 1), a^1, ..., a^max_power."""
        wires = [self.const(1), a]
        for _ in range(2, max_power + 1):
            wires.append(self.mul(wires[-1], a))
        return wires[: max_power + 1]

    def lookup(self, a: int, table: dict[int, int], domain: Sequence[int]) -> int:
        """The univariate function ``table`` applied to wire ``a``.

        ``a`` must carry a value in ``domain``; the function is realised as
        the Lagrange polynomial through (x, table.get(x, 0)) for x in
        domain, costing |domain| − 1 multiplications.
        """
        points = [(x, table.get(x, 0)) for x in domain]
        poly = lagrange_interpolate(self.field, points)
        if poly.is_zero():
            return self.const(0)
        pows = self.powers(a, max(poly.degree, 0))
        terms = [
            self.smul(pows[j], coeff)
            for j, coeff in enumerate(poly.coeffs)
            if coeff.value != 0
        ]
        if not terms:
            return self.const(0)
        return self.sum_many(terms)

    def eq_const(self, a: int, value: int, domain: Sequence[int]) -> int:
        """Indicator wire: 1 if a == value else 0 (a ranging over domain)."""
        return self.lookup(a, {value: 1}, domain)

    def threshold(self, bit_wires: Sequence[int], minimum: int) -> int:
        """1 iff at least ``minimum`` of the given bit wires are 1."""
        total = self.sum_many(list(bit_wires))
        domain = list(range(len(bit_wires) + 1))
        return self.lookup(total, {s: 1 for s in domain if s >= minimum}, domain)

    def majority(self, bit_wires: Sequence[int]) -> int:
        """1 iff strictly more than half the bits are 1 (ties -> 0)."""
        return self.threshold(bit_wires, len(bit_wires) // 2 + 1)

    # -- accounting ---------------------------------------------------------

    @property
    def size(self) -> int:
        """Gate count c, the paper's circuit-size parameter."""
        return len(self.gates)

    @property
    def mul_count(self) -> int:
        return sum(1 for g in self.gates if g.op == "mul")

    @property
    def rand_count(self) -> int:
        return sum(1 for g in self.gates if g.op == "rand")

    @property
    def randbit_count(self) -> int:
        return sum(1 for g in self.gates if g.op == "randbit")

    @property
    def randint_count(self) -> int:
        return sum(1 for g in self.gates if g.op == "randint")

    def input_players(self) -> list[int]:
        return sorted({g.param for g in self.gates if g.op == "input"})

    def outputs_for(self, player: int) -> list[OutputSpec]:
        return [o for o in self.outputs if o.player == player]

    def validate(self) -> None:
        for idx, gate in enumerate(self.gates):
            for arg in gate.args:
                if not (0 <= arg < idx):
                    raise MediatorError(
                        f"gate {idx} references wire {arg} (not yet defined)"
                    )
        for out in self.outputs:
            if not (0 <= out.wire < len(self.gates)):
                raise MediatorError(f"output wire {out.wire} out of range")

    # -- reference evaluation -------------------------------------------------

    def evaluate(
        self,
        inputs: dict[int, int],
        rng,
        randomness: Optional[dict[int, GFElement]] = None,
    ) -> dict[str, GFElement]:
        """Evaluate in the clear. Returns {output label: value}.

        ``inputs`` maps player -> encoded type. ``randomness`` (wire index
        -> value) pins the rand/randbit gates; otherwise they draw from
        ``rng``. Output labels include per-player duplicates as built.
        """
        self.validate()
        values: list[GFElement] = []
        for idx, gate in enumerate(self.gates):
            if gate.op == "input":
                if gate.param not in inputs:
                    raise MediatorError(f"missing input for player {gate.param}")
                values.append(self.field(inputs[gate.param]))
            elif gate.op == "const":
                values.append(gate.param)
            elif gate.op == "add":
                values.append(values[gate.args[0]] + values[gate.args[1]])
            elif gate.op == "sub":
                values.append(values[gate.args[0]] - values[gate.args[1]])
            elif gate.op == "mul":
                values.append(values[gate.args[0]] * values[gate.args[1]])
            elif gate.op == "smul":
                values.append(values[gate.args[0]] * gate.param)
            elif gate.op == "sadd":
                values.append(values[gate.args[0]] + gate.param)
            elif gate.op == "rand":
                if randomness and idx in randomness:
                    values.append(randomness[idx])
                else:
                    values.append(self.field.random(rng))
            elif gate.op == "randbit":
                if randomness and idx in randomness:
                    values.append(randomness[idx])
                else:
                    values.append(self.field(rng.randrange(2)))
            elif gate.op == "randint":
                if randomness and idx in randomness:
                    values.append(randomness[idx])
                else:
                    values.append(self.field(rng.randrange(gate.param)))
            else:  # pragma: no cover - defensive
                raise MediatorError(f"unknown gate op {gate.op!r}")
        return {out.label: values[out.wire] for out in self.outputs}

    def __repr__(self) -> str:
        return (
            f"<Circuit {self.name!r} gates={self.size} mul={self.mul_count} "
            f"outputs={len(self.outputs)}>"
        )
