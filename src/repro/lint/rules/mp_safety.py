"""Multiprocessing-safety rules.

Parallel == serial determinism relies on worker processes being pure: a
worker rebuilds everything it needs from the picklable task payload. Two
things quietly break that: module-level mutable state that drifts apart
between the parent and the workers (or between warm and cold workers),
and payloads that only pickle by accident (lambdas and closures do not
pickle at all).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import (
    Finding,
    ModuleInfo,
    Rule,
    register_rule,
)
from repro.lint.rules.contracts import _is_mutable_literal


@register_rule
class ModuleMutableStateRule(Rule):
    """Module-level mutable bindings must be ALL_CAPS registries."""

    name = "module-mutable-state"
    description = (
        "module-level mutable containers fork into every pool worker and "
        "then diverge; import-time registries are the one sanctioned use "
        "and are spelled ALL_CAPS (optionally _-prefixed) — lowercase "
        "module-level mutables read as accumulating runtime state, which "
        "breaks warm-vs-cold worker equivalence"
    )
    packages = ()

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in module.tree.body:
            targets = []
            value = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _is_mutable_literal(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("__") and name.endswith("__"):
                    continue  # dunders (__all__) are module metadata
                bare = name.lstrip("_")
                if bare and bare == bare.upper():
                    continue  # ALL_CAPS: an import-time registry/constant
                yield module.finding(
                    self, target,
                    f"module-level mutable {name!r} is per-process state "
                    f"that diverges across pool workers; make it an "
                    f"ALL_CAPS import-time registry or move it into an "
                    f"object owned by the run",
                )


_POOL_DISPATCH = frozenset({
    "map", "map_async", "imap", "imap_unordered", "starmap",
    "starmap_async", "apply_async", "submit",
})


@register_rule
class WorkerPayloadRule(Rule):
    """Pool-dispatched callables must be module-level (picklable)."""

    name = "unpicklable-worker-payload"
    description = (
        "lambdas and nested functions do not pickle, so handing one to "
        "pool.map/imap_unordered/apply_async/submit dies at dispatch time "
        "(or never runs on spawn-based platforms); dispatch module-level "
        "functions and pass data, not closures"
    )
    packages = ()

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        # Names bound by a def nested inside another function: closures.
        nested: set = set()

        def collect(node: ast.AST, depth: int) -> None:
            for child in ast.iter_child_nodes(node):
                child_depth = depth
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if depth > 0:
                        nested.add(child.name)
                    child_depth = depth + 1
                elif isinstance(child, ast.ClassDef):
                    # Methods are reachable as attributes; not closures.
                    child_depth = 0
                collect(child, child_depth)

        collect(module.tree, 0)

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if not (
                isinstance(fn, ast.Attribute) and fn.attr in _POOL_DISPATCH
            ):
                continue
            if not node.args:
                continue
            target = node.args[0]
            if isinstance(target, ast.Lambda):
                yield module.finding(
                    self, target,
                    f"lambda passed to .{fn.attr}(): lambdas do not "
                    f"pickle across the process boundary; dispatch a "
                    f"module-level function",
                )
            elif isinstance(target, ast.Name) and target.id in nested:
                yield module.finding(
                    self, target,
                    f"nested function {target.id!r} passed to "
                    f".{fn.attr}(): closures do not pickle across the "
                    f"process boundary; hoist it to module level",
                )
