"""Determinism rules: seedable randomness, no clocks, ordered iteration.

These encode the invariant every record-diff and golden-file test in the
repo relies on: a run is a pure function of ``(spec, seed)``. The three
ways that silently breaks in Python are the module-global RNG, wall-clock
or OS-entropy reads, and iterating an unordered container in a path whose
visit order reaches the outputs.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import (
    Finding,
    ModuleInfo,
    Rule,
    call_name,
    from_imports,
    import_aliases,
    register_rule,
)

#: Packages whose code executes inside simulations (the "simulation path").
SIM_PACKAGES = (
    "sim", "cheaptalk", "mediator", "mpc", "broadcast", "games", "field",
)

#: Draw functions of the module-global ``random`` RNG (process-wide state).
_GLOBAL_DRAWS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "getrandbits", "gauss", "normalvariate",
    "lognormvariate", "expovariate", "vonmisesvariate", "betavariate",
    "gammavariate", "paretovariate", "weibullvariate", "triangular",
    "seed", "randbytes", "binomialvariate",
})


@register_rule
class UnseededRandomRule(Rule):
    """No module-global ``random`` draws; ``Random()`` must be seeded."""

    name = "unseeded-random"
    description = (
        "calls like random.random()/random.choice() draw from the "
        "process-global RNG, and random.Random() with no arguments seeds "
        "from the OS — both break seed-determinism; draw from an RngTree "
        "stream or an explicitly seeded random.Random(seed) instead"
    )
    packages = ()  # everywhere: nothing in src/ may touch the global RNG

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        aliases = import_aliases(module.tree, "random")
        named = from_imports(module.tree, "random")
        numpy_aliases = import_aliases(module.tree, "numpy")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                owner, attr = func.value.id, func.attr
                if owner in aliases and attr in _GLOBAL_DRAWS:
                    yield module.finding(
                        self, node,
                        f"random.{attr}() draws from the process-global "
                        f"RNG; use an RngTree stream or a seeded "
                        f"random.Random(seed)",
                    )
                elif owner in aliases and attr == "Random" and not (
                    node.args or node.keywords
                ):
                    yield module.finding(
                        self, node,
                        "random.Random() with no seed initialises from OS "
                        "entropy; pass an explicit derived seed",
                    )
            elif isinstance(func, ast.Name) and func.id in named:
                original = named[func.id]
                if original in _GLOBAL_DRAWS:
                    yield module.finding(
                        self, node,
                        f"{func.id}() (from random import {original}) draws "
                        f"from the process-global RNG; use an RngTree "
                        f"stream or a seeded random.Random(seed)",
                    )
                elif original == "Random" and not (node.args or node.keywords):
                    yield module.finding(
                        self, node,
                        "Random() with no seed initialises from OS entropy; "
                        "pass an explicit derived seed",
                    )
            # numpy.random.* global draws (np.random.rand, np.random.seed,
            # ...): anything except constructing an explicitly seeded
            # generator is process-global state.
            name = call_name(node)
            if name is None:
                continue
            parts = name.split(".")
            if (
                len(parts) >= 3
                and parts[0] in numpy_aliases
                and parts[1] == "random"
                and not (
                    parts[2] in ("default_rng", "Generator", "SeedSequence")
                    and (node.args or node.keywords)
                )
            ):
                yield module.finding(
                    self, node,
                    f"{name}() uses numpy's global (or OS-seeded) RNG; use "
                    f"numpy.random.default_rng(derived_seed)",
                )


#: forbidden call -> why (dotted suffixes matched against resolved names).
_WALLCLOCK_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "clock read",
    "time.monotonic_ns": "clock read",
    "time.perf_counter": "clock read",
    "time.perf_counter_ns": "clock read",
    "datetime.now": "wall-clock read",
    "datetime.utcnow": "wall-clock read",
    "datetime.today": "wall-clock read",
    "date.today": "wall-clock read",
    "os.urandom": "OS entropy",
    "os.getrandom": "OS entropy",
    "uuid.uuid1": "host/clock-dependent id",
    "uuid.uuid4": "OS-entropy id",
}

#: Reasons that stay banned even where clock reads are exempt.
_ENTROPY_REASONS = frozenset({
    "OS entropy", "OS-entropy id", "host/clock-dependent id",
})

#: Packages the rule scans where *clock* reads are legitimate (job
#: timestamps, daemon polling, store mtimes, telemetry spans/latencies,
#: event-loop deadlines and latency injection in the net substrate) but
#: OS entropy stays banned (job ids, fingerprints, span ids and latency
#: draws must not depend on it — net latency comes from seeded per-edge
#: RngTree streams).
CLOCK_EXEMPT_PACKAGES = ("service", "store", "obs", "net")


@register_rule
class WallClockRule(Rule):
    """No clock or OS-entropy reads in simulation-path packages.

    The service/store/obs/net layers are scanned too, under a scoped
    exemption: their clock reads are allowed (that is what a job queue, a
    span tracer, or an event-loop transport does), but OS-entropy reads
    are findings everywhere the rule looks.
    """

    name = "wallclock"
    description = (
        "time.time()/datetime.now()/os.urandom()/uuid4()/secrets.* inside "
        "the simulation path make runs depend on when/where they execute; "
        "timing belongs to the TimingModel, randomness to seeded streams "
        "(elapsed-time profiling lives in the experiment layer, which this "
        "rule does not cover; repro.service/repro.store/repro.obs/"
        "repro.net may read clocks but not OS entropy)"
    )
    packages = SIM_PACKAGES + CLOCK_EXEMPT_PACKAGES

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        clocks_exempt = (
            bool(module.repro_parts)
            and module.repro_parts[0] in CLOCK_EXEMPT_PACKAGES
        )
        scope = (
            f"repro.{module.repro_parts[0]}" if clocks_exempt
            else "the simulation path"
        )
        secrets_aliases = import_aliases(module.tree, "secrets")
        named = {}
        for mod in ("time", "os", "uuid", "datetime"):
            for local, original in from_imports(module.tree, mod).items():
                dotted = f"{mod}.{original}"
                if mod == "datetime":
                    # from datetime import datetime -> datetime.now later;
                    # handled through the attribute path below.
                    continue
                if dotted in _WALLCLOCK_CALLS:
                    named[local] = dotted
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            parts = name.split(".")
            if parts[0] in secrets_aliases and len(parts) > 1:
                yield module.finding(
                    self, node,
                    f"{name}() reads OS entropy inside {scope}; "
                    f"use a seeded stream",
                )
                continue
            dotted = named.get(name)
            if dotted is None:
                suffix = ".".join(parts[-2:]) if len(parts) >= 2 else name
                if suffix in _WALLCLOCK_CALLS:
                    dotted = suffix
            if dotted is None:
                continue
            reason = _WALLCLOCK_CALLS[dotted]
            if clocks_exempt and reason not in _ENTROPY_REASONS:
                continue
            yield module.finding(
                self, node,
                f"{name}() is a {reason} inside {scope} ({dotted}); "
                + (
                    "derive ids from pid/counter/clock instead"
                    if clocks_exempt
                    else "runs must be pure in (spec, seed)"
                ),
            )


#: Builtins whose result does not depend on iteration order.
_ORDER_INSENSITIVE = frozenset({
    "sorted", "min", "max", "sum", "len", "set", "frozenset", "any", "all",
    "bool",
})


class _SetTypes(ast.NodeVisitor):
    """Approximate which local names / self attributes are sets.

    Sources of set-ness: ``set(...)``/``frozenset(...)`` calls, set
    displays/comprehensions, and ``set``/``frozenset`` annotations. The
    approximation is per-class for ``self.X`` and per-module for locals —
    deliberately coarse: a name that is *ever* bound to a set in the module
    is treated as a set everywhere, which is the safe direction for a
    determinism gate.
    """

    def __init__(self) -> None:
        self.local_sets: set = set()
        self.attr_sets: set = set()  # "ClassName.attr"
        self._class_stack: list[str] = []

    def _is_set_expr(self, node: Optional[ast.AST]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def _is_set_annotation(self, node: Optional[ast.AST]) -> bool:
        if isinstance(node, ast.Name):
            return node.id in ("set", "frozenset", "Set", "FrozenSet")
        if isinstance(node, ast.Subscript):
            return self._is_set_annotation(node.value)
        if isinstance(node, ast.Attribute):
            return node.attr in ("Set", "FrozenSet", "AbstractSet")
        return False

    def _record(self, target: ast.AST, is_set: bool) -> None:
        if not is_set:
            return
        if isinstance(target, ast.Name):
            self.local_sets.add(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self._class_stack
        ):
            self.attr_sets.add(f"{self._class_stack[-1]}.{target.attr}")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record(target, self._is_set_expr(node.value))
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record(
            node.target,
            self._is_set_expr(node.value)
            or self._is_set_annotation(node.annotation),
        )
        self.generic_visit(node)

    def visit_arg(self, node: ast.arg) -> None:
        if self._is_set_annotation(node.annotation):
            self.local_sets.add(node.arg)
        self.generic_visit(node)


@register_rule
class UnsortedSetIterationRule(Rule):
    """Iteration over sets / ``dict.keys()`` needs an explicit order."""

    name = "unsorted-set-iteration"
    description = (
        "iterating a set/frozenset (or dict.keys()) in kernel, scheduler, "
        "or protocol code visits elements in hash order; wrap the iterable "
        "in sorted(...) — order-insensitive consumers "
        "(min/max/sum/len/any/all/set) are exempt"
    )
    packages = ("sim", "cheaptalk", "mediator", "mpc", "broadcast")

    def _classify(self, node: ast.AST, types: _SetTypes,
                  current_class: Optional[str]) -> Optional[str]:
        """A description of why ``node`` is unordered, or None."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set display"
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set", "frozenset"
            ):
                return f"a {node.func.id}(...) result"
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "keys"
            ):
                return "dict.keys()"
            return None
        if isinstance(node, ast.Name) and node.id in types.local_sets:
            return f"{node.id!r} (bound to a set in this module)"
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and current_class is not None
            and f"{current_class}.{node.attr}" in types.attr_sets
        ):
            return f"'self.{node.attr}' (a set attribute)"
        return None

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        types = _SetTypes()
        types.visit(module.tree)

        # Iterables consumed by order-insensitive callables are exempt:
        # min({...}), any(x for x in some_set), " ".join(sorted(s)), etc.
        # (AST nodes hash by object identity, so plain sets/dicts of nodes
        # give per-node bookkeeping without id()-keying.)
        exempt: set = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in _ORDER_INSENSITIVE:
                    for arg in node.args:
                        exempt.add(arg)
                        if isinstance(arg, ast.GeneratorExp):
                            for comp in arg.generators:
                                exempt.add(comp.iter)
            if isinstance(node, ast.Compare):
                # Membership tests and subset comparisons are order-free.
                exempt.add(node.left)
                for comparator in node.comparators:
                    exempt.add(comparator)

        class_of: dict = {module.tree: None}

        def assign_classes(node: ast.AST, cls: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                child_cls = (
                    child.name if isinstance(child, ast.ClassDef) else cls
                )
                class_of[child] = child_cls
                assign_classes(child, child_cls)

        assign_classes(module.tree, None)

        def iter_sites(node: ast.AST):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield node.iter
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for comp in node.generators:
                    yield comp.iter
            elif isinstance(node, ast.Call):
                fn = node.func
                if isinstance(fn, ast.Name) and fn.id in (
                    "list", "tuple", "iter", "enumerate", "reversed"
                ):
                    if node.args:
                        yield node.args[0]
                elif isinstance(fn, ast.Attribute) and fn.attr == "join":
                    if node.args:
                        yield node.args[0]

        for node in ast.walk(module.tree):
            for site in iter_sites(node):
                if site in exempt:
                    continue
                why = self._classify(site, types, class_of.get(node))
                if why is not None:
                    yield module.finding(
                        self, site,
                        f"iteration over {why} has no deterministic order "
                        f"contract; wrap it in sorted(...)",
                    )


@register_rule
class IdOrderingRule(Rule):
    """No ordering, hashing, or keying by ``id()``."""

    name = "id-ordering"
    description = (
        "id() values change between processes and runs, so anything keyed "
        "or ordered by them diverges between parallel workers and the "
        "serial reference; key by pid/uid/name instead"
    )
    packages = ()

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        shadowed = False
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                names = [a.arg for a in args.args + args.kwonlyargs
                         + args.posonlyargs]
                if "id" in names:
                    shadowed = True  # someone rebinds id; stop guessing
        if shadowed:
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
            ):
                yield module.finding(
                    self, node,
                    "id() is process-local and nondeterministic across "
                    "runs; never order, hash, or key simulation state by it",
                )
            elif (
                isinstance(node, ast.keyword)
                and node.arg == "key"
                and isinstance(node.value, ast.Name)
                and node.value.id == "id"
            ):
                yield module.finding(
                    self, node.value,
                    "sorting with key=id orders by memory address; use a "
                    "stable key (pid, uid, name)",
                )
