"""The shipped rule battery.

Importing this package registers every rule with the engine's
``RULE_REGISTRY`` (the same import-time registration trick the scenario,
game, and audit registries use). Add a rule by writing a
``@register_rule`` class in one of these modules — or your own module,
imported here.
"""

from repro.lint.rules import contracts  # noqa: F401
from repro.lint.rules import determinism  # noqa: F401
from repro.lint.rules import mp_safety  # noqa: F401
