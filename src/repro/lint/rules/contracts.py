"""Protocol-contract rules: reset(), __slots__, JSON symmetry, defaults.

These encode contracts that are documented in docstrings but invisible to
the type system: schedulers and timing models are *reused* across runs
(PR 5 caches instances per (name, n)), so any run state they carry must be
re-initialised by ``reset``; message/trace/context objects are allocated
per delivery, so they must be slotted; serialized result types must
round-trip losslessly; and mutable default arguments are shared state in
disguise.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import (
    Finding,
    ModuleInfo,
    Rule,
    register_rule,
)


def _base_names(node: ast.ClassDef) -> list[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _method_names(node: ast.ClassDef) -> set:
    return {
        stmt.name
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.AST]:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = (
            target.id if isinstance(target, ast.Name)
            else target.attr if isinstance(target, ast.Attribute)
            else None
        )
        if name == "dataclass":
            return deco
    return None


@register_rule
class ResetContractRule(Rule):
    """Stateful Scheduler/TimingModel subclasses must implement reset()."""

    name = "reset-contract"
    description = (
        "schedulers and timing models are cached and reused across runs "
        "(reset(seed) / reset(runtime) is called before every run); a "
        "subclass that initialises underscore-prefixed run state in "
        "__init__ without defining reset leaks one run's state into the "
        "next — immutable configuration attributes do not need reset"
    )
    packages = ()  # subclasses appear in sim/, analysis/, experiments/

    _CONTRACT_BASES = ("Scheduler", "TimingModel")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = _base_names(node)
            contract = next(
                (
                    kind for kind in self._CONTRACT_BASES
                    if any(b == kind or b.endswith(kind) for b in bases)
                ),
                None,
            )
            if contract is None:
                continue
            methods = _method_names(node)
            if "reset" in methods:
                continue
            state = self._init_state_attrs(node)
            if state:
                yield module.finding(
                    self, node,
                    f"{node.name} subclasses {contract} and initialises run "
                    f"state ({', '.join(sorted(state))}) in __init__ but "
                    f"defines no reset(); cached instances will leak state "
                    f"across runs",
                )

    @staticmethod
    def _init_state_attrs(node: ast.ClassDef) -> list[str]:
        """Underscore-prefixed self attributes assigned in __init__."""
        init = next(
            (
                stmt for stmt in node.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
            ),
            None,
        )
        if init is None:
            return []
        attrs = []
        for sub in ast.walk(init):
            targets = []
            if isinstance(sub, ast.Assign):
                targets = sub.targets
            elif isinstance(sub, ast.AnnAssign):
                targets = [sub.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr.startswith("_")
                    and not target.attr.startswith("__")
                ):
                    attrs.append(target.attr)
        return attrs


@register_rule
class SlotsHotClassRule(Rule):
    """Per-message / per-event kernel classes must declare __slots__."""

    name = "slots-hot-class"
    description = (
        "Message/TraceEvent/View/Context objects are allocated on the "
        "kernel's per-delivery hot path; a __dict__ per instance costs "
        "memory and attribute-lookup time, and silently absorbs typo'd "
        "attribute writes — declare __slots__ (or dataclass(slots=True))"
    )
    packages = ("sim",)

    _HOT_NAME_PARTS = ("Message", "Event", "View", "Context")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(part in node.name for part in self._HOT_NAME_PARTS):
                continue
            if self._has_slots(node):
                continue
            yield module.finding(
                self, node,
                f"{node.name} looks like a per-message/per-event kernel "
                f"class (name matches "
                f"{'/'.join(self._HOT_NAME_PARTS)}) but declares no "
                f"__slots__; add __slots__ or @dataclass(slots=True)",
            )

    @staticmethod
    def _has_slots(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "__slots__":
                        return True
            elif (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            ):
                return True
        deco = _dataclass_decorator(node)
        if isinstance(deco, ast.Call):
            for kw in deco.keywords:
                if (
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
        return False


@register_rule
class JsonSymmetryRule(Rule):
    """to_json/from_json and to_dict/from_dict must come in pairs."""

    name = "json-symmetry"
    description = (
        "a class with to_json but no from_json (or to_dict without "
        "from_dict) cannot round-trip — records written today become "
        "unreadable tomorrow; when to_dict builds a literal dict, its keys "
        "must also cover every dataclass field, or saved results silently "
        "lose data"
    )
    packages = ()

    _PAIRS = (("to_json", "from_json"), ("to_dict", "from_dict"))

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = _method_names(node)
            for writer, reader in self._PAIRS:
                if writer in methods and reader not in methods:
                    yield module.finding(
                        self, node,
                        f"{node.name} defines {writer}() but no {reader}(); "
                        f"serialized output cannot be read back",
                    )
                elif reader in methods and writer not in methods:
                    yield module.finding(
                        self, node,
                        f"{node.name} defines {reader}() but no {writer}(); "
                        f"the accepted format has no producer and will "
                        f"drift",
                    )
            if "to_dict" in methods and _dataclass_decorator(node) is not None:
                yield from self._check_field_coverage(module, node)

    def _check_field_coverage(
        self, module: ModuleInfo, node: ast.ClassDef
    ) -> Iterator[Finding]:
        fields = [
            stmt.target.id
            for stmt in node.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and not stmt.target.id.startswith("_")
        ]
        to_dict = next(
            stmt for stmt in node.body
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "to_dict"
        )
        returns = [
            sub for sub in ast.walk(to_dict) if isinstance(sub, ast.Return)
        ]
        if len(returns) != 1 or not isinstance(returns[0].value, ast.Dict):
            return  # asdict()/computed dict: nothing to check statically
        literal = returns[0].value
        keys = set()
        for key in literal.keys:
            if key is None:
                return  # ``**spread`` present: key set is not static
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                return
            keys.add(key.value)
        missing = [f for f in fields if f not in keys]
        if missing:
            yield module.finding(
                self, to_dict,
                f"{node.name}.to_dict() omits dataclass field(s) "
                f"{', '.join(missing)}; the round-trip silently drops them",
            )


_MUTABLE_CALLS = ("list", "dict", "set", "bytearray", "defaultdict",
                  "deque", "Counter", "OrderedDict")


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        name = (
            fn.id if isinstance(fn, ast.Name)
            else fn.attr if isinstance(fn, ast.Attribute)
            else None
        )
        return name in _MUTABLE_CALLS
    return False


@register_rule
class MutableDefaultRule(Rule):
    """No mutable default arguments, anywhere."""

    name = "mutable-default"
    description = (
        "a mutable default argument is one shared object across every "
        "call — state leaks between runs exactly like an un-reset "
        "scheduler; default to None (or a tuple/frozenset) and build the "
        "mutable container inside the function"
    )
    packages = ()

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            args = node.args
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                if _is_mutable_literal(default):
                    label = (
                        node.name
                        if not isinstance(node, ast.Lambda) else "<lambda>"
                    )
                    yield module.finding(
                        self, default,
                        f"mutable default argument in {label}(): one "
                        f"instance is shared across every call; use None "
                        f"and construct it inside",
                    )


@register_rule
class SwallowedExceptionRule(Rule):
    """No silently discarded exceptions in the substrate/service packages."""

    name = "swallowed-exception"
    description = (
        "a bare `except:` or an `except Exception:` whose body does "
        "nothing silently discards failures — in the simulation kernel, "
        "the net substrate, the service, and the store that turns a "
        "crash the fault-injection layer should surface (or the orphan "
        "scanner should requeue) into a wrong answer; catch the narrow "
        "exception you can actually handle, or suppress with a "
        "justification for the rare deliberate sink"
    )
    packages = ("sim", "net", "service", "store")

    _BROAD = ("Exception", "BaseException")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield module.finding(
                    self, node,
                    "bare `except:` catches everything including "
                    "KeyboardInterrupt/SystemExit and hides the failure; "
                    "name the exception type",
                )
                continue
            broad = self._broad_name(node.type)
            if broad is not None and self._is_noop(node.body):
                yield module.finding(
                    self, node,
                    f"`except {broad}` with a do-nothing body swallows "
                    f"every failure silently; handle it, re-raise, or "
                    f"narrow the type",
                )

    @classmethod
    def _broad_name(cls, type_node: ast.AST):
        """The broad exception name caught, or None for narrow catches."""
        candidates = (
            type_node.elts if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        for candidate in candidates:
            name = (
                candidate.id if isinstance(candidate, ast.Name)
                else candidate.attr if isinstance(candidate, ast.Attribute)
                else None
            )
            if name in cls._BROAD:
                return name
        return None

    @staticmethod
    def _is_noop(body: list) -> bool:
        """True when a handler body does nothing observable."""
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring or `...`
            return False
        return True
