"""The ``repro lint`` rule engine.

A lint *rule* is a small AST pass over one module: it yields
:class:`Finding`s anchored to source lines. The engine owns everything
around the rules — file discovery, parsing, the rule registry, the
suppression protocol, reporters, and the ``--diff`` line filter — so a
rule implementation is nothing but ``check(module) -> findings``.

Why this exists: every result in this repo (parallel == serial sweeps,
byte-identical kernel refactors, golden-file game equivalence, audit
reproducibility) rests on one invariant — *simulation-path code is
seed-deterministic and side-effect-free*. Record diffs catch violations
after the fact; these rules catch them at review time. The determinism
contracts the rules encode are written down in ``CONTRIBUTING.md``.

Suppressions
------------

A finding is suppressed by a comment on the same line (or the line
directly above), with a mandatory justification after ``--``::

    for pid in self.members:  # repro-lint: disable=unsorted-set-iteration -- consumed by min() below, order-insensitive

A suppression without a justification, or naming an unknown rule, is
itself reported (rule ``bad-suppression``) and cannot suppress anything.
Suppressed findings stay in the report (``suppressed: true`` in JSON)
but never affect the exit code.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import os
import re
import subprocess
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.errors import LintError


# -- findings -----------------------------------------------------------------

@dataclass(frozen=True)
class Finding:
    """One rule violation (or suppressed violation) at one source line."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    justification: str = ""

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise LintError(
                f"unknown Finding fields: {', '.join(sorted(unknown))}"
            )
        return cls(**data)

    def format(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"[{self.rule}] {self.message}{mark}"
        )


# -- modules ------------------------------------------------------------------

class ModuleInfo:
    """One parsed module, as rules see it."""

    def __init__(self, path: str, display: str, source: str) -> None:
        self.path = path
        self.display = display
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=display)
        # Package segments below the ``repro`` package (empty when the file
        # is outside it, e.g. a test fixture): ("sim", "runtime.py").
        parts = display.replace("\\", "/").split("/")
        self.repro_parts: tuple[str, ...] = (
            tuple(parts[parts.index("repro") + 1:])
            if "repro" in parts else ()
        )

    def in_packages(self, *packages: str) -> bool:
        """True when the module lives under one of ``packages``."""
        return bool(self.repro_parts) and self.repro_parts[0] in packages

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule.name,
            path=self.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


# -- rules --------------------------------------------------------------------

class Rule:
    """Base class: one named check over one module's AST."""

    name = "rule"
    description = ""
    #: Packages under ``repro`` the rule applies to; empty = everywhere.
    packages: tuple[str, ...] = ()

    def applies_to(self, module: ModuleInfo) -> bool:
        if not self.packages:
            return True
        return module.in_packages(*self.packages)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError


RULE_REGISTRY: dict[str, Rule] = {}

BAD_SUPPRESSION = "bad-suppression"
_BUILTIN_RULE_DOCS = {
    BAD_SUPPRESSION: (
        "a `# repro-lint: disable=...` comment lacks a justification or "
        "names an unknown rule (engine built-in; always on)"
    ),
}


def register_rule(rule_cls: type) -> type:
    """Class decorator: instantiate and register a rule by its name."""
    rule = rule_cls()
    if not rule.name or rule.name == Rule.name:
        raise LintError(f"rule {rule_cls.__name__} needs a distinct name")
    if rule.name in RULE_REGISTRY or rule.name in _BUILTIN_RULE_DOCS:
        raise LintError(f"lint rule {rule.name!r} is already registered")
    RULE_REGISTRY[rule.name] = rule
    return rule_cls


def _loaded_registry() -> dict[str, Rule]:
    # Importing the rules package populates RULE_REGISTRY (same lazy-load
    # trick the scenario and audit registries use).
    from repro.lint import rules  # noqa: F401

    return RULE_REGISTRY


def rule_names() -> list[str]:
    return sorted(_loaded_registry()) + [BAD_SUPPRESSION]


def iter_rules() -> list[Rule]:
    registry = _loaded_registry()
    return [registry[name] for name in sorted(registry)]


def rule_descriptions() -> dict[str, str]:
    out = {rule.name: rule.description for rule in iter_rules()}
    out.update(_BUILTIN_RULE_DOCS)
    return out


def resolve_rules(names: Optional[Iterable[str]]) -> list[Rule]:
    """The rules to run: all of them, or the named subset."""
    registry = _loaded_registry()
    if names is None:
        return [registry[name] for name in sorted(registry)]
    out = []
    for name in names:
        if name not in registry:
            raise LintError(
                f"unknown lint rule {name!r}; known rules: "
                f"{', '.join(rule_names())}"
            )
        out.append(registry[name])
    return out


# -- suppressions -------------------------------------------------------------

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\-]+)"
    r"(?:\s*--\s*(\S.*))?"
)


@dataclass
class Suppression:
    line: int
    rules: tuple[str, ...]
    justification: str


def scan_suppressions(module: ModuleInfo) -> tuple[list[Suppression], list[Finding]]:
    """All suppression comments plus findings for malformed ones."""
    registry = _loaded_registry()
    suppressions: list[Suppression] = []
    bad: list[Finding] = []
    for lineno, text in enumerate(module.lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        names = tuple(n for n in match.group(1).split(",") if n)
        justification = (match.group(2) or "").strip()
        unknown = [n for n in names if n not in registry]
        if unknown:
            bad.append(Finding(
                rule=BAD_SUPPRESSION,
                path=module.display,
                line=lineno,
                col=match.start() + 1,
                message=(
                    f"suppression names unknown rule(s) "
                    f"{', '.join(sorted(unknown))}; known: "
                    f"{', '.join(sorted(registry))}"
                ),
            ))
            continue
        if not justification:
            bad.append(Finding(
                rule=BAD_SUPPRESSION,
                path=module.display,
                line=lineno,
                col=match.start() + 1,
                message=(
                    "suppression needs a justification: "
                    "`# repro-lint: disable=<rule> -- <why>`"
                ),
            ))
            continue
        suppressions.append(Suppression(lineno, names, justification))
    return suppressions, bad


def apply_suppressions(
    findings: list[Finding], suppressions: list[Suppression]
) -> list[Finding]:
    """Mark findings covered by a same-line / line-above suppression."""
    by_line: dict[int, Suppression] = {}
    for sup in suppressions:
        by_line[sup.line] = sup
    out = []
    for finding in findings:
        sup = by_line.get(finding.line) or by_line.get(finding.line - 1)
        if sup is not None and finding.rule in sup.rules:
            finding = dataclasses.replace(
                finding, suppressed=True, justification=sup.justification
            )
        out.append(finding)
    return out


# -- the report ---------------------------------------------------------------

@dataclass
class LintReport:
    """Everything one lint invocation produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: tuple[str, ...] = ()
    parse_errors: list[Finding] = field(default_factory=list)

    @property
    def active(self) -> list[Finding]:
        """Findings that should fail the gate (unsuppressed + parse errors)."""
        return self.parse_errors + [
            f for f in self.findings if not f.suppressed
        ]

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0

    def restrict_to_lines(self, lines_by_path: dict[str, set]) -> "LintReport":
        """The ``--diff`` filter: keep findings on the given lines only.

        Parse errors always survive (a file that does not parse is broken
        wherever the edit was).
        """
        kept = [
            f for f in self.findings
            if f.line in lines_by_path.get(f.path, ())
        ]
        return LintReport(
            findings=kept,
            files_checked=self.files_checked,
            rules_run=self.rules_run,
            parse_errors=list(self.parse_errors),
        )

    DERIVED_KEYS = ("summary", "clean")
    """Read-only convenience keys emitted next to the report fields;
    dropped on parse so the JSON round-trips through ``from_dict``."""

    def to_dict(self) -> dict:
        active = self.active
        return {
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
            "findings": [f.to_dict() for f in self.findings],
            "parse_errors": [f.to_dict() for f in self.parse_errors],
            "summary": {
                "active": len(active),
                "suppressed": sum(1 for f in self.findings if f.suppressed),
                "by_rule": {
                    name: sum(1 for f in active if f.rule == name)
                    for name in sorted({f.rule for f in active})
                },
            },
            "clean": not active,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "LintReport":
        data = {k: v for k, v in data.items() if k not in cls.DERIVED_KEYS}
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise LintError(
                f"unknown LintReport fields: {', '.join(sorted(unknown))}"
            )
        return cls(
            findings=[Finding.from_dict(f) for f in data.get("findings", ())],
            files_checked=data.get("files_checked", 0),
            rules_run=tuple(data.get("rules_run", ())),
            parse_errors=[
                Finding.from_dict(f) for f in data.get("parse_errors", ())
            ],
        )

    @classmethod
    def from_json(cls, text: str) -> "LintReport":
        return cls.from_dict(json.loads(text))

    def format_text(self, show_suppressed: bool = False) -> str:
        lines = [f.format() for f in self.parse_errors]
        lines += [
            f.format()
            for f in self.findings
            if show_suppressed or not f.suppressed
        ]
        active = self.active
        suppressed = sum(1 for f in self.findings if f.suppressed)
        lines.append(
            f"checked {self.files_checked} file(s) with "
            f"{len(self.rules_run)} rule(s): "
            + (
                f"{len(active)} finding(s)"
                if active else "clean"
            )
            + (f" ({suppressed} suppressed)" if suppressed else "")
        )
        return "\n".join(lines)


# -- running ------------------------------------------------------------------

def collect_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()  # deterministic walk order
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        else:
            raise LintError(f"no such file or directory: {path!r}")
    return sorted(dict.fromkeys(out))


def _display_path(path: str) -> str:
    rel = os.path.relpath(path)
    return (path if rel.startswith("..") else rel).replace(os.sep, "/")


def lint_file(
    path: str,
    rules: list[Rule],
    respect_scopes: bool = True,
) -> tuple[list[Finding], Optional[Finding]]:
    """Lint one file; returns (findings, parse_error_or_None)."""
    display = _display_path(path)
    try:
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        module = ModuleInfo(path, display, source)
    except (SyntaxError, UnicodeDecodeError) as exc:
        lineno = getattr(exc, "lineno", 1) or 1
        return [], Finding(
            rule="parse-error",
            path=display,
            line=lineno,
            col=(getattr(exc, "offset", 1) or 1),
            message=f"file does not parse: {exc.msg if hasattr(exc, 'msg') else exc}",
        )
    findings: list[Finding] = []
    for rule in rules:
        if respect_scopes and not rule.applies_to(module):
            continue
        findings.extend(rule.check(module))
    suppressions, bad = scan_suppressions(module)
    findings = apply_suppressions(findings, suppressions) + bad
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings, None


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Iterable[str]] = None,
    respect_scopes: bool = True,
) -> LintReport:
    """Lint files/directories; the programmatic entry behind ``repro lint``."""
    selected = resolve_rules(None if rules is None else list(rules))
    files = collect_files(paths)
    report = LintReport(rules_run=tuple(r.name for r in selected))
    for path in files:
        findings, parse_error = lint_file(
            path, selected, respect_scopes=respect_scopes
        )
        if parse_error is not None:
            report.parse_errors.append(parse_error)
        report.findings.extend(findings)
        report.files_checked += 1
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


# -- --diff support -----------------------------------------------------------

_HUNK_RE = re.compile(r"^@@ -\d+(?:,\d+)? \+(\d+)(?:,(\d+))? @@")


def parse_diff_lines(diff_text: str) -> dict[str, set]:
    """Map new-file path -> set of added/changed line numbers, from a
    unified diff produced with zero context (``git diff -U0``)."""
    lines_by_path: dict[str, set] = {}
    current: Optional[str] = None
    for line in diff_text.splitlines():
        if line.startswith("+++ "):
            target = line[4:].strip()
            if target == "/dev/null":
                current = None
            else:
                current = target[2:] if target.startswith("b/") else target
            continue
        match = _HUNK_RE.match(line)
        if match and current is not None:
            start = int(match.group(1))
            count = int(match.group(2)) if match.group(2) is not None else 1
            if count:
                lines_by_path.setdefault(current, set()).update(
                    range(start, start + count)
                )
    return lines_by_path


def changed_lines(ref: str, paths: Iterable[str]) -> dict[str, set]:
    """Lines changed since ``ref``, per repo-relative path (via git)."""
    cmd = ["git", "diff", "-U0", "--no-color", ref, "--"] + list(paths)
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, check=False
        )
    except OSError as exc:
        raise LintError(f"cannot run git for --diff: {exc}") from None
    if proc.returncode not in (0, 1):
        raise LintError(
            f"git diff {ref!r} failed: {proc.stderr.strip() or proc.returncode}"
        )
    return parse_diff_lines(proc.stdout)


# -- shared AST helpers (used by the rule modules) ---------------------------

def import_aliases(tree: ast.Module, module_name: str) -> set:
    """Local names bound to ``module_name`` by ``import`` statements."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module_name:
                    aliases.add(alias.asname or alias.name.split(".")[0])
                elif alias.name.startswith(module_name + "."):
                    # ``import numpy.random`` binds ``numpy``.
                    aliases.add(alias.asname or module_name)
    return aliases


def from_imports(tree: ast.Module, module_name: str) -> dict[str, str]:
    """Local name -> original name for ``from module_name import ...``."""
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module_name:
            for alias in node.names:
                out[alias.asname or alias.name] = alias.name
    return out


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's function, when it is a plain name chain."""
    parts = []
    target = node.func
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name):
        parts.append(target.id)
        return ".".join(reversed(parts))
    return None


def walk_with_parents(tree: ast.AST) -> Iterator[tuple[ast.AST, Optional[ast.AST]]]:
    """Yield (node, parent) pairs over the whole tree."""
    stack: list[tuple[ast.AST, Optional[ast.AST]]] = [(tree, None)]
    while stack:
        node, parent = stack.pop()
        yield node, parent
        for child in ast.iter_child_nodes(node):
            stack.append((child, node))
