"""``repro.lint`` — the repo's own static analyzer.

An AST-based determinism and protocol-contract linter (stdlib only),
exposed as ``repro lint`` on the CLI and run blocking in CI. See
``repro.lint.engine`` for the engine and suppression protocol, and
``repro.lint.rules`` for the shipped rule battery; ``CONTRIBUTING.md``
documents the invariants the rules encode.
"""

from repro.lint.engine import (
    Finding,
    LintReport,
    ModuleInfo,
    Rule,
    changed_lines,
    collect_files,
    iter_rules,
    lint_file,
    lint_paths,
    parse_diff_lines,
    register_rule,
    resolve_rules,
    rule_descriptions,
    rule_names,
)

__all__ = [
    "Finding",
    "LintReport",
    "ModuleInfo",
    "Rule",
    "changed_lines",
    "collect_files",
    "iter_rules",
    "lint_file",
    "lint_paths",
    "parse_diff_lines",
    "register_rule",
    "resolve_rules",
    "rule_descriptions",
    "rule_names",
]
