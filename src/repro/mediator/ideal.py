"""Exact solution-concept checking for the *ideal* mediator game.

In the abstract (ideal) mediator game, an honest player reports its type
truthfully and obeys the mediator's recommendation; a deviating coalition C
can (a) misreport its types and (b) play any function of its joint types
and joint recommendations. This is the communication-equilibrium view of
the mediator game, and it is what "(k,t)-robust equilibrium in Γ_d" means
for the canonical mediators in this library (the concrete message protocol
adds nothing: minimally informative mediators send only round counters and
recommendations).

The checkers here mirror :mod:`repro.games.solution` — same conditioning on
coalition types, same LP for mixed coalition deviations — but the deviation
space is (misreport, disobedience map) pairs. They require the spec to
provide an exact ``mediator_dist`` (reports -> distribution over
recommendation profiles).
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import GameError
from repro.games.library import GameSpec
from repro.games.solution import SolutionReport, Violation, _coalitions, _max_min_gain

_TOL = 1e-9
_MAX_OPTIONS = 200_000


def _require_dist(spec: GameSpec):
    dist = getattr(spec, "mediator_dist", None)
    if dist is None:
        raise GameError(
            f"spec {spec.name!r} lacks mediator_dist; use Monte-Carlo checking"
        )
    return dist


class CoalitionBehavior:
    """A pure deviation for coalition ``members`` at one joint type x_C.

    ``reports`` is the joint misreport; ``action_map`` maps each possible
    joint recommendation rec_C to the joint action the coalition plays.
    """

    __slots__ = ("members", "reports", "action_map")

    def __init__(self, members: tuple, reports: tuple, action_map: dict) -> None:
        self.members = members
        self.reports = reports
        self.action_map = action_map

    def act(self, rec_c: tuple) -> tuple:
        return self.action_map.get(rec_c, rec_c)


def honest_payoffs(
    spec: GameSpec,
    cond_players: tuple,
    cond_types: tuple,
) -> dict[int, float]:
    """u_i(Γ_d, σ+σ_d, x_C) for all i under full honesty."""
    return _payoffs(spec, [], cond_players, cond_types)


def _payoffs(
    spec: GameSpec,
    behaviors: Sequence[CoalitionBehavior],
    cond_players: tuple,
    cond_types: tuple,
) -> dict[int, float]:
    dist = _require_dist(spec)
    game = spec.game
    member_of: dict[int, CoalitionBehavior] = {}
    for behavior in behaviors:
        for pid in behavior.members:
            member_of[pid] = behavior
    totals = {i: 0.0 for i in range(game.n)}
    support = (
        game.type_space.conditional(cond_players, cond_types)
        if cond_players
        else list(game.type_space.support)
    )
    for types, p_type in support:
        reports = list(types)
        for behavior in behaviors:
            for pid, rep in zip(behavior.members, behavior.reports):
                reports[pid] = rep
        for rec, p_rec in dist(tuple(reports)).items():
            actions = list(rec)
            for behavior in behaviors:
                rec_c = tuple(rec[pid] for pid in behavior.members)
                for pid, action in zip(behavior.members, behavior.act(rec_c)):
                    actions[pid] = action
            payoff = game.utility(tuple(types), tuple(actions))
            weight = p_type * p_rec
            for i in range(game.n):
                totals[i] += weight * payoff[i]
    return totals


def _recommendation_domain(
    spec: GameSpec, members: tuple, cond_players: tuple, cond_types: tuple,
    reports_c: tuple,
) -> list[tuple]:
    """All joint recommendations rec_C that can occur given C's misreport."""
    dist = _require_dist(spec)
    game = spec.game
    support = (
        game.type_space.conditional(cond_players, cond_types)
        if cond_players
        else list(game.type_space.support)
    )
    seen: list[tuple] = []
    for types, _p in support:
        reports = list(types)
        for pid, rep in zip(members, reports_c):
            reports[pid] = rep
        for rec in dist(tuple(reports)):
            rec_c = tuple(rec[pid] for pid in members)
            if rec_c not in seen:
                seen.append(rec_c)
    return seen


def enumerate_behaviors(
    spec: GameSpec,
    members: tuple,
    cond_players: tuple,
    cond_types: tuple,
    x_c: tuple,
) -> list[CoalitionBehavior]:
    """All pure (misreport, disobedience) deviations for C knowing x_C."""
    game = spec.game
    report_space = list(
        itertools.product(*(game.type_space.player_types(pid) for pid in members))
    )
    action_space = list(
        itertools.product(*(game.action_sets[pid] for pid in members))
    )
    out: list[CoalitionBehavior] = []
    for reports in report_space:
        domain = _recommendation_domain(
            spec, members, cond_players, cond_types, reports
        )
        n_maps = len(action_space) ** len(domain)
        if n_maps * len(report_space) > _MAX_OPTIONS:
            raise GameError(
                f"ideal deviation space too large ({n_maps} maps); "
                "use Monte-Carlo checking instead"
            )
        for choice in itertools.product(action_space, repeat=len(domain)):
            out.append(
                CoalitionBehavior(members, reports, dict(zip(domain, choice)))
            )
    return out


def check_ideal_t_immunity(
    spec: GameSpec, t: int, epsilon: float = 0.0
) -> SolutionReport:
    """t-immunity of truthful-obedient play in the ideal mediator game."""
    label = (f"{epsilon}-" if epsilon else "") + f"ideal-{t}-immunity"
    report = SolutionReport(concept=label, holds=True, margin=float("inf"))
    game = spec.game
    if t == 0:
        report.checks = 1
        return report
    for malicious in _coalitions(list(game.players()), t):
        for x_t in game.type_space.coalition_profiles(malicious):
            baseline = _payoffs(spec, [], malicious, x_t)
            for behavior in enumerate_behaviors(spec, malicious, malicious, x_t, x_t):
                payoffs = _payoffs(spec, [behavior], malicious, x_t)
                for i in game.players():
                    if i in malicious:
                        continue
                    report.checks += 1
                    drop = baseline[i] - payoffs[i]
                    threshold = epsilon if epsilon > 0 else _TOL
                    if drop >= threshold - (_TOL if epsilon > 0 else 0.0):
                        report.holds = False
                        report.violations.append(
                            Violation(
                                kind=label,
                                coalition=(),
                                malicious=malicious,
                                types=x_t,
                                detail=f"player {i} harmed by {drop:.6g}",
                                gain=drop,
                            )
                        )
                    else:
                        report.margin = min(report.margin, threshold - drop)
    return report


def check_ideal_k_resilience(
    spec: GameSpec,
    k: int,
    epsilon: float = 0.0,
    strong: bool = False,
    fixed_behavior: Optional[CoalitionBehavior] = None,
) -> SolutionReport:
    """k-resilience of truthful-obedient play in the ideal mediator game.

    ``fixed_behavior`` pins a malicious coalition T to a deviation while K
    is searched (used by the robustness checker).
    """
    label = ("strong " if strong else "") + (
        f"{epsilon}-" if epsilon else ""
    ) + f"ideal-{k}-resilience"
    report = SolutionReport(concept=label, holds=True, margin=float("inf"))
    game = spec.game
    blocked = fixed_behavior.members if fixed_behavior is not None else ()
    base_behaviors = [fixed_behavior] if fixed_behavior is not None else []
    eligible = [i for i in game.players() if i not in blocked]
    for coalition in _coalitions(eligible, k):
        for x_k in game.type_space.coalition_profiles(coalition):
            baseline_all = _payoffs(spec, base_behaviors, coalition, x_k)
            baseline = np.array([baseline_all[i] for i in coalition])
            behaviors = enumerate_behaviors(spec, coalition, coalition, x_k, x_k)
            matrix = np.zeros((len(behaviors), len(coalition)))
            for row, behavior in enumerate(behaviors):
                payoffs = _payoffs(
                    spec, base_behaviors + [behavior], coalition, x_k
                )
                for col, i in enumerate(coalition):
                    matrix[row, col] = payoffs[i]
            report.checks += 1
            if strong:
                gain = float((matrix - baseline[None, :]).max())
            else:
                gain = _max_min_gain(matrix, baseline)
            threshold = epsilon if epsilon > 0 else _TOL
            if gain >= threshold - (_TOL if epsilon > 0 else 0.0):
                report.holds = False
                report.violations.append(
                    Violation(
                        kind=label,
                        coalition=coalition,
                        malicious=blocked,
                        types=x_k,
                        detail=f"coalition gains {gain:.6g}",
                        gain=gain,
                    )
                )
            else:
                report.margin = min(report.margin, threshold - gain)
    return report


def check_ideal_mediator_robustness(
    spec: GameSpec,
    k: int,
    t: int,
    epsilon: float = 0.0,
    strong: bool = False,
) -> SolutionReport:
    """(ε-)(strong) (k,t)-robustness of the ideal mediator equilibrium.

    This is the hypothesis of Theorems 4.1/4.2/4.4/4.5: σ + σ_d is a
    (k,t)-robust equilibrium of the mediator game. Only complete-information
    specs (or typed specs with small coalition type spaces) are feasible
    exactly; larger games should use the Monte-Carlo checker in
    :mod:`repro.analysis.robustness`.
    """
    label = ("strong " if strong else "") + (
        f"{epsilon}-" if epsilon else ""
    ) + f"ideal-({k},{t})-robustness"
    report = SolutionReport(concept=label, holds=True, margin=float("inf"))
    immunity = check_ideal_t_immunity(spec, t, epsilon=epsilon)
    report.checks += immunity.checks
    if not immunity.holds:
        report.holds = False
        report.violations.extend(immunity.violations)
    if immunity.margin is not None:
        report.margin = min(report.margin, immunity.margin)

    game = spec.game
    malicious_sets = [()] + list(_coalitions(list(game.players()), t))
    for malicious in malicious_sets:
        if malicious:
            tau_options: list[Optional[CoalitionBehavior]] = []
            for x_t in game.type_space.coalition_profiles(malicious):
                # Complete-information restriction: one joint type cell.
                cells = game.type_space.coalition_profiles(malicious)
                if len(cells) > 1:
                    raise GameError(
                        "exact ideal robustness supports complete-information "
                        "specs only; use Monte-Carlo checking for typed games"
                    )
                tau_options = [
                    b
                    for b in enumerate_behaviors(
                        spec, malicious, malicious, x_t, x_t
                    )
                ]
        else:
            tau_options = [None]
        for tau in tau_options:
            sub = check_ideal_k_resilience(
                spec, k, epsilon=epsilon, strong=strong, fixed_behavior=tau
            )
            report.checks += sub.checks
            if not sub.holds:
                report.holds = False
                report.violations.extend(sub.violations)
            if sub.margin is not None:
                report.margin = min(report.margin, sub.margin)
    return report
