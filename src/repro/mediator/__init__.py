"""Mediator games: canonical-form mediators extending an underlying game."""

from repro.mediator.protocol import (
    MEDIATOR_ROUNDS_DEFAULT,
    FnMediator,
    HonestMediatorPlayer,
    mediator_pid,
)
from repro.mediator.games import MediatorGame
from repro.mediator.canonical import check_canonical_form
from repro.mediator.ideal import check_ideal_mediator_robustness
from repro.mediator.minimal import (
    LeakySection64Mediator,
    MinimalMediator,
    minimally_informative,
)
from repro.mediator.rules import (
    MEDIATOR_RULES,
    build_mediator,
    mediator_rule_names,
    register_mediator_rule,
)

__all__ = [
    "MEDIATOR_RULES",
    "build_mediator",
    "mediator_rule_names",
    "register_mediator_rule",
    "MEDIATOR_ROUNDS_DEFAULT",
    "FnMediator",
    "HonestMediatorPlayer",
    "mediator_pid",
    "MediatorGame",
    "check_canonical_form",
    "check_ideal_mediator_robustness",
    "LeakySection64Mediator",
    "MinimalMediator",
    "minimally_informative",
]
