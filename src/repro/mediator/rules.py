"""Named mediator rules: the declarative face of ``GameSpec.mediator_fn``.

A *mediator rule* is a JSON-safe description of what the trusted mediator
computes from reported types — ``{"rule": <name>, "params": {...}}`` — that
:class:`~repro.games.dsl.GameDef` compiles into the two callables every
:class:`~repro.games.library.GameSpec` carries: ``mediator_fn(reports,
rng)`` (one sampled recommendation profile) and ``mediator_dist(reports)``
(the exact distribution the equilibrium checkers need). Keeping both
derived from one rule means they cannot drift apart.

Shipped rules:

* ``common-coin`` — draw one value from ``values`` uniformly and recommend
  it to everyone (the consensus / Section 6.4 mediator);
* ``majority`` — recommend ``high`` to everyone iff a strict majority of
  reports equals ``high``, else ``low`` (the Byzantine-agreement mediator);
* ``rotate-duty`` — draw a uniformly random set of exactly ``count``
  players and recommend ``active`` to them, ``idle`` to the rest (the
  free-rider / volunteer / public-goods / minority mediator);
* ``table`` — an explicit distribution over recommendation profiles,
  either one unconditional ``cells`` list or a ``by_reports`` table keyed
  by the reported type profile (the correlated-equilibrium mediators:
  chicken, battle of the sexes, generated random games);
* ``fixed`` — always recommend the same ``profile``;
* ``shamir-decode`` — error-correct the reported Shamir shares
  (Berlekamp–Welch over Z_modulus) and recommend the secret to everyone
  (the rational-secret-reconstruction mediator).

New rules register through :func:`register_mediator_rule`; a builder takes
``(params, n)`` and returns the ``(mediator_fn, mediator_dist)`` pair.

Sampling discipline: rules consume randomness through ``rng.randrange``
with the same call pattern the hand-written library mediators used, so the
DSL-compiled games replay the exact per-seed draws of the pre-DSL
implementations (the golden tests pin this).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Sequence

from repro.errors import GameError

MediatorFn = Callable[[Sequence[Any], Any], tuple]
MediatorDist = Callable[[Sequence[Any]], dict]
RuleBuilder = Callable[[dict, int], tuple[MediatorFn, MediatorDist]]

MEDIATOR_RULES: dict[str, RuleBuilder] = {}


def register_mediator_rule(name: str, builder: RuleBuilder | None = None):
    """Register a ``(params, n) -> (fn, dist)`` builder; usable as decorator."""

    def _register(fn: RuleBuilder) -> RuleBuilder:
        if name in MEDIATOR_RULES:
            raise GameError(f"mediator rule {name!r} is already registered")
        MEDIATOR_RULES[name] = fn
        return fn

    if builder is not None:
        return _register(builder)
    return _register


def mediator_rule_names() -> list[str]:
    return sorted(MEDIATOR_RULES)


def build_mediator(rule: dict, n: int) -> tuple[MediatorFn, MediatorDist]:
    """Resolve a ``{"rule": ..., "params": {...}}`` description."""
    if not isinstance(rule, dict) or "rule" not in rule:
        raise GameError(
            f"mediator rule must be a dict with a 'rule' key, got {rule!r}"
        )
    name = rule["rule"]
    params = dict(rule.get("params", {}))
    try:
        builder = MEDIATOR_RULES[name]
    except KeyError:
        raise GameError(
            f"unknown mediator rule {name!r}; known rules: "
            f"{', '.join(mediator_rule_names())}"
        ) from None
    return builder(params, n)


def _require(params: dict, key: str, rule: str) -> Any:
    try:
        return params[key]
    except KeyError:
        raise GameError(
            f"mediator rule {rule!r} needs parameter {key!r}"
        ) from None


# ---------------------------------------------------------------------------
# Shipped rules
# ---------------------------------------------------------------------------

@register_mediator_rule("common-coin")
def _common_coin(params: dict, n: int):
    values = [_thaw_value(v) for v in _require(params, "values", "common-coin")]
    if not values:
        raise GameError("common-coin needs at least one value")

    def fn(reports, rng):
        value = values[rng.randrange(len(values))]
        return tuple(value for _ in range(n))

    def dist(reports):
        prob = 1.0 / len(values)
        return {tuple(v for _ in range(n)): prob for v in values}

    return fn, dist


@register_mediator_rule("majority")
def _majority(params: dict, n: int):
    high = _thaw_value(params.get("high", 1))
    low = _thaw_value(params.get("low", 0))

    def decide(reports):
        ones = sum(1 for r in reports if r == high)
        return high if ones * 2 > len(reports) else low

    def fn(reports, rng):
        return tuple(decide(reports) for _ in range(n))

    def dist(reports):
        return {tuple(decide(reports) for _ in range(n)): 1.0}

    return fn, dist


@register_mediator_rule("rotate-duty")
def _rotate_duty(params: dict, n: int):
    count = int(_require(params, "count", "rotate-duty"))
    active = _thaw_value(_require(params, "active", "rotate-duty"))
    idle = _thaw_value(_require(params, "idle", "rotate-duty"))
    if not 1 <= count <= n:
        raise GameError(f"rotate-duty count {count} out of range for n={n}")
    subsets = list(itertools.combinations(range(n), count))

    def profile(chosen):
        return tuple(active if i in chosen else idle for i in range(n))

    def fn(reports, rng):
        return profile(subsets[rng.randrange(len(subsets))])

    def dist(reports):
        prob = 1.0 / len(subsets)
        return {profile(chosen): prob for chosen in subsets}

    return fn, dist


def _thaw_value(value: Any) -> Any:
    """JSON gives us lists; recommendation entries may be tuples."""
    if isinstance(value, (list, tuple)):
        return tuple(_thaw_value(v) for v in value)
    return value


def _parse_cells(cells, n: int) -> list[tuple[tuple, float]]:
    out = []
    for entry in cells:
        try:
            profile, prob = entry
        except (TypeError, ValueError):
            raise GameError(
                f"table cell must be [profile, prob], got {entry!r}"
            ) from None
        profile = tuple(_thaw_value(v) for v in profile)
        if len(profile) != n:
            raise GameError(
                f"table profile {profile!r} has wrong arity (n={n})"
            )
        out.append((profile, float(prob)))
    if not out:
        raise GameError("mediator table needs at least one cell")
    total = sum(prob for _, prob in out)
    if abs(total - 1.0) > 1e-9:
        raise GameError(f"mediator table probabilities sum to {total}, not 1")
    return out


def _table_sampler(cells: list[tuple[tuple, float]]):
    profiles = [p for p, _ in cells]
    probs = [prob for _, prob in cells]
    uniform = all(abs(p - probs[0]) < 1e-12 for p in probs)

    def sample(rng):
        if uniform:
            # Preserves the draw pattern of the hand-written mediators
            # (one randrange over the cell list) for golden determinism.
            return profiles[rng.randrange(len(profiles))]
        roll = rng.random()
        acc = 0.0
        for profile, prob in cells:
            acc += prob
            if roll <= acc:
                return profile
        return profiles[-1]

    return sample


@register_mediator_rule("table")
def _table(params: dict, n: int):
    if "by_reports" in params:
        keyed = {}
        for reports, cells in params["by_reports"]:
            key = tuple(_thaw_value(v) for v in reports)
            keyed[key] = _parse_cells(cells, n)
        samplers = {key: _table_sampler(cells) for key, cells in keyed.items()}

        def lookup(reports):
            key = tuple(reports)
            if key not in keyed:
                raise GameError(
                    f"mediator table has no row for reports {key!r}"
                )
            return key

        def fn(reports, rng):
            return samplers[lookup(reports)](rng)

        def dist(reports):
            return dict(keyed[lookup(reports)])

        return fn, dist

    cells = _parse_cells(_require(params, "cells", "table"), n)
    sample = _table_sampler(cells)

    def fn(reports, rng):
        return sample(rng)

    def dist(reports):
        return dict(cells)

    return fn, dist


@register_mediator_rule("fixed")
def _fixed(params: dict, n: int):
    profile = tuple(_thaw_value(v) for v in _require(params, "profile", "fixed"))
    if len(profile) != n:
        raise GameError(f"fixed profile {profile!r} has wrong arity (n={n})")

    def fn(reports, rng):
        return profile

    def dist(reports):
        return {profile: 1.0}

    return fn, dist


@register_mediator_rule("shamir-decode")
def _shamir_decode(params: dict, n: int):
    modulus = int(_require(params, "modulus", "shamir-decode"))
    degree = int(_require(params, "degree", "shamir-decode"))
    fallback = int(params.get("fallback", 0))
    xs = list(range(1, n + 1))

    def decode(reports) -> int:
        from repro.errors import DecodingError
        from repro.field import GF, berlekamp_welch

        f = GF(modulus)
        max_errors = (n - degree - 1) // 2
        try:
            poly = berlekamp_welch(
                f,
                list(zip(xs, reports)),
                degree=degree,
                max_errors=max_errors,
            )
            return int(poly(0))
        except DecodingError:
            return fallback  # detected cheating: fall back to a fixed value

    def fn(reports, rng):
        secret = decode(reports)
        return tuple(secret for _ in range(n))

    def dist(reports):
        secret = decode(reports)
        return {tuple(secret for _ in range(n)): 1.0}

    return fn, dist
