"""Running mediator games under schedulers and collecting outcomes.

A :class:`MediatorGame` bundles a :class:`~repro.games.library.GameSpec`
with the canonical mediator and honest-player processes, runs them under
arbitrary environment strategies (including relaxed ones), applies the
deadlock semantics — AH wills or default moves — and reduces each run to an
action profile of the underlying game.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.errors import GameError
from repro.games.library import GameSpec
from repro.mediator.protocol import FnMediator, HonestMediatorPlayer, mediator_pid
from repro.sim import Runtime, Scheduler, TimingModel
from repro.sim.runtime import RunResult

DeviationFactory = Callable[[int, Any], Any]
"""(pid, own_type) -> Process replacing the honest player."""


@dataclass
class MediatorRun:
    """One mediator-game run reduced to underlying-game terms."""

    actions: tuple
    result: RunResult
    types: tuple

    def message_count(self) -> int:
        return self.result.trace.message_count()


class MediatorGame:
    """The asynchronous mediator game Γ_d extending an underlying game Γ."""

    def __init__(
        self,
        spec: GameSpec,
        k: int,
        t: int,
        approach: str = "default",
        rounds: int = 1,
        will: Optional[Callable[[int, Any], Any]] = None,
        mediator_factory: Optional[Callable[[], Any]] = None,
    ) -> None:
        if approach not in ("default", "ah"):
            raise GameError(f"unknown deadlock approach {approach!r}")
        if approach == "default" and spec.default_moves is None:
            raise GameError("default-move approach needs spec.default_moves")
        self.spec = spec
        self.k = k
        self.t = t
        self.approach = approach
        self.rounds = rounds
        self.will = will
        self.mediator_factory = mediator_factory or (
            lambda: FnMediator(spec, k, t, rounds=rounds)
        )

    @property
    def n(self) -> int:
        return self.spec.game.n

    @property
    def mediator(self) -> int:
        return mediator_pid(self.n)

    # -- process assembly ------------------------------------------------------

    def processes(
        self,
        types: Sequence[Any],
        deviations: Optional[Mapping[int, DeviationFactory]] = None,
    ) -> dict[int, Any]:
        deviations = deviations or {}
        procs: dict[int, Any] = {}
        for pid in range(self.n):
            if pid in deviations:
                procs[pid] = deviations[pid](pid, types[pid])
            else:
                procs[pid] = HonestMediatorPlayer(
                    self.spec, pid, types[pid], will=self.will
                )
        procs[self.mediator] = self.mediator_factory()
        return procs

    # -- running -----------------------------------------------------------------

    def run(
        self,
        types: Sequence[Any],
        scheduler: Scheduler,
        seed: int = 0,
        deviations: Optional[Mapping[int, DeviationFactory]] = None,
        step_limit: int = 200_000,
        record_payloads: bool = False,
        timing: Optional[TimingModel] = None,
        record_trace: bool = True,
        runtime: str = "sim",
        latency: str = "zero",
        faults: Any = None,
    ) -> MediatorRun:
        types = tuple(types)
        processes = self.processes(types, deviations)
        if runtime == "sim":
            engine = Runtime(
                processes,
                scheduler,
                seed=seed,
                mediator_pid=self.mediator,
                step_limit=step_limit,
                record_payloads=record_payloads,
                timing=timing,
                record_trace=record_trace,
                faults=faults,
            )
        else:
            from repro.net.runtime import NetRuntime

            engine = NetRuntime(
                processes,
                latency=latency,
                seed=seed,
                mediator_pid=self.mediator,
                step_limit=step_limit,
                record_payloads=record_payloads,
                record_trace=record_trace,
                transport="tcp" if runtime == "net-tcp" else "memory",
                faults=faults,
            )
        result = engine.run()
        actions = self.resolve_actions(types, result)
        return MediatorRun(actions=actions, result=result, types=types)

    def resolve_actions(self, types: tuple, result: RunResult) -> tuple:
        """Apply the deadlock semantics to produce a full action profile.

        Players that moved keep their move. For players that did not: under
        the AH approach their will (if any) is executed; otherwise — and
        always under the default-move approach — the game's default move
        applies.
        """
        actions = []
        for pid in range(self.n):
            if pid in result.outputs:
                actions.append(result.outputs[pid])
                continue
            move = None
            if self.approach == "ah":
                move = result.wills.get(pid)
            if move is None and self.spec.default_moves is not None:
                move = self.spec.default_moves(pid, types[pid])
            actions.append(move)
        return tuple(actions)

    def sample_outcomes(
        self,
        schedulers: Sequence[Scheduler],
        samples_per_scheduler: int = 8,
        type_profiles: Optional[Sequence[tuple]] = None,
        deviations: Optional[Mapping[int, DeviationFactory]] = None,
        seed: int = 0,
    ) -> dict[tuple, list[tuple]]:
        """Monte-Carlo outcome samples: {type profile: [action profiles]}."""
        profiles = (
            list(type_profiles)
            if type_profiles is not None
            else self.spec.game.type_space.profiles()
        )
        out: dict[tuple, list[tuple]] = {}
        for types in profiles:
            rows: list[tuple] = []
            for s_idx, scheduler in enumerate(schedulers):
                for rep in range(samples_per_scheduler):
                    run = self.run(
                        types,
                        scheduler,
                        seed=seed + 7919 * s_idx + rep,
                        deviations=deviations,
                    )
                    rows.append(run.actions)
            out[tuple(types)] = rows
        return out
