"""Canonical-form verification for mediator-game runs (paper, Section 2).

Given a run trace (with payloads recorded), :func:`check_canonical_form`
verifies the restrictions the paper places on honest players and the
mediator:

* honest players send only to the mediator: one initial message plus one
  response per non-STOP mediator message;
* the mediator sends each player at most ``r`` messages, and its final
  message to each player includes STOP;
* all STOP messages are emitted in a single batch (required for the
  all-or-none rule that relaxed schedulers must obey, Lemma 6.10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.runtime import RunResult


@dataclass
class CanonicalReport:
    ok: bool
    problems: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


def check_canonical_form(
    result: RunResult,
    n: int,
    mediator: int,
    max_rounds: int,
    honest: set[int] | None = None,
) -> CanonicalReport:
    """Verify the canonical-form constraints on a recorded run.

    Requires the run to have been executed with ``record_payloads=True``.
    ``honest`` restricts the player-side checks to those pids (deviators are
    exempt from canonical form by definition).
    """
    report = CanonicalReport(ok=True)
    honest = set(range(n)) if honest is None else set(honest)

    sends = [e for e in result.trace.sends()]
    if any(e.payload is None for e in sends):
        report.ok = False
        report.problems.append("trace lacks payloads; run with record_payloads")
        return report

    med_to_player: dict[int, list] = {p: [] for p in range(n)}
    player_to_med: dict[int, list] = {p: [] for p in range(n)}
    stop_batch_steps: set[int] = set()
    for event in sends:
        if event.sender == mediator and event.recipient in med_to_player:
            med_to_player[event.recipient].append(event)
            if isinstance(event.payload, tuple) and event.payload[0] == "stop":
                stop_batch_steps.add(event.step)
        elif event.sender in honest:
            if event.recipient != mediator:
                report.ok = False
                report.problems.append(
                    f"honest player {event.sender} sent to {event.recipient}"
                )
            else:
                player_to_med[event.sender].append(event)

    for pid, events in med_to_player.items():
        if len(events) > max_rounds + 1:
            report.ok = False
            report.problems.append(
                f"mediator sent {len(events)} messages to {pid} "
                f"(bound {max_rounds + 1})"
            )
        if events:
            last = events[-1]
            if not (isinstance(last.payload, tuple) and last.payload[0] == "stop"):
                report.ok = False
                report.problems.append(
                    f"mediator's final message to {pid} is not STOP"
                )

    if len(stop_batch_steps) > 1:
        report.ok = False
        report.problems.append(
            f"STOP messages span {len(stop_batch_steps)} steps (must be one batch)"
        )

    for pid in honest:
        sent = len(player_to_med.get(pid, []))
        received_non_stop = sum(
            1
            for e in med_to_player.get(pid, [])
            if not (isinstance(e.payload, tuple) and e.payload[0] == "stop")
        )
        if sent > received_non_stop + 1:
            report.ok = False
            report.problems.append(
                f"player {pid} sent {sent} messages but only "
                f"{received_non_stop} non-STOP prompts arrived"
            )
    return report
