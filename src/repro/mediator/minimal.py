"""The Section 6.4 leaky mediator and the minimally-informative transform.

The paper's counterexample mediator for the {0,1,⊥} game draws bits a, b
and sends player i the value ``a + b·i (mod 2)`` before the STOP message
carrying b. The message is useless to any single player (a masks b), but a
coalition {i, j} with i − j odd recovers b — and when b = 0 prefers the
1.1-payoff punishment outcome to the 1.0 equilibrium outcome, so it can
profitably force a deadlock. The *minimally informative* transform f of
Section 6.4 strips the mediator down to round counters plus the final
action, which removes the attack (Lemma 6.8).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import MediatorError
from repro.games.library import GameSpec
from repro.mediator.games import MediatorGame
from repro.mediator.protocol import FnMediator


class LeakySection64Mediator(FnMediator):
    """The paper's leaky mediator: leaks ``a + b·i`` in round 1.

    Canonical form is preserved (two rounds, STOP batch at the end); the
    leak travels in the round-1 ``info`` slot, which honest players ignore
    but deviating coalitions exploit.
    """

    def __init__(self, spec: GameSpec, k: int, t: int) -> None:
        super().__init__(spec, k, t, rounds=2)
        self.a: Optional[int] = None
        self.b: Optional[int] = None

    def round_info_value(self, ctx, pid: int) -> int:
        if self.b is None:
            self.a = ctx.rng.randrange(2)
            self.b = ctx.rng.randrange(2)
        return (self.a + self.b * pid) % 2

    def _advance(self, ctx) -> None:  # inject leak into round messages
        self.round_info = lambda _m, r, pid, _ctx=ctx: self.round_info_value(
            _ctx, pid
        )
        super()._advance(ctx)

    def compute_actions(self, ctx, profile: tuple) -> tuple:
        if self.b is None:  # quorum met before any round message (rounds=2: no)
            self.a = ctx.rng.randrange(2)
            self.b = ctx.rng.randrange(2)
        return tuple(self.b for _ in range(self.n))


class MinimalMediator(FnMediator):
    """f(σ_d): sends only round counters and the final recommendation.

    With ``rounds=1`` this is the weak-implementation variant of the
    Section 6.4 construction (one message in, one STOP out — O(n) messages
    total). Larger ``rounds`` reproduces the full-implementation variant's
    extra round-trips, whose only purpose is to let the mediator's
    simulated-scheduler choice range over all scheduler equivalence classes;
    the paper's bound R = (4rn)^{4rn} is astronomically large, so the class
    selection is parameterised here (DESIGN.md §3) and the *behavioral*
    construction — rounds of content-free messages, quorum of n-k-t,
    simulate-and-STOP — is reproduced faithfully.
    """


def minimally_informative(
    game: MediatorGame, rounds: Optional[int] = None
) -> MediatorGame:
    """Apply the Section 6.4 transform f to a mediator game.

    Returns a new :class:`MediatorGame` whose mediator sends no information
    beyond round counters and the recommended action. Lemma 6.8:
    (k,t)-robustness of the original profile carries over.
    """
    r = rounds if rounds is not None else game.rounds
    if r < 1:
        raise MediatorError("rounds must be >= 1")
    return MediatorGame(
        game.spec,
        game.k,
        game.t,
        approach=game.approach,
        rounds=r,
        will=game.will,
        mediator_factory=lambda: MinimalMediator(
            game.spec, game.k, game.t, rounds=r
        ),
    )
