"""Canonical-form mediator and player processes (paper, Section 2).

Canonical form: the honest player sends an initial message to the mediator
and afterwards *only* responds to mediator messages that do not include
STOP; upon a STOP message it makes its move in the underlying game and
halts. The mediator sends each player at most ``r`` messages, the last of
which includes STOP. All STOP messages are sent in one step (one batch), so
a relaxed scheduler must deliver all or none of them — the premise of the
deadlock characterisation in Lemma 6.10.

Message shapes:

* player → mediator: ``("report", round, type_value)``
* mediator → player: ``("round", round, info)`` then ``("stop", action)``

``info`` is ``None`` for honest mediators; the Section 6.4 *leaky* mediator
puts ``a + b·i`` there (see :mod:`repro.mediator.minimal`).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import MediatorError
from repro.games.library import GameSpec
from repro.sim.process import Context, Process

MEDIATOR_ROUNDS_DEFAULT = 1


def mediator_pid(n: int) -> int:
    """The mediator's process id in an n-player mediator game."""
    return n


class HonestMediatorPlayer(Process):
    """The canonical honest player strategy in the mediator game."""

    def __init__(
        self,
        spec: GameSpec,
        pid: int,
        own_type: Any,
        will: Optional[Callable[[int, Any], Any]] = None,
    ) -> None:
        self.spec = spec
        self.pid = pid
        self.own_type = own_type
        self.will = will
        self._mediator = mediator_pid(spec.game.n)

    def on_start(self, ctx: Context) -> None:
        ctx.send(self._mediator, ("report", 0, self.own_type))

    def on_message(self, ctx: Context, sender: int, payload: Any) -> None:
        if sender != self._mediator or not isinstance(payload, tuple):
            return  # honest players ignore non-mediator chatter
        kind = payload[0]
        if kind == "round":
            ctx.send(self._mediator, ("report", payload[1], self.own_type))
        elif kind == "stop":
            action = payload[1]
            if not ctx.has_output():
                ctx.output(action)
            ctx.halt()

    def on_deadlock(self, pid: int) -> Optional[Any]:
        """AH approach: the move left with the executor (the *will*)."""
        if self.will is None:
            return None
        return self.will(self.pid, self.own_type)


class FnMediator(Process):
    """Canonical-form mediator computing ``spec.mediator_fn`` on reports.

    Waits for round-0 reports from a quorum of ``n - k - t`` players, walks
    them through ``rounds - 1`` further report rounds (validating that each
    player repeats the same type), then sends every player its recommended
    action in a single STOP batch. Missing or invalid reporters are replaced
    by the spec's default type (their own report is ignored — the paper's
    mediator likewise extends the received profile arbitrarily).
    """

    def __init__(
        self,
        spec: GameSpec,
        k: int,
        t: int,
        rounds: int = MEDIATOR_ROUNDS_DEFAULT,
        default_type: Optional[Callable[[int], Any]] = None,
        round_info: Optional[Callable[[Any, int, int], Any]] = None,
    ) -> None:
        if rounds < 1:
            raise MediatorError("mediator needs at least one round")
        self.spec = spec
        self.n = spec.game.n
        self.quorum = self.n - k - t
        if self.quorum < 1:
            raise MediatorError(f"quorum n-k-t = {self.quorum} must be >= 1")
        self.rounds = rounds
        self.default_type = default_type or (
            lambda pid: spec.game.type_space.profiles()[0][pid]
        )
        self.round_info = round_info
        self.reports: dict[int, dict[int, Any]] = {}
        self.current_round = 0
        self.stopped = False
        self._round_state: Any = None
        # Incremental completeness index over ``reports`` (which is
        # first-one-wins and append-only, so these never need rollback):
        # per-player round → value, how many rounds are present contiguously
        # from 0, and the final per-(pid, r) validity verdicts.
        self._player_rounds: dict[int, dict[int, Any]] = {}
        self._contiguous: dict[int, int] = {}
        self._complete_verdicts: dict[tuple[int, int], bool] = {}

    # -- helpers -----------------------------------------------------------

    def _judge_complete(self, pid: int, r: int) -> bool:
        """Validity of ``pid``'s (fully present) reports for rounds 0..r."""
        mine = self._player_rounds[pid]
        values = [mine[rr] for rr in range(r + 1)]
        if len({repr(v) for v in values}) != 1:
            return False  # inconsistent across rounds: invalid
        if values[0] not in self.spec.game.type_space.player_types(pid):
            return False  # not a type this player could have
        return True

    def _complete_through(self, r: int) -> list[int]:
        """Players with valid, consistent reports for rounds 0..r.

        Hot path (called on every report): players missing a round are
        skipped in O(1) via the contiguity index, and each decidable
        (pid, r) verdict is computed exactly once — reports never change,
        so verdicts are final.
        """
        out = []
        contiguous = self._contiguous
        verdicts = self._complete_verdicts
        for pid in range(self.n):
            if contiguous.get(pid, 0) <= r:
                continue  # some round 0..r still missing
            verdict = verdicts.get((pid, r))
            if verdict is None:
                verdict = self._judge_complete(pid, r)
                verdicts[(pid, r)] = verdict
            if verdict:
                out.append(pid)
        return out

    def _advance(self, ctx: Context) -> None:
        if self.stopped:
            return
        while True:
            complete = self._complete_through(self.current_round)
            if len(complete) < self.quorum:
                return
            if self.current_round < self.rounds - 1:
                self.current_round += 1
                next_round = self.current_round
                for pid in range(self.n):
                    info = None
                    if self.round_info is not None:
                        info = self.round_info(self, next_round, pid)
                    ctx.send(pid, ("round", next_round, info))
                return
            self._finalize(ctx, complete)
            return

    def _finalize(self, ctx: Context, complete: list[int]) -> None:
        self.stopped = True
        profile = tuple(
            self.reports[0][pid] if pid in complete else self.default_type(pid)
            for pid in range(self.n)
        )
        actions = self.compute_actions(ctx, profile)
        for pid in range(self.n):
            ctx.send(pid, ("stop", actions[pid]))
        ctx.halt()

    def compute_actions(self, ctx: Context, profile: tuple) -> tuple:
        """Hook: the recommendation profile (override for leaky variants)."""
        return tuple(self.spec.mediator_fn(profile, ctx.rng))

    # -- Process interface ---------------------------------------------------

    def on_message(self, ctx: Context, sender: int, payload: Any) -> None:
        if self.stopped:
            return
        if (
            not isinstance(payload, tuple)
            or len(payload) != 3
            or payload[0] != "report"
            or not (0 <= sender < self.n)
        ):
            return  # malformed: ignore
        _, r, value = payload
        if not isinstance(r, int) or not (0 <= r < self.rounds):
            return
        bucket = self.reports.setdefault(r, {})
        if sender in bucket:
            return  # duplicate round report: first one wins
        bucket[sender] = value
        mine = self._player_rounds.setdefault(sender, {})
        mine[r] = value
        contiguous = self._contiguous.get(sender, 0)
        while contiguous in mine:
            contiguous += 1
        self._contiguous[sender] = contiguous
        self._advance(ctx)
