"""The simulation kernel: one event loop, pluggable timing models.

The loop generalises the paper's alternation: a
:class:`~repro.sim.timing.TimingModel` decides which in-transit messages
are currently *eligible*; the environment (scheduler) chooses one of them
to deliver; the recipient is activated with it; the recipient's sends join
the in-transit pool; repeat. With the default :class:`Asynchronous` model
every message is always eligible and the loop is exactly the paper's
Section 2 game against the environment. :class:`LockStep` restricts
eligibility to synchronous rounds (the R1/R2 baseline —
``repro.sim.sync.SyncRuntime`` is a thin adapter over this kernel), and
:class:`BoundedDelay` gives partial synchrony with an explicit delay bound
and GST. Start signals are modelled as synthetic environment messages so
that "a player is told the game started when first scheduled" falls out of
the same mechanism; timing models may additionally fire *ticks*
(:meth:`Process.on_tick`) at virtual-time boundaries.

Termination taxonomy of a run (identical across timing models):

* *quiesced* — no deliverable messages remain and the timing model cannot
  advance (every protocol either halted or is waiting forever on nothing;
  with non-relaxed schedulers this only happens when no one will ever send
  again);
* *deadlocked* — a relaxed scheduler stopped delivering (Lemma 6.10
  situation) or quiescence was reached with live processes remaining;
  the AH-approach *wills* of live processes are collected in the result;
* *step-limited* — the step budget ran out (raises
  :class:`StepLimitExceeded` unless ``raise_on_step_limit=False``).

The all-or-none rule for mediator batches under relaxed schedulers is
enforced here: if any message of a batch sent by the mediator was delivered,
the rest of that batch is force-delivered before the run is allowed to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import SchedulerError, SimulationError, StepLimitExceeded
from repro.faults.injector import injector_for
from repro.sim.network import Message, Network, START_SIGNAL, TransitView
from repro.sim.process import Context, Process
from repro.sim.scheduler import Scheduler
from repro.sim.timing import Asynchronous, TimingModel
from repro.sim.trace import Trace, TraceEvent
from repro.utils.rng import RngTree

ENVIRONMENT_PID = -1
"""Synthetic sender id for start signals."""


@dataclass
class RunResult:
    """Everything observable about one completed run."""

    outputs: dict[int, Any]
    halted: set[int]
    live: set[int]
    deadlocked: bool
    wills: dict[int, Any]
    trace: Trace
    steps: int
    messages_sent: int
    messages_delivered: int
    messages_dropped: int
    env_messages: int = 0
    """How many of ``messages_sent`` were environment-injected signals
    (start signals): ``messages_sent - env_messages`` is the protocol's own
    traffic."""

    def output_profile(self, pids: list[int], missing: Any = None) -> tuple:
        """Outputs as a tuple ordered by ``pids`` (``missing`` if absent)."""
        return tuple(self.outputs.get(pid, missing) for pid in pids)


class Runtime:
    """Run a set of processes to completion under a scheduler.

    ``timing`` selects the network model (default
    :class:`~repro.sim.timing.Asynchronous`); the same processes, scheduler,
    and seed under a different timing model give the controlled comparisons
    the paper's R1-vs-Theorem-4.1 discussion is about.
    """

    def __init__(
        self,
        processes: dict[int, Process],
        scheduler: Scheduler,
        seed: int = 0,
        step_limit: int = 2_000_000,
        mediator_pid: Optional[int] = None,
        record_payloads: bool = False,
        raise_on_step_limit: bool = True,
        timing: Optional[TimingModel] = None,
        rng_namespace: str = "proc",
        record_trace: bool = True,
        faults: Any = None,
    ) -> None:
        if not processes:
            raise SimulationError("need at least one process")
        self.processes = dict(processes)
        self.scheduler = scheduler
        self.timing = timing if timing is not None else Asynchronous()
        self.seed = seed
        self.step_limit = step_limit
        self.mediator_pid = mediator_pid
        self.raise_on_step_limit = raise_on_step_limit
        self.rng_namespace = rng_namespace
        self._faults = injector_for(faults)

        self.network = Network()
        # Pure Asynchronous timing has no-op observation hooks and an
        # eligibility pool that is always the whole in-transit view; the
        # loop skips those calls entirely on this (dominant) fast path.
        # Exact type check: a subclass may override any hook.
        self._timing_passive = type(self.timing) is Asynchronous
        self.trace = Trace(record_payloads=record_payloads)
        self._trace_on = record_trace
        """``record_trace=False`` skips event recording entirely (the trace
        stays empty). Runs are otherwise bit-identical — counters come from
        the network — so batch sweeps that never read traces opt out of
        per-message event construction."""
        self._contexts: dict[int, Context] = {}
        self.outputs: dict[int, Any] = {}
        self.halted: set[int] = set()
        self.started: set[int] = set()
        self._rng_tree = RngTree(seed)
        self._rngs: dict[int, Any] = {}
        self._step = 0
        self._env_sent = 0
        self._current_batch = 0
        self._delivered_batches: set[int] = set()
        self._mediator_batches: set[int] = set()

    # -- services used by Context -------------------------------------------

    def rng_for(self, pid: int):
        if pid not in self._rngs:
            self._rngs[pid] = self._rng_tree.child(self.rng_namespace, pid).rng
        return self._rngs[pid]

    def _context(self, pid: int, batch: int) -> Context:
        """The per-pid activation context, refreshed for this activation.

        Contexts are capability objects whose only activation-varying state
        is ``(step, batch)``; reusing one per pid avoids an allocation and
        an rng lookup per delivery. Processes that stash their context see
        the same object every activation.
        """
        ctx = self._contexts.get(pid)
        if ctx is None:
            ctx = Context(self, pid, self._step, batch)
            self._contexts[pid] = ctx
        else:
            ctx.step = self._step
            ctx._batch = batch
        return ctx

    def _send_from(self, sender: int, recipient: int, payload: Any, batch: int) -> None:
        if recipient not in self.processes:
            raise SimulationError(f"send to unknown process {recipient}")
        faults = self._faults
        if faults is not None and faults.replaying:
            # Inbox replay after a crash-restart: the pre-crash activations
            # already put these sends on the wire; re-sending would double
            # every message the restarted node ever emitted.
            return
        if sender == self.mediator_pid:
            self._mediator_batches.add(batch)
        msg = self.network.send(sender, recipient, payload, self._step, batch)
        if not self._timing_passive:
            self.timing.on_send(msg, self._step)
        if self._trace_on:
            self.trace.add(
                TraceEvent(
                    step=self._step,
                    kind="send",
                    pid=sender,
                    sender=sender,
                    recipient=recipient,
                    uid=msg.uid,
                    payload=payload if self.trace.record_payloads else None,
                )
            )
        if recipient in self.halted:
            self.network.drop(msg.uid)
            return
        if faults is None:
            return
        fate, arg = faults.fate(sender, recipient, self._step)
        if fate == "hold":
            faults.hold(arg, self.network.withdraw(msg.uid))
        elif fate == "drop":
            self.network.drop(msg.uid)
            if self._trace_on:
                self.trace.add(
                    TraceEvent(
                        step=self._step,
                        kind="drop",
                        pid=recipient,
                        sender=sender,
                        recipient=recipient,
                        uid=msg.uid,
                    )
                )
        elif arg > 1:
            for _ in range(arg - 1):
                dup = self.network.send(
                    sender, recipient, payload, self._step, batch
                )
                if not self._timing_passive:
                    self.timing.on_send(dup, self._step)
                if self._trace_on:
                    self.trace.add(
                        TraceEvent(
                            step=self._step,
                            kind="send",
                            pid=sender,
                            sender=sender,
                            recipient=recipient,
                            uid=dup.uid,
                            payload=(
                                payload if self.trace.record_payloads else None
                            ),
                        )
                    )

    def _record_output(self, pid: int, action: Any) -> None:
        if self._faults is not None and self._faults.replaying:
            # The pre-crash activation already recorded this output.
            return
        if pid in self.outputs:
            raise SimulationError(f"process {pid} attempted to output twice")
        self.outputs[pid] = action
        if self._trace_on:
            self.trace.add(
                TraceEvent(step=self._step, kind="output", pid=pid,
                           payload=action)
            )

    def _record_halt(self, pid: int) -> None:
        if pid in self.halted:
            return
        self.halted.add(pid)
        if self._trace_on:
            self.trace.add(TraceEvent(step=self._step, kind="halt", pid=pid))
        self.network.discard_to({pid})

    # -- services used by timing models --------------------------------------

    def tick_processes(self, round_no: int) -> None:
        """Fire :meth:`Process.on_tick` on every live process (pid order).

        Called by timing models at virtual-time boundaries (e.g. the round
        boundary of :class:`~repro.sim.timing.LockStep`). Sends performed
        during a tick form one batch per process, like any activation.
        """
        for pid in sorted(self.processes):
            if pid in self.halted:
                continue
            process = self.processes[pid]
            batch = self.network.new_batch()
            ctx = self._context(pid, batch)
            if self._trace_on:
                self.trace.add(
                    TraceEvent(step=self._step, kind="tick", pid=pid)
                )
            process.on_tick(ctx, round_no)

    # -- the main loop -------------------------------------------------------

    def run(self) -> RunResult:
        self.scheduler.reset(self.seed)
        self.timing.reset(self)
        faults = self._faults
        if faults is not None:
            faults.reset(self.seed, self.processes)
        self._inject_start_signals()
        stopped_by_scheduler = False
        all_pids = set(self.processes)
        # Localize per-iteration state: the loop runs once per delivered
        # message and attribute lookups are a measurable share of it.
        timing_passive = self._timing_passive
        network_view = self.network.view
        choose = self.scheduler.choose
        step_limit = self.step_limit
        halted = self.halted

        while True:
            if self._step >= step_limit:
                if self.raise_on_step_limit:
                    raise StepLimitExceeded(
                        f"no quiescence after {self.step_limit} steps "
                        f"(scheduler {self.scheduler.name})"
                    )
                break
            if halted >= all_pids:
                break
            if faults is not None:
                due = faults.due_events(self._step)
                if due:
                    self._apply_fault_events(due)
                    if halted >= all_pids:
                        break

            if timing_passive:
                pool = network_view()
            else:
                pool = self.timing.eligible(self.network, self._step)
            if not len(pool):
                if self.timing.advance(self):
                    continue
                if faults is not None and self._advance_faults():
                    continue
                break  # quiesced: nothing deliverable, time cannot advance

            uid = choose(pool, self._step)
            if uid is None:
                if not self.scheduler.is_relaxed():
                    raise SchedulerError(
                        f"non-relaxed scheduler {self.scheduler.name} refused "
                        f"to deliver with {len(self.network)} messages in transit"
                    )
                forced = self._forced_batch_completion(pool)
                if forced is None:
                    stopped_by_scheduler = True
                    break
                uid = forced
            self._deliver(uid)

        if stopped_by_scheduler:
            for msg in self.network.in_transit():
                if self._trace_on:
                    self.trace.add(
                        TraceEvent(
                            step=self._step,
                            kind="drop",
                            pid=msg.recipient,
                            sender=msg.sender,
                            recipient=msg.recipient,
                            uid=msg.uid,
                        )
                    )
                self.network.drop(msg.uid)

        live = set(self.processes) - self.halted
        deadlocked = bool(live) and (
            stopped_by_scheduler or len(self.network) == 0
        )
        wills = {}
        for pid in sorted(live):
            if pid not in self.outputs and pid != self.mediator_pid:
                wills[pid] = self.processes[pid].on_deadlock(pid)
        return RunResult(
            outputs=dict(self.outputs),
            halted=set(self.halted),
            live=live,
            deadlocked=deadlocked,
            wills=wills,
            trace=self.trace,
            steps=self._step,
            messages_sent=self.network.total_sent,
            messages_delivered=self.network.total_delivered,
            messages_dropped=self.network.total_dropped,
            env_messages=self._env_sent,
        )

    # -- fault application ---------------------------------------------------

    def _apply_fault_events(self, events) -> None:
        """Apply crash/restart/heal transitions whose step has arrived."""
        faults = self._faults
        for event in events:
            if event.kind == "crash":
                self._apply_crash(event.pid)
            elif event.kind == "restart":
                self._apply_restart(event.pid)
            else:  # heal: reopen the cut, release what it held
                faults.mark_healed(event.index)
                released = faults.release(("heal", event.index))
                self.network.reinstate(released)
                stale = {m.recipient for m in released} & self.halted
                if stale:
                    self.network.discard_to(stale)

    def _apply_crash(self, pid: int) -> None:
        faults = self._faults
        if pid in self.halted:
            return  # halted on its own before the fault arrived
        if self._trace_on:
            self.trace.add(TraceEvent(step=self._step, kind="crash", pid=pid))
        if faults.is_restart_target(pid):
            # Down-but-restartable: in-flight and future messages to the
            # pid are held (not dropped) so the restart can deliver them.
            faults.go_down(pid)
            for msg in self.network.withdraw_to(pid):
                faults.hold(("restart", pid), msg)
        else:
            self._record_halt(pid)

    def _apply_restart(self, pid: int) -> None:
        """Install a pristine process copy and replay its logged inbox.

        Replayed activations have their sends and outputs suppressed (the
        pre-crash activations already performed them); messages held while
        the pid was down are then reinstated into the pool. Replay re-draws
        ``ctx.rng`` from the continuing per-pid stream, so only protocols
        whose randomness derives from their own configuration (as the
        cheap-talk players' does) recover bit-exactly.
        """
        faults = self._faults
        process = faults.restore(pid)
        if process is None:
            return  # the crash never fired; nothing to recover
        self.processes[pid] = process
        self.started.discard(pid)
        if self._trace_on:
            self.trace.add(
                TraceEvent(step=self._step, kind="restart", pid=pid)
            )
        faults.replaying = True
        try:
            for sender, payload in faults.inbox_log.get(pid, ()):
                if pid in self.halted:
                    break
                batch = self.network.new_batch()
                ctx = self._context(pid, batch)
                if pid not in self.started:
                    self.started.add(pid)
                    process.on_start(ctx)
                if payload == START_SIGNAL and sender == ENVIRONMENT_PID:
                    continue
                process.on_message(ctx, sender, payload)
        finally:
            faults.replaying = False
        released = faults.release(("restart", pid))
        if pid in self.halted:
            return  # replay re-halted it; its held messages die with it
        self.network.reinstate(released)

    def _advance_faults(self) -> bool:
        """Pull the earliest pending recovery forward when traffic drains.

        Guarantees partitioned and crash-restart runs always quiesce: a
        heal or restart scheduled beyond the run's natural length fires as
        soon as nothing else can happen. Crashes never fire early — a crash
        past quiescence simply does not happen.
        """
        event = self._faults.pop_recovery()
        if event is None:
            return False
        self._apply_fault_events([event])
        return True

    # -- internals -----------------------------------------------------------

    def _inject_start_signals(self) -> None:
        for pid in sorted(self.processes):
            batch = self.network.new_batch()
            msg = self.network.send(ENVIRONMENT_PID, pid, START_SIGNAL, 0, batch)
            if not self._timing_passive:
                self.timing.on_send(msg, 0)
            self._env_sent += 1

    def _forced_batch_completion(self, pool=None) -> Optional[int]:
        """Uid of a message that must still be delivered (batch atomicity).

        Mediator batches must be all-or-none under relaxed schedulers; start
        signals must always be delivered (every player is eventually
        scheduled, even by relaxed environments). Candidates are drawn from
        the timing model's eligible ``pool`` first, so forcing respects the
        timing model whenever it can; if the only remaining obligations are
        not yet eligible, the full in-transit set is the fallback — the
        paper's hard guarantees outrank the timing bound when a relaxed
        environment stops mid-batch.
        """
        if pool is not None:
            forced = self._forced_candidate(pool)
            if forced is not None:
                return forced
        return self._forced_candidate(self.network.view())

    def _forced_candidate(self, views) -> Optional[int]:
        if isinstance(views, TransitView):
            return self._forced_candidate_indexed(views)
        candidates = []
        for view in views:
            # The environment only ever injects start signals, so the
            # sender check identifies them without reading payloads.
            if view.sender == ENVIRONMENT_PID:
                if view.recipient not in self.halted:
                    candidates.append(view.uid)
            elif (
                view.batch in self._mediator_batches
                and view.batch in self._delivered_batches
            ):
                candidates.append(view.uid)
        if not candidates:
            return None
        return min(candidates)

    def _forced_candidate_indexed(self, views: TransitView) -> Optional[int]:
        """The same forced-delivery obligation, answered from the pool's
        buckets instead of a full scan — a relaxed scheduler that has
        stopped delivering otherwise pays O(in-transit) per drain step.
        """
        candidates = [
            view.uid
            for view in views.from_sender(ENVIRONMENT_PID)
            if view.recipient not in self.halted
        ]
        for batch in sorted(self._mediator_batches):
            if batch in self._delivered_batches:
                uid = views.oldest_in_batch(batch)
                if uid is not None:
                    candidates.append(uid)
        if not candidates:
            return None
        return min(candidates)

    def _deliver(self, uid: int) -> None:
        try:
            msg = self.network.deliver(uid, self._step)
        except KeyError:
            raise SchedulerError(f"scheduler chose unknown message uid {uid}")
        self._step += 1
        if not self._timing_passive:
            self.timing.on_deliver(msg, self._step)
        self._delivered_batches.add(msg.batch)
        if self._trace_on:
            self.trace.add(
                TraceEvent(
                    step=self._step,
                    kind="deliver",
                    pid=msg.recipient,
                    sender=msg.sender,
                    recipient=msg.recipient,
                    uid=msg.uid,
                    payload=(
                        msg.payload if self.trace.record_payloads else None
                    ),
                )
            )
        pid = msg.recipient
        if pid in self.halted:
            return
        if self._faults is not None:
            self._faults.log_delivery(pid, msg.sender, msg.payload)
        process = self.processes[pid]
        self._current_batch = self.network.new_batch()
        ctx = self._context(pid, self._current_batch)
        if pid not in self.started:
            self.started.add(pid)
            if self._trace_on:
                self.trace.add(
                    TraceEvent(step=self._step, kind="start", pid=pid)
                )
            process.on_start(ctx)
        if msg.payload == START_SIGNAL and msg.sender == ENVIRONMENT_PID:
            return
        if pid in self.halted:
            return
        process.on_message(ctx, msg.sender, msg.payload)
