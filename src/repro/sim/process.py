"""Process abstraction: message-driven state machines.

A :class:`Process` reacts to a start signal and then to delivered messages.
During an activation it may send messages, record an *output* (its move in
the underlying game), and halt. All side effects go through the
:class:`Context` handed to the callbacks, which keeps the runtime in control
of ordering, randomness, and accounting.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError


class Context:
    """Capability object passed to process callbacks for one activation."""

    __slots__ = ("_runtime", "pid", "step", "_batch", "rng")

    def __init__(self, runtime, pid: int, step: int, batch: int) -> None:
        self._runtime = runtime
        self.pid = pid
        self.step = step
        self._batch = batch
        self.rng = runtime.rng_for(pid)

    # -- actions -----------------------------------------------------------

    def send(self, recipient: int, payload: Any) -> None:
        """Send a message over the private channel to ``recipient``."""
        self._runtime._send_from(self.pid, recipient, payload, self._batch)

    def broadcast(self, recipients, payload: Any) -> None:
        """Send the same payload to each of ``recipients`` (one batch)."""
        for recipient in recipients:
            self.send(recipient, payload)

    def output(self, action: Any) -> None:
        """Record this player's move in the underlying game (at most once)."""
        self._runtime._record_output(self.pid, action)

    def halt(self) -> None:
        """Stop participating; undelivered messages to us are discarded."""
        self._runtime._record_halt(self.pid)

    def has_output(self) -> bool:
        return self.pid in self._runtime.outputs

    def log(self, event: str, **data: Any) -> None:
        if self._runtime._trace_on:
            self._runtime.trace.note(self.pid, event, data)


class Process:
    """Base class for simulated processes.

    Subclasses override :meth:`on_start` and :meth:`on_message`; the runtime
    guarantees ``on_start`` is called exactly once, before any message
    delivery to this process.
    """

    def on_start(self, ctx: Context) -> None:  # pragma: no cover - default
        """Called when the process first learns the game has started."""

    def on_message(self, ctx: Context, sender: int, payload: Any) -> None:
        """Called once per delivered message."""
        raise NotImplementedError

    def on_tick(self, ctx: Context, round_no: int) -> None:
        """Called at virtual-time boundaries of round-based timing models.

        Under :class:`~repro.sim.timing.LockStep` every live process
        observes each round boundary. Message-driven protocols can ignore
        ticks (this default is a no-op); round-based processes (the
        ``SyncProcess`` adapter) use them to drive per-round callbacks.
        """

    def on_deadlock(self, pid: int) -> Optional[Any]:
        """AH-approach *will*: the move to make if the run deadlocks.

        Returning ``None`` means the process leaves no instruction (the
        game-level default move, if any, then applies). Called only for
        processes that did not output during the run. Must be a pure
        function of the process's final local state.
        """
        return None


class FuncProcess(Process):
    """Adapter turning plain callables into a :class:`Process`.

    Handy in tests: ``FuncProcess(on_message=lambda ctx, s, p: ...)``.
    """

    def __init__(
        self,
        on_start: Optional[Callable[[Context], None]] = None,
        on_message: Optional[Callable[[Context, int, Any], None]] = None,
        on_deadlock: Optional[Callable[[int], Any]] = None,
    ) -> None:
        self._on_start = on_start
        self._on_message = on_message
        self._on_deadlock = on_deadlock

    def on_start(self, ctx: Context) -> None:
        if self._on_start is not None:
            self._on_start(ctx)

    def on_message(self, ctx: Context, sender: int, payload: Any) -> None:
        if self._on_message is None:
            raise SimulationError(f"process {ctx.pid} cannot handle messages")
        self._on_message(ctx, sender, payload)

    def on_deadlock(self, pid: int):
        if self._on_deadlock is None:
            return None
        return self._on_deadlock(pid)
