"""Environment strategies (schedulers).

A scheduler is the paper's *environment*: at each step it chooses which
in-transit message to deliver next. Non-relaxed schedulers must eventually
deliver everything; the concrete schedulers here all satisfy that contract
by construction (``tests/test_schedulers.py`` additionally enforces it
empirically on a randomized workload). :class:`RelaxedScheduler` implements
the Section 5 relaxed environment that may drop messages — subject to the
all-or-none rule for batches emitted by the mediator in a single step.

Schedulers only ever see message *metadata* (sender / recipient / ordering),
never payloads: channels are private. The kernel hands ``choose`` a
:class:`~repro.sim.network.TransitView` — an indexed, allocation-free facade
over the in-transit pool — and every scheduler here answers from its O(1)
bucket queries. A plain ``Sequence[MessageView]`` is also accepted (tests
and wrapping schedulers build those), via the legacy scan paths. The
covert-channel construction of Section 6.1 (communicating with the
environment through message *counts*) remains expressible, and
``repro.analysis.deviations`` exercises it.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from itertools import islice
from typing import Iterable, Optional

from repro.errors import SchedulerError
from repro.sim.network import MessageView, TransitPool, TransitView


def _nth_uid(view: TransitView, index: int) -> int:
    """The ``index``-th in-transit uid (ascending), without a list copy."""
    if index == 0:
        return view.min_uid()
    return next(islice(view.uids(), index, None))


class Scheduler(ABC):
    """Strategy deciding the delivery order of in-transit messages."""

    name = "scheduler"

    def reset(self, seed: int) -> None:
        """Prepare for a fresh run (re-seed any internal randomness)."""

    @abstractmethod
    def choose(self, in_transit: TransitPool, step: int) -> Optional[int]:
        """Return the uid of the message to deliver next.

        ``None`` is only legal for relaxed schedulers and means "stop
        delivering" (everything still in transit is dropped).
        """

    def is_relaxed(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class FifoScheduler(Scheduler):
    """Deliver messages in global send order. The most synchronous-like."""

    name = "fifo"

    def choose(self, in_transit: TransitPool, step: int) -> Optional[int]:
        if isinstance(in_transit, TransitView):
            return in_transit.min_uid()
        if not in_transit:
            return None
        return min(in_transit, key=lambda m: m.uid).uid


class RandomScheduler(Scheduler):
    """Deliver a uniformly random in-transit message each step."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self, seed: int) -> None:
        self._rng = random.Random((self._seed, seed).__hash__())

    def choose(self, in_transit: TransitPool, step: int) -> Optional[int]:
        if isinstance(in_transit, TransitView):
            if not in_transit:
                return None
            # uids() is already ascending: same draw as sorting views.
            # randrange(m) consumes the rng exactly like choice()'s
            # _randbelow(m), so indexing the key view lazily (no list
            # materialization per step) picks the identical uid.
            return _nth_uid(in_transit, self._rng.randrange(len(in_transit)))
        if not in_transit:
            return None
        return self._rng.choice(sorted(m.uid for m in in_transit))


class EagerScheduler(Scheduler):
    """Drain all messages to one recipient before moving to the next.

    Produces highly bursty activations — a useful stress pattern for
    protocols that implicitly assume interleaving.
    """

    name = "eager"

    def __init__(self) -> None:
        self._current: Optional[int] = None

    def reset(self, seed: int) -> None:
        self._current = None

    def choose(self, in_transit: TransitPool, step: int) -> Optional[int]:
        if isinstance(in_transit, TransitView):
            if not in_transit:
                return None
            uid = (
                in_transit.oldest_to(self._current)
                if self._current is not None
                else None
            )
            if uid is None:
                self._current = min(in_transit.recipients())
                uid = in_transit.oldest_to(self._current)
            return uid
        if not in_transit:
            return None
        to_current = [m for m in in_transit if m.recipient == self._current]
        if not to_current:
            self._current = min(m.recipient for m in in_transit)
            to_current = [m for m in in_transit if m.recipient == self._current]
        return min(to_current, key=lambda m: m.uid).uid


class LaggardScheduler(Scheduler):
    """Starve a target set of processes as long as legally possible.

    Messages to (or from) the lagging set are delivered only when nothing
    else is in transit, so eventual delivery still holds. This is the
    canonical adversarial-but-fair environment: it maximises the asynchrony
    experienced by the victims.
    """

    name = "laggard"

    def __init__(self, lagging: Iterable[int], lag_senders: bool = False) -> None:
        self.lagging = frozenset(lagging)
        self.lag_senders = lag_senders
        self.name = f"laggard{sorted(self.lagging)}"

    def _is_slow(self, m: MessageView) -> bool:
        if m.recipient in self.lagging:
            return True
        return self.lag_senders and m.sender in self.lagging

    def choose(self, in_transit: TransitPool, step: int) -> Optional[int]:
        if isinstance(in_transit, TransitView):
            if not in_transit:
                return None
            best: Optional[int] = None
            for recipient in in_transit.recipients():
                if recipient in self.lagging:
                    continue
                if self.lag_senders:
                    uid = next(
                        (
                            v.uid
                            for v in in_transit.to_recipient(recipient)
                            if v.sender not in self.lagging
                        ),
                        None,
                    )
                else:
                    uid = in_transit.oldest_to(recipient)
                if uid is not None and (best is None or uid < best):
                    best = uid
            return best if best is not None else in_transit.min_uid()
        if not in_transit:
            return None
        fast = [m for m in in_transit if not self._is_slow(m)]
        pool = fast if fast else list(in_transit)
        return min(pool, key=lambda m: m.uid).uid


class BatchRandomScheduler(Scheduler):
    """Random scheduler that prefers finishing a started batch.

    Once it delivers one message of a batch it keeps delivering that batch's
    remaining messages before picking randomly again. Approximates "fair but
    bursty" networks.
    """

    name = "batch-random"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)
        self._active_batch: Optional[int] = None

    def reset(self, seed: int) -> None:
        self._rng = random.Random((self._seed, seed).__hash__())
        self._active_batch = None

    def choose(self, in_transit: TransitPool, step: int) -> Optional[int]:
        if isinstance(in_transit, TransitView):
            if not in_transit:
                return None
            if self._active_batch is not None:
                uid = in_transit.oldest_in_batch(self._active_batch)
                if uid is not None:
                    return uid
            # choice() indexes the list, so drawing from ascending uids
            # consumes the RNG exactly like drawing from sorted views
            # (randrange == choice's _randbelow; see RandomScheduler).
            uid = _nth_uid(in_transit, self._rng.randrange(len(in_transit)))
            self._active_batch = in_transit.batch_of(uid)
            return uid
        if not in_transit:
            return None
        if self._active_batch is not None:
            same = [m for m in in_transit if m.batch == self._active_batch]
            if same:
                return min(same, key=lambda m: m.uid).uid
        chosen = self._rng.choice(sorted(in_transit, key=lambda m: m.uid))
        self._active_batch = chosen.batch
        return chosen.uid


class RushingScheduler(Scheduler):
    """Prioritise messages from a favoured set of senders.

    The classic "rushing adversary" pattern: the favoured players' traffic
    always arrives first, letting them react to everyone else's messages
    before their own round-mates are heard. Eventual delivery holds —
    non-favoured traffic flows whenever the favoured set is quiet.
    """

    name = "rushing"

    def __init__(self, favoured: Iterable[int]) -> None:
        self.favoured = frozenset(favoured)
        self.name = f"rushing{sorted(self.favoured)}"

    def choose(self, in_transit: TransitPool, step: int) -> Optional[int]:
        if isinstance(in_transit, TransitView):
            if not in_transit:
                return None
            best: Optional[int] = None
            for sender in in_transit.senders():
                if sender in self.favoured:
                    uid = in_transit.oldest_from(sender)
                    if uid is not None and (best is None or uid < best):
                        best = uid
            return best if best is not None else in_transit.min_uid()
        if not in_transit:
            return None
        fast = [m for m in in_transit if m.sender in self.favoured]
        pool = fast if fast else list(in_transit)
        return min(pool, key=lambda m: m.uid).uid


class RelaxedScheduler(Scheduler):
    """Section 5 relaxed environment: may stop delivering at some point.

    Wraps a base scheduler; after ``deliveries_before_stop`` deliveries it
    stops (returns ``None``), which the runtime interprets as dropping every
    remaining message — the deadlock situation of Lemma 6.10. The runtime
    additionally enforces the all-or-none rule for mediator batches: if any
    message of a mediator-emitted batch has been delivered, the remaining
    messages of that batch are force-delivered before stopping.
    """

    name = "relaxed"

    def __init__(self, base: Scheduler, deliveries_before_stop: int) -> None:
        self.base = base
        self.deliveries_before_stop = deliveries_before_stop
        self._delivered = 0
        self.name = f"relaxed({base.name}@{deliveries_before_stop})"

    def reset(self, seed: int) -> None:
        self.base.reset(seed)
        self._delivered = 0

    def is_relaxed(self) -> bool:
        return True

    def choose(self, in_transit: TransitPool, step: int) -> Optional[int]:
        if self._delivered >= self.deliveries_before_stop:
            return None
        uid = self.base.choose(in_transit, step)
        if uid is not None:
            self._delivered += 1
        return uid


class DropPlanRelaxedScheduler(Scheduler):
    """Relaxed scheduler that drops exactly a planned set of messages.

    ``should_drop(view)`` marks messages never to be delivered. The runtime's
    batch all-or-none enforcement still applies to mediator batches, so a
    plan that splits a mediator batch is corrected at runtime (and flagged
    in the trace).
    """

    name = "relaxed-plan"

    def __init__(self, base: Scheduler, should_drop) -> None:
        self.base = base
        self.should_drop = should_drop
        self.name = f"relaxed-plan({base.name})"

    def reset(self, seed: int) -> None:
        self.base.reset(seed)

    def is_relaxed(self) -> bool:
        return True

    def choose(self, in_transit: TransitPool, step: int) -> Optional[int]:
        deliverable = [m for m in in_transit if not self.should_drop(m)]
        if not deliverable:
            return None
        return self.base.choose(deliverable, step)


def scheduler_zoo(seed: int = 0, parties: Optional[Iterable[int]] = None) -> list[Scheduler]:
    """A representative set of non-relaxed environments for experiments.

    The implementation-checking harness quantifies over environments; this
    zoo is the finite stand-in for "all schedulers" used in empirical
    checks.
    """
    zoo: list[Scheduler] = [
        FifoScheduler(),
        RandomScheduler(seed),
        RandomScheduler(seed + 1),
        RandomScheduler(seed + 2),
        EagerScheduler(),
        BatchRandomScheduler(seed),
    ]
    if parties is not None:
        party_list = sorted(parties)
        if party_list:
            zoo.append(LaggardScheduler([party_list[0]]))
            zoo.append(LaggardScheduler(party_list[: max(1, len(party_list) // 4)]))
            zoo.append(
                LaggardScheduler([party_list[-1]], lag_senders=True)
            )
            zoo.append(RushingScheduler([party_list[-1]]))
    return zoo
