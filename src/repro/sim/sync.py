"""Synchronous round-based simulation (the paper's baseline setting).

The synchronous results R1/R2 that the paper improves on live in a
lock-step model: in every round all players act simultaneously, and every
message sent in round r is delivered at the start of round r+1. This module
provides that model so the repository can measure the *cost of asynchrony*
(the extra k+t in the bounds) as an ablation.

Since the timing-model refactor there is **no independent synchronous
delivery loop**: :class:`SyncRuntime` is a thin adapter over the one
simulation kernel (:class:`~repro.sim.runtime.Runtime`) running under the
:class:`~repro.sim.timing.LockStep` timing model. Round-based
:class:`SyncProcess` objects are wrapped in a message-driven adapter that
buffers each round's deliveries and fires ``on_round`` at the kernel's
round-boundary tick. Deliveries, halting, message accounting, and the
double-output rule are therefore *the same code* in both worlds — the only
difference between the synchronous and asynchronous settings is the timing
model, which is the paper's point.

A broadcast channel — which the synchronous literature assumes as a
primitive — is modelled by :meth:`SyncContext.broadcast`: the runtime
delivers the same payload to every player (equivocation is impossible by
construction, matching the model assumption; the asynchronous layers have
to *earn* this with Bracha RBC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import SimulationError
from repro.sim.process import Context, Process
from repro.sim.runtime import Runtime
from repro.sim.scheduler import FifoScheduler
from repro.sim.timing import LockStep


class SyncContext:
    """Capability object for one process in one synchronous round.

    Wraps the kernel :class:`~repro.sim.process.Context` of the current
    activation, adding the round number and the synchronous model's free
    broadcast channel.
    """

    __slots__ = ("_ctx", "_pids", "pid", "round", "rng")

    def __init__(self, ctx: Context, pids: list[int], round_no: int) -> None:
        self._ctx = ctx
        self._pids = pids
        self.pid = ctx.pid
        self.round = round_no
        self.rng = ctx.rng

    def send(self, recipient: int, payload: Any) -> None:
        self._ctx.send(recipient, payload)

    def broadcast(self, payload: Any) -> None:
        """Send the same payload to every player (broadcast channel)."""
        for pid in self._pids:
            self._ctx.send(pid, payload)

    def output(self, action: Any) -> None:
        self._ctx.output(action)

    def halt(self) -> None:
        self._ctx.halt()

    def has_output(self) -> bool:
        return self._ctx.has_output()


class SyncProcess:
    """A player in the synchronous model.

    ``on_round(ctx, inbox)`` is called once per round with the messages
    delivered this round as (sender, payload) pairs, in sender order.
    """

    def on_round(self, ctx: SyncContext, inbox: list[tuple[int, Any]]) -> None:
        raise NotImplementedError

    def on_deadlock(self, pid: int) -> Optional[Any]:
        return None


class _RoundAdapter(Process):
    """Message-driven kernel process hosting one round-based SyncProcess.

    Buffers the round's deliveries; the LockStep tick flushes them into
    ``on_round``. Round 0 fires from the start signal with an empty inbox,
    exactly like the legacy synchronous loop.
    """

    __slots__ = ("wrapped", "_pids", "_inbox")

    def __init__(self, wrapped: SyncProcess, pids: list[int]) -> None:
        self.wrapped = wrapped
        self._pids = pids
        self._inbox: list[tuple[int, Any]] = []

    def on_start(self, ctx: Context) -> None:
        self.wrapped.on_round(SyncContext(ctx, self._pids, 0), [])

    def on_message(self, ctx: Context, sender: int, payload: Any) -> None:
        self._inbox.append((sender, payload))

    def on_tick(self, ctx: Context, round_no: int) -> None:
        inbox = sorted(self._inbox, key=lambda m: m[0])
        self._inbox = []
        self.wrapped.on_round(SyncContext(ctx, self._pids, round_no), inbox)

    def on_deadlock(self, pid: int) -> Optional[Any]:
        return self.wrapped.on_deadlock(pid)


@dataclass
class SyncRunResult:
    outputs: dict[int, Any]
    halted: set[int]
    rounds: int
    messages_sent: int
    wills: dict[int, Any] = field(default_factory=dict)


class SyncRuntime:
    """Lock-step executor: rounds until quiescence or the round limit.

    A thin adapter: builds the one simulation kernel with the
    :class:`~repro.sim.timing.LockStep` timing model (and a FIFO scheduler,
    whose within-round order is invisible to round-based processes) and
    repackages the kernel's :class:`~repro.sim.runtime.RunResult` into the
    legacy :class:`SyncRunResult` shape.
    """

    def __init__(
        self,
        processes: dict[int, SyncProcess],
        seed: int = 0,
        max_rounds: int = 10_000,
    ) -> None:
        if not processes:
            raise SimulationError("need at least one process")
        self.processes = dict(processes)
        self.pids = sorted(processes)
        self.seed = seed
        self.max_rounds = max_rounds

    def run(self) -> SyncRunResult:
        timing = LockStep(max_rounds=self.max_rounds)
        wrapped = {
            pid: _RoundAdapter(proc, self.pids)
            for pid, proc in self.processes.items()
        }
        kernel = Runtime(
            wrapped,
            FifoScheduler(),
            seed=self.seed,
            timing=timing,
            # The legacy synchronous loop drew per-pid randomness from the
            # "sync" RngTree namespace; keep seeded runs bit-identical.
            rng_namespace="sync",
        )
        result = kernel.run()
        return SyncRunResult(
            outputs=result.outputs,
            halted=result.halted,
            rounds=timing.rounds_completed(),
            messages_sent=result.messages_sent - result.env_messages,
            wills=result.wills,
        )
