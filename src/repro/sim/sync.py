"""Synchronous round-based simulation (the paper's baseline setting).

The synchronous results R1/R2 that the paper improves on live in a
lock-step model: in every round all players act simultaneously, and every
message sent in round r is delivered at the start of round r+1. This module
provides that model so the repository can measure the *cost of asynchrony*
(the extra k+t in the bounds) as an ablation.

A broadcast channel — which the synchronous literature assumes as a
primitive — is modelled by :meth:`SyncContext.broadcast`: the runtime
delivers the same payload to every player (equivocation is impossible by
construction, matching the model assumption; the asynchronous layers have
to *earn* this with Bracha RBC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import SimulationError, StepLimitExceeded
from repro.utils.rng import RngTree


class SyncContext:
    """Capability object for one process in one synchronous round."""

    def __init__(self, runtime: "SyncRuntime", pid: int) -> None:
        self._runtime = runtime
        self.pid = pid
        self.round = runtime.round
        self.rng = runtime.rng_for(pid)

    def send(self, recipient: int, payload: Any) -> None:
        self._runtime._post(self.pid, recipient, payload)

    def broadcast(self, payload: Any) -> None:
        """Send the same payload to every player (broadcast channel)."""
        for pid in self._runtime.pids:
            self._runtime._post(self.pid, pid, payload, broadcast=True)

    def output(self, action: Any) -> None:
        self._runtime._record_output(self.pid, action)

    def halt(self) -> None:
        self._runtime._record_halt(self.pid)

    def has_output(self) -> bool:
        return self.pid in self._runtime.outputs


class SyncProcess:
    """A player in the synchronous model.

    ``on_round(ctx, inbox)`` is called once per round with the messages
    delivered this round as (sender, payload) pairs, in sender order.
    """

    def on_round(self, ctx: SyncContext, inbox: list[tuple[int, Any]]) -> None:
        raise NotImplementedError

    def on_deadlock(self, pid: int) -> Optional[Any]:
        return None


@dataclass
class SyncRunResult:
    outputs: dict[int, Any]
    halted: set[int]
    rounds: int
    messages_sent: int
    wills: dict[int, Any] = field(default_factory=dict)


class SyncRuntime:
    """Lock-step executor: rounds until quiescence or the round limit."""

    def __init__(
        self,
        processes: dict[int, SyncProcess],
        seed: int = 0,
        max_rounds: int = 10_000,
    ) -> None:
        if not processes:
            raise SimulationError("need at least one process")
        self.processes = dict(processes)
        self.pids = sorted(processes)
        self.seed = seed
        self.max_rounds = max_rounds
        self.round = 0
        self.outputs: dict[int, Any] = {}
        self.halted: set[int] = set()
        self.messages_sent = 0
        self._inboxes: dict[int, list[tuple[int, Any]]] = {p: [] for p in self.pids}
        self._next: dict[int, list[tuple[int, Any]]] = {p: [] for p in self.pids}
        self._rng_tree = RngTree(seed)
        self._rngs: dict[int, Any] = {}

    def rng_for(self, pid: int):
        if pid not in self._rngs:
            self._rngs[pid] = self._rng_tree.child("sync", pid).rng
        return self._rngs[pid]

    def _post(self, sender: int, recipient: int, payload: Any,
              broadcast: bool = False) -> None:
        if recipient not in self._next:
            raise SimulationError(f"send to unknown process {recipient}")
        self._next[recipient].append((sender, payload))
        self.messages_sent += 1

    def _record_output(self, pid: int, action: Any) -> None:
        if pid in self.outputs:
            raise SimulationError(f"process {pid} attempted to output twice")
        self.outputs[pid] = action

    def _record_halt(self, pid: int) -> None:
        self.halted.add(pid)

    def run(self) -> SyncRunResult:
        while True:
            if self.round >= self.max_rounds:
                raise StepLimitExceeded(
                    f"no quiescence after {self.max_rounds} synchronous rounds"
                )
            live = [p for p in self.pids if p not in self.halted]
            has_mail = any(self._inboxes[p] for p in live)
            if not live or (self.round > 0 and not has_mail):
                break
            for pid in live:
                ctx = SyncContext(self, pid)
                inbox = sorted(self._inboxes[pid], key=lambda m: m[0])
                self.processes[pid].on_round(ctx, inbox)
            self._inboxes = {
                p: (self._next[p] if p not in self.halted else [])
                for p in self.pids
            }
            self._next = {p: [] for p in self.pids}
            self.round += 1

        wills = {}
        for pid in self.pids:
            if pid not in self.outputs and pid not in self.halted:
                wills[pid] = self.processes[pid].on_deadlock(pid)
        return SyncRunResult(
            outputs=dict(self.outputs),
            halted=set(self.halted),
            rounds=self.round,
            messages_sent=self.messages_sent,
            wills=wills,
        )
