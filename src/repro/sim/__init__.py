"""Deterministic asynchronous-network simulation.

The model follows Section 2 of the paper: players alternate moves with an
*environment* (the scheduler). An environment move picks the next player and
the set of in-transit messages to that player that are delivered just before
it moves. The environment is a first-class strategic actor: every run is
parameterised by a :class:`~repro.sim.scheduler.Scheduler`.

Non-relaxed schedulers must deliver every message eventually; *relaxed*
schedulers (used only in mediator games, Section 5) may drop messages but
must treat a batch of messages sent by the mediator at one step
all-or-none.
"""

from repro.sim.network import Message, Network, START_SIGNAL
from repro.sim.process import Context, Process, FuncProcess
from repro.sim.runtime import Runtime, RunResult
from repro.sim.scheduler import (
    Scheduler,
    FifoScheduler,
    RandomScheduler,
    EagerScheduler,
    LaggardScheduler,
    RushingScheduler,
    BatchRandomScheduler,
    RelaxedScheduler,
    DropPlanRelaxedScheduler,
    scheduler_zoo,
)
from repro.sim.trace import Trace, TraceEvent, message_pattern

__all__ = [
    "Message",
    "Network",
    "START_SIGNAL",
    "Context",
    "Process",
    "FuncProcess",
    "Runtime",
    "RunResult",
    "Scheduler",
    "FifoScheduler",
    "RandomScheduler",
    "EagerScheduler",
    "LaggardScheduler",
    "BatchRandomScheduler",
    "RelaxedScheduler",
    "DropPlanRelaxedScheduler",
    "scheduler_zoo",
    "Trace",
    "TraceEvent",
    "message_pattern",
]
