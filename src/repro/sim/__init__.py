"""Deterministic network simulation: one kernel, pluggable timing models.

The model follows Section 2 of the paper: players alternate moves with an
*environment* (the scheduler). An environment move picks the next player and
the set of in-transit messages to that player that are delivered just before
it moves. The environment is a first-class strategic actor: every run is
parameterised by a :class:`~repro.sim.scheduler.Scheduler`.

Orthogonally to the scheduler, a :class:`~repro.sim.timing.TimingModel`
decides which in-transit messages are *eligible* for delivery at all:
:class:`~repro.sim.timing.Asynchronous` (everything — the paper's setting),
:class:`~repro.sim.timing.LockStep` (synchronous rounds — the R1/R2
baseline), and :class:`~repro.sim.timing.BoundedDelay` (partial synchrony
with a delay bound and GST). The synchronous ``SyncRuntime`` is a thin
adapter over the same kernel.

Non-relaxed schedulers must deliver every message eventually; *relaxed*
schedulers (used only in mediator games, Section 5) may drop messages but
must treat a batch of messages sent by the mediator at one step
all-or-none.
"""

from repro.sim.network import (
    Message,
    MessageView,
    Network,
    START_SIGNAL,
    TransitView,
)
from repro.sim.process import Context, Process, FuncProcess
from repro.sim.runtime import Runtime, RunResult
from repro.sim.scheduler import (
    Scheduler,
    FifoScheduler,
    RandomScheduler,
    EagerScheduler,
    LaggardScheduler,
    RushingScheduler,
    BatchRandomScheduler,
    RelaxedScheduler,
    DropPlanRelaxedScheduler,
    scheduler_zoo,
)
from repro.sim.timing import (
    Asynchronous,
    BoundedDelay,
    LockStep,
    TimingModel,
    register_timing,
    timing_from_name,
    timing_names,
)
from repro.sim.trace import Trace, TraceEvent, message_pattern

__all__ = [
    "Message",
    "MessageView",
    "Network",
    "START_SIGNAL",
    "TransitView",
    "Context",
    "Process",
    "FuncProcess",
    "Runtime",
    "RunResult",
    "Scheduler",
    "FifoScheduler",
    "RandomScheduler",
    "EagerScheduler",
    "LaggardScheduler",
    "BatchRandomScheduler",
    "RelaxedScheduler",
    "DropPlanRelaxedScheduler",
    "scheduler_zoo",
    "TimingModel",
    "Asynchronous",
    "LockStep",
    "BoundedDelay",
    "register_timing",
    "timing_from_name",
    "timing_names",
    "Trace",
    "TraceEvent",
    "message_pattern",
]
