"""Run traces and message patterns.

A :class:`Trace` records every observable event of a run. Message *patterns*
in the sense of Section 6.4 — the sequence of ``(s, i, j, k)`` send events
and ``(d, i, j, k)`` delivery events, with contents erased — are derived
from traces by :func:`message_pattern`; the minimally-informative mediator
transform keys its scheduler-equivalence classes off exactly this object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One observable event in a run."""

    step: int
    kind: str  # "start" | "send" | "deliver" | "drop" | "output" | "halt"
    # | "tick" | "note" | "crash" | "restart" (fault injection)
    pid: int
    sender: Optional[int] = None
    recipient: Optional[int] = None
    uid: Optional[int] = None
    payload: Any = None
    data: Any = None


@dataclass
class Trace:
    """Append-only event log for one run."""

    events: list[TraceEvent] = field(default_factory=list)
    record_payloads: bool = True

    def add(self, event: TraceEvent) -> None:
        self.events.append(event)

    def note(self, pid: int, label: str, data: Any = None) -> None:
        self.events.append(
            TraceEvent(step=-1, kind="note", pid=pid, payload=label, data=data)
        )

    # -- queries -----------------------------------------------------------

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def sends(self) -> list[TraceEvent]:
        return self.of_kind("send")

    def deliveries(self) -> list[TraceEvent]:
        return self.of_kind("deliver")

    def message_count(self) -> int:
        return len(self.sends())

    def outputs(self) -> dict[int, Any]:
        return {e.pid: e.payload for e in self.of_kind("output")}

    def __len__(self) -> int:
        return len(self.events)


def message_pattern(trace: Trace) -> tuple[tuple, ...]:
    """Extract the Section 6.4 message pattern from a trace.

    Returns a tuple of ``("s", i, j, k)`` / ``("d", i, j, k)`` tuples, where
    ``k`` numbers the messages from ``i`` to ``j`` consecutively (starting
    at 1) and contents are erased. Two runs with equal patterns are
    indistinguishable to the environment.
    """
    counters: dict[tuple[int, int], int] = {}
    uid_to_index: dict[int, tuple[int, int, int]] = {}
    pattern: list[tuple] = []
    for event in trace.events:
        if event.kind == "send":
            key = (event.sender, event.recipient)
            counters[key] = counters.get(key, 0) + 1
            uid_to_index[event.uid] = (event.sender, event.recipient, counters[key])
            pattern.append(("s", event.sender, event.recipient, counters[key]))
        elif event.kind == "deliver":
            indexed = uid_to_index.get(event.uid)
            if indexed is None:
                continue  # environment-injected (start signals): not a message
            i, j, k = indexed
            pattern.append(("d", i, j, k))
    return tuple(pattern)
