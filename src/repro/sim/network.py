"""Messages and the indexed in-transit message pool.

Channels are secure and private point-to-point links: the scheduler observes
*that* a message exists (sender, recipient, send order) but never its
payload — mirroring the paper's assumption that the environment cannot read
messages (Section 6.1). Scheduler code therefore only ever sees
:class:`MessageView` objects — either inside a plain sequence (tests build
those by hand) or through a :class:`TransitView`, the zero-copy facade the
kernel hands to schedulers.

The pool is *indexed*: besides the master uid → message map (whose keys are
always in ascending uid order, because uids are assigned monotonically and
``dict`` preserves insertion order), the network maintains per-recipient,
per-sender, and per-batch buckets. Each bucket is an insertion-ordered dict
as well, so "the oldest message to recipient r" is ``next(iter(bucket))`` —
O(1) — instead of a scan over a freshly materialized list. Schedulers use
these through :class:`TransitView`; the old list-building accessors remain
for tests and cold paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional, Union

START_SIGNAL = "__START__"
"""Payload of the synthetic game-start signal every process receives first."""


@dataclass(slots=True)
class Message:
    """A point-to-point message inside the simulated network."""

    uid: int
    sender: int
    recipient: int
    payload: Any
    send_step: int
    batch: int
    """Batch id: messages emitted by one activation of one process share it.

    Relaxed schedulers must drop or deliver mediator batches atomically
    (Section 5), which is the hook this field exists for.
    """

    delivered_step: Optional[int] = None
    dropped: bool = False

    def view(self) -> "MessageView":
        return MessageView(
            uid=self.uid,
            sender=self.sender,
            recipient=self.recipient,
            send_step=self.send_step,
            batch=self.batch,
        )


@dataclass(frozen=True, slots=True)
class MessageView:
    """What a scheduler is allowed to see about an in-transit message."""

    uid: int
    sender: int
    recipient: int
    send_step: int
    batch: int


class TransitView:
    """Read-only, allocation-free scheduler's view of the in-transit pool.

    Behaves as a ``Sequence[MessageView]`` (``len``/iteration/indexing) so
    legacy scheduler code keeps working, and exposes indexed queries —
    :meth:`min_uid`, :meth:`oldest_to`, :meth:`oldest_from`,
    :meth:`oldest_in_batch` — that answer in O(1) from the network's
    buckets. Schedulers should prefer the indexed queries; payloads are
    never reachable through this object.
    """

    __slots__ = ("_net",)

    def __init__(self, net: "Network") -> None:
        self._net = net

    # -- Sequence[MessageView] compatibility --------------------------------

    def __len__(self) -> int:
        return len(self._net._in_transit)

    def __bool__(self) -> bool:
        return bool(self._net._in_transit)

    def __iter__(self) -> Iterator[MessageView]:
        return (m.view() for m in self._net._in_transit.values())

    def __getitem__(self, index):
        msgs = list(self._net._in_transit.values())
        if isinstance(index, slice):
            return [m.view() for m in msgs[index]]
        return msgs[index].view()

    # -- indexed queries -----------------------------------------------------

    def uids(self):
        """All in-transit uids, ascending (send order)."""
        return self._net._in_transit.keys()

    def min_uid(self) -> Optional[int]:
        """Oldest in-transit uid, or None when the pool is empty."""
        return next(iter(self._net._in_transit), None)

    def recipients(self):
        """Recipients with at least one in-transit message."""
        return self._net._by_recipient.keys()

    def senders(self):
        """Senders with at least one in-transit message."""
        return self._net._by_sender.keys()

    def oldest_to(self, recipient: int) -> Optional[int]:
        bucket = self._net._by_recipient.get(recipient)
        return next(iter(bucket)) if bucket else None

    def oldest_from(self, sender: int) -> Optional[int]:
        bucket = self._net._by_sender.get(sender)
        return next(iter(bucket)) if bucket else None

    def oldest_in_batch(self, batch: int) -> Optional[int]:
        bucket = self._net._by_batch.get(batch)
        return next(iter(bucket)) if bucket else None

    def batch_of(self, uid: int) -> int:
        return self._net._in_transit[uid].batch

    def view_of(self, uid: int) -> MessageView:
        return self._net._in_transit[uid].view()

    def to_recipient(self, recipient: int) -> Iterator[MessageView]:
        bucket = self._net._by_recipient.get(recipient)
        return (m.view() for m in bucket.values()) if bucket else iter(())

    def from_sender(self, sender: int) -> Iterator[MessageView]:
        bucket = self._net._by_sender.get(sender)
        return (m.view() for m in bucket.values()) if bucket else iter(())

    def has_self_message(self, sender: int) -> bool:
        """Is a ``sender → sender`` message in transit? O(1) (indexed).

        Self-messages are the covert-channel signal relaxed colluding
        environments watch for (Section 6.1), and the pool counts them on
        send/remove so the watch is O(coalition) per step instead of a
        scan over the sender's whole out-bucket.
        """
        return self._net._self_counts.get(sender, 0) > 0


TransitPool = Union[TransitView, "Iterable[MessageView]"]
"""What a scheduler's ``choose`` may receive: the kernel passes a
:class:`TransitView`; tests and wrapping schedulers may pass plain
sequences of :class:`MessageView`."""


class Network:
    """The indexed pool of in-transit messages."""

    def __init__(self) -> None:
        self._next_uid = 0
        self._next_batch = 0
        self._in_transit: dict[int, Message] = {}
        self._by_recipient: dict[int, dict[int, Message]] = {}
        self._by_sender: dict[int, dict[int, Message]] = {}
        self._by_batch: dict[int, dict[int, Message]] = {}
        self._self_counts: dict[int, int] = {}
        self._view = TransitView(self)
        self.total_sent = 0
        self.total_delivered = 0
        self.total_dropped = 0

    # -- sending -----------------------------------------------------------

    def new_batch(self) -> int:
        self._next_batch += 1
        return self._next_batch

    def send(
        self, sender: int, recipient: int, payload: Any, step: int, batch: int
    ) -> Message:
        uid = self._next_uid
        msg = Message(
            uid=uid,
            sender=sender,
            recipient=recipient,
            payload=payload,
            send_step=step,
            batch=batch,
        )
        self._next_uid = uid + 1
        self._in_transit[uid] = msg
        by_r = self._by_recipient
        if recipient in by_r:
            by_r[recipient][uid] = msg
        else:
            by_r[recipient] = {uid: msg}
        by_s = self._by_sender
        if sender in by_s:
            by_s[sender][uid] = msg
        else:
            by_s[sender] = {uid: msg}
        by_b = self._by_batch
        if batch in by_b:
            by_b[batch][uid] = msg
        else:
            by_b[batch] = {uid: msg}
        if sender == recipient:
            self._self_counts[sender] = self._self_counts.get(sender, 0) + 1
        self.total_sent += 1
        return msg

    # -- delivery ----------------------------------------------------------

    def _remove(self, uid: int) -> Message:
        msg = self._in_transit.pop(uid)
        bucket = self._by_recipient[msg.recipient]
        del bucket[uid]
        if not bucket:
            del self._by_recipient[msg.recipient]
        bucket = self._by_sender[msg.sender]
        del bucket[uid]
        if not bucket:
            del self._by_sender[msg.sender]
        bucket = self._by_batch[msg.batch]
        del bucket[uid]
        if not bucket:
            del self._by_batch[msg.batch]
        if msg.sender == msg.recipient:
            remaining = self._self_counts[msg.sender] - 1
            if remaining:
                self._self_counts[msg.sender] = remaining
            else:
                del self._self_counts[msg.sender]
        return msg

    def deliver(self, uid: int, step: int) -> Message:
        msg = self._remove(uid)
        msg.delivered_step = step
        self.total_delivered += 1
        return msg

    def drop(self, uid: int) -> Message:
        msg = self._remove(uid)
        msg.dropped = True
        self.total_dropped += 1
        return msg

    def discard_to(self, recipients: set[int]) -> int:
        """Silently discard messages addressed to halted processes."""
        uids = [
            uid
            for recipient in sorted(recipients)
            if recipient in self._by_recipient
            for uid in self._by_recipient[recipient]
        ]
        for uid in uids:
            self.drop(uid)
        return len(uids)

    # -- fault injection ----------------------------------------------------

    def withdraw(self, uid: int) -> Message:
        """Pull a message out of the pool without counting it delivered
        or dropped — the fault injector holds it for later reinstatement
        (partition cut, crashed-but-restartable recipient)."""
        return self._remove(uid)

    def withdraw_to(self, recipient: int) -> list[Message]:
        """Withdraw every in-transit message addressed to ``recipient``."""
        bucket = self._by_recipient.get(recipient)
        if not bucket:
            return []
        return [self._remove(uid) for uid in list(bucket)]

    def reinstate(self, messages: Iterable[Message]) -> None:
        """Put previously withdrawn messages back into the pool.

        Reinstated uids are older than anything sent since they were
        withdrawn, so the master map and every touched bucket are
        re-sorted to restore the ascending-uid iteration order that
        :meth:`TransitView.min_uid` and the oldest-first queries rely on.
        """
        msgs = sorted(messages, key=lambda m: m.uid)
        if not msgs:
            return
        for msg in msgs:
            self._in_transit[msg.uid] = msg
            self._by_recipient.setdefault(msg.recipient, {})[msg.uid] = msg
            self._by_sender.setdefault(msg.sender, {})[msg.uid] = msg
            self._by_batch.setdefault(msg.batch, {})[msg.uid] = msg
            if msg.sender == msg.recipient:
                count = self._self_counts.get(msg.sender, 0)
                self._self_counts[msg.sender] = count + 1
        self._in_transit = dict(sorted(self._in_transit.items()))
        for msg in msgs:
            by_r = self._by_recipient[msg.recipient]
            self._by_recipient[msg.recipient] = dict(sorted(by_r.items()))
            by_s = self._by_sender[msg.sender]
            self._by_sender[msg.sender] = dict(sorted(by_s.items()))
            by_b = self._by_batch[msg.batch]
            self._by_batch[msg.batch] = dict(sorted(by_b.items()))

    # -- inspection --------------------------------------------------------

    def view(self) -> TransitView:
        """The scheduler-facing facade (a singleton; state lives here)."""
        return self._view

    def get(self, uid: int) -> Optional[Message]:
        return self._in_transit.get(uid)

    def in_transit(self) -> list[Message]:
        return list(self._in_transit.values())

    def in_transit_views(self) -> list[MessageView]:
        return [m.view() for m in self._in_transit.values()]

    def in_transit_to(self, recipient: int) -> list[Message]:
        return list(self._by_recipient.get(recipient, {}).values())

    def has_message_for(self, recipients: Iterable[int]) -> bool:
        by_r = self._by_recipient
        return any(r in by_r for r in recipients)

    def batch_members(self, batch: int) -> list[Message]:
        return list(self._by_batch.get(batch, {}).values())

    def __len__(self) -> int:
        return len(self._in_transit)
