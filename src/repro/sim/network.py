"""Messages and the in-transit message pool.

Channels are secure and private point-to-point links: the scheduler observes
*that* a message exists (sender, recipient, send order) but never its
payload — mirroring the paper's assumption that the environment cannot read
messages (Section 6.1). Scheduler code therefore only ever sees
:class:`MessageView` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

START_SIGNAL = "__START__"
"""Payload of the synthetic game-start signal every process receives first."""


@dataclass
class Message:
    """A point-to-point message inside the simulated network."""

    uid: int
    sender: int
    recipient: int
    payload: Any
    send_step: int
    batch: int
    """Batch id: messages emitted by one activation of one process share it.

    Relaxed schedulers must drop or deliver mediator batches atomically
    (Section 5), which is the hook this field exists for.
    """

    delivered_step: Optional[int] = None
    dropped: bool = False

    def view(self) -> "MessageView":
        return MessageView(
            uid=self.uid,
            sender=self.sender,
            recipient=self.recipient,
            send_step=self.send_step,
            batch=self.batch,
        )


@dataclass(frozen=True)
class MessageView:
    """What a scheduler is allowed to see about an in-transit message."""

    uid: int
    sender: int
    recipient: int
    send_step: int
    batch: int


class Network:
    """The pool of in-transit messages."""

    def __init__(self) -> None:
        self._next_uid = 0
        self._next_batch = 0
        self._in_transit: dict[int, Message] = {}
        self.total_sent = 0
        self.total_delivered = 0
        self.total_dropped = 0

    # -- sending -----------------------------------------------------------

    def new_batch(self) -> int:
        self._next_batch += 1
        return self._next_batch

    def send(
        self, sender: int, recipient: int, payload: Any, step: int, batch: int
    ) -> Message:
        msg = Message(
            uid=self._next_uid,
            sender=sender,
            recipient=recipient,
            payload=payload,
            send_step=step,
            batch=batch,
        )
        self._next_uid += 1
        self._in_transit[msg.uid] = msg
        self.total_sent += 1
        return msg

    # -- delivery ----------------------------------------------------------

    def deliver(self, uid: int, step: int) -> Message:
        msg = self._in_transit.pop(uid)
        msg.delivered_step = step
        self.total_delivered += 1
        return msg

    def drop(self, uid: int) -> Message:
        msg = self._in_transit.pop(uid)
        msg.dropped = True
        self.total_dropped += 1
        return msg

    def discard_to(self, recipients: set[int]) -> int:
        """Silently discard messages addressed to halted processes."""
        uids = [m.uid for m in self._in_transit.values() if m.recipient in recipients]
        for uid in uids:
            self.drop(uid)
        return len(uids)

    # -- inspection --------------------------------------------------------

    def in_transit(self) -> list[Message]:
        return list(self._in_transit.values())

    def in_transit_views(self) -> list[MessageView]:
        return [m.view() for m in self._in_transit.values()]

    def in_transit_to(self, recipient: int) -> list[Message]:
        return [m for m in self._in_transit.values() if m.recipient == recipient]

    def has_message_for(self, recipients: Iterable[int]) -> bool:
        wanted = set(recipients)
        return any(m.recipient in wanted for m in self._in_transit.values())

    def batch_members(self, batch: int) -> list[Message]:
        return [m for m in self._in_transit.values() if m.batch == batch]

    def __len__(self) -> int:
        return len(self._in_transit)
